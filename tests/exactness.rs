//! Cross-crate exactness tests: for every algorithm with a closed form in
//! the paper, the IDEAL-mode simulated counts must equal the formula
//! *exactly* on divisible problem sizes. This pins both the schedule
//! implementations and the formula transcriptions to the paper at once.

use multicore_matmul::prelude::*;

/// Run `algo` under IDEAL policy and compare `(M_S, M_D)` with its own
/// prediction, requiring exact equality.
fn assert_exact(algo: &dyn Algorithm, machine: &MachineConfig, m: u32, n: u32, z: u32) {
    let problem = ProblemSpec::new(m, n, z);
    let mut sim = Simulator::new(SimConfig::ideal(machine), m, n, z);
    algo.execute(machine, &problem, &mut sim)
        .unwrap_or_else(|e| panic!("{} on {m}x{n}x{z}: {e}", algo.name()));
    let stats = sim.stats();
    let pred =
        algo.predict(machine, &problem).unwrap_or_else(|| panic!("{} should predict", algo.name()));
    assert_eq!(stats.ms() as f64, pred.ms, "{} M_S mismatch on {m}x{n}x{z}", algo.name());
    assert_eq!(stats.md() as f64, pred.md, "{} M_D mismatch on {m}x{n}x{z}", algo.name());
    assert_eq!(stats.total_fmas(), problem.total_fmas());
    // Schedules fully clean up after themselves: both cache levels empty.
    assert_eq!(sim.shared_len(), 0, "{} left shared residue", algo.name());
    for c in 0..machine.cores {
        assert_eq!(sim.dist_len(c), 0, "{} left residue on core {c}", algo.name());
    }
}

#[test]
fn shared_opt_exact_when_p_divides_lambda() {
    // λ must divide m, n and p must divide λ for the clean per-core split.
    // C_S = 43 → λ = 6; p = 2 | 6; C_D = 3.
    let machine = MachineConfig::new(2, 43, 3, 32);
    for (m, n, z) in [(6, 6, 1), (12, 6, 5), (18, 24, 7), (6, 6, 6)] {
        assert_exact(&SharedOpt, &machine, m, n, z);
    }
}

#[test]
fn distributed_opt_exact_on_divisible_tiles() {
    // q=32 preset: µ = 4, grid 2×2 → tile 8.
    let machine = MachineConfig::quad_q32();
    for (m, n, z) in [(8, 8, 1), (16, 8, 3), (24, 32, 5), (8, 8, 8)] {
        assert_exact(&DistributedOpt::default(), &machine, m, n, z);
    }
    // Degenerate µ = 1 (q = 64 preset), tile 2.
    let machine = MachineConfig::quad_q64();
    for (m, n, z) in [(2, 2, 1), (4, 6, 3), (8, 8, 8)] {
        assert_exact(&DistributedOpt::default(), &machine, m, n, z);
    }
}

#[test]
fn tradeoff_exact_general_and_single_subblock() {
    let machine = MachineConfig::quad_q32();
    // General case: α = 16 > √p·µ = 8; β | z required for exactness.
    let grid = CoreGrid { rows: 2, cols: 2 };
    let general = Tradeoff::with_params(TradeoffParams { alpha: 16, beta: 4, mu: 4, grid });
    for (m, n, z) in [(16, 16, 4), (32, 16, 8), (48, 48, 12)] {
        assert_exact(&general, &machine, m, n, z);
    }
    // Special case: α = √p·µ = 8, each core a single sub-block per tile.
    let single = Tradeoff::with_params(TradeoffParams { alpha: 8, beta: 4, mu: 4, grid });
    for (m, n, z) in [(8, 8, 4), (16, 24, 8)] {
        assert_exact(&single, &machine, m, n, z);
    }
}

#[test]
fn shared_equal_exact_when_p_divides_tile() {
    // C_S = 768 → t = 16, p = 4 | 16; C_D = 3.
    let machine = MachineConfig::new(4, 768, 3, 32);
    for (m, n, z) in [(16, 16, 16), (32, 16, 32), (48, 48, 16)] {
        assert_exact(&SharedEqual, &machine, m, n, z);
    }
}

#[test]
fn distributed_equal_exact_on_aligned_partitions() {
    // C_D = 21 → t_D = 2; 2×2 grid; m, n multiples of 2·grid = 4 so every
    // core's partition is t_D-aligned; z multiple of t_D.
    let machine = MachineConfig::quad_q32();
    for (m, n, z) in [(4, 4, 2), (8, 12, 6), (16, 16, 8)] {
        assert_exact(&DistributedEqual::default(), &machine, m, n, z);
    }
}

#[test]
fn predictions_track_ideal_counts_within_tolerance_on_ragged_sizes() {
    // On non-divisible sizes the formulas are approximations; the relative
    // error must stay small once there are several tiles per dimension.
    let machine = MachineConfig::quad_q32();
    let problem = ProblemSpec::new(123, 97, 61);
    for kind in [
        AlgorithmKind::SharedOpt,
        AlgorithmKind::DistributedOpt,
        AlgorithmKind::SharedEqual,
        AlgorithmKind::DistributedEqual,
    ] {
        let algo = kind.build();
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 123, 97, 61);
        algo.execute(&machine, &problem, &mut sim).unwrap();
        let pred = algo.predict(&machine, &problem).unwrap();
        let ms = sim.stats().ms() as f64;
        let rel = (ms - pred.ms).abs() / pred.ms;
        assert!(
            rel < 0.35,
            "{}: simulated M_S {ms} vs predicted {} (rel {rel:.3})",
            algo.name(),
            pred.ms
        );
    }
}

#[test]
fn every_managed_algorithm_cleans_up_on_paper_presets() {
    // Capacity-checked IDEAL runs on all six presets with a ragged size:
    // no capacity violations, no residue, full FMA coverage.
    let problem = ProblemSpec::new(13, 11, 7);
    for (label, machine) in MachineConfig::paper_presets() {
        for kind in AlgorithmKind::ALL {
            if kind == AlgorithmKind::OuterProduct {
                continue; // LRU-only by design
            }
            let algo = kind.build();
            let mut sim = Simulator::new(SimConfig::ideal(&machine), 13, 11, 7);
            algo.execute(&machine, &problem, &mut sim)
                .unwrap_or_else(|e| panic!("{label}/{}: {e}", algo.name()));
            assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
            assert_eq!(sim.shared_len(), 0);
        }
    }
}
