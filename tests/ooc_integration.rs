//! End-to-end tests of the out-of-core subsystem: tiled-file round
//! trips under random shapes, corruption rejection, bit-identity of the
//! streamed product against the in-core executor for every kernel
//! variant, and the `mmc ooc` CLI surface.

use multicore_matmul::ooc::{
    ooc_multiply, write_pseudo_random, OocOpts, OocReport, TiledError, TiledFile,
};
use multicore_matmul::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmc-ooc-it-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mmc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mmc")).args(args).output().expect("run mmc binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any block matrix — ragged shapes, q values (including primes and
    /// sizes that do not divide typical panel widths) — survives the
    /// disk round trip bit-exactly.
    #[test]
    fn tiled_files_round_trip_any_shape(
        rows in 1u32..9,
        cols in 1u32..9,
        q in prop_oneof![Just(1usize), Just(2), Just(3), Just(5), Just(7), Just(8), Just(13)],
        seed in any::<u64>(),
    ) {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(format!("m-{rows}-{cols}-{q}-{seed}.tiled"));
        let m = BlockMatrix::pseudo_random(rows, cols, q, seed);
        multicore_matmul::ooc::tiled::write_matrix(&path, &m).unwrap();
        let back = TiledFile::open(&path).unwrap().read_matrix().unwrap();
        prop_assert_eq!(back, m);
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping any single byte of the 32 checksummed header bytes is
    /// rejected at open (the checksum itself is covered too: flipping a
    /// checksum byte mismatches the recomputation).
    #[test]
    fn corrupted_headers_never_open(
        byte in 0usize..40,
        bit in 0u8..8,
    ) {
        let dir = tmp_dir("corrupt");
        let path = dir.join(format!("c-{byte}-{bit}.tiled"));
        write_pseudo_random(&path, 2, 2, 4, 1).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[byte] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        let result = TiledFile::open(&path);
        prop_assert!(
            matches!(result, Err(TiledError::BadHeader(_, _))),
            "header corruption at byte {} bit {} must be rejected", byte, bit
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// The streamed product is bit-identical to the in-core executor on
    /// ragged shapes where alpha and beta do not divide the dimensions.
    #[test]
    fn ooc_multiply_matches_in_core_on_ragged_shapes(
        m in 1u32..7,
        n in 1u32..7,
        z in 1u32..7,
        q in prop_oneof![Just(3usize), Just(4), Just(5)],
        budget_blocks in 5u64..24,
        seed in 0u64..1000,
    ) {
        let dir = tmp_dir("ragged");
        let tag = format!("{m}-{n}-{z}-{q}-{budget_blocks}-{seed}");
        let a_path = dir.join(format!("a-{tag}.tiled"));
        let b_path = dir.join(format!("b-{tag}.tiled"));
        let c_path = dir.join(format!("c-{tag}.tiled"));
        write_pseudo_random(&a_path, m, z, q, seed).unwrap();
        write_pseudo_random(&b_path, z, n, q, seed + 1).unwrap();
        let mut opts = OocOpts::new(budget_blocks * (q * q * 8) as u64);
        opts.io_threads = 1 + (seed as usize % 3);
        let report = ooc_multiply(&a_path, &b_path, &c_path, &opts).unwrap();
        prop_assert!(report.within_budget,
            "peak {} > budget {}", report.peak_resident_bytes, report.budget_bytes);
        let a = BlockMatrix::pseudo_random(m, z, q, seed);
        let b = BlockMatrix::pseudo_random(z, n, q, seed + 1);
        let want = gemm_parallel_with_kernel(
            &a, &b, Tiling { tile_m: 2, tile_n: 2, tile_k: 3 }, opts.variant);
        let got = TiledFile::open(&c_path).unwrap().read_matrix().unwrap();
        prop_assert_eq!(got, want);
        for p in [&a_path, &b_path, &c_path] {
            std::fs::remove_file(p).unwrap();
        }
    }
}

/// The acceptance criterion verbatim: for every kernel variant this CPU
/// can run, `ooc multiply == gemm_parallel` with `==`, on a matrix whose
/// three operands exceed the budget by well over 2x.
#[test]
fn ooc_multiply_is_bit_identical_for_every_kernel_variant() {
    let dir = tmp_dir("kernels");
    let (m, z, n, q) = (10u32, 9u32, 11u32, 8usize);
    let a_path = dir.join("a.tiled");
    let b_path = dir.join("b.tiled");
    write_pseudo_random(&a_path, m, z, q, 21).unwrap();
    write_pseudo_random(&b_path, z, n, q, 22).unwrap();
    let a = BlockMatrix::pseudo_random(m, z, q, 21);
    let b = BlockMatrix::pseudo_random(z, n, q, 22);
    let operand_blocks = (m * z + z * n + m * n) as u64;
    for variant in multicore_matmul::exec::kernel::variants_available() {
        let c_path = dir.join(format!("c-{}.tiled", variant.name()));
        let budget_blocks = 30u64;
        assert!(operand_blocks >= 2 * budget_blocks, "test must exceed budget 2x");
        let mut opts = OocOpts::new(budget_blocks * (q * q * 8) as u64);
        opts.variant = variant;
        let report = ooc_multiply(&a_path, &b_path, &c_path, &opts).unwrap();
        assert!(
            report.within_budget,
            "{}: peak {} > budget {}",
            variant.name(),
            report.peak_resident_bytes,
            report.budget_bytes
        );
        let got = TiledFile::open(&c_path).unwrap().read_matrix().unwrap();
        // Compare against a *different* tiling than the ooc staging uses:
        // bit-identity must hold across decompositions.
        let want =
            gemm_parallel_with_kernel(&a, &b, Tiling { tile_m: 4, tile_n: 5, tile_k: 2 }, variant);
        assert_eq!(got, want, "ooc != in-core for {}", variant.name());
    }
}

#[test]
fn cli_gen_multiply_verify_round_trip_with_metrics() {
    let dir = tmp_dir("cli");
    let a = dir.join("a.tiled");
    let b = dir.join("b.tiled");
    let c = dir.join("c.tiled");
    let trace = dir.join("trace.json");
    let (ok, _, stderr) = mmc(&[
        "ooc",
        "gen",
        "--out",
        a.to_str().unwrap(),
        "--rows",
        "9",
        "--cols",
        "8",
        "--q",
        "8",
        "--seed",
        "3",
    ]);
    assert!(ok, "{stderr}");
    let (ok, _, stderr) = mmc(&[
        "ooc",
        "gen",
        "--out",
        b.to_str().unwrap(),
        "--rows",
        "8",
        "--cols",
        "7",
        "--q",
        "8",
        "--seed",
        "4",
    ]);
    assert!(ok, "{stderr}");
    // 9*8 + 8*7 + 9*7 = 191 blocks of operands, 16k budget = 32 blocks.
    let (ok, stdout, stderr) = mmc(&[
        "ooc",
        "multiply",
        "--a",
        a.to_str().unwrap(),
        "--b",
        b.to_str().unwrap(),
        "--out",
        c.to_str().unwrap(),
        "--mem-budget",
        "16k",
        "--io-threads",
        "2",
        "--json",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let report: OocReport = serde_json::from_str(&stdout).expect("multiply --json parses");
    assert!(
        report.within_budget,
        "peak {} > budget {}",
        report.peak_resident_bytes, report.budget_bytes
    );
    assert!(report.peak_resident_bytes <= 16 * 1024);
    assert_eq!((report.m, report.n, report.z), (9, 7, 8));
    assert!(report.prefetch.bytes_read > 0);
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.contains("\"io 0\""), "I/O lane in trace");
    assert!(trace_text.contains("bytes_read"), "counter in trace");
    let (ok, stdout, stderr) = mmc(&[
        "ooc",
        "verify",
        "--a",
        a.to_str().unwrap(),
        "--b",
        b.to_str().unwrap(),
        "--c",
        c.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("bit-identical"), "{stdout}");
}

#[test]
fn cli_missing_and_corrupt_inputs_fail_cleanly() {
    let dir = tmp_dir("cli-errors");
    let missing = dir.join("does-not-exist.tiled");
    let b = dir.join("b.tiled");
    let (ok, _, stderr) = mmc(&[
        "ooc",
        "gen",
        "--out",
        b.to_str().unwrap(),
        "--rows",
        "2",
        "--cols",
        "2",
        "--q",
        "4",
    ]);
    assert!(ok, "{stderr}");

    // Missing input: error mentions the path, exit is nonzero, no panic.
    let (ok, _, stderr) = mmc(&[
        "ooc",
        "multiply",
        "--a",
        missing.to_str().unwrap(),
        "--b",
        b.to_str().unwrap(),
        "--out",
        dir.join("c.tiled").to_str().unwrap(),
        "--mem-budget",
        "1m",
    ]);
    assert!(!ok);
    assert!(stderr.contains("does-not-exist.tiled"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Corrupt input: checksum failure is a clean error too.
    let corrupt = dir.join("corrupt.tiled");
    let mut bytes = std::fs::read(&b).unwrap();
    bytes[10] ^= 0xFF;
    std::fs::write(&corrupt, &bytes).unwrap();
    let (ok, _, stderr) = mmc(&[
        "ooc",
        "verify",
        "--a",
        corrupt.to_str().unwrap(),
        "--b",
        b.to_str().unwrap(),
        "--c",
        b.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("not a tiled matrix file"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // A budget too small for even the minimal staging is a usage-level
    // error with guidance, not a panic.
    let (ok, _, stderr) = mmc(&[
        "ooc",
        "multiply",
        "--a",
        b.to_str().unwrap(),
        "--b",
        b.to_str().unwrap(),
        "--out",
        dir.join("c.tiled").to_str().unwrap(),
        "--mem-budget",
        "128",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--mem-budget"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn cli_output_path_errors_are_clean_across_subcommands() {
    let dir = tmp_dir("cli-out-errors");
    let bad_out = dir.join("no-such-dir").join("x.tiled");
    // ooc gen to an unwritable path.
    let (ok, _, stderr) = mmc(&[
        "ooc",
        "gen",
        "--out",
        bad_out.to_str().unwrap(),
        "--rows",
        "2",
        "--cols",
        "2",
        "--q",
        "4",
    ]);
    assert!(!ok);
    assert!(stderr.contains("no-such-dir"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    // trace --out to an unwritable path (satellite: file args across the
    // CLI fail with a message, not a panic).
    let bad_trace = dir.join("no-such-dir").join("t.json");
    let (ok, _, stderr) = mmc(&[
        "trace",
        "--algo",
        "shared_opt",
        "--order",
        "8",
        "--out",
        bad_trace.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("error writing"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}
