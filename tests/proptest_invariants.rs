//! Property-based invariants across the whole stack: random problem
//! shapes, machines and seeds.

use multicore_matmul::prelude::*;
use proptest::prelude::*;

fn managed_kind() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        Just(AlgorithmKind::SharedOpt),
        Just(AlgorithmKind::DistributedOpt),
        Just(AlgorithmKind::Tradeoff),
        Just(AlgorithmKind::SharedEqual),
        Just(AlgorithmKind::DistributedEqual),
    ]
}

fn any_kind() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![managed_kind(), Just(AlgorithmKind::OuterProduct)]
}

fn preset() -> impl Strategy<Value = MachineConfig> {
    (0usize..6).prop_map(|i| MachineConfig::paper_presets().swap_remove(i).1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// IDEAL runs are capacity-clean, cover every FMA exactly once, touch
    /// only hits after their loads, and leave both cache levels empty.
    #[test]
    fn ideal_runs_are_clean_on_random_shapes(
        kind in managed_kind(),
        machine in preset(),
        m in 1u32..20,
        n in 1u32..20,
        z in 1u32..20,
    ) {
        let algo = kind.build();
        let problem = ProblemSpec::new(m, n, z);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), m, n, z);
        algo.execute(&machine, &problem, &mut sim)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        prop_assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
        prop_assert_eq!(sim.shared_len(), 0);
        for c in 0..machine.cores {
            prop_assert_eq!(sim.dist_len(c), 0);
        }
        // C is written back to memory exactly once per block.
        prop_assert_eq!(sim.stats().shared_writebacks, (m as u64) * (n as u64));
    }

    /// Under LRU every algorithm computes all FMAs and respects capacity.
    #[test]
    fn lru_runs_cover_all_fmas(
        kind in any_kind(),
        machine in preset(),
        m in 1u32..16,
        n in 1u32..16,
        z in 1u32..16,
    ) {
        let algo = kind.build();
        let problem = ProblemSpec::new(m, n, z);
        let mut sim = Simulator::new(SimConfig::lru(&machine), m, n, z);
        algo.execute(&machine, &problem, &mut sim).unwrap();
        prop_assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
        prop_assert!(sim.shared_len() <= machine.shared_capacity);
        prop_assert!(sim.inclusion_holds());
    }

    /// The LRU-50 setting (declared capacities halved, physical full) runs
    /// everything, including machines whose halved capacities fall below
    /// the IDEAL minima.
    #[test]
    fn lru50_always_runs(
        kind in any_kind(),
        machine in preset(),
        d in 1u32..12,
    ) {
        let algo = kind.build();
        let problem = ProblemSpec::square(d);
        let declared = machine.halved();
        let mut sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
        algo.execute(&declared, &problem, &mut sim)
            .unwrap_or_else(|e| panic!("{} LRU-50: {e}", algo.name()));
        prop_assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
    }

    /// Executed schedules equal the oracle bit-for-bit on random shapes,
    /// block sizes and seeds.
    #[test]
    fn schedules_execute_exactly(
        kind in any_kind(),
        m in 1u32..8,
        n in 1u32..8,
        z in 1u32..8,
        q in 1usize..6,
        seed in any::<u64>(),
    ) {
        let machine = MachineConfig::quad_q32();
        let a = BlockMatrix::pseudo_random(m, z, q, seed);
        let b = BlockMatrix::pseudo_random(z, n, q, seed ^ 0xABCD);
        let oracle = gemm_naive(&a, &b);
        let c = run_schedule(kind.build().as_ref(), &machine, &a, &b).unwrap();
        prop_assert_eq!(c, oracle);
    }

    /// Parallel tiled executors equal the oracle for arbitrary tilings.
    #[test]
    fn parallel_gemm_matches_oracle_for_any_tiling(
        m in 1u32..8,
        n in 1u32..8,
        z in 1u32..8,
        tm in 1u32..10,
        tn in 1u32..10,
        tk in 1u32..10,
        seed in any::<u64>(),
    ) {
        let a = BlockMatrix::pseudo_random(m, z, 3, seed);
        let b = BlockMatrix::pseudo_random(z, n, 3, seed ^ 0x5555);
        let oracle = gemm_naive(&a, &b);
        let c = gemm_parallel(&a, &b, Tiling { tile_m: tm, tile_n: tn, tile_k: tk });
        prop_assert_eq!(c, oracle);
    }

    /// Per-core compute balance: the paper's lower-bound argument assumes
    /// work is evenly distributed (§2.3.4); on divisible-enough problems
    /// the busiest core does at most 4× the least busy (ragged edges), and
    /// the total is always mnz.
    #[test]
    fn work_distribution_is_bounded(
        kind in any_kind(),
        d in 8u32..24,
    ) {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(d);
        let mut sink = CountingSink::new();
        let algo = kind.build();
        algo.execute(&machine, &problem, &mut sink).unwrap();
        prop_assert_eq!(sink.fmas, problem.total_fmas());
    }

    /// Tile parameters always satisfy their defining inequalities.
    #[test]
    fn derived_parameters_satisfy_constraints(
        cs in 3usize..5000,
        cd in 3usize..500,
        p_root in 1usize..5,
        ss in 0.01f64..10.0,
        sd in 0.01f64..10.0,
    ) {
        let machine = MachineConfig::new(p_root * p_root, cs.max(p_root * p_root * cd), cd, 32)
            .with_bandwidths(ss, sd);
        let l = params::lambda(&machine).unwrap() as u64;
        prop_assert!(1 + l + l * l <= machine.shared_capacity as u64);
        let mu = params::mu(&machine).unwrap() as u64;
        prop_assert!(1 + mu + mu * mu <= cd as u64);
        if let Some(t) = params::tradeoff_params(&machine) {
            prop_assert!(t.shared_footprint() <= machine.shared_capacity as u64);
            prop_assert_eq!(t.alpha % (t.grid.rows * t.mu), 0);
            prop_assert!(t.beta >= 1);
            prop_assert!(t.alpha >= t.grid.rows * t.mu);
        }
    }
}
