//! Structural validation of every managed schedule's IDEAL directive
//! stream: record the full trace, then check it against the hierarchy
//! rules with an independent validator (no simulator involved).

use multicore_matmul::prelude::*;
use multicore_matmul::sim::validate_ideal_trace;

#[test]
fn every_managed_schedule_emits_a_wellformed_ideal_trace() {
    for (label, machine) in MachineConfig::paper_presets() {
        for kind in AlgorithmKind::ALL {
            if kind == AlgorithmKind::OuterProduct {
                continue; // LRU-only: no directives to validate
            }
            for (m, n, z) in [(8u32, 8, 8), (7, 13, 5), (1, 1, 1)] {
                let algo = kind.build();
                let mut trace = TraceSink::with_residency();
                algo.execute(&machine, &ProblemSpec::new(m, n, z), &mut trace)
                    .unwrap_or_else(|e| panic!("{label}/{}: {e}", algo.name()));
                validate_ideal_trace(
                    &trace.events,
                    machine.cores,
                    machine.shared_capacity,
                    machine.dist_capacity,
                )
                .unwrap_or_else(|v| panic!("{label}/{} on {m}x{n}x{z}: {v}", algo.name()));
            }
        }
    }
}

#[test]
fn validator_catches_a_sabotaged_trace() {
    // Record a correct trace, drop one eviction, and the validator must
    // flag the residue.
    let machine = MachineConfig::quad_q32();
    let mut trace = TraceSink::with_residency();
    SharedOpt.execute(&machine, &ProblemSpec::square(4), &mut trace).unwrap();
    let last_evict = trace
        .events
        .iter()
        .rposition(|e| matches!(e, multicore_matmul::sim::TraceEvent::EvictShared(_)))
        .unwrap();
    trace.events.remove(last_evict);
    assert!(validate_ideal_trace(
        &trace.events,
        machine.cores,
        machine.shared_capacity,
        machine.dist_capacity
    )
    .is_err());
}
