//! Empirical LRU-competitiveness checks — the property Figs. 4–6 validate:
//! a classical LRU cache of twice the declared capacity stays within twice
//! the ideal-model miss count (Frigo et al., cited in §2.1/§4.2), and the
//! qualitative winner of each objective is the algorithm the paper says.

use multicore_matmul::prelude::*;

fn lru_stats(algo: &dyn Algorithm, machine: &MachineConfig, factor: usize, d: u32) -> SimStats {
    let mut sim = Simulator::new(SimConfig::lru_scaled(machine, factor), d, d, d);
    algo.execute(machine, &ProblemSpec::square(d), &mut sim).unwrap();
    sim.into_stats()
}

fn ideal_stats(algo: &dyn Algorithm, machine: &MachineConfig, d: u32) -> SimStats {
    let mut sim = Simulator::new(SimConfig::ideal(machine), d, d, d);
    algo.execute(machine, &ProblemSpec::square(d), &mut sim).unwrap();
    sim.into_stats()
}

#[test]
fn fig4_property_lru_2c_within_twice_formula_shared_opt() {
    let machine = MachineConfig::quad_q32();
    for d in [60u32, 120, 210] {
        let lru2 = lru_stats(&SharedOpt, &machine, 2, d);
        let ideal = ideal_stats(&SharedOpt, &machine, d);
        assert!(
            lru2.ms() <= 2 * ideal.ms(),
            "order {d}: LRU(2C_S) {} > 2×IDEAL {}",
            lru2.ms(),
            ideal.ms()
        );
        // And LRU at the declared capacity is worse than at double.
        let lru1 = lru_stats(&SharedOpt, &machine, 1, d);
        assert!(lru1.ms() >= lru2.ms());
    }
}

#[test]
fn fig5_property_lru_2c_within_twice_formula_distributed_opt() {
    let machine = MachineConfig::quad_q32();
    let algo = DistributedOpt::default();
    for d in [64u32, 128, 200] {
        let lru2 = lru_stats(&algo, &machine, 2, d);
        let ideal = ideal_stats(&algo, &machine, d);
        assert!(
            lru2.md() <= 2 * ideal.md(),
            "order {d}: LRU(2C_D) {} > 2×IDEAL {}",
            lru2.md(),
            ideal.md()
        );
    }
}

#[test]
fn fig6_property_lru_2c_within_twice_formula_tradeoff() {
    let machine = MachineConfig::quad_q32();
    let algo = Tradeoff::default();
    for d in [64u32, 128] {
        let lru2 = lru_stats(&algo, &machine, 2, d);
        let ideal = ideal_stats(&algo, &machine, d);
        let t_lru = lru2.t_data(1.0, 1.0);
        let t_ideal = ideal.t_data(1.0, 1.0);
        assert!(t_lru <= 2.0 * t_ideal, "order {d}: LRU(2C) T_data {t_lru} > 2×IDEAL {t_ideal}");
    }
}

#[test]
fn lru50_stays_within_twice_its_declared_formula() {
    // The LRU-50 setting *is* the Frigo configuration: physical capacity
    // 2× what the algorithm declares.
    let machine = MachineConfig::quad_q32();
    let halved = machine.halved();
    for d in [60u32, 120] {
        let problem = ProblemSpec::square(d);
        let mut sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
        SharedOpt.execute(&halved, &problem, &mut sim).unwrap();
        let formula = formulas::shared_opt(&problem, &halved).unwrap();
        assert!(
            (sim.stats().ms() as f64) <= 2.0 * formula.ms,
            "order {d}: LRU-50 M_S {} vs 2×formula(½C) {}",
            sim.stats().ms(),
            2.0 * formula.ms
        );
    }
}

#[test]
fn each_specialist_wins_its_own_objective_under_ideal() {
    let machine = MachineConfig::quad_q32();
    let d = 120u32;
    let so = ideal_stats(&SharedOpt, &machine, d);
    let dopt = ideal_stats(&DistributedOpt::default(), &machine, d);
    let tr = ideal_stats(&Tradeoff::default(), &machine, d);
    let se = ideal_stats(&SharedEqual, &machine, d);
    let de = ideal_stats(&DistributedEqual::default(), &machine, d);
    let mut op_sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
    OuterProduct::default().execute(&machine, &ProblemSpec::square(d), &mut op_sim).unwrap();
    let op = op_sim.into_stats();

    // Shared Opt minimizes M_S across the board.
    for (name, other) in [("dist", &dopt), ("tr", &tr), ("se", &se), ("de", &de), ("op", &op)] {
        assert!(so.ms() <= other.ms(), "Shared Opt M_S {} vs {name} {}", so.ms(), other.ms());
    }
    // Distributed Opt minimizes M_D.
    for (name, other) in [("so", &so), ("tr", &tr), ("se", &se), ("de", &de), ("op", &op)] {
        assert!(
            dopt.md() <= other.md(),
            "Distributed Opt M_D {} vs {name} {}",
            dopt.md(),
            other.md()
        );
    }
    // Tradeoff minimizes T_data at unit bandwidths.
    let t = |s: &SimStats| s.t_data(1.0, 1.0);
    for (name, other) in [("so", &so), ("do", &dopt), ("se", &se), ("de", &de), ("op", &op)] {
        assert!(t(&tr) <= t(other), "Tradeoff T_data {} vs {name} {}", t(&tr), t(other));
    }
    // And everything respects the lower bounds.
    let problem = ProblemSpec::square(d);
    assert!(so.ms() as f64 >= bounds::ms_lower_bound(&problem, &machine).floor());
    assert!(dopt.md() as f64 >= bounds::md_lower_bound(&problem, &machine).floor());
    assert!(t(&tr) >= bounds::tdata_lower_bound(&problem, &machine).floor());
}

#[test]
fn tradeoff_follows_the_bandwidth_ratio() {
    // As r = σ_S/(σ_S+σ_D) goes 0 → 1, Tradeoff morphs from the
    // shared-optimized tiling to the distributed-optimized one (§3.3 and
    // Fig. 12): compare against both specialists at the extremes.
    let base = MachineConfig::quad_q32();
    let d = 96u32;
    let so = ideal_stats(&SharedOpt, &base, d);
    let dopt = ideal_stats(&DistributedOpt::default(), &base, d);
    // r → 0: distributed caches are fast, shared misses dominate.
    let m = base.clone().with_bandwidth_ratio(0.02);
    let tr = ideal_stats(&Tradeoff::default(), &m, d);
    let (t_tr, t_so) = (tr.t_data(m.sigma_s, m.sigma_d), so.t_data(m.sigma_s, m.sigma_d));
    assert!(t_tr <= 1.05 * t_so, "r≈0: Tradeoff {t_tr} should match Shared Opt {t_so}");
    // r → 1: shared cache is fast, distributed misses dominate.
    let m = base.clone().with_bandwidth_ratio(0.98);
    let tr = ideal_stats(&Tradeoff::default(), &m, d);
    let (t_tr, t_do) = (tr.t_data(m.sigma_s, m.sigma_d), dopt.t_data(m.sigma_s, m.sigma_d));
    assert!(t_tr <= 1.05 * t_do, "r≈1: Tradeoff {t_tr} should match Distributed Opt {t_do}");
}

#[test]
fn distributed_opt_loses_its_edge_when_mu_is_one() {
    // Fig. 8(c): with q = 64 the distributed cache fits only µ = 1, and
    // Distributed Opt no longer separates from Distributed Equal.
    let machine = MachineConfig::quad_q64();
    let d = 64u32;
    let dopt = ideal_stats(&DistributedOpt::default(), &machine, d);
    let de = ideal_stats(&DistributedEqual::default(), &machine, d);
    // t_D = √(6/3) = 1 as well: both degenerate to element streaming.
    let ratio = dopt.md() as f64 / de.md() as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "µ=1 regime: Distributed Opt {} vs Equal {} (ratio {ratio})",
        dopt.md(),
        de.md()
    );
}
