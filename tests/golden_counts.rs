//! Golden regression table: exact miss counts of representative runs.
//!
//! The simulator is deterministic, so these values are stable across
//! refactors by construction; any change to a number here means the
//! semantics of a schedule or of the cache model changed and must be
//! justified against the paper's formulas.

use multicore_matmul::prelude::*;

struct Golden {
    algo: AlgorithmKind,
    setting: &'static str, // "ideal" | "lru" | "lru2" | "lru50"
    order: u32,
    ms: u64,
    md: u64,
}

const GOLDEN_Q32: &[Golden] = &[
    // IDEAL counts are the paper's formulas at order 120 (divisible by
    // λ = 30 and by the √p·µ = 8 tile).
    Golden {
        algo: AlgorithmKind::SharedOpt,
        setting: "ideal",
        order: 120,
        ms: 129_600,
        md: 979_200,
    },
    Golden {
        algo: AlgorithmKind::DistributedOpt,
        setting: "ideal",
        order: 120,
        ms: 446_400,
        md: 219_600,
    },
    Golden {
        algo: AlgorithmKind::Tradeoff,
        setting: "ideal",
        order: 120,
        ms: 244_800,
        md: 237_600,
    },
    Golden {
        algo: AlgorithmKind::SharedEqual,
        setting: "ideal",
        order: 120,
        ms: 216_000,
        md: 978_120,
    },
    Golden {
        algo: AlgorithmKind::DistributedEqual,
        setting: "ideal",
        order: 120,
        ms: 1_742_400,
        md: 435_600,
    },
    // LRU behaviours (the Figs. 4–6 regimes). Note the LRU private cache
    // (21 blocks instead of the managed 3) *reduces* Shared Opt's M_D by
    // keeping recent B/C elements around, and cooperative shared-cache
    // reuse gives Distributed Equal a lower M_S than its eagerly-evicting
    // IDEAL schedule.
    Golden { algo: AlgorithmKind::SharedOpt, setting: "lru", order: 120, ms: 129_600, md: 533_760 },
    Golden {
        algo: AlgorithmKind::SharedOpt,
        setting: "lru50",
        order: 120,
        ms: 187_200,
        md: 600_480,
    },
    Golden {
        algo: AlgorithmKind::DistributedOpt,
        setting: "lru",
        order: 120,
        ms: 446_400,
        md: 648_000,
    },
    Golden {
        algo: AlgorithmKind::DistributedOpt,
        setting: "lru2",
        order: 120,
        ms: 460_800,
        md: 223_200,
    },
    Golden { algo: AlgorithmKind::Tradeoff, setting: "lru", order: 120, ms: 296_544, md: 648_000 },
    Golden {
        algo: AlgorithmKind::SharedEqual,
        setting: "lru",
        order: 120,
        ms: 283_608,
        md: 978_120,
    },
    Golden {
        algo: AlgorithmKind::DistributedEqual,
        setting: "lru",
        order: 120,
        ms: 907_200,
        md: 435_600,
    },
    Golden {
        algo: AlgorithmKind::OuterProduct,
        setting: "lru",
        order: 120,
        ms: 1_771_200,
        md: 871_200,
    },
];

#[test]
fn golden_counts_q32() {
    let machine = MachineConfig::quad_q32();
    for g in GOLDEN_Q32 {
        let algo = g.algo.build();
        let problem = ProblemSpec::square(g.order);
        let (declared, cfg) = match g.setting {
            "ideal" => (machine.clone(), SimConfig::ideal(&machine)),
            "lru" => (machine.clone(), SimConfig::lru(&machine)),
            "lru2" => (machine.clone(), SimConfig::lru_scaled(&machine, 2)),
            "lru50" => (machine.halved(), SimConfig::lru(&machine)),
            other => unreachable!("{other}"),
        };
        let cfg = if g.algo == AlgorithmKind::OuterProduct && g.setting == "ideal" {
            SimConfig::lru(&machine)
        } else {
            cfg
        };
        let mut sim = Simulator::new(cfg, g.order, g.order, g.order);
        algo.execute(&declared, &problem, &mut sim)
            .unwrap_or_else(|e| panic!("{:?}/{}: {e}", g.algo, g.setting));
        assert_eq!(
            (sim.stats().ms(), sim.stats().md()),
            (g.ms, g.md),
            "{:?} under {} at order {}",
            g.algo,
            g.setting,
            g.order
        );
    }
}

#[test]
fn outer_product_is_insensitive_to_cache_policies() {
    // The paper states it outright ("Outer Product is insensitive to
    // cache policies, since it is not focusing on cache usage"); here it
    // is machine-checked: identical counts under every setting, once the
    // matrices are large enough that its streaming working set exceeds
    // every cache variant (at tiny orders even Outer Product fits and the
    // claim does not apply).
    let machine = MachineConfig::quad_q32();
    let problem = ProblemSpec::square(120);
    let run = |declared: &MachineConfig, cfg: SimConfig| -> (u64, u64) {
        let mut sim = Simulator::new(cfg, 120, 120, 120);
        OuterProduct::default().execute(declared, &problem, &mut sim).unwrap();
        (sim.stats().ms(), sim.stats().md())
    };
    let base = run(&machine, SimConfig::lru(&machine));
    assert_eq!(run(&machine, SimConfig::lru_scaled(&machine, 2)), base);
    assert_eq!(run(&machine.halved(), SimConfig::lru(&machine)), base);
}

#[test]
fn golden_counts_are_self_consistent() {
    // The table itself satisfies the invariants the docs promise:
    // Shared Opt has the lowest M_S of the IDEAL rows, Distributed Opt
    // the lowest M_D.
    let ideal: Vec<&Golden> = GOLDEN_Q32.iter().filter(|g| g.setting == "ideal").collect();
    let min_ms = ideal.iter().map(|g| g.ms).min().unwrap();
    let min_md = ideal.iter().map(|g| g.md).min().unwrap();
    assert_eq!(ideal.iter().find(|g| g.ms == min_ms).unwrap().algo, AlgorithmKind::SharedOpt);
    assert_eq!(ideal.iter().find(|g| g.md == min_md).unwrap().algo, AlgorithmKind::DistributedOpt);
}
