//! End-to-end executor tests: every schedule, replayed on real data,
//! produces the exact (bit-identical) matrix product, across machines,
//! shapes and block sizes; the rayon-parallel tiled executors agree too.

use multicore_matmul::prelude::*;

fn operands(m: u32, n: u32, z: u32, q: usize, seed: u64) -> (BlockMatrix, BlockMatrix) {
    (BlockMatrix::pseudo_random(m, z, q, seed), BlockMatrix::pseudo_random(z, n, q, seed + 1))
}

#[test]
fn all_schedules_match_oracle_across_machines_and_shapes() {
    let machines = [
        MachineConfig::quad_q32(),
        MachineConfig::quad_q64_pessimistic(),
        MachineConfig::quad_q80_pessimistic(),
        MachineConfig::new(1, 43, 3, 16),
        MachineConfig::new(9, 977, 21, 16),
    ];
    let shapes = [(1u32, 1u32, 1u32), (5, 3, 7), (12, 12, 12), (31, 2, 17)];
    for machine in &machines {
        for &(m, n, z) in &shapes {
            let (a, b) = operands(m, n, z, 3, 99);
            let oracle = gemm_naive(&a, &b);
            for algo in all_algorithms() {
                let c = run_schedule(algo.as_ref(), machine, &a, &b).unwrap_or_else(|e| {
                    panic!("{} on p={} {m}x{n}x{z}: {e}", algo.name(), machine.cores)
                });
                assert_eq!(c, oracle, "{} differs on p={} {m}x{n}x{z}", algo.name(), machine.cores);
            }
        }
    }
}

#[test]
fn parallel_tilings_match_oracle_on_larger_problem() {
    let machine = MachineConfig::quad_q32();
    let (a, b) = operands(20, 24, 16, 8, 5);
    let oracle = gemm_naive(&a, &b);
    let tilings = [
        Tiling::shared_opt(&machine).unwrap(),
        Tiling::distributed_opt(&machine).unwrap(),
        Tiling::tradeoff(&machine).unwrap(),
        Tiling::equal(machine.shared_capacity).unwrap(),
        Tiling::equal(machine.dist_capacity).unwrap(),
    ];
    for t in tilings {
        assert_eq!(gemm_parallel(&a, &b, t), oracle, "{t:?}");
    }
}

#[test]
fn schedule_replay_counts_exactly_mnz_kernel_calls() {
    let machine = MachineConfig::quad_q32();
    let (m, n, z, q) = (7u32, 9u32, 5u32, 2usize);
    let (a, b) = operands(m, n, z, q, 1);
    for algo in all_algorithms() {
        let mut c = BlockMatrix::zeros(m, n, q);
        let mut sink = ExecSink::new(&a, &b, &mut c);
        algo.execute(&machine, &ProblemSpec::new(m, n, z), &mut sink).unwrap();
        assert_eq!(
            sink.fmas(),
            (m * n * z) as u64,
            "{} must call the kernel exactly mnz times",
            algo.name()
        );
    }
}

#[test]
fn rectangular_grid_schedules_execute_correctly() {
    // Extension paths: non-square core counts.
    let machine = MachineConfig::new(6, 977, 21, 8);
    let (a, b) = operands(11, 7, 9, 4, 77);
    let oracle = gemm_naive(&a, &b);
    let grid = CoreGrid::balanced(6);
    for algo in [
        Box::new(DistributedOpt::with_grid(grid)) as Box<dyn Algorithm>,
        Box::new(OuterProduct::with_grid(grid)),
        Box::new(DistributedEqual::with_grid(grid)),
    ] {
        let c = run_schedule(algo.as_ref(), &machine, &a, &b).unwrap();
        assert_eq!(c, oracle, "{}", algo.name());
    }
}

#[test]
fn identity_and_zero_products() {
    let machine = MachineConfig::quad_q32();
    let q = 4;
    let id = BlockMatrix::from_fn(6, 6, q, |i, j| if i == j { 1.0 } else { 0.0 });
    let b = BlockMatrix::pseudo_random(6, 6, q, 3);
    let zero = BlockMatrix::zeros(6, 6, q);
    for algo in all_algorithms() {
        let c = run_schedule(algo.as_ref(), &machine, &id, &b).unwrap();
        assert_eq!(c, b, "{}: I×B must equal B", algo.name());
        let c = run_schedule(algo.as_ref(), &machine, &zero, &b).unwrap();
        assert_eq!(c, zero, "{}: 0×B must equal 0", algo.name());
    }
}
