//! Integration tests for the cluster (tree-hierarchy) extension.

use multicore_matmul::prelude::*;
use multicore_matmul::sim::{TreeSimulator, TreeTopology};

fn cluster_topo() -> TreeTopology {
    TreeTopology::cluster(4, 16384, 4, 977, 21)
}

#[test]
fn hierarchical_schedule_executes_the_exact_product() {
    // The schedule streams ordinary events, so ExecSink runs it on real
    // data; ascending-k accumulation keeps it bit-identical to the oracle.
    let topo = cluster_topo();
    let h = HierarchicalMaxReuse::new(topo);
    let (m, n, z, q) = (9u32, 17u32, 5u32, 4usize);
    let a = BlockMatrix::pseudo_random(m, z, q, 1);
    let b = BlockMatrix::pseudo_random(z, n, q, 2);
    let oracle = gemm_naive(&a, &b);
    let mut c = BlockMatrix::zeros(m, n, q);
    let mut sink = ExecSink::new(&a, &b, &mut c);
    h.run(&ProblemSpec::new(m, n, z), &mut sink).unwrap();
    assert_eq!(c, oracle);
}

#[test]
fn hierarchy_aware_tiling_beats_flat_distributed_opt_at_the_node_level() {
    let topo = cluster_topo();
    let d = 128u32;
    let problem = ProblemSpec::square(d);
    let run_tree = |f: &dyn Fn(&mut TreeSimulator)| -> multicore_matmul::sim::TreeStats {
        let mut sim = TreeSimulator::new(topo.clone(), d, d, d);
        f(&mut sim);
        sim.into_stats()
    };
    let h = HierarchicalMaxReuse::new(topo.clone());
    let hier = run_tree(&|sim| h.run(&problem, sim).unwrap());
    let flat_machine = MachineConfig::new(topo.cores(), 977 * 4, 21, 32);
    let flat =
        run_tree(&|sim| DistributedOpt::default().execute(&flat_machine, &problem, sim).unwrap());
    assert_eq!(hier.total_fmas(), problem.total_fmas());
    assert_eq!(flat.total_fmas(), problem.total_fmas());
    // The point of the extra tiling level: fewer misses out of the
    // node-level cache (the level the flat algorithm cannot see). This
    // holds while the hierarchical panels fit the node cache (orders
    // <= 128 on this topology); at larger orders the per-k streaming
    // dominates and the recursion (cache-oblivious) takes over — see
    // EXPERIMENTS.md, `cluster`.
    assert!(
        hier.level_misses(0) < flat.level_misses(0),
        "hierarchical {} vs flat {} node-level misses",
        hier.level_misses(0),
        flat.level_misses(0)
    );
    // And no worse at the inner levels.
    assert!(hier.level_misses(2) <= flat.level_misses(2));
}

#[test]
fn all_flat_schedules_run_unchanged_on_the_tree() {
    // The tree simulator is just another SimSink: every paper algorithm
    // (LRU-driven) runs on it without modification.
    let topo = TreeTopology::cluster(2, 8192, 2, 977, 21);
    let flat_machine = MachineConfig::new(topo.cores(), 977, 21, 32);
    let problem = ProblemSpec::square(24);
    for algo in all_algorithms() {
        let mut sim = TreeSimulator::new(topo.clone(), 24, 24, 24);
        algo.execute(&flat_machine, &problem, &mut sim)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        assert_eq!(sim.stats().total_fmas(), problem.total_fmas(), "{}", algo.name());
        assert!(sim.inclusion_holds(), "{}", algo.name());
    }
}

#[test]
fn deeper_hierarchies_compose() {
    // Four levels: 2 racks × 2 nodes × 1 shared × 4 cores.
    let topo = TreeTopology::new(vec![
        multicore_matmul::sim::TreeLevel { arity: 2, capacity: 65536, bandwidth: 0.25 },
        multicore_matmul::sim::TreeLevel { arity: 2, capacity: 16384, bandwidth: 0.5 },
        multicore_matmul::sim::TreeLevel { arity: 1, capacity: 977, bandwidth: 1.0 },
        multicore_matmul::sim::TreeLevel { arity: 4, capacity: 21, bandwidth: 2.0 },
    ]);
    assert_eq!(topo.cores(), 16);
    let h = HierarchicalMaxReuse::new(topo.clone());
    let tiling = h.tiling().unwrap();
    assert_eq!(tiling.sides.len(), 4);
    let problem = ProblemSpec::square(64);
    let mut sim = TreeSimulator::new(topo.clone(), 64, 64, 64);
    h.run(&problem, &mut sim).unwrap();
    assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
    // Outer levels see (weakly) less traffic than inner ones.
    assert!(sim.stats().level_total(0) <= sim.stats().level_total(1));
    assert!(sim.stats().level_total(1) <= sim.stats().level_total(3));
    assert!(sim.stats().t_data(&topo) > 0.0);
}

#[test]
fn per_core_work_is_balanced_on_divisible_orders() {
    let topo = cluster_topo();
    let h = HierarchicalMaxReuse::new(topo.clone());
    let tiling = h.tiling().unwrap();
    // An order that is a multiple of the super-tile in both dimensions.
    let d = tiling.super_tile.0.max(tiling.super_tile.1) * 3;
    let problem = ProblemSpec::square(d);
    let mut sim = TreeSimulator::new(topo, d, d, d);
    h.run(&problem, &mut sim).unwrap();
    let fmas = &sim.stats().fmas;
    assert!(
        fmas.iter().all(|&f| f == fmas[0]),
        "every core does identical work on divisible orders: {fmas:?}"
    );
}
