//! Golden reconciliation: the mmc-obs registry's counters must agree
//! exactly with the simulator's and the prefetch pipeline's own
//! bookkeeping for the same run — the observability layer may not
//! drift from the sources of truth it mirrors.
//!
//! The registry is process-global, so every test takes before/after
//! snapshots and asserts on deltas, serialized under one mutex so
//! concurrent tests cannot interleave their contributions.

use multicore_matmul::obs;
use multicore_matmul::ooc::{ooc_multiply, write_pseudo_random, OocOpts};
use multicore_matmul::prelude::*;
use std::sync::Mutex;

/// Serializes registry-delta tests: global counter deltas are only
/// attributable when one measured region runs at a time.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn counter_delta(before: &RegistrySnapshot, after: &RegistrySnapshot, name: &str) -> u64 {
    after.counter(name).unwrap_or(0).saturating_sub(before.counter(name).unwrap_or(0))
}

/// The executor's FLOP counter must equal both the closed-form count
/// (2·m·n·z·q³ for block GEMM) and the simulator's FMA count for the
/// same problem scaled by the per-block cost 2q³ — model and machine
/// agree on the work done, exactly.
#[test]
fn exec_flop_counter_matches_simulator_fma_count() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let machine = MachineConfig::quad_q32();
    let (order, q) = (6u32, 8usize);
    let a = BlockMatrix::pseudo_random(order, order, q, 11);
    let b = BlockMatrix::pseudo_random(order, order, q, 12);
    let tiling = Tiling::tradeoff(&machine).expect("tradeoff feasible on q32");

    let before = obs::global().snapshot();
    let c = gemm_parallel_with_kernel(&a, &b, tiling, KernelVariant::Scalar);
    let after = obs::global().snapshot();
    std::hint::black_box(&c);

    let flops = counter_delta(&before, &after, "exec.flops.scalar");
    let closed_form = 2 * (order as u64 * q as u64).pow(3);
    assert_eq!(flops, closed_form, "registry FLOPs must match 2(nq)^3");

    // The simulator executing the same schedule family counts order^3
    // block FMAs; each block FMA is 2q^3 scalar FLOPs.
    let problem = ProblemSpec::square(order);
    let mut sim = Simulator::new(SimConfig::lru(&machine), order, order, order);
    Tradeoff::default().execute(&machine, &problem, &mut sim).unwrap();
    let sim_flops = sim.stats().total_fmas() * 2 * (q as u64).pow(3);
    assert_eq!(flops, sim_flops, "registry FLOPs must match simulator FMAs x 2q^3");

    // At least one tile task ran and was counted.
    assert!(counter_delta(&before, &after, "exec.tiles.scalar") >= 1);
}

/// The schedule-level FLOP counter (fed by `ExecSink::fma`) reconciles
/// with the simulator the same way: one counted block FMA per simulated
/// block FMA.
#[test]
fn schedule_flop_counter_matches_sink_fmas() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let machine = MachineConfig::quad_q32();
    let order = 4u32;
    let q = machine.block_size;
    let problem = ProblemSpec::square(order);

    let ma = BlockMatrix::pseudo_random(order, order, q, 21);
    let mb = BlockMatrix::pseudo_random(order, order, q, 22);
    let before = obs::global().snapshot();
    let c = run_schedule(&SharedOpt, &machine, &ma, &mb).expect("schedule runs");
    let after = obs::global().snapshot();
    std::hint::black_box(&c);

    let mut sim = Simulator::new(SimConfig::lru(&machine), order, order, order);
    SharedOpt.execute(&machine, &problem, &mut sim).unwrap();
    let expected = sim.stats().total_fmas() * 2 * (q as u64).pow(3);
    assert_eq!(
        counter_delta(&before, &after, "exec.flops.schedule"),
        expected,
        "schedule FLOP counter must equal simulated FMAs x 2q^3"
    );
}

/// The ooc registry counters must equal the prefetch pipeline's own
/// `PrefetchStats` for the same multiply: same bytes read, same panels
/// staged.
#[test]
fn ooc_registry_deltas_match_prefetch_stats() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("mmc-obs-recon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (pa, pb, pc) = (dir.join("a.tiled"), dir.join("b.tiled"), dir.join("c.tiled"));
    write_pseudo_random(&pa, 4, 3, 5, 31).unwrap();
    write_pseudo_random(&pb, 3, 4, 5, 32).unwrap();

    let before = obs::global().snapshot();
    let opts = OocOpts::new(64 * 1024);
    let report = ooc_multiply(&pa, &pb, &pc, &opts).expect("ooc multiply succeeds");
    let after = obs::global().snapshot();

    assert_eq!(
        counter_delta(&before, &after, "ooc.bytes_read"),
        report.prefetch.bytes_read,
        "registry bytes_read must equal PrefetchStats.bytes_read"
    );
    assert_eq!(
        counter_delta(&before, &after, "ooc.panels_staged"),
        report.prefetch.panels_staged,
        "registry panels_staged must equal PrefetchStats.panels_staged"
    );
    // The read-latency histogram saw exactly one observation per panel.
    let reads_before = before.histogram("ooc.read_us").map_or(0, |h| h.count);
    let reads_after = after.histogram("ooc.read_us").map_or(0, |h| h.count);
    assert_eq!(reads_after - reads_before, report.prefetch.panels_staged);

    for p in [&pa, &pb, &pc] {
        let _ = std::fs::remove_file(p);
    }
}
