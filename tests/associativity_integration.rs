//! Integration tests of set-associative simulation through full schedules.

use multicore_matmul::prelude::*;

fn run_assoc(
    algo: &dyn Algorithm,
    machine: &MachineConfig,
    d: u32,
    ways: Option<usize>,
) -> SimStats {
    let cfg = SimConfig { associativity: ways, ..SimConfig::lru(machine) };
    let mut sim = Simulator::new(cfg, d, d, d);
    algo.execute(machine, &ProblemSpec::square(d), &mut sim).unwrap();
    sim.into_stats()
}

#[test]
fn ways_equal_capacity_reproduces_fully_associative_counts() {
    // A set-associative cache with a single set IS the LRU cache; the
    // whole pipeline must agree, not just the cache unit tests. Use a
    // machine whose capacities keep one set per cache.
    let machine = MachineConfig::new(4, 64, 8, 32);
    for kind in [AlgorithmKind::SharedOpt, AlgorithmKind::OuterProduct, AlgorithmKind::SharedEqual]
    {
        let algo = kind.build();
        let full = run_assoc(algo.as_ref(), &machine, 24, None);
        // ways == capacity → sets = 1 at both levels (64-way shared,
        // 8-way distributed caps to each capacity via min()).
        let single_set = run_assoc(algo.as_ref(), &machine, 24, Some(64));
        assert_eq!(full.ms(), single_set.ms(), "{}", algo.name());
        assert_eq!(full.dist_misses, single_set.dist_misses, "{}", algo.name());
    }
}

#[test]
fn associativity_never_beats_unlimited_capacity_baseline() {
    // Sanity bound: any configuration's misses are at least the cold
    // misses and at most the total accesses.
    let machine = MachineConfig::new(4, 1024, 16, 32);
    let d = 40u32;
    let problem = ProblemSpec::square(d);
    let cold = problem.total_blocks();
    for ways in [Some(1), Some(2), Some(8), None] {
        let stats = run_assoc(&SharedOpt, &machine, d, ways);
        assert!(stats.ms() >= cold, "{ways:?}");
        let accesses = stats.shared_hits + stats.shared_misses;
        assert!(stats.ms() <= accesses, "{ways:?}");
        assert_eq!(stats.total_fmas(), problem.total_fmas());
    }
}

#[test]
fn restricted_associativity_costs_conflict_misses_on_tiled_schedules() {
    // Tiled kernels are the canonical conflict-miss victims: on the
    // paper's machine a direct-mapped index multiplies Shared Opt's
    // shared misses several-fold over the fully-associative model the
    // paper assumes. (Deterministic counts; a change here means the
    // indexing semantics changed.)
    let d = 60u32;
    let prime = MachineConfig::quad_q32(); // C_S = 977
    let full = run_assoc(&SharedOpt, &prime, d, None).ms();
    let direct = run_assoc(&SharedOpt, &prime, d, Some(1)).ms();
    assert_eq!(full, 18_000, "fully associative equals the formula");
    assert!(direct > 3 * full, "direct-mapped {direct} should conflict heavily vs full {full}");
    // More ways at the same capacity never increase misses *of the C tile
    // working set* enough to beat the ideal model: full-assoc is minimal
    // here (the schedule fits its declared capacity exactly).
    for ways in [2usize, 8, 16] {
        let w = run_assoc(&SharedOpt, &prime, d, Some(ways)).ms();
        assert!(w >= full, "{ways}-way {w} vs full {full}");
    }
}
