// Index-based loops below mirror the mathematical substitution formulas;
// iterator forms would obscure them.
#![allow(clippy::needless_range_loop)]

//! Cross-crate integration tests for the LU extension: factorization
//! correctness at scale, schedule/simulation consistency, and the
//! cache-behaviour claims (tiled updates beat naive streaming once the
//! panels outgrow the shared cache).

use multicore_matmul::lu::{
    bounds as lu_bounds, exec, schedule::expected_counts, BlockedLu, CountingLuHooks, SimLuHooks,
    UpdateTiling,
};
use multicore_matmul::prelude::*;

#[test]
fn lu_factors_correctly_across_machines() {
    let a = exec::diagonally_dominant(9, 6, 17);
    for machine in [
        MachineConfig::quad_q32(),
        MachineConfig::quad_q80_pessimistic(),
        MachineConfig::new(1, 43, 3, 8),
        MachineConfig::new(9, 977, 21, 8),
    ] {
        for tiling in [UpdateTiling::RowStripes, UpdateTiling::SharedOpt, UpdateTiling::Tradeoff] {
            let mut m = a.clone();
            exec::lu_factor(&mut m, &machine, &BlockedLu::new(3, tiling))
                .unwrap_or_else(|e| panic!("p={} {tiling:?}: {e}", machine.cores));
            let r = exec::residual(&m, &a);
            assert!(r < 1e-10, "p={} {tiling:?}: residual {r}", machine.cores);
        }
    }
}

#[test]
fn lu_solves_a_linear_system_end_to_end() {
    // Factor A, then solve A x = b by block forward/back substitution
    // using the unpacked factors and the naive product as the checker.
    let machine = MachineConfig::quad_q32();
    let (n, q) = (6u32, 4usize);
    let a = exec::diagonally_dominant(n, q, 3);
    let mut m = a.clone();
    exec::lu_factor(&mut m, &machine, &BlockedLu::new(2, UpdateTiling::SharedOpt)).unwrap();
    let (l, u) = exec::unpack(&m);
    // x: dense "vector" as an n×1 block column.
    let x_true = BlockMatrix::pseudo_random(n, 1, q, 9);
    let b = gemm_naive(&a, &x_true);
    // Forward: L y = b.
    let dim = n as usize * q;
    let mut y = vec![0.0; dim];
    for i in 0..dim {
        let mut acc = b.get(i, 0);
        for k in 0..i {
            acc -= l.get(i, k) * y[k];
        }
        y[i] = acc; // unit diagonal
    }
    // Back: U x = y.
    let mut x = vec![0.0; dim];
    for i in (0..dim).rev() {
        let mut acc = y[i];
        for k in i + 1..dim {
            acc -= u.get(i, k) * x[k];
        }
        x[i] = acc / u.get(i, i);
    }
    for i in 0..dim {
        assert!(
            (x[i] - x_true.get(i, 0)).abs() < 1e-8,
            "x[{i}] = {} vs {}",
            x[i],
            x_true.get(i, 0)
        );
    }
}

#[test]
fn simulated_fma_stream_matches_operation_counts() {
    let machine = MachineConfig::quad_q32();
    let n = 20u32;
    let (_, trsm, updates) = expected_counts(n as u64);
    for w in [1u32, 4, 7] {
        let mut sim = Simulator::new(SimConfig::lru(&machine), n, n, 1);
        let mut hooks = SimLuHooks::new(&mut sim);
        BlockedLu::new(w, UpdateTiling::Tradeoff).run(&machine, n, &mut hooks).unwrap();
        assert_eq!(sim.stats().total_fmas(), updates, "w={w}");
        // Reads: 3 per update, 2 per trsm (diag + target, both sides),
        // 1 per getrf.
        let expected_reads = 3 * updates + 2 * 2 * trsm + n as u64;
        let total_reads: u64 =
            sim.stats().dist_hits.iter().sum::<u64>() + sim.stats().dist_misses.iter().sum::<u64>();
        // Reads + writes both pass through the distributed caches; writes:
        // 1 per update, per trsm, per getrf.
        let expected_writes = updates + 2 * trsm + n as u64;
        assert_eq!(total_reads, expected_reads + expected_writes, "w={w}");
    }
}

#[test]
fn tiled_updates_beat_row_stripes_once_panels_outgrow_the_shared_cache() {
    // At order 160 with w = 8, the row-stripe U panel (8 × ~150 blocks)
    // exceeds C_S = 977 for the early (widest) trailing updates... and the
    // per-core C stripes thrash the distributed caches at any size. The
    // cache-aware tilings must win on M_D, and the Shared-Opt tiling on
    // CCR_D by a wide margin.
    let machine = MachineConfig::quad_q32();
    let n = 160u32;
    let run = |lu: BlockedLu| -> SimStats {
        let mut sim = Simulator::new(SimConfig::lru(&machine), n, n, 1);
        let mut hooks = SimLuHooks::new(&mut sim);
        lu.run(&machine, n, &mut hooks).unwrap();
        sim.into_stats()
    };
    let stripes = run(BlockedLu::new(8, UpdateTiling::RowStripes));
    let shared = run(BlockedLu::new(8, UpdateTiling::SharedOpt));
    let tradeoff = run(BlockedLu::new(8, UpdateTiling::Tradeoff));
    assert!(
        shared.md() < stripes.md(),
        "Shared-Opt tiles M_D {} vs row stripes {}",
        shared.md(),
        stripes.md()
    );
    assert!(
        tradeoff.md() < stripes.md(),
        "Tradeoff tiles M_D {} vs row stripes {}",
        tradeoff.md(),
        stripes.md()
    );
    // Every schedule respects the update-stream lower bounds.
    let ms_lb = lu_bounds::ms_lower_bound(n as u64, &machine);
    let md_lb = lu_bounds::md_lower_bound(n as u64, &machine);
    for s in [&stripes, &shared, &tradeoff] {
        assert!(s.ms() as f64 >= ms_lb.floor());
        assert!(s.md() as f64 >= md_lb.floor());
    }
}

#[test]
fn wider_panels_amortize_misses() {
    let machine = MachineConfig::quad_q32();
    let n = 96u32;
    let run = |w: u32| -> u64 {
        let mut sim = Simulator::new(SimConfig::lru(&machine), n, n, 1);
        let mut hooks = SimLuHooks::new(&mut sim);
        BlockedLu::new(w, UpdateTiling::Tradeoff).run(&machine, n, &mut hooks).unwrap();
        sim.stats().ms()
    };
    let w1 = run(1);
    let w8 = run(8);
    assert!(w8 < w1, "w=8 misses {w8} must be below w=1 misses {w1}");
}

#[test]
fn counting_hooks_are_core_independent() {
    // Operation volume must not depend on the core count.
    let n = 15u32;
    let mut single = CountingLuHooks::default();
    BlockedLu::new(4, UpdateTiling::RowStripes)
        .run(&MachineConfig::new(1, 977, 21, 32), n, &mut single)
        .unwrap();
    let mut quad = CountingLuHooks::default();
    BlockedLu::new(4, UpdateTiling::RowStripes)
        .run(&MachineConfig::quad_q32(), n, &mut quad)
        .unwrap();
    assert_eq!(single.updates, quad.updates);
    assert_eq!(single.trsm_cols, quad.trsm_cols);
    assert_eq!(single.trsm_rows, quad.trsm_rows);
}
