//! Property tests for the micro-kernel subsystem: every dispatchable
//! variant agrees with the plain reference kernel on random blocks, and
//! the executor paths (naive oracle, schedule replayer, parallel packed
//! path) stay *bit-identical* to each other under the dispatched kernel.

use multicore_matmul::exec::kernel::{self, block_fma_reference, block_fma_with};
use multicore_matmul::prelude::*;
use proptest::prelude::*;

/// Block sides exercising every kernel regime: sub-vector (1, 3),
/// partial register tiles (5, 7, 31), exact tiles (8, 16, 32) and the
/// benchmark size (64).
fn block_side() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(3),
        Just(5),
        Just(7),
        Just(8),
        Just(16),
        Just(31),
        Just(32),
        Just(64),
    ]
}

/// Variant-vs-reference tolerance: SIMD variants fuse the multiply-add
/// while the reference rounds twice per step, so allow one ulp-ish slack
/// per accumulation step.
fn tol(q: usize) -> f64 {
    1e-13 * q as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every variant this host can dispatch matches the reference kernel
    /// on random operands, including accumulation into a non-zero C.
    #[test]
    fn all_variants_match_reference(q in block_side(), seed in any::<u64>()) {
        let a = BlockMatrix::pseudo_random(1, 1, q, seed);
        let b = BlockMatrix::pseudo_random(1, 1, q, seed ^ 0xA5A5_A5A5);
        let c0 = BlockMatrix::pseudo_random(1, 1, q, seed.wrapping_add(1));
        let mut want = c0.block(0, 0).to_vec();
        block_fma_reference(&mut want, a.block(0, 0), b.block(0, 0), q);
        for v in kernel::variants_available() {
            let mut got = c0.block(0, 0).to_vec();
            block_fma_with(v, &mut got, a.block(0, 0), b.block(0, 0), q);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert!(
                    (g - w).abs() <= tol(q),
                    "variant {v} q={q} element {i}: {g} vs {w}"
                );
            }
        }
    }

    /// Repeated dispatch is deterministic: the same variant on the same
    /// operands produces the same bits.
    #[test]
    fn variants_are_deterministic(q in block_side(), seed in any::<u64>()) {
        let a = BlockMatrix::pseudo_random(1, 1, q, seed);
        let b = BlockMatrix::pseudo_random(1, 1, q, !seed);
        for v in kernel::variants_available() {
            let mut c1 = vec![0.0; q * q];
            let mut c2 = vec![0.0; q * q];
            block_fma_with(v, &mut c1, a.block(0, 0), b.block(0, 0), q);
            block_fma_with(v, &mut c2, a.block(0, 0), b.block(0, 0), q);
            prop_assert_eq!(&c1, &c2, "variant {} not deterministic", v);
        }
    }
}

/// The parallel executor (packed SIMD path or scalar fallback), the
/// schedule replayer and the naive oracle all bottom out in the same
/// dispatched kernel with `k`-ascending accumulation, so their results
/// are bit-identical — `==`, no tolerance — for every tiling family.
#[test]
fn executor_paths_are_bit_identical_for_all_tilings() {
    let machine = MachineConfig::quad_q32();
    let q = 8; // multiple of the register tile: exercises the vector path
    let a = BlockMatrix::pseudo_random(7, 5, q, 11);
    let b = BlockMatrix::pseudo_random(5, 6, q, 12);
    let want = gemm_naive(&a, &b);

    let tilings = [
        ("shared_opt", Tiling::shared_opt(&machine).unwrap()),
        ("distributed_opt", Tiling::distributed_opt(&machine).unwrap()),
        ("tradeoff", Tiling::tradeoff(&machine).unwrap()),
        ("equal", Tiling::equal(machine.shared_capacity).unwrap()),
    ];
    for (name, tiling) in tilings {
        let got = gemm_parallel(&a, &b, tiling);
        assert_eq!(got, want, "gemm_parallel/{name} differs from gemm_naive");
    }

    let square = BlockMatrix::pseudo_random(6, 6, q, 21);
    let square_b = BlockMatrix::pseudo_random(6, 6, q, 22);
    let want_sq = gemm_naive(&square, &square_b);
    for algo in [
        AlgorithmKind::SharedOpt,
        AlgorithmKind::DistributedOpt,
        AlgorithmKind::Tradeoff,
        AlgorithmKind::SharedEqual,
    ] {
        let algo = algo.build();
        let got = run_schedule(algo.as_ref(), &machine, &square, &square_b).unwrap();
        assert_eq!(got, want_sq, "run_schedule/{} differs from gemm_naive", algo.name());
    }
}

/// Forcing each available variant through the public
/// `gemm_parallel_with_kernel` API agrees with the oracle within
/// rounding (scalar is unfused, SIMD is fused, so `==` only holds
/// within one variant — across variants we use a tolerance).
#[test]
fn forced_variants_agree_with_oracle() {
    let machine = MachineConfig::quad_q32();
    let a = BlockMatrix::pseudo_random(5, 4, 13, 31);
    let b = BlockMatrix::pseudo_random(4, 6, 13, 32);
    let want = gemm_naive(&a, &b);
    let tiling = Tiling::tradeoff(&machine).unwrap();
    for v in kernel::variants_available() {
        let got = gemm_parallel_with_kernel(&a, &b, tiling, v);
        assert!(
            got.max_abs_diff(&want) <= 1e-10,
            "variant {v}: max diff {}",
            got.max_abs_diff(&want)
        );
    }
}
