//! End-to-end tests of the `mmc` command-line interface.

use multicore_matmul::prelude::MetricsSnapshot;
use std::process::Command;

fn mmc(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mmc")).args(args).output().expect("run mmc binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn simulate_reports_exact_formula_match() {
    let (ok, stdout, _) =
        mmc(&["simulate", "--algo", "shared_opt", "--order", "60", "--setting", "ideal"]);
    assert!(ok);
    // mn + 2mnz/λ = 3600 + 14400 = 18000 at order 60, λ = 30.
    assert!(stdout.contains("M_S = 18000"), "{stdout}");
    assert!(stdout.contains("paper formula: M_S = 18000"), "{stdout}");
    assert!(stdout.contains("hit rate"), "{stdout}");
}

#[test]
fn simulate_all_settings_and_algorithms() {
    for algo in ["shared_opt", "distributed_opt", "tradeoff", "outer_product", "cache_oblivious"] {
        for setting in ["ideal", "lru", "lru2", "lru50"] {
            let (ok, stdout, stderr) =
                mmc(&["simulate", "--algo", algo, "--order", "16", "--setting", setting]);
            assert!(ok, "{algo}/{setting}: {stderr}");
            assert!(stdout.contains("T_data"), "{algo}/{setting}: {stdout}");
        }
    }
}

#[test]
fn plan_recommends_an_algorithm() {
    let (ok, stdout, _) = mmc(&["plan", "--preset", "q32", "--order", "500"]);
    assert!(ok);
    assert!(stdout.contains("recommendation:"), "{stdout}");
    assert!(stdout.contains("lambda = Some(30)"), "{stdout}");
}

#[test]
fn exec_verifies_against_the_oracle() {
    let (ok, stdout, _) = mmc(&["exec", "--order", "4", "--q", "8", "--tiling", "shared_opt"]);
    assert!(ok);
    assert!(stdout.contains("results identical: true"), "{stdout}");
}

#[test]
fn lu_reports_misses_and_residual() {
    let (ok, stdout, _) = mmc(&["lu", "--order", "24", "--panel", "4", "--tiling", "tradeoff"]);
    assert!(ok);
    assert!(stdout.contains("residual"), "{stdout}");
    assert!(stdout.contains("M_S"), "{stdout}");
}

#[test]
fn profile_prints_a_monotone_miss_curve() {
    let (ok, stdout, _) = mmc(&["profile", "--algo", "shared_opt", "--order", "32"]);
    assert!(ok, "{stdout}");
    // Extract the miss column and check monotone non-increase.
    let misses: Vec<u64> = stdout
        .lines()
        .filter_map(|l| {
            let t: Vec<&str> = l.split_whitespace().collect();
            if t.len() == 2 {
                t[1].parse().ok()
            } else {
                None
            }
        })
        .collect();
    assert!(misses.len() >= 5, "{stdout}");
    assert!(misses.windows(2).all(|w| w[1] <= w[0]), "{misses:?}");
}

#[test]
fn unknown_inputs_fail_cleanly() {
    let (ok, _, stderr) = mmc(&["simulate", "--algo", "nonsense", "--order", "8"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
    let (ok, _, _) = mmc(&["frobnicate"]);
    assert!(!ok);
    let (ok, _, stderr) = mmc(&["simulate", "--algo", "shared_opt"]);
    assert!(!ok);
    assert!(stderr.contains("--order is required"));
}

#[test]
fn simulate_json_round_trips_through_serde() {
    let (ok, stdout, stderr) =
        mmc(&["simulate", "--algo", "shared_opt", "--order", "60", "--setting", "ideal", "--json"]);
    assert!(ok, "{stderr}");
    let doc: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(doc.get("algo").and_then(|v| v.as_str()), Some("shared_opt"));
    let metrics = doc.get("metrics").expect("metrics object");
    for key in ["ms", "md", "ccr_shared", "ccr_dist", "t_data", "shared_hit_rate", "dist_hit_rates"]
    {
        assert!(metrics.get(key).is_some(), "missing {key} in {stdout}");
    }
    assert_eq!(metrics.get("ms").and_then(|v| v.as_u64()), Some(18000));
    // Typed round trip: JSON -> MetricsSnapshot -> JSON must be lossless.
    let text = serde_json::to_string(metrics).unwrap();
    let snap: MetricsSnapshot = serde_json::from_str(&text).expect("typed deserialize");
    assert_eq!(snap.ms, 18000);
    let again = serde_json::to_string(&snap).unwrap();
    let reparsed: serde_json::Value = serde_json::from_str(&again).unwrap();
    assert_eq!(*metrics, reparsed);
}

#[test]
fn trace_writes_perfetto_json_with_per_core_tracks() {
    let out = std::env::temp_dir().join(format!("mmc_cli_trace_{}.json", std::process::id()));
    let out_s = out.to_str().unwrap();
    let (ok, stdout, stderr) =
        mmc(&["trace", "--algo", "shared_opt", "--order", "60", "--out", out_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("journal events"), "{stdout}");
    let text = std::fs::read_to_string(&out).expect("trace file written");
    std::fs::remove_file(&out).ok();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("valid Chrome trace JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    let tracks: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    for core in 0..4 {
        let label = format!("core {core}");
        assert!(tracks.contains(&label.as_str()), "missing {label}: {tracks:?}");
    }
    assert!(tracks.contains(&"shared cache"), "{tracks:?}");
    assert!(
        events.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")),
        "no span events in trace"
    );
    assert!(
        events.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C")),
        "no occupancy counters in trace"
    );
}

#[test]
fn exec_and_profile_emit_json() {
    let (ok, stdout, stderr) =
        mmc(&["exec", "--order", "4", "--q", "8", "--tiling", "shared_opt", "--json"]);
    assert!(ok, "{stderr}");
    let doc: serde_json::Value = serde_json::from_str(&stdout).expect("exec json");
    assert_eq!(doc.get("matches").and_then(|v| v.as_bool()), Some(true), "{stdout}");
    let (ok, stdout, stderr) = mmc(&["profile", "--algo", "shared_opt", "--order", "16", "--json"]);
    assert!(ok, "{stderr}");
    let doc: serde_json::Value = serde_json::from_str(&stdout).expect("profile json");
    let misses = doc.get("misses").and_then(|v| v.as_array()).expect("misses array");
    assert!(misses.len() >= 5, "{stdout}");
}

#[test]
fn list_names_every_algorithm() {
    let (ok, stdout, _) = mmc(&["list"]);
    assert!(ok);
    for id in [
        "shared_opt",
        "distributed_opt",
        "tradeoff",
        "outer_product",
        "shared_equal",
        "distributed_equal",
        "cache_oblivious",
    ] {
        assert!(stdout.contains(id), "missing {id} in {stdout}");
    }
}
