//! Property-based cross-validation between the *independent*
//! implementations this workspace deliberately maintains in pairs:
//! closed-form exact counts vs the simulator, the flat two-level
//! simulator vs the tree simulator, and the trace validator vs the
//! operational IDEAL checks.

use multicore_matmul::core::exact;
use multicore_matmul::prelude::*;
use multicore_matmul::sim::{validate_ideal_trace, TreeSimulator, TreeTopology};
use proptest::prelude::*;

fn managed_kind() -> impl Strategy<Value = AlgorithmKind> {
    prop_oneof![
        Just(AlgorithmKind::SharedOpt),
        Just(AlgorithmKind::DistributedOpt),
        Just(AlgorithmKind::Tradeoff),
        Just(AlgorithmKind::SharedEqual),
        Just(AlgorithmKind::DistributedEqual),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `exact::shared_opt` / `exact::distributed_opt` equal the simulator
    /// on arbitrary ragged shapes — two implementations, one truth.
    #[test]
    fn exact_counts_equal_simulation(
        m in 1u32..40,
        n in 1u32..40,
        z in 1u32..25,
    ) {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(m, n, z);

        let e = exact::shared_opt(&problem, &machine).unwrap();
        let mut sim = Simulator::new(SimConfig::ideal(&machine), m, n, z);
        SharedOpt.execute(&machine, &problem, &mut sim).unwrap();
        prop_assert_eq!(e.ms, sim.stats().ms());
        prop_assert_eq!(&e.md_per_core, &sim.stats().dist_misses);

        let e = exact::distributed_opt(&problem, &machine, None).unwrap();
        let mut sim = Simulator::new(SimConfig::ideal(&machine), m, n, z);
        DistributedOpt::default().execute(&machine, &problem, &mut sim).unwrap();
        prop_assert_eq!(e.ms, sim.stats().ms());
        prop_assert_eq!(&e.md_per_core, &sim.stats().dist_misses);
    }

    /// Exact Tradeoff counts equal the simulator for random feasible
    /// explicit parameters.
    #[test]
    fn exact_tradeoff_equals_simulation(
        m in 1u32..32,
        n in 1u32..32,
        z in 1u32..20,
        alpha_mult in 1u32..4,
        beta in 1u32..9,
    ) {
        let machine = MachineConfig::quad_q32();
        let grid = CoreGrid { rows: 2, cols: 2 };
        let params = TradeoffParams { alpha: 8 * alpha_mult, beta, mu: 4, grid };
        prop_assume!(params.shared_footprint() <= machine.shared_capacity as u64);
        let problem = ProblemSpec::new(m, n, z);
        let e = exact::tradeoff(&problem, &machine, &params).unwrap();
        let mut sim = Simulator::new(SimConfig::ideal(&machine), m, n, z);
        Tradeoff::with_params(params).execute(&machine, &problem, &mut sim).unwrap();
        prop_assert_eq!(e.ms, sim.stats().ms());
        prop_assert_eq!(&e.md_per_core, &sim.stats().dist_misses);
    }

    /// A two-level tree simulator counts exactly like the flat simulator
    /// for every algorithm and random shape (LRU policy).
    #[test]
    fn tree_depth2_equals_flat_simulator(
        kind in managed_kind(),
        m in 1u32..16,
        n in 1u32..16,
        z in 1u32..10,
    ) {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(m, n, z);
        let algo = kind.build();
        let mut flat = Simulator::new(SimConfig::lru(&machine), m, n, z);
        algo.execute(&machine, &problem, &mut flat).unwrap();
        let topo = TreeTopology::two_level(
            machine.cores,
            machine.shared_capacity,
            machine.dist_capacity,
        );
        let mut tree = TreeSimulator::new(topo, m, n, z);
        algo.execute(&machine, &problem, &mut tree).unwrap();
        prop_assert_eq!(flat.stats().shared_misses, tree.stats().level_total(0));
        for c in 0..machine.cores {
            prop_assert_eq!(flat.stats().dist_misses[c], tree.stats().misses[1][c]);
        }
    }

    /// Every managed schedule's recorded IDEAL trace passes the structural
    /// validator on random shapes.
    #[test]
    fn traces_are_wellformed(
        kind in managed_kind(),
        m in 1u32..10,
        n in 1u32..10,
        z in 1u32..8,
    ) {
        let machine = MachineConfig::quad_q32();
        let algo = kind.build();
        let mut trace = TraceSink::with_residency();
        algo.execute(&machine, &ProblemSpec::new(m, n, z), &mut trace).unwrap();
        let r = validate_ideal_trace(
            &trace.events,
            machine.cores,
            machine.shared_capacity,
            machine.dist_capacity,
        );
        prop_assert!(r.is_ok(), "{}: {}", algo.name(), r.unwrap_err());
    }
}
