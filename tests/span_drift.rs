//! Golden span/drift reconciliation: the recorder's span accounting
//! must agree exactly with the registry counters and the closed forms
//! for the same run — three views of one product (spans, counters,
//! formulas) may not disagree.
//!
//! The registry and the span recorder are process-global, so tests that
//! measure deltas serialize under one mutex.

use multicore_matmul::obs::{self, span};
use multicore_matmul::ooc::{ooc_drift, ooc_multiply, write_pseudo_random, OocOpts};
use multicore_matmul::prelude::*;
use std::sync::Mutex;

static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn counter_delta(before: &RegistrySnapshot, after: &RegistrySnapshot, name: &str) -> u64 {
    after.counter(name).unwrap_or(0).saturating_sub(before.counter(name).unwrap_or(0))
}

/// The tile spans of a traced run must account for exactly the FLOPs
/// the registry counted and the closed form 2·m·n·z·q³ predicts.
#[test]
fn exec_span_flops_reconcile_with_registry_counters() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    if !span::enabled() {
        return; // MMC_SPANS=off: nothing recorded, nothing to reconcile.
    }
    let (order, q) = (5u32, 8usize);
    let a = BlockMatrix::pseudo_random(order, order, q, 41);
    let b = BlockMatrix::pseudo_random(order, order, q, 42);
    let tiling = Tiling { tile_m: 2, tile_n: 3, tile_k: 1 };
    let variant = multicore_matmul::exec::kernel::variant();
    let plan = multicore_matmul::exec::blocking::active_plan::<f64>();

    let before = obs::global().snapshot();
    let (c, run) = run_traced(&a, &b, tiling, variant, plan);
    let after = obs::global().snapshot();
    assert_eq!(c, gemm_naive(&a, &b), "traced product stays bit-identical");

    let closed_form = 2 * (order as u64 * q as u64).pow(3);
    let span_flops: u64 =
        run.spans.iter().filter(|s| s.kind == SpanKind::Tile).map(|s| s.val).sum();
    assert_eq!(span_flops, closed_form, "tile spans must cover every FLOP once");
    assert_eq!(
        span_flops,
        counter_delta(&before, &after, &format!("exec.flops.{}", variant.name())),
        "span FLOP total must equal the registry's counter delta"
    );
    // Every span belongs to the run's job, and every loop level that
    // recorded covers the same total (each level tiles the problem).
    assert!(run.spans.iter().all(|s| s.job == run.job));
    for kind in [SpanKind::LoopJc, SpanKind::LoopIc] {
        let level: u64 = run.spans.iter().filter(|s| s.kind == kind).map(|s| s.val).sum();
        if level > 0 {
            assert_eq!(level, closed_form, "{} level must cover the problem", kind.name());
        }
    }
}

/// Drift reports for both legs have the pinned phase structure: every
/// ratio finite, flop phases' units_ratio exactly 1, ooc phases named.
#[test]
fn drift_reports_have_golden_structure() {
    let _guard = REGISTRY_LOCK.lock().unwrap();
    if !span::enabled() {
        return;
    }
    // Exec leg: whole-problem tile so the five-loop forms apply exactly.
    let (order, q) = (4u32, 8usize);
    let a = BlockMatrix::pseudo_random(order, order, q, 51);
    let b = BlockMatrix::pseudo_random(order, order, q, 52);
    let tiling = Tiling { tile_m: order, tile_n: order, tile_k: 1 };
    let variant = multicore_matmul::exec::kernel::variant();
    let plan = multicore_matmul::exec::blocking::active_plan::<f64>();
    let (_c, run) = run_traced(&a, &b, tiling, variant, plan);
    let model = ExecModel::for_run(&a, &b, tiling, variant);
    let exec_report = exec_drift(&run, &model, 1.0);
    assert_eq!(exec_report.source, "exec");
    assert_eq!(exec_report.job, run.job);
    assert!(exec_report.all_finite());
    let names: Vec<&str> = exec_report.phases.iter().map(|p| p.phase.as_str()).collect();
    assert!(names.contains(&"tile") && names.contains(&"pc"), "{names:?}");
    for p in exec_report.phases.iter().filter(|p| p.unit == "flop") {
        assert!(
            (p.units_ratio - 1.0).abs() < 1e-12,
            "{}: instrumentation must cover exactly the modeled FLOPs",
            p.phase
        );
    }

    // Ooc leg: the streamed product carries its own report.
    let dir = std::env::temp_dir().join(format!("mmc-span-drift-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (pa, pb, pc) = (dir.join("a.tiled"), dir.join("b.tiled"), dir.join("c.tiled"));
    write_pseudo_random(&pa, order, order, q, 53).unwrap();
    write_pseudo_random(&pb, order, order, q, 54).unwrap();
    let ooc_job = span::new_job();
    let report = ooc_multiply(&pa, &pb, &pc, &OocOpts::new(64 * 1024)).expect("ooc multiply");
    assert_eq!(report.trace_job, ooc_job, "report records the job it traced under");
    let ooc_report = ooc_drift(&report, 1.0);
    assert_eq!(ooc_report.source, "ooc");
    assert!(ooc_report.all_finite());
    let names: Vec<&str> = ooc_report.phases.iter().map(|p| p.phase.as_str()).collect();
    for phase in ["read", "accumulate"] {
        assert!(names.contains(&phase), "missing {phase} in {names:?}");
    }
    // The embedded report (default band) has the same phases.
    let embedded = report.drift.as_ref().expect("ooc report embeds drift");
    assert_eq!(
        embedded.phases.iter().map(|p| &p.phase).collect::<Vec<_>>(),
        ooc_report.phases.iter().map(|p| &p.phase).collect::<Vec<_>>()
    );

    // Merged Perfetto export: exec and ooc spans share the process
    // epoch, so one export carries both; it must parse as JSON with
    // a lane-named metadata event per (kind, thread) pair.
    let mut merged = run.spans.clone();
    merged.extend(span::collect_job(ooc_job));
    merged.sort_by_key(|s| (s.start_ns, s.kind, s.thread));
    assert!(!merged.is_empty());
    let text = spans_to_chrome("merged", &merged, &[("exec.flops".to_string(), 1.0)]);
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid chrome JSON");
    let events = parsed.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    assert!(events.len() >= merged.len(), "one event per span at least");
    assert!(text.contains("\"tile\"") && text.contains("\"read\""), "both legs exported");

    let _ = std::fs::remove_dir_all(&dir);
}
