//! Smoke tests for the figure harness: every figure id produces non-empty
//! panels with consistent series at a tiny sweep, and the key qualitative
//! claims of the paper hold on the sampled points.

use mmc_bench::{figure_ids, run_figure, Panel, SweepOpts};

fn tiny() -> SweepOpts {
    SweepOpts { orders: Some(vec![32, 64]), ..SweepOpts::default() }
}

fn check_panels(id: &str, panels: &[Panel]) {
    assert!(!panels.is_empty(), "{id}: no panels");
    for p in panels {
        assert!(!p.series.is_empty(), "{id}/{}: no series", p.id);
        for s in &p.series {
            assert!(!s.points.is_empty(), "{id}/{}/{}: empty series", p.id, s.label);
            for &(x, y) in &s.points {
                assert!(y.is_finite() && y >= 0.0, "{id}/{}/{}: bad y {y} at x {x}", p.id, s.label);
            }
        }
        // Every series samples a subset of the panel grid (some series
        // legitimately have gaps, e.g. infeasible configurations in the
        // q-sweep), and at least one series covers the whole grid.
        let xs = p.xs();
        for s in &p.series {
            assert!(s.points.len() <= xs.len(), "{id}/{}/{}: off-grid points", p.id, s.label);
        }
        assert!(
            p.series.iter().any(|s| s.points.len() == xs.len()),
            "{id}/{}: no series covers the full grid",
            p.id
        );
    }
}

#[test]
fn all_figures_run_at_tiny_order_except_fig12() {
    for id in figure_ids() {
        if id == "fig12" {
            continue; // pinned to m = 384; covered by fig12_smoke (slower)
        }
        let panels = run_figure(id, &tiny());
        check_panels(id, &panels);
    }
}

#[test]
#[ignore = "several minutes: full fig12 sweep at m = 384; run with --ignored"]
fn fig12_smoke() {
    let panels = run_figure("fig12", &SweepOpts::default());
    check_panels("fig12", &panels);
    // At every r, Tradeoff must lie within 12% of the best specialist
    // (it equals one of them at the extremes and interpolates between).
    for p in &panels {
        let find = |label: &str| {
            p.series
                .iter()
                .find(|s| s.label == label)
                .unwrap_or_else(|| panic!("{}: missing series {label}", p.id))
        };
        let tr = find("Tradeoff IDEAL");
        let so = find("Shared Opt. IDEAL");
        let dopt = find("Distributed Opt. IDEAL");
        for &(r, y) in &tr.points {
            let best = so.y_at(r).unwrap().min(dopt.y_at(r).unwrap());
            assert!(y <= 1.12 * best, "{} r={r}: Tradeoff {y} vs best specialist {best}", p.id);
        }
    }
}

#[test]
fn csv_round_trip() {
    let panels = run_figure("fig4", &tiny());
    let dir = std::env::temp_dir().join("mmc_fig_smoke");
    for p in &panels {
        let path = p.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 1 + p.xs().len(), "header + one row per x");
        assert_eq!(lines[0].split(',').count(), 1 + p.series.len());
    }
}
