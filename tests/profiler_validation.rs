//! Cross-validation of the stack-distance profiler against the real LRU
//! simulator: one profiling pass must predict, for every capacity, the
//! exact miss counts an explicit LRU simulation produces on the same
//! schedule (non-inclusive hierarchy — back-invalidation couples the
//! levels and is deliberately out of the profiler's model).

use multicore_matmul::prelude::*;
use multicore_matmul::sim::ProfilingSink;

fn profile(algo: &dyn Algorithm, machine: &MachineConfig, d: u32) -> ProfilingSink {
    let problem = ProblemSpec::square(d);
    let mut sink = ProfilingSink::new(problem.block_space(), machine.cores, machine.dist_capacity);
    algo.execute(machine, &problem, &mut sink).unwrap();
    sink
}

fn lru_counts(
    algo: &dyn Algorithm,
    machine: &MachineConfig,
    d: u32,
    shared_capacity: usize,
) -> SimStats {
    let cfg = SimConfig {
        cores: machine.cores,
        policy: Policy::Lru,
        shared_capacity,
        dist_capacity: machine.dist_capacity,
        inclusive: false,
        check: false,
        associativity: None,
    };
    let mut sim = Simulator::new(cfg, d, d, d);
    algo.execute(machine, &ProblemSpec::square(d), &mut sim).unwrap();
    sim.into_stats()
}

#[test]
fn one_profiling_pass_predicts_every_shared_capacity_exactly() {
    let machine = MachineConfig::quad_q32();
    let d = 40u32;
    for kind in [AlgorithmKind::SharedOpt, AlgorithmKind::OuterProduct, AlgorithmKind::SharedEqual]
    {
        let algo = kind.build();
        let sink = profile(algo.as_ref(), &machine, d);
        for cs in [50usize, 200, 977, 2000] {
            let sim = lru_counts(algo.as_ref(), &machine, d, cs);
            assert_eq!(
                sink.shared_profile.misses_for_capacity(cs),
                sim.ms(),
                "{} at C_S = {cs}",
                algo.name()
            );
        }
    }
}

#[test]
fn per_core_profiles_predict_distributed_misses_exactly() {
    let machine = MachineConfig::quad_q32();
    let d = 32u32;
    let algo = DistributedOpt::default();
    let sink = profile(&algo, &machine, d);
    // The per-core raw profiles answer any C_D; check at the fixed filter
    // capacity (where the simulator runs) for every core.
    let sim = lru_counts(&algo, &machine, d, machine.shared_capacity);
    for core in 0..machine.cores {
        assert_eq!(
            sink.dist_profiles[core].misses_for_capacity(machine.dist_capacity),
            sim.dist_misses[core],
            "core {core}"
        );
    }
}

#[test]
fn profiler_reproduces_the_fig4_sweep_in_one_pass() {
    // Fig. 4 sweeps LRU at C_S and 2·C_S; the profiler gets both (and
    // everything in between) from one pass over the schedule.
    let machine = MachineConfig::quad_q32();
    let d = 60u32;
    let sink = profile(&SharedOpt, &machine, d);
    let at_c = lru_counts(&SharedOpt, &machine, d, 977).ms();
    let at_2c = lru_counts(&SharedOpt, &machine, d, 2 * 977).ms();
    assert_eq!(sink.shared_profile.misses_for_capacity(977), at_c);
    assert_eq!(sink.shared_profile.misses_for_capacity(2 * 977), at_2c);
    // Monotone in capacity (stack property).
    let mut prev = u64::MAX;
    for cs in (100..=2000).step_by(100) {
        let m = sink.shared_profile.misses_for_capacity(cs);
        assert!(m <= prev);
        prev = m;
    }
}

#[test]
fn miss_curve_knee_sits_at_the_lambda_footprint() {
    // Shared Opt's live set is the λ² C tile + λ B-row + a (= 931 blocks
    // for λ = 30): at C_S = 977 the miss curve has already flattened to
    // the formula mn + 2mnz/λ, while capacities below the tile footprint
    // pay extra misses.
    let machine = MachineConfig::quad_q32();
    let d = 90u32;
    let sink = profile(&SharedOpt, &machine, d);
    let formula = (d as u64 * d as u64) + 2 * (d as u64).pow(3) / 30;
    assert_eq!(sink.shared_profile.misses_for_capacity(977), formula);
    assert!(
        sink.shared_profile.misses_for_capacity(700) > formula,
        "below the λ footprint the schedule must pay extra misses"
    );
    // The deepest reuse (B rows across C tile-rows) reaches far beyond the
    // live set; the histogram records it.
    assert!(sink.shared_profile.working_set() > 931);
}
