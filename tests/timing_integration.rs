//! Integration tests of the BSP timing layer against whole schedules.

use multicore_matmul::prelude::*;
use multicore_matmul::sim::{BspTiming, TimingModel};

fn makespan(
    algo: &dyn Algorithm,
    machine: &MachineConfig,
    d: u32,
    model: TimingModel,
) -> (f64, u64, SimStats) {
    let sim = Simulator::new(SimConfig::lru(machine), d, d, d);
    let mut bsp = BspTiming::new(sim, model);
    algo.execute(machine, &ProblemSpec::square(d), &mut bsp).unwrap();
    let (mk, steps, sim) = bsp.finish();
    (mk, steps, sim.into_stats())
}

#[test]
fn data_only_makespan_dominates_t_data_for_every_algorithm() {
    // With t_fma = 0 each superstep costs max_c(dmiss_c)/σ_D + ΔM_S/σ_S;
    // summed over steps that is ≥ M_D/σ_D (sum of per-step maxima ≥ max
    // of sums) and the shared term telescopes to exactly M_S/σ_S.
    let machine = MachineConfig::quad_q32();
    let model = TimingModel::data_only(1.0, 1.0);
    for algo in all_algorithms() {
        let (mk, steps, stats) = makespan(algo.as_ref(), &machine, 48, model);
        let t_data = stats.t_data(1.0, 1.0);
        assert!(mk >= t_data - 1e-6, "{}: makespan {mk} < T_data {t_data}", algo.name());
        assert!(steps >= 1, "{}", algo.name());
    }
}

#[test]
fn compute_floor_is_respected_and_reached() {
    // With enormous t_fma the makespan approaches the perfect-balance
    // floor mnz·t_fma/p for the well-balanced schedules.
    let machine = MachineConfig::quad_q32();
    let d = 32u32;
    let t_fma = 1e6;
    let model = TimingModel { fma_time: t_fma, sigma_s: 1.0, sigma_d: 1.0 };
    let floor = (d as f64).powi(3) * t_fma / machine.cores as f64;
    for kind in [AlgorithmKind::DistributedOpt, AlgorithmKind::Tradeoff] {
        let algo = kind.build();
        let (mk, _, _) = makespan(algo.as_ref(), &machine, d, model);
        assert!(mk >= floor, "{}", algo.name());
        assert!(
            mk <= 1.05 * floor + 1e7,
            "{}: makespan {mk} far above compute floor {floor}",
            algo.name()
        );
    }
}

#[test]
fn fewer_barriers_never_hurt_distributed_equal() {
    // Distributed Equal synchronizes once; its makespan equals the
    // slowest core's total work + the serialized shared fills.
    let machine = MachineConfig::quad_q32();
    let model = TimingModel::data_only(1.0, 1.0);
    let (mk, steps, stats) = makespan(&DistributedEqual::default(), &machine, 40, model);
    assert_eq!(steps, 1);
    let expect = stats.md() as f64 + stats.ms() as f64;
    assert!((mk - expect).abs() < 1e-9, "{mk} vs {expect}");
}

#[test]
fn faster_shared_bandwidth_reduces_makespan() {
    let machine = MachineConfig::quad_q32();
    let slow = TimingModel::data_only(0.5, 1.0);
    let fast = TimingModel::data_only(4.0, 1.0);
    let (mk_slow, _, _) = makespan(&SharedOpt, &machine, 48, slow);
    let (mk_fast, _, _) = makespan(&SharedOpt, &machine, 48, fast);
    assert!(mk_fast < mk_slow);
}

#[test]
fn timing_works_under_ideal_policy_too() {
    let machine = MachineConfig::quad_q32();
    let sim = Simulator::new(SimConfig::ideal(&machine), 30, 30, 30);
    let mut bsp = BspTiming::new(sim, TimingModel::data_only(1.0, 1.0));
    SharedOpt.execute(&machine, &ProblemSpec::square(30), &mut bsp).unwrap();
    assert!(bsp.manages_residency());
    let (mk, steps, sim) = bsp.finish();
    assert!(mk > 0.0 && steps > 0);
    // Shared misses under IDEAL equal the formula; the makespan includes
    // exactly that shared traffic.
    assert_eq!(sim.stats().ms(), 30 * 30 + 2 * 27000 / 30);
}
