//! Golden tests for the flight recorder: the event journal, the Perfetto
//! export, and the JSON metrics snapshot must all reconcile *exactly* with
//! the simulator's own counters, under both LRU and IDEAL replacement.

use multicore_matmul::prelude::*;

/// Run `algo` at the given order through a [`FlightRecorder`] and return it.
fn record(algo: &dyn Algorithm, order: u32, ideal: bool) -> FlightRecorder {
    let machine = MachineConfig::quad_q32();
    let problem = ProblemSpec::square(order);
    let cfg = if ideal { SimConfig::ideal(&machine) } else { SimConfig::lru(&machine) };
    let sim = Simulator::new(cfg, order, order, order);
    let model = TimingModel::data_only(machine.sigma_s, machine.sigma_d);
    let mut rec = FlightRecorder::new(sim, model);
    algo.execute(&machine, &problem, &mut rec).expect("algorithm runs");
    rec
}

#[test]
fn journal_event_counts_equal_simstats_counters_under_both_policies() {
    for ideal in [false, true] {
        let rec = record(&SharedOpt, 12, ideal);
        let stats = rec.stats().clone();
        let policy = if ideal { "ideal" } else { "lru" };

        // Per-core FMA events must pin the simulator's per-core FMA counters.
        for (core, &fmas) in stats.fmas.iter().enumerate() {
            assert_eq!(
                rec.count_for_core(EventKind::Fma, core),
                fmas,
                "{policy}: core {core} fma events"
            );
        }
        // Every shared/distributed miss becomes exactly one load event.
        assert_eq!(
            rec.count(EventKind::SharedLoad),
            stats.shared_misses,
            "{policy}: shared load events"
        );
        for (core, &misses) in stats.dist_misses.iter().enumerate() {
            assert_eq!(
                rec.count_for_core(EventKind::DistLoad, core),
                misses,
                "{policy}: core {core} dist load events"
            );
        }
        // Every writeback becomes exactly one evict event.
        assert_eq!(
            rec.count(EventKind::SharedEvict),
            stats.shared_writebacks,
            "{policy}: shared evict events"
        );
        assert_eq!(
            rec.count(EventKind::DistEvict),
            stats.dist_writebacks.iter().sum::<u64>(),
            "{policy}: dist evict events"
        );
        assert_eq!(rec.count(EventKind::Barrier), stats.barriers, "{policy}: barriers");
        assert!(rec.elapsed() > 0.0, "{policy}: logical time advanced");
    }
}

#[test]
fn perfetto_event_export_reconciles_with_simstats() {
    let rec = record(&SharedOpt, 8, false);
    let stats = rec.stats().clone();
    let text = rec.chrome_trace(ChromeGranularity::Events);
    let doc: serde_json::Value = serde_json::from_str(&text).expect("valid Chrome trace JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");

    // Count exported spans by their name prefix and reconcile with counters.
    let count_named = |prefix: &str| -> u64 {
        events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) != Some("M")
                    && e.get("name").and_then(|n| n.as_str()).is_some_and(|n| n.starts_with(prefix))
            })
            .count() as u64
    };
    assert_eq!(count_named("fma"), stats.total_fmas(), "fma spans == total FMAs");
    assert_eq!(count_named("load_shared"), stats.shared_misses);
    assert_eq!(count_named("load_dist"), stats.dist_misses.iter().sum::<u64>());
    assert_eq!(count_named("barrier"), stats.barriers);
}

#[test]
fn snapshot_serde_round_trip_is_lossless_for_every_algorithm() {
    for algo in all_algorithms() {
        let rec = record(algo.as_ref(), 8, false);
        let snap = rec.snapshot(algo.id());
        let text = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(snap, back, "{} snapshot round trip", algo.id());
        assert_eq!(back.ms, rec.stats().ms(), "{} ms", algo.id());
        assert!(back.t_data.is_finite(), "{} t_data finite", algo.id());
        assert!(
            back.dist_hit_rates.iter().all(|r| (0.0..=1.0).contains(r)),
            "{} hit rates in range",
            algo.id()
        );
    }
}
