//! Property-based tests of the LU extension: correctness of the
//! factorization on random well-conditioned inputs across configurations,
//! plus configuration-independence of the arithmetic.

use multicore_matmul::lu::{exec, lu_factor_parallel, BlockedLu, UpdateTiling};
use multicore_matmul::prelude::*;
use proptest::prelude::*;

fn tiling() -> impl Strategy<Value = UpdateTiling> {
    prop_oneof![
        Just(UpdateTiling::RowStripes),
        Just(UpdateTiling::SharedOpt),
        Just(UpdateTiling::Tradeoff),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any panel width and tiling factors any diagonally-dominant matrix
    /// with a tiny reconstruction residual.
    #[test]
    fn factorization_is_correct(
        n in 1u32..10,
        q in 1usize..6,
        w in 1u32..12,
        t in tiling(),
        seed in any::<u64>(),
    ) {
        let machine = MachineConfig::quad_q32();
        let a = exec::diagonally_dominant(n, q, seed);
        let mut m = a.clone();
        exec::lu_factor(&mut m, &machine, &BlockedLu::new(w, t)).unwrap();
        let r = exec::residual(&m, &a);
        prop_assert!(r < 1e-9, "n={n} q={q} w={w} {t:?}: residual {r}");
    }

    /// The factors are bit-identical across every (panel width, tiling)
    /// configuration of the sequential path — ascending-k accumulation is
    /// a schedule invariant, not an accident of one code path. The
    /// parallel path routes its trailing update through the packed
    /// `gemm_accumulate`, whose micro-kernel reassociates FMAs, so it
    /// agrees to rounding rather than bit-for-bit.
    #[test]
    fn factors_are_configuration_independent(
        n in 2u32..9,
        q in 1usize..5,
        w1 in 1u32..10,
        w2 in 1u32..10,
        t1 in tiling(),
        t2 in tiling(),
        seed in any::<u64>(),
    ) {
        let machine = MachineConfig::quad_q32();
        let a = exec::diagonally_dominant(n, q, seed);
        let mut m1 = a.clone();
        exec::lu_factor(&mut m1, &machine, &BlockedLu::new(w1, t1)).unwrap();
        let mut m2 = a.clone();
        exec::lu_factor(&mut m2, &machine, &BlockedLu::new(w2, t2)).unwrap();
        prop_assert_eq!(&m1, &m2);
        let mut m3 = a.clone();
        lu_factor_parallel(&mut m3, w1).unwrap();
        let diff = m1.max_abs_diff(&m3);
        prop_assert!(diff < 1e-10, "parallel vs sequential diff {diff}");
    }

    /// Simulated operation volume is machine- and tiling-independent.
    #[test]
    fn update_volume_is_invariant(
        n in 1u32..20,
        w in 1u32..8,
        t in tiling(),
        p_root in 1usize..4,
    ) {
        use multicore_matmul::lu::{CountingLuHooks, schedule::expected_counts};
        let machine = MachineConfig::new(p_root * p_root, 977, 21, 32);
        let mut hooks = CountingLuHooks::default();
        BlockedLu::new(w, t).run(&machine, n, &mut hooks).unwrap();
        let (g, trsm, upd) = expected_counts(n as u64);
        prop_assert_eq!(hooks.getrfs, g);
        prop_assert_eq!(hooks.trsm_cols, trsm);
        prop_assert_eq!(hooks.trsm_rows, trsm);
        prop_assert_eq!(hooks.updates, upd);
    }
}
