//! Workspace-level integration of the Strassen–Winograd subsystem:
//! the recursion must agree with the classic parallel executor within
//! the Winograd forward-error bound on arbitrary ragged shapes (both
//! element widths), the Morton layout must be a true bijection, the
//! observability registry must reconcile exactly with the simulator's
//! closed-form work count for a recursive run, and the model-driven
//! `auto` selection must flip exactly at its own predicted crossover.

use multicore_matmul::prelude::*;
use multicore_matmul::sim::strassen as sim_strassen;
use multicore_matmul::strassen::morton::{morton_decode, morton_encode};
use multicore_matmul::{exec, obs};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that read registry counter deltas against everything
/// else in this binary that retires FLOPs: global counters are only
/// attributable when one measured region runs at a time.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn whole_tiling(m: u32, n: u32, z: u32) -> Tiling {
    Tiling { tile_m: m, tile_n: n, tile_k: z }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any ragged/odd block shape, any cutoff: the recursion agrees with
    /// the classic parallel path within the Higham bound for Winograd's
    /// variant (f64).
    #[test]
    fn strassen_matches_classic_f64(
        m in 1u32..9,
        n in 1u32..9,
        z in 1u32..9,
        q in 1usize..5,
        cutoff in 1u32..5,
        seed in any::<u64>(),
    ) {
        let _g = lock();
        let a = BlockMatrix::pseudo_random(m, z, q, seed);
        let b = BlockMatrix::pseudo_random(z, n, q, seed.wrapping_add(1));
        let reference = gemm_parallel(&a, &b, whole_tiling(m, n, z));
        let (c, report) = strassen_multiply(&a, &b, &StrassenOpts::with_cutoff::<f64>(cutoff));
        prop_assert_eq!((c.rows(), c.cols()), (m, n));
        let tol = multicore_matmul::strassen::comparison_tolerance(
            &a, &b, &report, f64::EPSILON / 2.0,
        );
        let diff = c.max_abs_diff(&reference);
        prop_assert!(
            diff <= tol,
            "m={m} n={n} z={z} q={q} cutoff={cutoff} depth={}: {diff:e} > {tol:e}",
            report.depth,
        );
    }

    /// The same agreement in f32, against the f32 unit roundoff.
    #[test]
    fn strassen_matches_classic_f32(
        m in 1u32..8,
        n in 1u32..8,
        z in 1u32..8,
        q in 1usize..5,
        cutoff in 1u32..4,
        seed in any::<u64>(),
    ) {
        let _g = lock();
        let a = BlockMatrixOf::<f32>::pseudo_random(m, z, q, seed);
        let b = BlockMatrixOf::<f32>::pseudo_random(z, n, q, seed.wrapping_add(1));
        let reference = gemm_parallel_with_kernel(
            &a, &b, whole_tiling(m, n, z), exec::kernel::variant(),
        );
        let (c, report) = strassen_multiply(&a, &b, &StrassenOpts::with_cutoff::<f32>(cutoff));
        let tol = multicore_matmul::strassen::comparison_tolerance(
            &a, &b, &report, f64::from(f32::EPSILON) / 2.0,
        );
        let diff = c.max_abs_diff(&reference);
        prop_assert!(
            diff <= tol,
            "m={m} n={n} z={z} q={q} cutoff={cutoff} depth={}: {diff:e} > {tol:e}",
            report.depth,
        );
    }

    /// Morton encode/decode is a bijection on the block-index grid.
    #[test]
    fn morton_round_trip(r in 0u32..(1 << 16), c in 0u32..(1 << 16)) {
        prop_assert_eq!(morton_decode(morton_encode(r, c)), (r, c));
    }
}

/// Sibling blocks differ in the lowest interleaved bits: a 2×2 quadrant
/// of the grid is contiguous in Morton order, which is what lets the
/// recursion split buffers with `split_at_mut` instead of strided views.
#[test]
fn morton_quadrants_are_contiguous() {
    for (r, c) in [(0u32, 0u32), (2, 6), (14, 8)] {
        let base = morton_encode(r & !1, c & !1);
        assert_eq!(morton_encode(r & !1, c | 1), base + 1);
        assert_eq!(morton_encode(r | 1, c & !1), base + 2);
        assert_eq!(morton_encode(r | 1, c | 1), base + 3);
    }
}

/// Golden reconciliation: the registry FLOPs retired by a depth-2 ragged
/// recursion equal exactly `7^d · ℓ³ · 2q³` — the simulator's closed
/// form — because the leaves are the only kernel work and padding blocks
/// are real (zero-valued) work the counter must still charge.
#[test]
fn registry_flops_match_sim_closed_form() {
    let _g = lock();
    let (m, n, z, q, cutoff) = (5u32, 3u32, 4u32, 4usize, 2u32);
    let a = BlockMatrix::pseudo_random(m, z, q, 31);
    let b = BlockMatrix::pseudo_random(z, n, q, 32);
    let mut opts = StrassenOpts::with_cutoff::<f64>(cutoff);
    opts.variant = KernelVariant::Scalar;

    let before = obs::global().snapshot();
    let (c, report) = strassen_multiply(&a, &b, &opts);
    let after = obs::global().snapshot();
    std::hint::black_box(&c);

    let plan = sim_strassen::strassen_plan(u64::from(m.max(n).max(z)), u64::from(cutoff));
    assert_eq!(plan.depth, report.depth, "sim and executor must agree on geometry");
    assert_eq!(plan.leaf_side, u64::from(report.leaf_side));
    assert!(report.depth >= 2, "shape must actually recurse");
    assert_eq!(report.leaf_products, 7u64.pow(report.depth));

    let counted = after.counter("exec.flops.scalar").unwrap_or(0)
        - before.counter("exec.flops.scalar").unwrap_or(0);
    let q3 = (q as u64).pow(3);
    let closed_form = 7u64.pow(plan.depth) * plan.leaf_side.pow(3) * 2 * q3;
    assert_eq!(counted, closed_form, "registry FLOPs must match 7^d ℓ³ 2q³");
    assert_eq!(counted, sim_strassen::flops(&plan, q as u64), "and the sim closed form");
}

/// The model's `auto` selection flips exactly at its own predicted
/// crossover: classic one order below, Strassen at the crossover — the
/// contract the CLI's `--algo auto` and the CI smoke job rely on.
#[test]
fn auto_choice_brackets_predicted_crossover() {
    let machine = MachineConfig::quad_q32();
    let tiling = Tiling::shared_opt(&machine).expect("shared_opt feasible on q32");
    let env = CostEnv::for_machine(
        &machine,
        u64::from(tiling.tile_m),
        u64::from(tiling.tile_k),
        u64::from(tiling.tile_n),
    );
    let (q, cutoff) = (2, u64::from(DEFAULT_CUTOFF));
    let xover = predicted_crossover(q, cutoff, &env, 4096)
        .expect("q32 must have a crossover below 4096 blocks");
    assert!(xover > 1, "crossover at order 1 leaves no classic side to test");
    let below = choose_algorithm(xover - 1, q, cutoff, &env);
    let at = choose_algorithm(xover, q, cutoff, &env);
    assert!(!below.use_strassen, "order {} must stay classic", xover - 1);
    assert!(at.use_strassen, "order {xover} must pick Strassen");
    assert!(at.strassen_time < at.classic_time);
    assert!(at.depth > 0, "a winning recursion must actually recurse");
}
