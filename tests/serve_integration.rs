//! End-to-end tests of `mmc serve`: a real TCP server on an ephemeral
//! port, concurrent in-memory and out-of-core jobs whose combined naive
//! footprint exceeds the RAM budget, bit-identity against the direct
//! APIs, model-priced rejections, mid-job cancellation, the Prometheus
//! endpoint, and clean shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use multicore_matmul::exec::{blocking, gemm_parallel_with_plan, BlockMatrix};
use multicore_matmul::ooc::{ooc_multiply, write_pseudo_random, OocOpts};
use multicore_matmul::serve::{
    checksum_f64, default_tiling, price_mem, price_ooc, serve_variant, MemJobSpec, OocJobSpec,
    ServeConfig, Server,
};
use multicore_matmul::sim::MachineConfig;
use multicore_matmul::strassen::{strassen_multiply, StrassenOpts, DEFAULT_CUTOFF};
use serde::Value;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve daemon");
        Client { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn call(&mut self, request: &str) -> Value {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response line");
        assert!(!line.is_empty(), "server closed the connection mid-request");
        serde_json::from_str(&line).expect("response is JSON")
    }
}

fn u64_of(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("missing {key} in {v:?}"))
}

fn str_of<'v>(v: &'v Value, key: &str) -> &'v str {
    v.get(key).and_then(Value::as_str).unwrap_or_else(|| panic!("missing {key} in {v:?}"))
}

fn submit_mem(c: &mut Client, s: &MemJobSpec) -> Value {
    c.call(&format!(
        r#"{{"cmd":"submit","kind":"mem","m":{},"n":{},"z":{},"q":{},"seed_a":{},"seed_b":{},"algo":"{}"}}"#,
        s.m, s.n, s.z, s.q, s.seed_a, s.seed_b, s.algo
    ))
}

fn submit_ooc(c: &mut Client, s: &OocJobSpec) -> Value {
    c.call(&format!(
        r#"{{"cmd":"submit","kind":"ooc","a":"{}","b":"{}","out":"{}","mem_budget_bytes":{},"io_threads":{}}}"#,
        s.a, s.b, s.out, s.mem_budget_bytes, s.io_threads
    ))
}

fn wait_job(c: &mut Client, id: u64) -> Value {
    c.call(&format!(r#"{{"cmd":"wait","job_id":{id}}}"#))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmc-serve-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The tentpole acceptance scenario: eight concurrent jobs (six
/// in-memory, two out-of-core) whose combined predicted footprint
/// exceeds the server's RAM budget. All of them must complete
/// bit-identically to the direct APIs, every report must embed a drift
/// section, and the scheduler's peak-resident gauge must stay within
/// the budget.
#[test]
fn concurrent_jobs_pack_within_budget_and_match_direct_apis() {
    let machine = MachineConfig::quad_q32();
    let dir = scratch_dir("pack");

    let mem_specs: Vec<MemJobSpec> = (0..6)
        .map(|i| MemJobSpec {
            m: 4,
            n: 4,
            z: 4,
            q: 16,
            seed_a: 10 + i,
            seed_b: 20 + i,
            algo: "classic".into(),
        })
        .collect();
    let mut ooc_specs = Vec::new();
    for i in 0..2u64 {
        let (fa, fb, fc) = (
            dir.join(format!("a{i}.tiled")),
            dir.join(format!("b{i}.tiled")),
            dir.join(format!("c{i}.tiled")),
        );
        write_pseudo_random(&fa, 6, 6, 8, 100 + i).unwrap();
        write_pseudo_random(&fb, 6, 6, 8, 200 + i).unwrap();
        ooc_specs.push(OocJobSpec {
            a: fa.display().to_string(),
            b: fb.display().to_string(),
            out: fc.display().to_string(),
            mem_budget_bytes: 16 << 10,
            io_threads: 2,
        });
    }

    // Size the budget from the model prices themselves: every job fits
    // alone, the eight together do not.
    let mut footprints: Vec<u64> =
        mem_specs.iter().map(|s| price_mem(s, &machine).unwrap().footprint_bytes).collect();
    for s in &ooc_specs {
        footprints.push(price_ooc(s, 6, 6, 6, 8, &machine).unwrap().footprint_bytes);
    }
    let combined: u64 = footprints.iter().sum();
    let budget = (combined / 2).max(*footprints.iter().max().unwrap());
    assert!(combined > budget, "the 8 jobs must not all fit at once");

    let server = Server::start(ServeConfig {
        ram_budget_bytes: budget,
        max_concurrent: 4,
        machine: machine.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr());

    let mut ids = Vec::new();
    for s in &mem_specs {
        let resp = submit_mem(&mut client, s);
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{resp:?}");
        ids.push(u64_of(&resp, "job_id"));
    }
    for s in &ooc_specs {
        let resp = submit_ooc(&mut client, s);
        assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true), "{resp:?}");
        ids.push(u64_of(&resp, "job_id"));
    }

    // Every job completes, with a drift section in every report.
    let mut reports = Vec::new();
    for &id in &ids {
        let resp = wait_job(&mut client, id);
        assert_eq!(str_of(&resp, "state"), "done", "job {id}: {resp:?}");
        let report = resp.get("report").cloned().expect("done job carries a report");
        assert!(
            !matches!(report.get("drift"), None | Some(Value::Null)),
            "job {id} report must embed predicted-vs-measured drift"
        );
        assert_eq!(report.get("within_budget").and_then(Value::as_bool), Some(true));
        reports.push(report);
    }

    // Bit-identity, in-memory jobs: the served checksum equals a direct
    // gemm over the same deterministic operands.
    let tiling = default_tiling(&machine);
    let variant = serve_variant();
    let plan = blocking::active_plan::<f64>();
    for (spec, report) in mem_specs.iter().zip(&reports) {
        let a = BlockMatrix::pseudo_random(spec.m, spec.z, spec.q, spec.seed_a);
        let b = BlockMatrix::pseudo_random(spec.z, spec.n, spec.q, spec.seed_b);
        let c = gemm_parallel_with_plan(&a, &b, tiling, variant, plan);
        assert_eq!(
            report.get("checksum").and_then(Value::as_u64),
            Some(checksum_f64(c.data())),
            "served product must be bit-identical to the direct API"
        );
    }

    // Bit-identity, out-of-core jobs: the served .tiled file equals a
    // direct ooc_multiply with the same options.
    for (i, spec) in ooc_specs.iter().enumerate() {
        let direct_out = dir.join(format!("direct{i}.tiled"));
        let mut opts = OocOpts::new(spec.mem_budget_bytes);
        opts.io_threads = spec.io_threads;
        opts.variant = variant;
        opts.machine = machine.clone();
        opts.sigma_ratio_hint = 0.1;
        ooc_multiply(
            std::path::Path::new(&spec.a),
            std::path::Path::new(&spec.b),
            &direct_out,
            &opts,
        )
        .unwrap();
        let served = std::fs::read(&spec.out).unwrap();
        let direct = std::fs::read(&direct_out).unwrap();
        assert_eq!(served, direct, "served .tiled output must be byte-identical");
    }

    // Budget evidence: the peak-resident gauge never exceeded the
    // budget, and the stats command agrees.
    let peak = server.scheduler().ram_peak_bytes();
    assert!(peak > 0 && peak <= budget, "peak {peak} vs budget {budget}");
    let stats = client.call(r#"{"cmd":"stats"}"#);
    let s = stats.get("stats").expect("stats body");
    assert_eq!(u64_of(s, "ram_peak_bytes"), peak);
    assert_eq!(u64_of(s, "ram_budget_bytes"), budget);
    let counts = s.get("counts").expect("counts");
    assert_eq!(u64_of(counts, "completed"), ids.len() as u64);
    assert_eq!(u64_of(counts, "failed"), 0);

    client.call(r#"{"cmd":"shutdown"}"#);
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Jobs whose predicted footprint exceeds the whole budget are rejected
/// at submission, and the rejection carries the predicted footprint.
#[test]
fn rejection_carries_the_predicted_footprint() {
    let machine = MachineConfig::quad_q32();
    let server = Server::start(ServeConfig {
        ram_budget_bytes: 1 << 20,
        machine: machine.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr());

    let spec =
        MemJobSpec { m: 64, n: 64, z: 64, q: 32, seed_a: 1, seed_b: 2, algo: "classic".into() };
    let price = price_mem(&spec, &machine).unwrap();
    assert!(price.footprint_bytes > 1 << 20);

    let resp = submit_mem(&mut client, &spec);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(resp.get("rejected").and_then(Value::as_bool), Some(true));
    assert_eq!(u64_of(&resp, "predicted_footprint_bytes"), price.footprint_bytes);
    assert_eq!(u64_of(&resp, "ram_budget_bytes"), 1 << 20);
    assert!(str_of(&resp, "error").contains("exceeds"));

    // A bad spec (unreadable tiled file) is also a clean rejection.
    let resp = submit_ooc(
        &mut client,
        &OocJobSpec {
            a: "/nonexistent/a.tiled".into(),
            b: "/nonexistent/b.tiled".into(),
            out: "/nonexistent/c.tiled".into(),
            mem_budget_bytes: 1 << 16,
            io_threads: 1,
        },
    );
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert!(str_of(&resp, "error").contains("a.tiled"));

    assert_eq!(server.scheduler().stats().counts.rejected, 2);
    client.call(r#"{"cmd":"shutdown"}"#);
    server.wait();
}

/// Cancelling jobs — one likely mid-flight, one still queued — leaves
/// the pool serving everything behind them.
#[test]
fn cancellation_leaves_the_pool_serving() {
    let machine = MachineConfig::quad_q32();
    // One worker: job 1 runs, jobs 2 and 3 queue behind it.
    let server = Server::start(ServeConfig {
        ram_budget_bytes: 1 << 30,
        max_concurrent: 1,
        machine: machine.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr());

    // ~2 GFLOP: long enough that it is still mid-flight while the two
    // cancel round-trips (sub-millisecond each) happen behind it.
    let big =
        MemJobSpec { m: 16, n: 16, z: 16, q: 64, seed_a: 1, seed_b: 2, algo: "classic".into() };
    let small = MemJobSpec { m: 3, n: 3, z: 3, q: 8, seed_a: 3, seed_b: 4, algo: "classic".into() };
    let id1 = u64_of(&submit_mem(&mut client, &big), "job_id");
    let id2 = u64_of(&submit_mem(&mut client, &small), "job_id");
    let id3 = u64_of(&submit_mem(&mut client, &small), "job_id");

    // Cancel the queued middle job first (job 1 still holds the single
    // worker slot, so job 2 is deterministically queued), then the
    // likely-mid-flight head.
    let resp = client.call(&format!(r#"{{"cmd":"cancel","job_id":{id2}}}"#));
    assert_eq!(str_of(&resp, "state"), "cancelled", "queued job cancels immediately");
    let resp = client.call(&format!(r#"{{"cmd":"cancel","job_id":{id1}}}"#));
    assert!(matches!(str_of(&resp, "state"), "cancelling" | "cancelled" | "done"), "{resp:?}");

    // Both reach a terminal state; the job behind them still completes
    // bit-identically.
    let s1 = wait_job(&mut client, id1);
    assert!(matches!(str_of(&s1, "state"), "cancelled" | "done"), "{s1:?}");
    let s2 = wait_job(&mut client, id2);
    assert_eq!(str_of(&s2, "state"), "cancelled");
    let s3 = wait_job(&mut client, id3);
    assert_eq!(str_of(&s3, "state"), "done", "pool keeps serving after cancellations: {s3:?}");
    let a = BlockMatrix::pseudo_random(small.m, small.z, small.q, small.seed_a);
    let b = BlockMatrix::pseudo_random(small.z, small.n, small.q, small.seed_b);
    let c = gemm_parallel_with_plan(
        &a,
        &b,
        default_tiling(&machine),
        serve_variant(),
        blocking::active_plan::<f64>(),
    );
    let report = s3.get("report").expect("report");
    assert_eq!(report.get("checksum").and_then(Value::as_u64), Some(checksum_f64(c.data())));

    // Cancelling an unknown job is a clean error, not a panic.
    let resp = client.call(r#"{"cmd":"cancel","job_id":9999}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));

    client.call(r#"{"cmd":"shutdown"}"#);
    server.wait();
}

/// `"algo":"strassen"` jobs run the Winograd recursion server-side:
/// admitted with the Morton copies plus recursion workspace in their
/// footprint, priced with sub-cubic FLOPs, and bit-identical to the
/// direct `strassen_multiply` API under the server's own options.
#[test]
fn strassen_jobs_reserve_workspace_and_match_the_direct_api() {
    let machine = MachineConfig::quad_q32();
    let server =
        Server::start(ServeConfig { machine: machine.clone(), ..ServeConfig::default() }).unwrap();
    let mut client = Client::connect(server.local_addr());

    let classic =
        MemJobSpec { m: 16, n: 16, z: 16, q: 8, seed_a: 5, seed_b: 6, algo: "classic".into() };
    let mut strassen = classic.clone();
    strassen.algo = "strassen".into();

    let rc = submit_mem(&mut client, &classic);
    let rs = submit_mem(&mut client, &strassen);
    assert_eq!(rc.get("ok").and_then(Value::as_bool), Some(true), "{rc:?}");
    assert_eq!(rs.get("ok").and_then(Value::as_bool), Some(true), "{rs:?}");
    // Same shape, but the strassen admission reserves the recursion
    // workspace on top of the operands.
    let fp = |v: &Value| {
        u64_of(v.get("price").expect("submit response carries the price"), "footprint_bytes")
    };
    assert!(fp(&rs) > fp(&rc), "strassen footprint {} must exceed classic {}", fp(&rs), fp(&rc));

    let done_report = |client: &mut Client, id: u64| {
        let resp = wait_job(client, id);
        assert_eq!(str_of(&resp, "state"), "done", "{resp:?}");
        resp.get("report").cloned().expect("done job carries a report")
    };
    let classic_report = done_report(&mut client, u64_of(&rc, "job_id"));
    let strassen_report = done_report(&mut client, u64_of(&rs, "job_id"));

    // The classic drift model does not apply to the recursion.
    assert!(!matches!(classic_report.get("drift"), None | Some(Value::Null)));
    assert!(matches!(strassen_report.get("drift"), None | Some(Value::Null)));
    assert_eq!(strassen_report.get("within_budget").and_then(Value::as_bool), Some(true));

    // Bit-identity against the direct API with the server's options.
    let a = BlockMatrix::pseudo_random(strassen.m, strassen.z, strassen.q, strassen.seed_a);
    let b = BlockMatrix::pseudo_random(strassen.z, strassen.n, strassen.q, strassen.seed_b);
    let opts = StrassenOpts {
        cutoff: DEFAULT_CUTOFF,
        variant: serve_variant(),
        plan: blocking::active_plan::<f64>(),
        tiling: default_tiling(&machine),
    };
    let (c, report) = strassen_multiply(&a, &b, &opts);
    assert!(report.depth > 0, "16 blocks above the default cutoff must recurse");
    assert_eq!(
        strassen_report.get("checksum").and_then(Value::as_u64),
        Some(checksum_f64(c.data())),
        "served strassen product must be bit-identical to the direct API"
    );

    // An unknown algorithm is a clean protocol error.
    let resp =
        client.call(r#"{"cmd":"submit","kind":"mem","m":2,"n":2,"z":2,"q":4,"algo":"karatsuba"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    assert!(str_of(&resp, "error").contains("unknown algo"), "{resp:?}");

    client.call(r#"{"cmd":"shutdown"}"#);
    server.wait();
}

/// The same port speaks enough HTTP for a Prometheus scraper, and the
/// JSON protocol mirrors the exposition in its `metrics` command.
#[test]
fn metrics_endpoint_serves_prometheus_over_http() {
    let server = Server::start(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr());

    // Run one job so serve metrics exist.
    let spec = MemJobSpec { m: 2, n: 2, z: 2, q: 8, seed_a: 5, seed_b: 6, algo: "classic".into() };
    let id = u64_of(&submit_mem(&mut client, &spec), "job_id");
    assert_eq!(str_of(&wait_job(&mut client, id), "state"), "done");

    // Plain HTTP GET on the same port.
    let mut http = TcpStream::connect(server.local_addr()).unwrap();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("text/plain"), "{response}");
    assert!(response.contains("serve_jobs_submitted"), "{response}");
    assert!(response.contains("serve_ram_peak_bytes"), "{response}");

    // Unknown paths 404 without killing the server.
    let mut http = TcpStream::connect(server.local_addr()).unwrap();
    http.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");

    // The JSON protocol exposes the same text.
    let resp = client.call(r#"{"cmd":"metrics"}"#);
    assert!(str_of(&resp, "text").contains("serve_jobs_submitted"));

    // Malformed JSON gets an error response, and the connection lives on.
    let resp = client.call("this is not json");
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(false));
    let resp = client.call(r#"{"cmd":"stats"}"#);
    assert_eq!(resp.get("ok").and_then(Value::as_bool), Some(true));

    client.call(r#"{"cmd":"shutdown"}"#);
    server.wait();
}
