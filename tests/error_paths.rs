//! Failure-injection tests: every error the public API defines is
//! reachable, reported with the right payload, and leaves the system in a
//! sane state.

use multicore_matmul::lu::{BlockedLu, LuError, UpdateTiling};
use multicore_matmul::prelude::*;

#[test]
fn every_sim_error_variant_is_reachable() {
    let machine = MachineConfig::new(2, 4, 2, 32);
    let mk = || Simulator::new(SimConfig::ideal(&machine), 4, 4, 4);

    // UnknownCore.
    let mut sim = mk();
    assert_eq!(sim.read(7, Block::a(0, 0)), Err(SimError::UnknownCore { core: 7, cores: 2 }));

    // NotResidentDist (access before load).
    let mut sim = mk();
    assert_eq!(
        sim.write(0, Block::c(0, 0)),
        Err(SimError::NotResidentDist { core: 0, block: Block::c(0, 0) })
    );

    // NotResidentShared (distributed load without shared residency).
    let mut sim = mk();
    assert_eq!(
        sim.load_dist(0, Block::b(1, 1)),
        Err(SimError::NotResidentShared { block: Block::b(1, 1) })
    );

    // SharedCapacityExceeded.
    let mut sim = mk();
    for j in 0..4 {
        sim.load_shared(Block::a(0, j)).unwrap();
    }
    assert_eq!(
        sim.load_shared(Block::a(1, 0)),
        Err(SimError::SharedCapacityExceeded { capacity: 4, block: Block::a(1, 0) })
    );

    // DistCapacityExceeded.
    let mut sim = mk();
    sim.load_shared(Block::a(0, 0)).unwrap();
    sim.load_shared(Block::a(0, 1)).unwrap();
    sim.load_shared(Block::a(0, 2)).unwrap();
    sim.load_dist(1, Block::a(0, 0)).unwrap();
    sim.load_dist(1, Block::a(0, 1)).unwrap();
    assert_eq!(
        sim.load_dist(1, Block::a(0, 2)),
        Err(SimError::DistCapacityExceeded { core: 1, capacity: 2, block: Block::a(0, 2) })
    );

    // InclusionViolated.
    let mut sim = mk();
    sim.load_shared(Block::c(2, 2)).unwrap();
    sim.load_dist(0, Block::c(2, 2)).unwrap();
    assert_eq!(
        sim.evict_shared(Block::c(2, 2)),
        Err(SimError::InclusionViolated { block: Block::c(2, 2), core: 0 })
    );

    // EvictAbsent, both levels.
    let mut sim = mk();
    assert_eq!(
        sim.evict_shared(Block::a(3, 3)),
        Err(SimError::EvictAbsent { block: Block::a(3, 3), core: None })
    );
    assert_eq!(
        sim.evict_dist(1, Block::a(3, 3)),
        Err(SimError::EvictAbsent { block: Block::a(3, 3), core: Some(1) })
    );
}

#[test]
fn sim_errors_propagate_through_algorithms_as_algo_errors() {
    // Force a capacity violation mid-run: declare a machine *larger* than
    // the physical IDEAL cache so the schedule's loads overflow.
    let declared = MachineConfig::quad_q32();
    let physical = SimConfig {
        shared_capacity: 100, // far below 1 + λ + λ² = 931
        ..SimConfig::ideal(&declared)
    };
    let mut sim = Simulator::new(physical, 60, 60, 60);
    let err = SharedOpt::run(&declared, &ProblemSpec::square(60), &mut sim).unwrap_err();
    match err {
        AlgoError::Sim(SimError::SharedCapacityExceeded { capacity: 100, .. }) => {}
        other => panic!("expected a capacity error, got {other}"),
    }
    // The error formats into something a user can act on.
    let msg = err.to_string();
    assert!(msg.contains("100"), "{msg}");
}

#[test]
fn infeasible_errors_name_the_algorithm_and_the_numbers() {
    let machine = MachineConfig::new(3, 977, 21, 32); // p = 3: not square
    let problem = ProblemSpec::square(8);
    let mut sim = Simulator::new(SimConfig::ideal(&machine), 8, 8, 8);
    let err = DistributedOpt::default().execute(&machine, &problem, &mut sim).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("Distributed Opt") && msg.contains('3'), "{msg}");
    let err = Tradeoff::default().execute(&machine, &problem, &mut sim).unwrap_err();
    assert!(err.to_string().contains("Tradeoff"));
}

#[test]
fn lu_errors_are_typed_and_described() {
    let machine = MachineConfig::quad_q32();
    // Zero panel width.
    let mut hooks = multicore_matmul::lu::CountingLuHooks::default();
    let err = BlockedLu::new(0, UpdateTiling::RowStripes).run(&machine, 4, &mut hooks).unwrap_err();
    assert!(matches!(err, LuError::Invalid(_)));
    assert!(err.to_string().contains("panel width"));
    // Singular pivot on execution.
    let mut m = BlockMatrix::zeros(2, 2, 3);
    let err = multicore_matmul::lu::lu_factor(&mut m, &machine, &BlockedLu::default()).unwrap_err();
    assert_eq!(err, LuError::SingularPivot { k: 0 });
    assert!(err.to_string().contains("pivot"));
}

#[test]
fn errors_implement_std_error_with_sources() {
    let e: Box<dyn std::error::Error> =
        Box::new(AlgoError::Sim(SimError::NotResidentShared { block: Block::a(0, 0) }));
    assert!(e.source().is_some(), "AlgoError::Sim chains to the SimError");
    let e: Box<dyn std::error::Error> = Box::new(SimError::UnknownCore { core: 1, cores: 1 });
    assert!(e.source().is_none());
}

#[test]
fn failed_runs_leave_partial_but_consistent_stats() {
    // After an IDEAL-mode failure the simulator still reports the counts
    // accumulated so far (useful for debugging schedules).
    let declared = MachineConfig::quad_q32();
    let physical = SimConfig { shared_capacity: 100, ..SimConfig::ideal(&declared) };
    let mut sim = Simulator::new(physical, 60, 60, 60);
    let _ = SharedOpt::run(&declared, &ProblemSpec::square(60), &mut sim);
    assert!(sim.stats().shared_misses > 0);
    assert!(sim.stats().shared_misses <= 100, "no more misses than capacity before overflow");
}
