//! Policy comparison: how far is real LRU from the ideal-cache model?
//!
//! Replays the paper's §4.2 methodology for one algorithm: simulate under
//! IDEAL, LRU at the declared capacity, LRU at twice the declared
//! capacity, and the LRU-50 setting, and report the ratios against the
//! closed-form prediction. The Frigo et al. result (cited by the paper)
//! says LRU at capacity 2C is 2-competitive with an ideal cache of
//! capacity C — watch the `LRU(2C)/formula` column stay below 2.
//!
//! ```bash
//! cargo run --release --example policy_comparison -- shared_opt
//! cargo run --release --example policy_comparison -- distributed_opt 60,120,240
//! ```

use multicore_matmul::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "shared_opt".to_string());
    let orders: Vec<u32> = args
        .next()
        .map(|s| s.split(',').map(|t| t.parse().expect("order list")).collect())
        .unwrap_or_else(|| vec![60, 120, 180, 240, 300]);

    let machine = MachineConfig::quad_q32();
    let algo: Box<dyn Algorithm> = match which.as_str() {
        "shared_opt" => Box::new(SharedOpt),
        "distributed_opt" => Box::new(DistributedOpt::default()),
        "tradeoff" => Box::new(Tradeoff::default()),
        "shared_equal" => Box::new(SharedEqual),
        "distributed_equal" => Box::new(DistributedEqual::default()),
        other => {
            eprintln!(
                "unknown algorithm {other}; pick one of shared_opt, distributed_opt, \
                 tradeoff, shared_equal, distributed_equal"
            );
            std::process::exit(2);
        }
    };
    // The metric each algorithm optimizes.
    let metric = |stats: &SimStats| -> f64 {
        match which.as_str() {
            "shared_opt" | "shared_equal" => stats.ms() as f64,
            "distributed_opt" | "distributed_equal" => stats.md() as f64,
            _ => stats.t_data(machine.sigma_s, machine.sigma_d),
        }
    };

    println!("algorithm: {} on the q=32 quad-core preset", algo.name());
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "order", "IDEAL", "LRU(C)", "LRU(2C)", "LRU-50", "LRU(C)/F", "LRU(2C)/F"
    );
    for d in orders {
        let problem = ProblemSpec::square(d);
        let run = |cfg: SimConfig, declared: &MachineConfig| -> SimStats {
            let mut sim = Simulator::new(cfg, d, d, d);
            algo.execute(declared, &problem, &mut sim).expect("feasible");
            sim.into_stats()
        };
        let ideal = run(SimConfig::ideal(&machine), &machine);
        let lru1 = run(SimConfig::lru(&machine), &machine);
        let lru2 = run(SimConfig::lru_scaled(&machine, 2), &machine);
        let halved = machine.halved();
        let lru50 = run(SimConfig::lru(&machine), &halved);
        let f = metric(&ideal); // IDEAL counts == the paper's formulas
        println!(
            "{:>7} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>10.3} {:>10.3}",
            d,
            f,
            metric(&lru1),
            metric(&lru2),
            metric(&lru50),
            metric(&lru1) / f,
            metric(&lru2) / f,
        );
    }
    println!("\nF = the algorithm's objective under IDEAL (equals the paper's formula).");
}
