//! BSP makespan study: when does cache-awareness stop mattering?
//!
//! Wraps the simulator in the bulk-synchronous timing model and sweeps
//! the compute intensity `t_fma` (time per block FMA, in units of one
//! block transfer). At `t_fma = 0` the ranking is the paper's `T_data`
//! story; once compute dominates, every reasonable schedule converges to
//! the `mnz·t_fma/p` floor.
//!
//! ```bash
//! cargo run --release --example bsp_timing -- 96
//! ```

use multicore_matmul::prelude::*;
use multicore_matmul::sim::{BspTiming, TimingModel};

fn main() {
    let order: u32 =
        std::env::args().nth(1).map(|s| s.parse().expect("matrix order")).unwrap_or(96);
    let machine = MachineConfig::quad_q32();
    let problem = ProblemSpec::square(order);
    println!(
        "BSP makespan, order {order} blocks on the q=32 quad-core \
         (sigma_S = sigma_D = 1 block/unit)\n"
    );
    let algos = all_algorithms();
    print!("{:>8}", "t_fma");
    for a in &algos {
        print!(" {:>18}", a.name());
    }
    println!(" {:>14}", "compute floor");
    for t_fma in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let model = TimingModel { fma_time: t_fma, sigma_s: 1.0, sigma_d: 1.0 };
        print!("{t_fma:>8}");
        for a in &algos {
            let sim = Simulator::new(SimConfig::lru(&machine), order, order, order);
            let mut bsp = BspTiming::new(sim, model);
            a.execute(&machine, &problem, &mut bsp).expect("schedule runs");
            let (makespan, _, _) = bsp.finish();
            print!(" {:>18.0}", makespan);
        }
        println!(" {:>14.0}", problem.total_fmas() as f64 * t_fma / machine.cores as f64);
    }
    println!(
        "\n(each cell: sum over barrier-delimited supersteps of \
         max-core work + serialized shared fills)"
    );
}
