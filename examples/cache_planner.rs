//! Cache planner: size the paper's tile parameters for *your* machine and
//! pick the algorithm with the best predicted data access time.
//!
//! This is the workload the paper's introduction motivates: you have a
//! multicore with a shared L3 and private L2s and want to know how to
//! block a huge matrix product for it.
//!
//! ```bash
//! cargo run --release --example cache_planner -- \
//!     --cores 4 --shared-kb 8192 --dist-kb 256 --q 32 \
//!     --sigma-s 1 --sigma-d 4 --order 1000
//! ```
//!
//! All flags are optional; defaults describe the paper's quad-core.
//!
//! Pass `--calibrate FILE` with a saved `mmc counters --json` report to
//! fold the machine's measured-vs-predicted shared-traffic ratio into
//! the plan: the observed ratio deflates the effective sigma_S before
//! the out-of-core staging is sized, so a machine that misses more than
//! the model predicts gets deeper staging.

use multicore_matmul::prelude::*;

struct Args {
    cores: usize,
    shared_kb: usize,
    dist_kb: usize,
    q: usize,
    sigma_s: f64,
    sigma_d: f64,
    order: u32,
    data_fraction: f64,
    ram_mb: Option<usize>,
    sigma_f: f64,
    calibrate: Option<String>,
}

/// A calibration extracted from an `mmc counters --json` report:
/// the measured LLC-miss traffic over the model's predicted shared
/// traffic for the same point, or the reason no ratio is available.
enum Calibration {
    Ratio(f64),
    Unavailable(String),
}

/// Read the measured-vs-predicted ratio out of a counters report. The
/// report carries the precomputed ratio when hardware counters were
/// live (`derived.measured_vs_predicted_bytes`); when they were not it
/// says so via `counters: "unavailable"`, and the plan proceeds
/// uncalibrated rather than failing.
fn read_calibration(path: &str) -> Calibration {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return Calibration::Unavailable(format!("cannot read {path}: {e}")),
    };
    let report: serde::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return Calibration::Unavailable(format!("cannot parse {path}: {e}")),
    };
    if report.get("counters").and_then(|c| c.as_str()) == Some("unavailable") {
        let reason = report
            .get("counters_reason")
            .and_then(|r| r.as_str())
            .unwrap_or("no reason recorded")
            .to_string();
        return Calibration::Unavailable(format!("report has counters: unavailable ({reason})"));
    }
    match report
        .get("derived")
        .and_then(|d| d.get("measured_vs_predicted_bytes"))
        .and_then(|r| r.as_f64())
    {
        Some(r) if r > 0.0 => Calibration::Ratio(r),
        _ => Calibration::Unavailable(
            "report carries no measured_vs_predicted_bytes ratio".to_string(),
        ),
    }
}

fn parse_args() -> Args {
    let mut a = Args {
        cores: 4,
        shared_kb: 8192,
        dist_kb: 256,
        q: 32,
        sigma_s: 1.0,
        sigma_d: 4.0,
        order: 1000,
        data_fraction: 2.0 / 3.0,
        ram_mb: None,
        sigma_f: 0.1,
        calibrate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--cores" => a.cores = val().parse().expect("--cores"),
            "--shared-kb" => a.shared_kb = val().parse().expect("--shared-kb"),
            "--dist-kb" => a.dist_kb = val().parse().expect("--dist-kb"),
            "--q" => a.q = val().parse().expect("--q"),
            "--sigma-s" => a.sigma_s = val().parse().expect("--sigma-s"),
            "--sigma-d" => a.sigma_d = val().parse().expect("--sigma-d"),
            "--order" => a.order = val().parse().expect("--order"),
            "--data-fraction" => a.data_fraction = val().parse().expect("--data-fraction"),
            "--ram-mb" => a.ram_mb = Some(val().parse().expect("--ram-mb")),
            "--sigma-f" => a.sigma_f = val().parse().expect("--sigma-f"),
            "--calibrate" => a.calibrate = Some(val()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    a
}

fn main() {
    let args = parse_args();
    // Convert byte capacities to q×q f64-block capacities, reserving
    // (1 − data_fraction) of the private caches for instructions as the
    // paper does in §4.1.
    let block_bytes = args.q * args.q * std::mem::size_of::<f64>();
    let cs = args.shared_kb * 1024 / block_bytes;
    let cd = (args.dist_kb as f64 * 1024.0 * args.data_fraction / block_bytes as f64) as usize;
    if cs == 0 || cd == 0 {
        eprintln!("caches too small for {0}x{0} blocks — reduce --q", args.q);
        std::process::exit(1);
    }
    let machine =
        MachineConfig::new(args.cores, cs, cd, args.q).with_bandwidths(args.sigma_s, args.sigma_d);
    let problem = ProblemSpec::square(args.order);

    println!("derived capacities: C_S = {cs} blocks, C_D = {cd} blocks (q = {})", args.q);
    if !machine.inclusivity_holds() {
        println!(
            "warning: C_S < p*C_D — the paper's inclusive-hierarchy assumption \
             does not hold on this machine"
        );
    }

    match params::lambda(&machine) {
        Some(l) => println!("Shared Opt     : lambda = {l} (C tile {l}x{l} in shared cache)"),
        None => println!("Shared Opt     : infeasible (C_S < 3)"),
    }
    match params::mu(&machine) {
        Some(mu) => println!("Distributed Opt: mu = {mu} (C sub-block {mu}x{mu} per core)"),
        None => println!("Distributed Opt: infeasible (C_D < 3)"),
    }
    match params::tradeoff_params(&machine) {
        Some(t) => println!(
            "Tradeoff       : alpha = {}, beta = {} (grid {}x{}, alpha_num = {:.1})",
            t.alpha,
            t.beta,
            t.grid.rows,
            t.grid.cols,
            params::alpha_num(&machine)
        ),
        None => println!("Tradeoff       : infeasible (needs square p and C_D >= 3)"),
    }
    if let Some(t) = params::equal_tile(machine.shared_capacity) {
        println!(
            "Equal thirds   : t = {t} (shared), t_D = {:?} (distributed)",
            params::equal_tile(machine.dist_capacity)
        );
    }

    println!(
        "\npredicted costs for a {0}x{0} block product (sigma_S = {1}, sigma_D = {2}):",
        args.order, args.sigma_s, args.sigma_d
    );
    println!("{:<18} {:>16} {:>16} {:>16}", "algorithm", "pred. M_S", "pred. M_D", "pred. T_data");
    let mut best: Option<(String, f64)> = None;
    for algo in all_algorithms() {
        if let Some(p) = algo.predict(&machine, &problem) {
            let t = p.t_data(&machine);
            println!("{:<18} {:>16.0} {:>16.0} {:>16.0}", algo.name(), p.ms, p.md, t);
            if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                best = Some((algo.name().to_string(), t));
            }
        } else {
            println!("{:<18} {:>16} {:>16} {:>16}", algo.name(), "-", "-", "-");
        }
    }

    // The closed forms above assume divisible tile sizes; the `exact`
    // module mirrors the schedules' edge clamping, so these counts are
    // what an IDEAL simulation of this exact problem would report.
    use multicore_matmul::core::exact;
    println!("\nexact (clamped-tile) counts for this problem:");
    if let Some(e) = exact::shared_opt(&problem, &machine) {
        println!("{:<18} M_S = {:>14}  M_D = {:>14}", "Shared Opt.", e.ms, e.md());
    }
    if let Some(e) = exact::distributed_opt(&problem, &machine, None) {
        println!("{:<18} M_S = {:>14}  M_D = {:>14}", "Distributed Opt.", e.ms, e.md());
    }
    if let Some(t) = params::tradeoff_params(&machine) {
        if let Some(e) = exact::tradeoff(&problem, &machine, &t) {
            println!("{:<18} M_S = {:>14}  M_D = {:>14}", "Tradeoff", e.ms, e.md());
        }
    }
    println!("\nlower bound     T_data >= {:.0}", bounds::tdata_lower_bound(&problem, &machine));
    if let Some((name, t)) = best {
        println!("recommendation: {name} (predicted T_data = {t:.0})");
    }

    // Calibration: a prior `mmc counters --json` report tells us how far
    // this machine's measured LLC traffic sits from the model. A ratio
    // above 1 means the model is optimistic here, so the effective
    // shared-level bandwidth is derated by the same factor before the
    // staging parameters are sized.
    let mut effective_sigma_s = args.sigma_s;
    if let Some(path) = &args.calibrate {
        match read_calibration(path) {
            Calibration::Ratio(r) => {
                effective_sigma_s = args.sigma_s / r;
                println!(
                    "\ncalibration ({path}): measured / predicted shared traffic = {r:.2}x \
                     -> effective sigma_S {:.3} (was {:.3})",
                    effective_sigma_s, args.sigma_s
                );
            }
            Calibration::Unavailable(why) => {
                println!("\ncalibration ({path}): skipped — {why}");
            }
        }
    }

    // With --ram-mb the planner also sizes the out-of-core level: RAM
    // plays the role of the shared cache and disk the role of memory, so
    // the same §3.3 sizing yields the (alpha, beta) staging for
    // `mmc ooc multiply --mem-budget`.
    if let Some(ram_mb) = args.ram_mb {
        let budget_bytes = ram_mb as u64 * 1024 * 1024;
        let budget_blocks = budget_bytes / block_bytes as u64;
        println!("\nout-of-core staging for a {ram_mb} MiB RAM budget ({budget_blocks} blocks):");
        match params::ooc_staging(
            budget_blocks,
            multicore_matmul::ooc::RING_SLOTS,
            args.sigma_f,
            effective_sigma_s,
        ) {
            Some(s) => {
                let n = args.order;
                println!(
                    "  alpha = {}, beta = {} (ring depth {}, resident {} blocks = {:.1} MiB)",
                    s.alpha,
                    s.beta,
                    s.slots,
                    s.resident_blocks(),
                    s.resident_blocks() as f64 * block_bytes as f64 / (1 << 20) as f64
                );
                println!(
                    "  predicted disk traffic for the {n}x{n} block product: {} blocks \
                     ({:.1} MiB at sigma_F = {})",
                    s.disk_blocks(n, n, n),
                    s.disk_blocks(n, n, n) as f64 * block_bytes as f64 / (1 << 20) as f64,
                    args.sigma_f
                );
                println!(
                    "  run: mmc ooc multiply --a A.tiled --b B.tiled --out C.tiled \
                     --mem-budget {ram_mb}m"
                );
            }
            None => println!(
                "  infeasible: the budget holds fewer than {} blocks — raise --ram-mb or lower --q",
                1 + 2 * multicore_matmul::ooc::RING_SLOTS
            ),
        }
    }
}
