//! Quickstart: simulate all six algorithms of the paper on the
//! "realistic quad-core" preset, compare against closed forms and lower
//! bounds, then run one schedule on real data and verify the product.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use multicore_matmul::prelude::*;

fn main() {
    // The paper's §4.1 machine: 4 cores, 8 MB shared cache, 256 KB private
    // caches, q = 32 blocks → C_S = 977, C_D = 21 blocks.
    let machine = MachineConfig::quad_q32();
    let order = 120;
    let problem = ProblemSpec::square(order);

    println!(
        "machine: p = {}, C_S = {}, C_D = {} (blocks of {}x{})",
        machine.cores,
        machine.shared_capacity,
        machine.dist_capacity,
        machine.block_size,
        machine.block_size
    );
    println!("problem: C = A x B, square, order {order} blocks\n");

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "algorithm", "M_S", "M_D", "T_data", "pred. M_S", "pred. M_D"
    );
    for algo in all_algorithms() {
        // IDEAL policy at the declared capacities — the theoretical model.
        // Outer Product manages no residency: simulate it under plain LRU.
        let cfg = if algo.id() == "outer_product" {
            SimConfig::lru(&machine)
        } else {
            SimConfig::ideal(&machine)
        };
        let mut sim = Simulator::new(cfg, order, order, order);
        algo.execute(&machine, &problem, &mut sim).expect("preset is feasible");
        let stats = sim.stats();
        let pred = algo.predict(&machine, &problem);
        println!(
            "{:<18} {:>12} {:>12} {:>12.0} {:>14} {:>14}",
            algo.name(),
            stats.ms(),
            stats.md(),
            stats.t_data(machine.sigma_s, machine.sigma_d),
            pred.map(|p| format!("{:.0}", p.ms)).unwrap_or_else(|| "-".into()),
            pred.map(|p| format!("{:.0}", p.md)).unwrap_or_else(|| "-".into()),
        );
    }

    println!(
        "\nlower bounds: M_S >= {:.0}, M_D >= {:.0}, T_data >= {:.0}",
        bounds::ms_lower_bound(&problem, &machine),
        bounds::md_lower_bound(&problem, &machine),
        bounds::tdata_lower_bound(&problem, &machine),
    );
    println!(
        "tile parameters: lambda = {}, mu = {}, tradeoff = {:?}",
        params::lambda(&machine).unwrap(),
        params::mu(&machine).unwrap(),
        params::tradeoff_params(&machine).unwrap(),
    );

    // Now execute a schedule for real: small q to keep the example quick.
    let q = 8;
    let (m, n, z) = (12u32, 10, 9);
    let a = BlockMatrix::pseudo_random(m, z, q, 42);
    let b = BlockMatrix::pseudo_random(z, n, q, 43);
    let oracle = gemm_naive(&a, &b);
    let c = run_schedule(&Tradeoff::default(), &machine, &a, &b).unwrap();
    assert_eq!(c, oracle, "the Tradeoff schedule computes the exact product");
    let c2 = gemm_parallel(&a, &b, Tiling::shared_opt(&machine).unwrap());
    assert_eq!(c2, oracle);
    println!(
        "\nexecuted Tradeoff schedule and rayon Shared-Opt tiling on a \
         {}x{}x{} block problem (q = {q}): both bit-identical to the oracle ✓",
        m, n, z
    );
}
