//! Reuse-distance profiling: one pass over a schedule yields the LRU miss
//! curve for *every* shared-cache capacity — the whole Fig. 4 sweep (and
//! any capacity the paper didn't plot) from a single simulation.
//!
//! ```bash
//! cargo run --release --example reuse_profile -- shared_opt 60
//! ```

use multicore_matmul::prelude::*;
use multicore_matmul::sim::ProfilingSink;

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "shared_opt".to_string());
    let order: u32 = args.next().map(|s| s.parse().expect("order")).unwrap_or(60);

    let machine = MachineConfig::quad_q32();
    let algo: Box<dyn Algorithm> = match which.as_str() {
        "shared_opt" => Box::new(SharedOpt),
        "distributed_opt" => Box::new(DistributedOpt::default()),
        "tradeoff" => Box::new(Tradeoff::default()),
        "outer_product" => Box::new(OuterProduct::default()),
        "shared_equal" => Box::new(SharedEqual),
        "distributed_equal" => Box::new(DistributedEqual::default()),
        other => {
            eprintln!("unknown algorithm {other}");
            std::process::exit(2);
        }
    };

    let problem = ProblemSpec::square(order);
    let mut sink = ProfilingSink::new(problem.block_space(), machine.cores, machine.dist_capacity);
    algo.execute(&machine, &problem, &mut sink).expect("schedule runs");

    println!(
        "{} on a {order}x{order}x{order} block product (private caches fixed at C_D = {}):",
        algo.name(),
        machine.dist_capacity
    );
    println!(
        "shared-level stream: {} accesses, {} distinct blocks, deepest reuse {}",
        sink.shared_profile.accesses(),
        sink.shared_profile.distinct(),
        sink.shared_profile.working_set()
    );

    println!("\n{:>10} {:>14} {:>12}", "C_S", "LRU misses", "CCR_S");
    let fmas: u64 = sink.fmas.iter().sum();
    for cs in [64usize, 128, 245, 488, 700, 931, 977, 1200, 1954, 4000] {
        let misses = sink.shared_profile.misses_for_capacity(cs);
        println!("{:>10} {:>14} {:>12.4}", cs, misses, misses as f64 / fmas as f64);
    }
    println!(
        "\nlower bound at C_S = 977: CCR_S >= {:.4}  (sqrt(27/(8*977)))",
        bounds::ccr_lower_bound(977)
    );

    println!("\nper-core distributed miss curve (core 0):");
    println!("{:>10} {:>14}", "C_D", "LRU misses");
    for cd in [3usize, 8, 16, 21, 42, 100] {
        println!("{:>10} {:>14}", cd, sink.dist_profiles[0].misses_for_capacity(cd));
    }
}
