//! Clusters of multicores: the paper's concluding future work.
//!
//! Simulates a 4-node cluster (each node a quad-core with the paper's
//! q=32 caches, behind a 16k-block node-level cache) and compares three
//! schedules per tree level: the hierarchy-aware multi-level Maximum
//! Reuse tiling, the flat two-level Distributed Opt (unaware of the node
//! level), and the cache-oblivious recursion.
//!
//! ```bash
//! cargo run --release --example cluster_hierarchy -- 256
//! ```

use multicore_matmul::prelude::*;
use multicore_matmul::sim::{TreeSimulator, TreeTopology};

fn main() {
    let order: u32 =
        std::env::args().nth(1).map(|s| s.parse().expect("matrix order")).unwrap_or(256);

    let topo = TreeTopology::cluster(4, 16384, 4, 977, 21);
    println!(
        "cluster: {} nodes x {} cores, caches per level: {:?} blocks",
        4,
        4,
        topo.levels.iter().map(|l| l.capacity).collect::<Vec<_>>()
    );
    let problem = ProblemSpec::square(order);
    println!("problem: square order {order} blocks ({} block FMAs)\n", problem.total_fmas());

    let flat_machine = MachineConfig::new(topo.cores(), 977 * 4, 21, 32);
    let h = HierarchicalMaxReuse::new(topo.clone());
    let tiling = h.tiling().expect("cluster hosts the hierarchical tiling");
    println!(
        "hierarchical tiling: super-tile {}x{}, per-level sides {:?}\n",
        tiling.super_tile.0, tiling.super_tile.1, tiling.sides
    );

    let mut results: Vec<(&str, multicore_matmul::sim::TreeStats)> = Vec::new();
    {
        let mut sim = TreeSimulator::new(topo.clone(), order, order, order);
        h.run(&problem, &mut sim).unwrap();
        results.push(("Hierarchical Max Reuse", sim.into_stats()));
    }
    {
        let mut sim = TreeSimulator::new(topo.clone(), order, order, order);
        DistributedOpt::default().execute(&flat_machine, &problem, &mut sim).unwrap();
        results.push(("Distributed Opt. (flat)", sim.into_stats()));
    }
    {
        let mut sim = TreeSimulator::new(topo.clone(), order, order, order);
        CacheOblivious::new().execute(&flat_machine, &problem, &mut sim).unwrap();
        results.push(("Cache Oblivious", sim.into_stats()));
    }

    println!(
        "{:<26} {:>14} {:>14} {:>14} {:>12}",
        "schedule", "node misses", "shared misses", "private misses", "T_data"
    );
    for (name, stats) in &results {
        println!(
            "{:<26} {:>14} {:>14} {:>14} {:>12.0}",
            name,
            stats.level_misses(0),
            stats.level_misses(1),
            stats.level_misses(2),
            stats.t_data(&topo),
        );
        assert_eq!(stats.total_fmas(), problem.total_fmas());
    }
    println!("\n(misses are the max over the concurrent nodes of each level)");
}
