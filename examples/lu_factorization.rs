//! LU factorization on the multicore cache model — the paper's stated
//! future work, built on its matrix-product kernels.
//!
//! Factors a block-diagonally-dominant matrix with three trailing-update
//! schedules (naive row stripes, Shared-Opt tiles, Tradeoff tiles),
//! verifies the factors, and compares the simulated cache misses of each
//! schedule against the Loomis–Whitney bound on the update stream.
//!
//! ```bash
//! cargo run --release --example lu_factorization -- 96 8
//! ```

use multicore_matmul::lu::{bounds as lu_bounds, exec, BlockedLu, SimLuHooks, UpdateTiling};
use multicore_matmul::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().map(|s| s.parse().expect("order")).unwrap_or(96);
    let w: u32 = args.next().map(|s| s.parse().expect("panel width")).unwrap_or(8);

    let machine = MachineConfig::quad_q32();
    println!(
        "blocked LU of a {n}x{n} block matrix on the q=32 quad-core \
         (panel width {w} blocks)\n"
    );

    // --- Real factorization + verification (small q keeps it quick) ----
    let q = 8;
    let a = exec::diagonally_dominant(n.min(24), q, 2026);
    for tiling in [UpdateTiling::RowStripes, UpdateTiling::SharedOpt, UpdateTiling::Tradeoff] {
        let mut m = a.clone();
        exec::lu_factor(&mut m, &machine, &BlockedLu::new(w.min(a.rows()), tiling))
            .expect("diagonally dominant input factors without pivoting");
        let r = exec::residual(&m, &a);
        println!("{tiling:?}: residual max|LU - A| / max|A| = {r:.3e}");
        assert!(r < 1e-10);
    }

    // --- Simulated cache behaviour of the update schedules --------------
    println!(
        "\nsimulated LRU misses at order {n} ({} trailing-update block FMAs):",
        lu_bounds::update_fmas(n as u64)
    );
    println!("{:<28} {:>12} {:>12} {:>10} {:>10}", "schedule", "M_S", "M_D", "CCR_S", "CCR_D");
    for (name, lu) in [
        ("row stripes, w=1", BlockedLu::new(1, UpdateTiling::RowStripes)),
        ("row stripes", BlockedLu::new(w, UpdateTiling::RowStripes)),
        ("Shared Opt. tiles", BlockedLu::new(w, UpdateTiling::SharedOpt)),
        ("Tradeoff tiles", BlockedLu::new(w, UpdateTiling::Tradeoff)),
    ] {
        let mut sim = Simulator::new(SimConfig::lru(&machine), n, n, 1);
        let mut hooks = SimLuHooks::new(&mut sim);
        lu.run(&machine, n, &mut hooks).expect("schedule runs");
        let stats = sim.stats();
        println!(
            "{:<28} {:>12} {:>12} {:>10.4} {:>10.4}",
            name,
            stats.ms(),
            stats.md(),
            stats.ccr_shared(),
            stats.ccr_dist(),
        );
    }
    println!(
        "\nupdate-stream lower bounds: M_S >= {:.0}, M_D >= {:.0}",
        lu_bounds::ms_lower_bound(n as u64, &machine),
        lu_bounds::md_lower_bound(n as u64, &machine),
    );
}
