//! The blocked LU schedule, written once and consumed twice.
//!
//! [`BlockedLu`] drives a [`LuHooks`] implementation through the
//! LAPACK-style panelized right-looking factorization at block
//! granularity:
//!
//! 1. factor a `w`-block-wide column panel (rank-1 block steps inside the
//!    panel, parallel `trsm`s down the column);
//! 2. triangular-solve the corresponding `U` block row against the
//!    panel's diagonal blocks;
//! 3. update the trailing submatrix with the `z = w` block GEMM
//!    `M' -= L_panel × U_panel` — this is where the paper's Maximum Reuse
//!    matrix-product scheduling plugs in (`UpdateTiling`), since the
//!    trailing update dominates the O(n³) work.
//!
//! Consumers: [`SimLuHooks`] streams the data movement into any
//! [`mmc_sim::SimSink`] (LRU simulation, profiling), and
//! `exec::ExecLuHooks` performs the arithmetic on a real
//! [`mmc_exec::BlockMatrix`]. Both walk the identical schedule, so the
//! misses we count belong to exactly the factorization we verify.
//!
//! The factored matrix lives in block coordinates `(i, j)` of an `n×n`
//! block matrix, mapped onto the simulator's id space as blocks of `C`
//! (`BlockSpace::new(n, n, 1)`).

use mmc_sim::{Block, MachineConfig, SimError, SimSink};

/// Errors from an LU schedule run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LuError {
    /// The simulator rejected an event.
    Sim(SimError),
    /// A diagonal block had a non-normal pivot during real execution.
    SingularPivot {
        /// Block row/column of the offending diagonal block.
        k: u32,
    },
    /// Bad configuration (zero panel width, non-square matrix, …).
    Invalid(String),
}

impl From<SimError> for LuError {
    fn from(e: SimError) -> LuError {
        LuError::Sim(e)
    }
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Sim(e) => write!(f, "simulation error: {e}"),
            LuError::SingularPivot { k } => {
                write!(f, "non-normal pivot in diagonal block ({k},{k}) — matrix needs pivoting")
            }
            LuError::Invalid(msg) => write!(f, "invalid LU configuration: {msg}"),
        }
    }
}

impl std::error::Error for LuError {}

/// Receiver of the block-level LU operations.
pub trait LuHooks {
    /// Factor diagonal block `(k, k)` in place.
    fn getrf(&mut self, core: usize, k: u32) -> Result<(), LuError>;
    /// `M[i,k] ← M[i,k] · U_kk⁻¹` (column-panel solve).
    fn trsm_col(&mut self, core: usize, k: u32, i: u32) -> Result<(), LuError>;
    /// `M[k,j] ← L_kk⁻¹ · M[k,j]` (row-panel solve).
    fn trsm_row(&mut self, core: usize, k: u32, j: u32) -> Result<(), LuError>;
    /// `M[i,j] ← M[i,j] − M[i,k] · M[k,j]` (trailing update).
    fn update(&mut self, core: usize, i: u32, k: u32, j: u32) -> Result<(), LuError>;
    /// All cores synchronize.
    fn barrier(&mut self) -> Result<(), LuError>;
}

/// How the trailing-submatrix GEMM is tiled across cores and caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UpdateTiling {
    /// Contiguous row stripes per core, plain triple loop (the naive
    /// baseline an out-of-the-box implementation would use).
    #[default]
    RowStripes,
    /// The Shared-Opt pattern: `λ×λ` tiles of the trailing matrix pinned
    /// in the shared cache, each tile row dealt element-wise to the cores
    /// (`λ` from `C_S` as in Algorithm 1).
    SharedOpt,
    /// The Tradeoff pattern: `α×α` tiles with `µ×µ` sub-blocks cyclically
    /// distributed on the `√p×√p` grid; the panel width plays the role of
    /// the `β` accumulation depth.
    Tradeoff,
}

/// Panelized right-looking blocked LU. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct BlockedLu {
    /// Panel width in blocks (`w ≥ 1`); the trailing GEMM runs at depth
    /// `z = w`.
    pub panel_width: u32,
    /// Trailing-update schedule.
    pub tiling: UpdateTiling,
}

impl Default for BlockedLu {
    fn default() -> BlockedLu {
        BlockedLu { panel_width: 1, tiling: UpdateTiling::RowStripes }
    }
}

/// Balanced contiguous chunk `idx` of `0..total` split `parts` ways.
fn chunk(total: u32, parts: u32, idx: u32) -> std::ops::Range<u32> {
    let (total, parts, idx) = (total as u64, parts as u64, idx as u64);
    ((idx * total / parts) as u32)..(((idx + 1) * total / parts) as u32)
}

impl BlockedLu {
    /// Construct with the given panel width and tiling.
    pub fn new(panel_width: u32, tiling: UpdateTiling) -> BlockedLu {
        BlockedLu { panel_width, tiling }
    }

    /// Drive `hooks` through the factorization of an `n×n` block matrix
    /// on `machine` (`machine` supplies the core count and, for the
    /// cache-aware tilings, `C_S`/`C_D`).
    pub fn run<H: LuHooks + ?Sized>(
        &self,
        machine: &MachineConfig,
        n: u32,
        hooks: &mut H,
    ) -> Result<(), LuError> {
        if self.panel_width == 0 {
            return Err(LuError::Invalid("panel width must be at least 1".into()));
        }
        if n == 0 {
            return Err(LuError::Invalid("matrix must have at least one block".into()));
        }
        let p = machine.cores as u32;
        let w = self.panel_width;
        let mut kp = 0;
        while kp < n {
            let pw = w.min(n - kp);
            // --- 1. Panel factorization (columns kp..kp+pw) -------------
            for t in 0..pw {
                let k = kp + t;
                hooks.getrf(0, k)?;
                // Column solves below the diagonal, rows chunked on cores.
                for core in 0..p {
                    for i in chunk(n - (k + 1), p, core) {
                        hooks.trsm_col(core as usize, k, k + 1 + i)?;
                    }
                }
                // Row solves *within the panel* only.
                for j in k + 1..kp + pw {
                    hooks.trsm_row(0, k, j)?;
                }
                // Rank-1 update restricted to the panel columns.
                for core in 0..p {
                    for ii in chunk(n - (k + 1), p, core) {
                        let i = k + 1 + ii;
                        for j in k + 1..kp + pw {
                            hooks.update(core as usize, i, k, j)?;
                        }
                    }
                }
                hooks.barrier()?;
            }
            // --- 2. U block row: columns right of the panel -------------
            for core in 0..p {
                for jj in chunk(n.saturating_sub(kp + pw), p, core) {
                    let j = kp + pw + jj;
                    for k in kp..kp + pw {
                        for t in kp..k {
                            hooks.update(core as usize, k, t, j)?;
                        }
                        hooks.trsm_row(core as usize, k, j)?;
                    }
                }
            }
            hooks.barrier()?;
            // --- 3. Trailing update: M' -= L_panel × U_panel ------------
            let base = kp + pw;
            if base < n {
                let trailing = n - base;
                match self.tiling {
                    UpdateTiling::RowStripes => {
                        for core in 0..p {
                            for ii in chunk(trailing, p, core) {
                                let i = base + ii;
                                for k in kp..kp + pw {
                                    for j in base..n {
                                        hooks.update(core as usize, i, k, j)?;
                                    }
                                }
                            }
                        }
                    }
                    UpdateTiling::SharedOpt => {
                        let lambda = mmc_core::params::lambda(machine).unwrap_or(1);
                        let mut i0 = 0;
                        while i0 < trailing {
                            let th = lambda.min(trailing - i0);
                            let mut j0 = 0;
                            while j0 < trailing {
                                let tw = lambda.min(trailing - j0);
                                for k in kp..kp + pw {
                                    for i in 0..th {
                                        for core in 0..p {
                                            for jj in chunk(tw, p, core) {
                                                hooks.update(
                                                    core as usize,
                                                    base + i0 + i,
                                                    k,
                                                    base + j0 + jj,
                                                )?;
                                            }
                                        }
                                    }
                                }
                                j0 += tw;
                            }
                            i0 += th;
                        }
                    }
                    UpdateTiling::Tradeoff => {
                        let (alpha, mu, rows, cols) =
                            match mmc_core::params::tradeoff_params(machine) {
                                Some(t) => (t.alpha, t.mu, t.grid.rows, t.grid.cols),
                                None => (p, 1, 1, p), // degenerate fallback grid
                            };
                        let mut i0 = 0;
                        while i0 < trailing {
                            let th = alpha.min(trailing - i0);
                            let mut j0 = 0;
                            while j0 < trailing {
                                let tw = alpha.min(trailing - j0);
                                for core in 0..p {
                                    let (r, cj) = (core % rows, core / rows);
                                    // Cyclic µ×µ sub-blocks of this tile.
                                    let mut si = r;
                                    while si * mu < th {
                                        let rlo = si * mu;
                                        let rhi = ((si + 1) * mu).min(th);
                                        let mut sj = cj;
                                        while sj * mu < tw {
                                            let clo = sj * mu;
                                            let chi = ((sj + 1) * mu).min(tw);
                                            for k in kp..kp + pw {
                                                for i in rlo..rhi {
                                                    for j in clo..chi {
                                                        hooks.update(
                                                            core as usize,
                                                            base + i0 + i,
                                                            k,
                                                            base + j0 + j,
                                                        )?;
                                                    }
                                                }
                                            }
                                            sj += cols;
                                        }
                                        si += rows;
                                    }
                                }
                                j0 += tw;
                            }
                            i0 += th;
                        }
                    }
                }
            }
            hooks.barrier()?;
            kp += pw;
        }
        Ok(())
    }
}

/// [`LuHooks`] consumer that streams the schedule's data movement into a
/// [`SimSink`] (the blocks live in the `C` plane of the sink's id space).
pub struct SimLuHooks<'a, S: SimSink + ?Sized> {
    sink: &'a mut S,
}

impl<'a, S: SimSink + ?Sized> SimLuHooks<'a, S> {
    /// Wrap a sink. Build the matching simulator/profiler with
    /// `BlockSpace::new(n, n, 1)`.
    pub fn new(sink: &'a mut S) -> SimLuHooks<'a, S> {
        SimLuHooks { sink }
    }
}

impl<S: SimSink + ?Sized> LuHooks for SimLuHooks<'_, S> {
    fn getrf(&mut self, core: usize, k: u32) -> Result<(), LuError> {
        let d = Block::c(k, k);
        self.sink.read(core, d)?;
        self.sink.write(core, d)?;
        Ok(())
    }
    fn trsm_col(&mut self, core: usize, k: u32, i: u32) -> Result<(), LuError> {
        self.sink.read(core, Block::c(k, k))?;
        self.sink.read(core, Block::c(i, k))?;
        self.sink.write(core, Block::c(i, k))?;
        Ok(())
    }
    fn trsm_row(&mut self, core: usize, k: u32, j: u32) -> Result<(), LuError> {
        self.sink.read(core, Block::c(k, k))?;
        self.sink.read(core, Block::c(k, j))?;
        self.sink.write(core, Block::c(k, j))?;
        Ok(())
    }
    fn update(&mut self, core: usize, i: u32, k: u32, j: u32) -> Result<(), LuError> {
        let (a, b, c) = (Block::c(i, k), Block::c(k, j), Block::c(i, j));
        self.sink.read(core, a)?;
        self.sink.read(core, b)?;
        self.sink.read(core, c)?;
        self.sink.fma(core, a, b, c)?;
        self.sink.write(core, c)?;
        Ok(())
    }
    fn barrier(&mut self) -> Result<(), LuError> {
        self.sink.barrier()?;
        Ok(())
    }
}

/// A hook that counts operations by kind (tests, quick volume checks).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingLuHooks {
    /// `getrf` calls.
    pub getrfs: u64,
    /// `trsm_col` calls.
    pub trsm_cols: u64,
    /// `trsm_row` calls.
    pub trsm_rows: u64,
    /// `update` calls.
    pub updates: u64,
    /// `barrier` calls.
    pub barriers: u64,
}

impl LuHooks for CountingLuHooks {
    fn getrf(&mut self, _core: usize, _k: u32) -> Result<(), LuError> {
        self.getrfs += 1;
        Ok(())
    }
    fn trsm_col(&mut self, _core: usize, _k: u32, _i: u32) -> Result<(), LuError> {
        self.trsm_cols += 1;
        Ok(())
    }
    fn trsm_row(&mut self, _core: usize, _k: u32, _j: u32) -> Result<(), LuError> {
        self.trsm_rows += 1;
        Ok(())
    }
    fn update(&mut self, _core: usize, _i: u32, _k: u32, _j: u32) -> Result<(), LuError> {
        self.updates += 1;
        Ok(())
    }
    fn barrier(&mut self) -> Result<(), LuError> {
        self.barriers += 1;
        Ok(())
    }
}

/// Exact operation counts of the blocked LU on an `n×n` block matrix
/// (independent of panel width): `getrf` = n, `trsm` = n(n−1)/2 each
/// side, `update` = Σ_{k<n} (n−1−k)² = (n−1)n(2n−1)/6.
pub fn expected_counts(n: u64) -> (u64, u64, u64) {
    let trsm = n * (n - 1) / 2;
    let updates = (n - 1) * n * (2 * n - 1) / 6;
    (n, trsm, updates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_sim::MachineConfig;

    #[test]
    fn operation_counts_are_invariant_across_panel_widths_and_tilings() {
        let machine = MachineConfig::quad_q32();
        let n = 12u32;
        let (g0, t0, u0) = expected_counts(n as u64);
        for w in [1u32, 2, 3, 4, 12, 20] {
            for tiling in
                [UpdateTiling::RowStripes, UpdateTiling::SharedOpt, UpdateTiling::Tradeoff]
            {
                let mut hooks = CountingLuHooks::default();
                BlockedLu::new(w, tiling).run(&machine, n, &mut hooks).unwrap();
                assert_eq!(hooks.getrfs, g0, "w={w} {tiling:?}");
                assert_eq!(hooks.trsm_cols + hooks.trsm_rows, 2 * t0, "w={w} {tiling:?}");
                assert_eq!(hooks.trsm_cols, t0, "w={w} {tiling:?}");
                assert_eq!(hooks.updates, u0, "w={w} {tiling:?}");
            }
        }
    }

    #[test]
    fn n1_has_single_factor_and_nothing_else() {
        let machine = MachineConfig::quad_q32();
        let mut hooks = CountingLuHooks::default();
        BlockedLu::default().run(&machine, 1, &mut hooks).unwrap();
        assert_eq!(hooks.getrfs, 1);
        assert_eq!(hooks.trsm_cols + hooks.trsm_rows + hooks.updates, 0);
    }

    #[test]
    fn zero_configs_rejected() {
        let machine = MachineConfig::quad_q32();
        let mut hooks = CountingLuHooks::default();
        assert!(BlockedLu::new(0, UpdateTiling::RowStripes).run(&machine, 4, &mut hooks).is_err());
        assert!(BlockedLu::default().run(&machine, 0, &mut hooks).is_err());
    }

    #[test]
    fn sim_hooks_count_misses_on_lru() {
        use mmc_sim::{SimConfig, SimSink as _, Simulator};
        let machine = MachineConfig::quad_q32();
        let n = 16u32;
        let mut sim = Simulator::new(SimConfig::lru(&machine), n, n, 1);
        let mut hooks = SimLuHooks::new(&mut sim);
        BlockedLu::new(4, UpdateTiling::SharedOpt).run(&machine, n, &mut hooks).unwrap();
        let (_, _, updates) = expected_counts(n as u64);
        assert_eq!(sim.stats().total_fmas(), updates);
        assert!(sim.stats().ms() >= (n as u64 * n as u64), "cold misses at least");
        let _ = sim.barrier();
    }
}
