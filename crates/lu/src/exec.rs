//! Real execution of the LU schedule on a [`BlockMatrix`], plus
//! verification helpers (unpack `L`/`U`, reconstruct, residual).

use crate::kernel::{block_fms, getrf_nopiv, trsm_left_lower_unit, trsm_right_upper, unpack_lu};
use crate::schedule::{BlockedLu, LuError, LuHooks};
use mmc_exec::{gemm_naive, BlockMatrix};
use mmc_sim::MachineConfig;

/// [`LuHooks`] consumer that performs the factorization in place.
///
/// Operand blocks of a single matrix alias each other, so reads of the
/// diagonal / panel blocks go through a scratch copy (`q²` doubles — noise
/// next to the `q³` kernel work).
pub struct ExecLuHooks<'m> {
    m: &'m mut BlockMatrix,
    scratch_a: Vec<f64>,
    scratch_b: Vec<f64>,
    kernel_flops: u64,
}

impl<'m> ExecLuHooks<'m> {
    /// Wrap a square block matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square in blocks.
    pub fn new(m: &'m mut BlockMatrix) -> ExecLuHooks<'m> {
        assert_eq!(m.rows(), m.cols(), "LU needs a square block matrix");
        let q2 = m.q() * m.q();
        ExecLuHooks { m, scratch_a: vec![0.0; q2], scratch_b: vec![0.0; q2], kernel_flops: 0 }
    }

    /// Rough flop count of the kernel calls performed.
    pub fn kernel_flops(&self) -> u64 {
        self.kernel_flops
    }
}

impl LuHooks for ExecLuHooks<'_> {
    fn getrf(&mut self, _core: usize, k: u32) -> Result<(), LuError> {
        let q = self.m.q();
        if !getrf_nopiv(self.m.block_mut(k, k), q) {
            return Err(LuError::SingularPivot { k });
        }
        self.kernel_flops += (2 * q * q * q / 3) as u64;
        Ok(())
    }

    fn trsm_col(&mut self, _core: usize, k: u32, i: u32) -> Result<(), LuError> {
        let q = self.m.q();
        self.scratch_a.copy_from_slice(self.m.block(k, k));
        if !trsm_right_upper(&self.scratch_a, self.m.block_mut(i, k), q) {
            return Err(LuError::SingularPivot { k });
        }
        self.kernel_flops += (q * q * q) as u64;
        Ok(())
    }

    fn trsm_row(&mut self, _core: usize, k: u32, j: u32) -> Result<(), LuError> {
        let q = self.m.q();
        self.scratch_a.copy_from_slice(self.m.block(k, k));
        trsm_left_lower_unit(&self.scratch_a, self.m.block_mut(k, j), q);
        self.kernel_flops += (q * q * q) as u64;
        Ok(())
    }

    fn update(&mut self, _core: usize, i: u32, k: u32, j: u32) -> Result<(), LuError> {
        let q = self.m.q();
        self.scratch_a.copy_from_slice(self.m.block(i, k));
        self.scratch_b.copy_from_slice(self.m.block(k, j));
        block_fms(self.m.block_mut(i, j), &self.scratch_a, &self.scratch_b, q);
        self.kernel_flops += (2 * q * q * q) as u64;
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), LuError> {
        Ok(())
    }
}

/// Factor `m` in place with the given blocked schedule. On success `m`
/// holds the packed factors (`L` strictly below the block diagonal plus
/// packed `LU` diagonal blocks, `U` above).
pub fn lu_factor(
    m: &mut BlockMatrix,
    machine: &MachineConfig,
    schedule: &BlockedLu,
) -> Result<(), LuError> {
    let n = m.rows();
    let mut hooks = ExecLuHooks::new(m);
    schedule.run(machine, n, &mut hooks)
}

/// Unpack a factored matrix into explicit `(L, U)` block matrices
/// (`L` unit lower, `U` upper).
pub fn unpack(m: &BlockMatrix) -> (BlockMatrix, BlockMatrix) {
    let (n, q) = (m.rows(), m.q());
    let mut l = BlockMatrix::zeros(n, n, q);
    let mut u = BlockMatrix::zeros(n, n, q);
    for i in 0..n {
        for j in 0..n {
            match i.cmp(&j) {
                std::cmp::Ordering::Greater => l.block_mut(i, j).copy_from_slice(m.block(i, j)),
                std::cmp::Ordering::Less => u.block_mut(i, j).copy_from_slice(m.block(i, j)),
                std::cmp::Ordering::Equal => {
                    let (lb, ub) = unpack_lu(m.block(i, j), q);
                    l.block_mut(i, j).copy_from_slice(&lb);
                    u.block_mut(i, j).copy_from_slice(&ub);
                }
            }
        }
    }
    (l, u)
}

/// `max |(L·U − A)| / max |A|`: the relative reconstruction residual of a
/// factorization of `a`.
pub fn residual(factored: &BlockMatrix, original: &BlockMatrix) -> f64 {
    let (l, u) = unpack(factored);
    let recon = gemm_naive(&l, &u);
    let norm = original.data().iter().fold(0.0f64, |m, &x| m.max(x.abs())).max(1e-300);
    recon.max_abs_diff(original) / norm
}

/// A reproducible block-diagonally-dominant test matrix (safe for
/// unpivoted LU).
pub fn diagonally_dominant(n: u32, q: usize, seed: u64) -> BlockMatrix {
    let dim = n as usize * q;
    BlockMatrix::from_fn(n, n, q, |i, j| {
        let mut x = seed ^ ((i as u64) << 32 | j as u64).wrapping_mul(0x9E3779B97F4A7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
        let v = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        if i == j {
            v + dim as f64 // strict diagonal dominance
        } else {
            v
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::UpdateTiling;

    #[test]
    fn factorization_reconstructs_the_matrix() {
        let machine = MachineConfig::quad_q32();
        for (n, q) in [(1u32, 4usize), (4, 4), (7, 3), (10, 5)] {
            let a = diagonally_dominant(n, q, 42);
            let mut m = a.clone();
            lu_factor(&mut m, &machine, &BlockedLu::default()).unwrap();
            let r = residual(&m, &a);
            assert!(r < 1e-10, "n={n} q={q}: residual {r}");
        }
    }

    #[test]
    fn panel_widths_and_tilings_agree_bit_exactly() {
        // Every tiling applies each block's updates in ascending k order,
        // so the factors are bit-identical across configurations.
        let machine = MachineConfig::quad_q32();
        let a = diagonally_dominant(12, 4, 7);
        let reference = {
            let mut m = a.clone();
            lu_factor(&mut m, &machine, &BlockedLu::default()).unwrap();
            m
        };
        for w in [2u32, 3, 4, 12] {
            for tiling in
                [UpdateTiling::RowStripes, UpdateTiling::SharedOpt, UpdateTiling::Tradeoff]
            {
                let mut m = a.clone();
                lu_factor(&mut m, &machine, &BlockedLu::new(w, tiling)).unwrap();
                assert_eq!(m, reference, "w={w}, {tiling:?}");
            }
        }
    }

    #[test]
    fn singular_matrix_reports_pivot_failure() {
        let machine = MachineConfig::quad_q32();
        let mut m = BlockMatrix::zeros(3, 3, 4); // all-zero: immediately singular
        assert!(matches!(
            lu_factor(&mut m, &machine, &BlockedLu::default()),
            Err(LuError::SingularPivot { k: 0 })
        ));
    }

    #[test]
    fn unpack_splits_triangles() {
        let machine = MachineConfig::quad_q32();
        let a = diagonally_dominant(3, 2, 5);
        let mut m = a.clone();
        lu_factor(&mut m, &machine, &BlockedLu::default()).unwrap();
        let (l, u) = unpack(&m);
        // L strictly upper blocks zero, U strictly lower blocks zero.
        for i in 0..3 {
            for j in 0..3 {
                if j > i {
                    assert!(l.block(i, j).iter().all(|&x| x == 0.0));
                }
                if j < i {
                    assert!(u.block(i, j).iter().all(|&x| x == 0.0));
                }
            }
        }
        // Unit diagonal of L at element level.
        for i in 0..3 {
            let blk = l.block(i, i);
            for e in 0..2 {
                assert_eq!(blk[e * 2 + e], 1.0);
            }
        }
    }

    #[test]
    fn kernel_flops_are_accounted() {
        let machine = MachineConfig::quad_q32();
        let a = diagonally_dominant(6, 4, 11);
        let mut m = a.clone();
        let mut hooks = ExecLuHooks::new(&mut m);
        BlockedLu::default().run(&machine, 6, &mut hooks).unwrap();
        // Dominated by updates: (n-1)n(2n-1)/6 · 2q³.
        let updates = 5u64 * 6 * 11 / 6;
        assert!(hooks.kernel_flops() >= updates * 2 * 64);
    }
}
