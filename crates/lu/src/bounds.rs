//! Communication analysis for the blocked LU extension.
//!
//! The trailing-update GEMMs perform `Σ_{k<n} (n−1−k)² = (n−1)n(2n−1)/6`
//! block FMAs — asymptotically `n³/3`, the dominant work — and each one is
//! a conventional matrix product, so the Loomis–Whitney bound of the paper
//! (§2.3) applies verbatim to the update stream: any schedule through a
//! cache of `Z` blocks pays at least `√(27/(8Z))` misses per block FMA on
//! that stream.

use mmc_core::bounds::ccr_lower_bound;
use mmc_sim::MachineConfig;

/// Block FMAs performed by the trailing updates of an `n×n` blocked LU.
pub fn update_fmas(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        (n - 1) * n * (2 * n - 1) / 6
    }
}

/// Block-level `trsm` solves (each side) of an `n×n` blocked LU.
pub fn trsm_count(n: u64) -> u64 {
    n * (n - 1) / 2
}

/// Lower bound on shared-cache misses attributable to the update stream.
pub fn ms_lower_bound(n: u64, machine: &MachineConfig) -> f64 {
    update_fmas(n) as f64 * ccr_lower_bound(machine.shared_capacity)
}

/// Lower bound on per-core distributed misses of the update stream
/// (balanced-work assumption, as in the paper §2.3.4).
pub fn md_lower_bound(n: u64, machine: &MachineConfig) -> f64 {
    update_fmas(n) as f64 / machine.cores as f64 * ccr_lower_bound(machine.dist_capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_count_matches_sum_of_squares() {
        for n in 0..50u64 {
            let direct: u64 = (0..n).map(|k| (n - 1 - k) * (n - 1 - k)).sum();
            assert_eq!(update_fmas(n), direct, "n={n}");
        }
    }

    #[test]
    fn asymptotics_are_cubic_over_three() {
        let n = 1000u64;
        let ratio = update_fmas(n) as f64 / (n as f64).powi(3);
        assert!((ratio - 1.0 / 3.0).abs() < 2e-3);
    }

    #[test]
    fn bounds_scale_with_problem() {
        let m = MachineConfig::quad_q32();
        assert!(ms_lower_bound(64, &m) > 0.0);
        let r = ms_lower_bound(128, &m) / ms_lower_bound(64, &m);
        assert!((r - 8.0).abs() < 0.5, "roughly cubic scaling, got {r}");
        assert!(md_lower_bound(64, &m) < ms_lower_bound(64, &m) * 2.0);
    }
}
