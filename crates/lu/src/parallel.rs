//! Rayon-parallel blocked LU.
//!
//! The sequential [`exec`](crate::exec) path replays the schedule through
//! hooks; this module runs the same factorization with real parallelism:
//! the column-panel solves, the `U` block-row solves and the trailing
//! update — everything outside the tiny diagonal factor — fan out over a
//! rayon pool. Each parallel region writes disjoint blocks, and every
//! block's updates apply in ascending `k` order. The Schur-complement
//! trailing update runs through the packed 5-loop
//! [`gemm_accumulate`] (with `L` negated during extraction, so the
//! kernel's `+=` applies the subtraction); the packed micro-kernel
//! associates its FMAs differently from the blockwise stripes, so the
//! parallel result agrees with the sequential factorization to rounding
//! (tests bound `max_abs_diff`), not bit-for-bit.

use crate::kernel::{block_fms, getrf_nopiv, trsm_left_lower_unit, trsm_right_upper};
use crate::schedule::LuError;
use mmc_exec::{gemm_accumulate, kernel, BlockMatrix, Tiling};
use rayon::prelude::*;

/// Raw-pointer wrapper for disjoint-block writes from rayon tasks.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: every parallel region below hands each task a disjoint set of
// block indices; no block is written by two tasks in one region, and
// regions are separated by the implicit joins of rayon's scope.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    #[inline]
    fn get(self) -> *mut f64 {
        self.0
    }
}

/// `q²`-element mutable slice of block `(i, j)` behind the raw pointer.
///
/// # Safety
/// Caller must guarantee `(i, j)` is in bounds and not aliased by any
/// concurrent access.
#[inline]
unsafe fn block_mut<'a>(p: SendPtr, n: usize, q2: usize, i: u32, j: u32) -> &'a mut [f64] {
    std::slice::from_raw_parts_mut(p.get().add((i as usize * n + j as usize) * q2), q2)
}

/// Shared (read-only) view of block `(i, j)`.
///
/// # Safety
/// Caller must guarantee `(i, j)` is in bounds and not concurrently
/// written.
#[inline]
unsafe fn block_ref<'a>(p: SendPtr, n: usize, q2: usize, i: u32, j: u32) -> &'a [f64] {
    std::slice::from_raw_parts(p.get().add((i as usize * n + j as usize) * q2), q2)
}

/// Factor `m` in place, panel width `w`, with rayon-parallel solves and
/// trailing updates. Bit-identical to
/// [`lu_factor`](crate::exec::lu_factor) with any tiling.
pub fn lu_factor_parallel(m: &mut BlockMatrix, w: u32) -> Result<(), LuError> {
    if w == 0 {
        return Err(LuError::Invalid("panel width must be at least 1".into()));
    }
    assert_eq!(m.rows(), m.cols(), "LU needs a square block matrix");
    let n = m.rows();
    let q = m.q();
    let q2 = q * q;
    let ncols = n as usize;
    let ptr = SendPtr(m.data_mut().as_mut_ptr());

    let mut kp = 0;
    while kp < n {
        let pw = w.min(n - kp);
        // --- 1. Panel factorization --------------------------------------
        for t in 0..pw {
            let k = kp + t;
            // SAFETY: exclusive access (no parallelism around this call).
            let diag = unsafe { block_mut(ptr, ncols, q2, k, k) };
            if !getrf_nopiv(diag, q) {
                return Err(LuError::SingularPivot { k });
            }
            let diag_copy = diag.to_vec();
            // Column solves: disjoint target blocks (i, k), i > k.
            let col_err = (k + 1..n)
                .into_par_iter()
                .map(|i| {
                    // SAFETY: each task owns block (i, k) exclusively; the
                    // diagonal is read from the private copy.
                    let target = unsafe { block_mut(ptr, ncols, q2, i, k) };
                    if trsm_right_upper(&diag_copy, target, q) {
                        Ok(())
                    } else {
                        Err(LuError::SingularPivot { k })
                    }
                })
                .find_any(|r| r.is_err());
            if let Some(err) = col_err {
                err?;
            }
            // Row solves within the panel: disjoint blocks (k, j).
            (k + 1..kp + pw).into_par_iter().for_each(|j| {
                // SAFETY: each task owns block (k, j) exclusively.
                let target = unsafe { block_mut(ptr, ncols, q2, k, j) };
                trsm_left_lower_unit(&diag_copy, target, q);
            });
            // Rank-1 update inside the panel: row stripes, disjoint (i, j).
            (k + 1..n).into_par_iter().for_each(|i| {
                for j in k + 1..kp + pw {
                    // SAFETY: task `i` owns row `i`; (i,k) and (k,j) are
                    // finalized by the joins above and only read.
                    let (a, b) = unsafe {
                        (block_ref(ptr, ncols, q2, i, k), block_ref(ptr, ncols, q2, k, j))
                    };
                    let c = unsafe { block_mut(ptr, ncols, q2, i, j) };
                    block_fms(c, a, b, q);
                }
            });
        }
        // --- 2. U block row right of the panel ---------------------------
        let base = kp + pw;
        if base < n {
            (base..n).into_par_iter().for_each(|j| {
                for k in kp..kp + pw {
                    for t in kp..k {
                        // SAFETY: column j is owned by this task; panel
                        // blocks (k, t) are read-only here.
                        let (a, b) = unsafe {
                            (block_ref(ptr, ncols, q2, k, t), block_ref(ptr, ncols, q2, t, j))
                        };
                        let c = unsafe { block_mut(ptr, ncols, q2, k, j) };
                        block_fms(c, a, b, q);
                    }
                    // SAFETY: diagonal (k, k) finalized in step 1.
                    let diag = unsafe { block_ref(ptr, ncols, q2, k, k) };
                    let target = unsafe { block_mut(ptr, ncols, q2, k, j) };
                    trsm_left_lower_unit(diag, target, q);
                }
            });
            // --- 3. Trailing update: packed Schur complement -------------
            // C[base.., base..] -= L[base.., kp..base] · U[kp..base, base..]
            // through the packed 5-loop `gemm_accumulate`: `L` is negated
            // during extraction so the kernel's `+=` applies the
            // subtraction, and the whole panel width goes in one call
            // (ascending `k` inside the packed panels, like the stripes
            // this replaces — only the FMA association differs).
            let tn = n - base;
            let mut lneg = BlockMatrix::zeros(tn, pw, q);
            let mut upan = BlockMatrix::zeros(pw, tn, q);
            let mut csub = BlockMatrix::zeros(tn, tn, q);
            for i in 0..tn {
                for k in 0..pw {
                    // SAFETY: exclusive access between parallel regions.
                    let src = unsafe { block_ref(ptr, ncols, q2, base + i, kp + k) };
                    for (d, s) in lneg.block_mut(i, k).iter_mut().zip(src) {
                        *d = -*s;
                    }
                }
            }
            for k in 0..pw {
                for j in 0..tn {
                    // SAFETY: as above.
                    let src = unsafe { block_ref(ptr, ncols, q2, kp + k, base + j) };
                    upan.block_mut(k, j).copy_from_slice(src);
                }
            }
            for i in 0..tn {
                for j in 0..tn {
                    // SAFETY: as above.
                    let src = unsafe { block_ref(ptr, ncols, q2, base + i, base + j) };
                    csub.block_mut(i, j).copy_from_slice(src);
                }
            }
            // Row-stripe tiles keep the update's rayon granularity.
            let tiling = Tiling { tile_m: 1, tile_n: tn, tile_k: pw };
            gemm_accumulate(&mut csub, &lneg, &upan, tiling, kernel::variant());
            for i in 0..tn {
                for j in 0..tn {
                    // SAFETY: as above.
                    let dst = unsafe { block_mut(ptr, ncols, q2, base + i, base + j) };
                    dst.copy_from_slice(csub.block(i, j));
                }
            }
        }
        kp += pw;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{diagonally_dominant, lu_factor, residual};
    use crate::schedule::{BlockedLu, UpdateTiling};
    use mmc_sim::MachineConfig;

    #[test]
    fn parallel_matches_sequential_to_rounding() {
        let machine = MachineConfig::quad_q32();
        let a = diagonally_dominant(14, 5, 3);
        let mut reference = a.clone();
        lu_factor(&mut reference, &machine, &BlockedLu::new(4, UpdateTiling::RowStripes)).unwrap();
        for w in [1u32, 2, 4, 7, 14, 30] {
            let mut m = a.clone();
            lu_factor_parallel(&mut m, w).unwrap();
            // The packed trailing update reassociates FMAs, so equality
            // holds to rounding, not bit-for-bit.
            assert!(m.max_abs_diff(&reference) < 1e-11, "w={w}");
        }
    }

    #[test]
    fn parallel_residual_is_tiny() {
        let a = diagonally_dominant(12, 8, 9);
        let mut m = a.clone();
        lu_factor_parallel(&mut m, 4).unwrap();
        assert!(residual(&m, &a) < 1e-11);
    }

    #[test]
    fn singular_pivot_detected_in_parallel() {
        let mut m = mmc_exec::BlockMatrix::zeros(4, 4, 4);
        assert!(matches!(lu_factor_parallel(&mut m, 2), Err(LuError::SingularPivot { k: 0 })));
    }

    #[test]
    fn zero_panel_width_rejected() {
        let mut m = diagonally_dominant(4, 4, 1);
        assert!(lu_factor_parallel(&mut m, 0).is_err());
    }

    #[test]
    fn n1_matrix_works() {
        let a = diagonally_dominant(1, 6, 2);
        let mut m = a.clone();
        lu_factor_parallel(&mut m, 3).unwrap();
        assert!(residual(&m, &a) < 1e-12);
    }
}
