//! Scalar kernels on `q×q` blocks for the blocked LU factorization:
//! in-block factorization, triangular solves, and the subtractive
//! multiply (`C -= A·B`) used by trailing updates.
//!
//! All blocks are dense row-major `q×q` tiles (the same layout as
//! `mmc-exec`). Factorization is **without pivoting** — the extension
//! targets diagonally dominant / SPD-like systems, as is conventional for
//! cache-complexity studies of LU (pivoting permutes rows but does not
//! change the communication pattern the analysis cares about).

/// In-place unpivoted LU of one `q×q` block: on return the strictly lower
/// triangle holds `L` (unit diagonal implied) and the upper triangle
/// (with diagonal) holds `U`.
///
/// Returns `false` if a zero (or subnormal-tiny) pivot was hit; the
/// factorization is then invalid — callers surface this as an error.
#[must_use]
pub fn getrf_nopiv(a: &mut [f64], q: usize) -> bool {
    debug_assert!(a.len() >= q * q);
    for k in 0..q {
        let pivot = a[k * q + k];
        if !pivot.is_normal() {
            return false;
        }
        for i in k + 1..q {
            let lik = a[i * q + k] / pivot;
            a[i * q + k] = lik;
            for j in k + 1..q {
                a[i * q + j] -= lik * a[k * q + j];
            }
        }
    }
    true
}

/// Solve `L · X = B` where `L` is the unit-lower triangle packed in
/// `lu` and `X` overwrites `b` (forward substitution on block rows).
pub fn trsm_left_lower_unit(lu: &[f64], b: &mut [f64], q: usize) {
    debug_assert!(lu.len() >= q * q && b.len() >= q * q);
    for i in 1..q {
        for k in 0..i {
            let lik = lu[i * q + k];
            if lik == 0.0 {
                continue;
            }
            for j in 0..q {
                b[i * q + j] -= lik * b[k * q + j];
            }
        }
    }
}

/// Solve `X · U = A` where `U` is the (non-unit) upper triangle packed in
/// `lu` and `X` overwrites `a` (column-oriented back substitution).
///
/// Returns `false` on a non-normal diagonal entry.
#[must_use]
pub fn trsm_right_upper(lu: &[f64], a: &mut [f64], q: usize) -> bool {
    debug_assert!(lu.len() >= q * q && a.len() >= q * q);
    for j in 0..q {
        let ujj = lu[j * q + j];
        if !ujj.is_normal() {
            return false;
        }
        for i in 0..q {
            let mut acc = a[i * q + j];
            for k in 0..j {
                acc -= a[i * q + k] * lu[k * q + j];
            }
            a[i * q + j] = acc / ujj;
        }
    }
    true
}

/// `c -= a × b` on row-major `q×q` blocks (the trailing-update GEMM).
#[inline]
pub fn block_fms(c: &mut [f64], a: &[f64], b: &[f64], q: usize) {
    debug_assert!(c.len() >= q * q && a.len() >= q * q && b.len() >= q * q);
    for i in 0..q {
        let c_row = &mut c[i * q..(i + 1) * q];
        let a_row = &a[i * q..(i + 1) * q];
        for k in 0..q {
            let aik = a_row[k];
            let b_row = &b[k * q..(k + 1) * q];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv -= aik * *bv;
            }
        }
    }
}

/// Split a packed in-block LU into explicit `(L, U)` dense blocks
/// (`L` with unit diagonal). For verification and unpacking.
pub fn unpack_lu(lu: &[f64], q: usize) -> (Vec<f64>, Vec<f64>) {
    let mut l = vec![0.0; q * q];
    let mut u = vec![0.0; q * q];
    for i in 0..q {
        for j in 0..q {
            let v = lu[i * q + j];
            match i.cmp(&j) {
                std::cmp::Ordering::Greater => l[i * q + j] = v,
                std::cmp::Ordering::Equal => {
                    l[i * q + j] = 1.0;
                    u[i * q + j] = v;
                }
                std::cmp::Ordering::Less => u[i * q + j] = v,
            }
        }
    }
    (l, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul(a: &[f64], b: &[f64], q: usize) -> Vec<f64> {
        let mut c = vec![0.0; q * q];
        for i in 0..q {
            for k in 0..q {
                for j in 0..q {
                    c[i * q + j] += a[i * q + k] * b[k * q + j];
                }
            }
        }
        c
    }

    fn diag_dominant(q: usize, seed: u64) -> Vec<f64> {
        let mut a = vec![0.0; q * q];
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for i in 0..q {
            for j in 0..q {
                a[i * q + j] = next();
            }
            a[i * q + i] += q as f64; // strict diagonal dominance
        }
        a
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn getrf_reconstructs_the_block() {
        for q in [1usize, 2, 3, 5, 8, 16] {
            let a = diag_dominant(q, q as u64);
            let mut lu = a.clone();
            assert!(getrf_nopiv(&mut lu, q), "q={q}");
            let (l, u) = unpack_lu(&lu, q);
            let recon = matmul(&l, &u, q);
            assert!(max_abs_diff(&recon, &a) < 1e-9 * q as f64, "q={q}");
        }
    }

    #[test]
    fn getrf_detects_zero_pivot() {
        let mut a = vec![0.0, 1.0, 1.0, 0.0]; // a[0][0] = 0
        assert!(!getrf_nopiv(&mut a, 2));
    }

    #[test]
    fn trsm_left_solves_unit_lower_system() {
        let q = 6;
        let a = diag_dominant(q, 3);
        let mut lu = a.clone();
        assert!(getrf_nopiv(&mut lu, q));
        let (l, _) = unpack_lu(&lu, q);
        let b = diag_dominant(q, 7);
        let mut x = b.clone();
        trsm_left_lower_unit(&lu, &mut x, q);
        // L·X must equal B.
        let recon = matmul(&l, &x, q);
        assert!(max_abs_diff(&recon, &b) < 1e-10 * q as f64);
    }

    #[test]
    fn trsm_right_solves_upper_system() {
        let q = 6;
        let a = diag_dominant(q, 4);
        let mut lu = a.clone();
        assert!(getrf_nopiv(&mut lu, q));
        let (_, u) = unpack_lu(&lu, q);
        let b = diag_dominant(q, 9);
        let mut x = b.clone();
        assert!(trsm_right_upper(&lu, &mut x, q));
        // X·U must equal B.
        let recon = matmul(&x, &u, q);
        assert!(max_abs_diff(&recon, &b) < 1e-9 * q as f64);
    }

    #[test]
    fn block_fms_subtracts_product() {
        let q = 4;
        let a = diag_dominant(q, 1);
        let b = diag_dominant(q, 2);
        let prod = matmul(&a, &b, q);
        let mut c = prod.clone();
        block_fms(&mut c, &a, &b, q);
        assert!(c.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn unpack_is_triangular() {
        let q = 5;
        let lu: Vec<f64> = (0..q * q).map(|i| i as f64 + 1.0).collect();
        let (l, u) = unpack_lu(&lu, q);
        for i in 0..q {
            assert_eq!(l[i * q + i], 1.0);
            for j in 0..q {
                if j > i {
                    assert_eq!(l[i * q + j], 0.0);
                }
                if j < i {
                    assert_eq!(u[i * q + j], 0.0);
                }
            }
        }
    }
}
