//! # mmc-lu — blocked LU factorization on the multicore cache model
//!
//! The paper's stated future work ("we will tackle more complex
//! operations, such as LU factorization", §6), built from the pieces this
//! workspace already has:
//!
//! * a panelized right-looking **blocked LU schedule** ([`BlockedLu`])
//!   whose trailing-submatrix updates — the `O(n³)` bulk of the work —
//!   are scheduled with the paper's Maximum Reuse matrix-product tilings
//!   ([`UpdateTiling::SharedOpt`], [`UpdateTiling::Tradeoff`]) or a naive
//!   row-stripe baseline;
//! * the same *one schedule, many consumers* architecture as the matrix
//!   product: [`SimLuHooks`] streams the data movement into any
//!   [`mmc_sim::SimSink`] (LRU simulation, reuse-distance profiling),
//!   while [`exec::ExecLuHooks`] performs the real arithmetic on a
//!   [`mmc_exec::BlockMatrix`] — unpivoted, so inputs should be
//!   diagonally dominant (see [`exec::diagonally_dominant`]);
//! * block kernels ([`kernel`]): unpivoted `getrf`, both triangular
//!   solves, and the subtractive product;
//! * the Loomis–Whitney analysis applied to the update stream
//!   ([`bounds`]).
//!
//! ```
//! use mmc_lu::{exec, BlockedLu, UpdateTiling};
//! use mmc_sim::MachineConfig;
//!
//! let machine = MachineConfig::quad_q32();
//! let a = exec::diagonally_dominant(6, 8, 1);
//! let mut m = a.clone();
//! exec::lu_factor(&mut m, &machine, &BlockedLu::new(2, UpdateTiling::SharedOpt)).unwrap();
//! assert!(exec::residual(&m, &a) < 1e-10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod exec;
pub mod kernel;
pub mod parallel;
pub mod schedule;

pub use exec::{lu_factor, residual, ExecLuHooks};
pub use parallel::lu_factor_parallel;
pub use schedule::{BlockedLu, CountingLuHooks, LuError, LuHooks, SimLuHooks, UpdateTiling};
