//! Predicted-vs-measured drift reports over traced spans.
//!
//! The paper's contribution is a *closed-form* cost model; this module
//! is where the model is held to account per phase rather than in
//! aggregate. Each traced phase (a 5-loop level, a pack side, an ooc
//! pipeline stage) contributes one [`PhaseSample`]: its measured wall
//! time next to the time the closed forms predict for the same work
//! (FLOPs over the roofline peak for compute phases, bytes over the
//! measured stream bandwidth for traffic phases, the `T_data` three-term
//! split for out-of-core stages). [`DriftReport::from_samples`] turns
//! the samples into measured/predicted ratios, flags every phase whose
//! ratio leaves the configured band, and serializes with the shared
//! [`crate::SCHEMA_VERSION`] stamp.
//!
//! Ratios are **always finite**: a missing or non-positive prediction
//! falls back to [`MIN_PREDICTION`] so a drift consumer (the CI
//! `trace-smoke` job, the future `mmc serve` admission controller) can
//! compare and sort ratios without NaN/inf special cases.

use serde::{Deserialize, Serialize};

use crate::SCHEMA_VERSION;

/// Floor substituted for non-positive or non-finite predictions so
/// ratios stay finite (microseconds / units).
pub const MIN_PREDICTION: f64 = 1e-9;

/// Default relative band: a phase is in band while
/// `max(ratio, 1/ratio) <= 1 + band`. The closed forms are floors
/// (no overheads), so the default tolerates a 2x gap before flagging.
pub const DEFAULT_BAND: f64 = 1.0;

/// Raw per-phase aggregate handed to [`DriftReport::from_samples`] by an
/// instrumented runner.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSample {
    /// Stable phase name (`jc`, `pc`, `ic`, `pack_a`, `read`, ...).
    pub phase: String,
    /// Number of spans aggregated into this phase.
    pub spans: u64,
    /// Summed measured wall time, microseconds.
    pub measured_us: f64,
    /// Summed predicted time from the closed forms, microseconds.
    pub predicted_us: f64,
    /// Unit of the work counters below (`flop`, `byte`, `ns`).
    pub unit: String,
    /// Actual work the phase performed, in `unit`s.
    pub measured_units: f64,
    /// Work the closed forms assign to the phase, in `unit`s.
    pub predicted_units: f64,
}

/// One phase of a drift report: measured vs predicted, with the ratio
/// and band verdict precomputed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseDrift {
    /// Stable phase name (`jc`, `pc`, `ic`, `pack_a`, `read`, ...).
    pub phase: String,
    /// Number of spans aggregated into this phase.
    pub spans: u64,
    /// Summed measured wall time, microseconds.
    pub measured_us: f64,
    /// Summed predicted time, microseconds (floored at
    /// [`MIN_PREDICTION`] before the ratio).
    pub predicted_us: f64,
    /// `measured_us / predicted_us` — always finite, `> 1` means slower
    /// than the model.
    pub ratio: f64,
    /// Unit of the work counters (`flop`, `byte`, `ns`).
    pub unit: String,
    /// Actual work performed, in `unit`s.
    pub measured_units: f64,
    /// Work the closed forms assign, in `unit`s.
    pub predicted_units: f64,
    /// `measured_units / predicted_units` — always finite; `1.0` means
    /// the instrumentation accounts for exactly the modeled work.
    pub units_ratio: f64,
    /// Whether `ratio` stays within the report's band.
    pub in_band: bool,
}

/// A structured drift report for one traced job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Shared report schema version (see [`crate::SCHEMA_VERSION`]);
    /// reports written before the field read back as 0.
    #[serde(default)]
    pub schema_version: u32,
    /// Which runner produced the trace (`exec` or `ooc`).
    pub source: String,
    /// Trace job id the spans were collected under.
    pub job: u64,
    /// Relative band phases were judged against.
    pub band: f64,
    /// Per-phase measured vs predicted, in the runner's phase order.
    pub phases: Vec<PhaseDrift>,
    /// Names of the phases outside the band, same order as `phases`.
    pub flagged: Vec<String>,
}

/// Finite measured/predicted ratio: non-finite or non-positive
/// predictions are floored at [`MIN_PREDICTION`], non-finite measures
/// read as zero.
pub fn finite_ratio(measured: f64, predicted: f64) -> f64 {
    let m = if measured.is_finite() && measured > 0.0 { measured } else { 0.0 };
    let p = if predicted.is_finite() && predicted > MIN_PREDICTION {
        predicted
    } else {
        MIN_PREDICTION
    };
    // m/p can still overflow for astronomical measured values; clamp so
    // the "always finite" contract holds unconditionally.
    (m / p).min(f64::MAX)
}

/// Is a finite ratio within `band` of 1.0 in either direction?
pub fn in_band(ratio: f64, band: f64) -> bool {
    let band = if band.is_finite() && band > 0.0 { band } else { DEFAULT_BAND };
    ratio > 0.0 && ratio <= 1.0 + band && ratio >= 1.0 / (1.0 + band)
}

impl DriftReport {
    /// Build a report from raw phase samples: compute both ratios per
    /// phase, judge each against `band`, and collect the flagged names.
    /// Samples with zero spans are dropped (an absent phase is not
    /// drift — e.g. the scalar tile path has no pack phases).
    pub fn from_samples(source: &str, job: u64, band: f64, samples: Vec<PhaseSample>) -> Self {
        let band = if band.is_finite() && band > 0.0 { band } else { DEFAULT_BAND };
        let phases: Vec<PhaseDrift> = samples
            .into_iter()
            .filter(|s| s.spans > 0)
            .map(|s| {
                let ratio = finite_ratio(s.measured_us, s.predicted_us);
                PhaseDrift {
                    phase: s.phase,
                    spans: s.spans,
                    measured_us: s.measured_us,
                    predicted_us: s.predicted_us.max(MIN_PREDICTION),
                    ratio,
                    unit: s.unit,
                    measured_units: s.measured_units,
                    predicted_units: s.predicted_units,
                    units_ratio: finite_ratio(s.measured_units, s.predicted_units),
                    in_band: in_band(ratio, band),
                }
            })
            .collect();
        let flagged = phases.iter().filter(|p| !p.in_band).map(|p| p.phase.clone()).collect();
        DriftReport {
            schema_version: SCHEMA_VERSION,
            source: source.to_string(),
            job,
            band,
            phases,
            flagged,
        }
    }

    /// Every ratio in the report is finite (an invariant the CI smoke
    /// job asserts end-to-end).
    pub fn all_finite(&self) -> bool {
        self.phases.iter().all(|p| p.ratio.is_finite() && p.units_ratio.is_finite())
    }

    /// Human-readable table for the CLI (one line per phase plus a
    /// verdict line).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "drift [{}] job {} band ±{:.0}%\n",
            self.source,
            self.job,
            self.band * 100.0
        ));
        out.push_str(&format!(
            "  {:<12} {:>7} {:>12} {:>12} {:>8}  {}\n",
            "phase", "spans", "measured", "predicted", "ratio", "verdict"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<12} {:>7} {:>10.2}ms {:>10.2}ms {:>8.3}  {}\n",
                p.phase,
                p.spans,
                p.measured_us / 1e3,
                p.predicted_us / 1e3,
                p.ratio,
                if p.in_band { "ok" } else { "DRIFT" }
            ));
        }
        if self.flagged.is_empty() {
            out.push_str("  all phases within band\n");
        } else {
            out.push_str(&format!("  drifting: {}\n", self.flagged.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(phase: &str, spans: u64, measured_us: f64, predicted_us: f64) -> PhaseSample {
        PhaseSample {
            phase: phase.to_string(),
            spans,
            measured_us,
            predicted_us,
            unit: "flop".to_string(),
            measured_units: 100.0,
            predicted_units: 100.0,
        }
    }

    #[test]
    fn ratios_are_always_finite() {
        for (m, p) in [
            (0.0, 0.0),
            (1.0, 0.0),
            (f64::NAN, 2.0),
            (3.0, f64::NAN),
            (f64::INFINITY, f64::INFINITY),
            (-5.0, -5.0),
            (1e300, 1e-300),
        ] {
            assert!(finite_ratio(m, p).is_finite(), "finite_ratio({m}, {p})");
        }
    }

    #[test]
    fn band_judgement_is_symmetric() {
        // band 1.0 accepts [0.5, 2.0].
        assert!(in_band(1.0, 1.0));
        assert!(in_band(2.0, 1.0));
        assert!(in_band(0.5, 1.0));
        assert!(!in_band(2.01, 1.0));
        assert!(!in_band(0.49, 1.0));
        assert!(!in_band(0.0, 1.0));
        // Degenerate bands fall back to the default.
        assert!(in_band(1.9, f64::NAN));
        assert!(in_band(1.9, -3.0));
    }

    #[test]
    fn report_flags_out_of_band_phases_and_drops_empty_ones() {
        let report = DriftReport::from_samples(
            "exec",
            42,
            1.0,
            vec![
                sample("jc", 4, 1000.0, 900.0),
                sample("pc", 8, 5000.0, 1000.0),
                sample("pack_a", 0, 0.0, 0.0),
            ],
        );
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.phases.len(), 2, "zero-span phase dropped");
        assert!(report.phases[0].in_band);
        assert!(!report.phases[1].in_band);
        assert_eq!(report.flagged, vec!["pc".to_string()]);
        assert!(report.all_finite());
        let text = report.render_text();
        assert!(text.contains("DRIFT") && text.contains("drifting: pc"), "{text}");
    }

    #[test]
    fn report_survives_degenerate_predictions() {
        let report = DriftReport::from_samples(
            "ooc",
            1,
            0.5,
            vec![sample("read", 2, 123.0, 0.0), sample("stall", 1, 0.0, f64::NAN)],
        );
        assert!(report.all_finite());
        // Zero prediction: enormous but finite ratio, flagged.
        assert!(report.phases[0].ratio > 1e6 && report.phases[0].ratio.is_finite());
        assert_eq!(report.flagged.len(), 2);
    }

    #[test]
    fn report_serde_round_trips() {
        let report = DriftReport::from_samples("exec", 9, 1.0, vec![sample("ic", 3, 10.0, 8.0)]);
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: DriftReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        assert!(text.contains("\"schema_version\""), "{text}");
    }
}
