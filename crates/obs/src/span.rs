//! Per-job span tracing: lock-free per-thread ring-buffer recorders.
//!
//! The flight-recorder layer of the predicted-vs-measured loop. Every
//! macro-step of the 5-loop executor (`jc`/`pc`/`ic` plus the two pack
//! phases) and every stage of the out-of-core pipeline (read, stage,
//! stall, accumulate) emits one [`SpanRecord`] carrying both its
//! *measured* wall time and the *predicted* cost the closed forms assign
//! to it. The [`crate::drift`] module turns a batch of spans into
//! per-phase measured/predicted ratios.
//!
//! ## Design
//!
//! * **No allocation or locking on the hot path.** Each thread owns a
//!   fixed-capacity ring of seqlock slots, created lazily on its first
//!   emit and registered once (one `Mutex` lock, amortized to zero) in a
//!   process-global list. [`emit`] is a thread-local lookup plus nine
//!   relaxed atomic stores.
//! * **Overwrite-oldest.** A ring that fills wraps and overwrites its
//!   oldest spans; the most recent `capacity` spans per thread always
//!   survive. Each slot carries a sequence word (odd while a write is in
//!   flight, `2·(index+1)` once the slot holds span `index`), so a
//!   reader can detect and skip a slot torn by a concurrent overwrite
//!   instead of reporting a frankenspan.
//! * **Drained on demand.** [`collect_job`] snapshots every registered
//!   ring without consuming, which is safe precisely because job ids are
//!   process-unique: stale spans from other jobs filter out, and rings
//!   recycle themselves by overwriting. [`drain`] is the consuming sweep
//!   (per-ring watermark) for scraper-style consumers such as the future
//!   `mmc serve` flight recorder. Neither ever blocks a writer.
//! * **Per-job context.** The `TraceContext` is a process-global id
//!   allocator plus a *thread-local* current job: [`new_job`] allocates
//!   a process-unique id and makes it current on the calling thread,
//!   and the runners capture it once at entry and propagate it into
//!   their worker closures explicitly (worker-pool threads cannot
//!   inherit the caller's thread-local). Thread-locality keeps
//!   concurrently running jobs — parallel tests, a future `mmc serve` —
//!   from stamping each other's spans. Job 0 means "unattributed".
//!
//! Recording is on by default (`MMC_SPANS=off` or [`set_enabled`]
//! disables it); the `perf` bin uses [`set_enabled`] to A/B the
//! recorder's own overhead, published as the `gemm_q64_nospans` record.

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of `u64` payload words in one encoded span.
pub const SPAN_WORDS: usize = 8;

/// Default per-thread ring capacity, in spans (~0.5 MiB per thread).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Thread id stored in a span that was emitted outside any worker pool
/// (the caller thread of a parallel region, or the ooc compute driver).
pub const NO_THREAD: u32 = u32::MAX;

/// What a span measures — one macro-step of the 5-loop executor or one
/// stage of the out-of-core pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// One `q×q`-blocked C tile of the parallel executor (the rayon
    /// work item; parent of the loop spans below).
    Tile = 0,
    /// One `jc`/`NC` macro-step (B-panel pass) of the 5-loop nest.
    LoopJc = 1,
    /// One `pc`/`KC` macro-step (packed k panel) within a `jc` pass.
    LoopPc = 2,
    /// One `ic`/`MC` macro-step (packed A block) within a `pc` panel.
    LoopIc = 3,
    /// Packing one `MC×KC` A panel into the arena.
    PackA = 4,
    /// Packing one `KC×NC` B panel into the arena.
    PackB = 5,
    /// One positioned panel read by an ooc I/O thread.
    Read = 6,
    /// One full stage iteration of an ooc I/O thread (buffer claim,
    /// read, in-order delivery).
    Stage = 7,
    /// Time the ooc compute thread spent blocked waiting for a staged
    /// panel.
    Stall = 8,
    /// One `gemm_accumulate` call over a staged panel pair.
    Accumulate = 9,
}

impl SpanKind {
    /// Stable lowercase phase name used in drift reports and trace lanes.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Tile => "tile",
            SpanKind::LoopJc => "jc",
            SpanKind::LoopPc => "pc",
            SpanKind::LoopIc => "ic",
            SpanKind::PackA => "pack_a",
            SpanKind::PackB => "pack_b",
            SpanKind::Read => "read",
            SpanKind::Stage => "stage",
            SpanKind::Stall => "stall",
            SpanKind::Accumulate => "accumulate",
        }
    }

    /// Unit of the span's `pred`/`val` payload counters.
    pub fn unit(self) -> &'static str {
        match self {
            SpanKind::Tile
            | SpanKind::LoopJc
            | SpanKind::LoopPc
            | SpanKind::LoopIc
            | SpanKind::Accumulate => "flop",
            SpanKind::PackA | SpanKind::PackB | SpanKind::Read | SpanKind::Stage => "byte",
            SpanKind::Stall => "ns",
        }
    }

    /// Decode the `repr(u8)` discriminant.
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Tile,
            1 => SpanKind::LoopJc,
            2 => SpanKind::LoopPc,
            3 => SpanKind::LoopIc,
            4 => SpanKind::PackA,
            5 => SpanKind::PackB,
            6 => SpanKind::Read,
            7 => SpanKind::Stage,
            8 => SpanKind::Stall,
            9 => SpanKind::Accumulate,
            _ => return None,
        })
    }

    /// Every kind, in discriminant order.
    pub const ALL: [SpanKind; 10] = [
        SpanKind::Tile,
        SpanKind::LoopJc,
        SpanKind::LoopPc,
        SpanKind::LoopIc,
        SpanKind::PackA,
        SpanKind::PackB,
        SpanKind::Read,
        SpanKind::Stage,
        SpanKind::Stall,
        SpanKind::Accumulate,
    ];
}

/// One recorded span: a fixed-width value type that encodes to exactly
/// [`SPAN_WORDS`] words so the ring never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Job id the span is attributed to (see [`new_job`]; 0 means
    /// unattributed).
    pub job: u64,
    /// Which phase this span measures.
    pub kind: SpanKind,
    /// Worker-pool thread index, or `None` for the caller/driver thread.
    pub thread: Option<u32>,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Measured wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Predicted cost of the step in [`SpanKind::unit`] units (FLOPs for
    /// compute phases, bytes for pack/I-O phases) from the closed forms.
    pub pred: u64,
    /// Actual work done, same unit as `pred`.
    pub val: u64,
    /// Phase-specific coordinates (tile origin, panel extents, ...).
    pub args: [u32; 4],
}

impl SpanRecord {
    /// Pack into the ring's word representation.
    fn encode(&self) -> [u64; SPAN_WORDS] {
        let thread = self.thread.unwrap_or(NO_THREAD);
        [
            self.job,
            (self.kind as u64) | ((thread as u64) << 32),
            self.start_ns,
            self.dur_ns,
            self.pred,
            self.val,
            (self.args[0] as u64) | ((self.args[1] as u64) << 32),
            (self.args[2] as u64) | ((self.args[3] as u64) << 32),
        ]
    }

    /// Unpack a word representation; `None` for an invalid kind byte
    /// (only reachable through a torn read the seqlock failed to catch,
    /// which the caller treats the same as a caught tear).
    fn decode(w: &[u64; SPAN_WORDS]) -> Option<SpanRecord> {
        let kind = SpanKind::from_u8((w[1] & 0xff) as u8)?;
        let thread_raw = (w[1] >> 32) as u32;
        Some(SpanRecord {
            job: w[0],
            kind,
            thread: (thread_raw != NO_THREAD).then_some(thread_raw),
            start_ns: w[2],
            dur_ns: w[3],
            pred: w[4],
            val: w[5],
            args: [w[6] as u32, (w[6] >> 32) as u32, w[7] as u32, (w[7] >> 32) as u32],
        })
    }
}

/// One seqlock slot: `seq` is odd while a write is in flight and
/// `2·(index+1)` once the slot holds span `index`.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot { seq: AtomicU64::new(0), words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// A fixed-capacity, overwrite-oldest span ring with exactly one writer
/// (the owning thread) and any number of concurrent readers.
///
/// Writes never block and never fail; a read that races an overwrite
/// skips the (oldest) slots being replaced rather than tearing them.
pub struct ThreadRing {
    slots: Box<[Slot]>,
    /// Total spans ever pushed (monotonic; slot for span `i` is
    /// `i % capacity`). Written only by the owner thread.
    head: AtomicU64,
    /// Consumed watermark, advanced only by [`ThreadRing::collect_new`].
    drained: AtomicU64,
}

impl ThreadRing {
    /// A ring holding the most recent `capacity` spans.
    pub fn new(capacity: usize) -> ThreadRing {
        let cap = capacity.max(1);
        ThreadRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Record one span. **Single-writer**: must only be called from the
    /// thread that owns the ring — the global recorder guarantees this
    /// by keying rings off a thread-local.
    pub fn push(&self, rec: &SpanRecord) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        let words = rec.encode();
        // Seqlock write: mark in-flight (odd), publish the payload, then
        // stamp the slot with this span's even sequence. The fences keep
        // the payload stores inside the odd/even window for readers.
        slot.seq.store(2 * head + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        fence(Ordering::Release);
        slot.seq.store(2 * (head + 1), Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Seqlock read of span index `i`; `None` if the slot was overwritten
    /// or is mid-write.
    fn read(&self, i: u64) -> Option<SpanRecord> {
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        let want = 2 * (i + 1);
        if slot.seq.load(Ordering::Acquire) != want {
            return None;
        }
        let mut words = [0u64; SPAN_WORDS];
        for (out, w) in words.iter_mut().zip(slot.words.iter()) {
            *out = w.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != want {
            return None;
        }
        SpanRecord::decode(&words)
    }

    /// Snapshot every live span (at most the most recent `capacity`)
    /// without consuming. Safe from any thread, concurrently with the
    /// writer; spans overwritten mid-scan are skipped, never torn.
    pub fn scan(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let lo = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - lo) as usize);
        for i in lo..head {
            if let Some(rec) = self.read(i) {
                out.push(rec);
            }
        }
        out
    }

    /// Drain every span not yet consumed (at most the most recent
    /// `capacity`), advancing the watermark. Same tearing guarantees as
    /// [`ThreadRing::scan`]; concurrent drains of one ring race only on
    /// which of them reports a span.
    pub fn collect_new(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let lo =
            self.drained.load(Ordering::Acquire).max(head.saturating_sub(self.slots.len() as u64));
        let mut out = Vec::with_capacity((head - lo) as usize);
        for i in lo..head {
            if let Some(rec) = self.read(i) {
                out.push(rec);
            }
        }
        self.drained.store(head, Ordering::Release);
        out
    }
}

/// Process-global list of every thread's ring (registration only; the
/// hot path never touches it).
fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Per-thread ring capacity: `MMC_SPAN_RING` spans, default
/// [`DEFAULT_RING_CAPACITY`]. Read once per process.
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("MMC_SPAN_RING")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(DEFAULT_RING_CAPACITY)
    })
}

thread_local! {
    static LOCAL_RING: OnceLock<Arc<ThreadRing>> = const { OnceLock::new() };
    static CURRENT_JOB: Cell<u64> = const { Cell::new(0) };
}

const ENABLED_UNSET: u8 = 0;
const ENABLED_ON: u8 = 1;
const ENABLED_OFF: u8 = 2;
static ENABLED: AtomicU8 = AtomicU8::new(ENABLED_UNSET);

/// Is span recording on? Defaults to on; `MMC_SPANS=off` (or `0`)
/// disables it at process level, [`set_enabled`] overrides at runtime.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        ENABLED_ON => true,
        ENABLED_OFF => false,
        _ => {
            let on = !matches!(std::env::var("MMC_SPANS").as_deref(), Ok("off") | Ok("0"));
            ENABLED.store(if on { ENABLED_ON } else { ENABLED_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Force span recording on or off (e.g. the `perf` bin's overhead A/B).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ENABLED_ON } else { ENABLED_OFF }, Ordering::Relaxed);
}

static NEXT_JOB: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique job id and make it the calling thread's
/// current trace context. Runners capture the current job once at entry
/// and carry it into their worker closures.
pub fn new_job() -> u64 {
    let job = NEXT_JOB.fetch_add(1, Ordering::Relaxed);
    CURRENT_JOB.with(|c| c.set(job));
    job
}

/// The calling thread's current job id (0 before any [`new_job`] on
/// this thread — "unattributed").
pub fn current_job() -> u64 {
    CURRENT_JOB.with(|c| c.get())
}

/// Nanoseconds since the process trace epoch (first call wins; all span
/// timestamps share this origin so exec and ooc spans merge onto one
/// timeline).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Record one span on the calling thread's ring (lazily created and
/// registered on first use). No-op while recording is disabled.
#[allow(clippy::too_many_arguments)]
pub fn emit(
    job: u64,
    kind: SpanKind,
    thread: Option<u32>,
    start_ns: u64,
    dur_ns: u64,
    pred: u64,
    val: u64,
    args: [u32; 4],
) {
    if !enabled() {
        return;
    }
    let rec = SpanRecord { job, kind, thread, start_ns, dur_ns, pred, val, args };
    LOCAL_RING.with(|cell| {
        cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing::new(ring_capacity()));
            rings().lock().unwrap().push(ring.clone());
            ring
        })
        .push(&rec);
    });
}

fn sort_spans(spans: &mut [SpanRecord]) {
    spans.sort_by_key(|r| {
        (r.start_ns, r.thread.map_or(u64::from(NO_THREAD), u64::from), r.kind, r.args)
    });
}

/// Snapshot every live span stamped with `job`, across all rings,
/// sorted by start time. Non-consuming — job uniqueness makes repeated
/// collection idempotent, and rings recycle by overwriting.
pub fn collect_job(job: u64) -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for ring in rings().lock().unwrap().iter() {
        out.extend(ring.scan().into_iter().filter(|r| r.job == job));
    }
    sort_spans(&mut out);
    out
}

/// Consuming sweep of every ring (per-ring watermark), sorted by start
/// time — the scraper-style drain for flight-recorder consumers. Cold
/// path: takes the registration mutex, never blocks writers.
pub fn drain() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for ring in rings().lock().unwrap().iter() {
        out.extend(ring.collect_new());
    }
    sort_spans(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that touch the process-global recorder (emit/collect/enable)
    /// serialize on this lock so the default multi-threaded test harness
    /// cannot interleave them.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn rec(i: u64) -> SpanRecord {
        SpanRecord {
            job: 7,
            kind: SpanKind::ALL[(i % 10) as usize],
            thread: if i.is_multiple_of(3) { None } else { Some(i as u32) },
            start_ns: 1000 + i,
            dur_ns: 10 * i,
            pred: i * i,
            val: i * i + 1,
            args: [i as u32, 2, 3, 4],
        }
    }

    #[test]
    fn record_encode_decode_round_trips() {
        for i in 0..32 {
            let r = rec(i);
            assert_eq!(SpanRecord::decode(&r.encode()), Some(r));
        }
        // NO_THREAD sentinel maps to thread: None, not Some(MAX).
        let r = SpanRecord { thread: None, ..rec(1) };
        assert_eq!(SpanRecord::decode(&r.encode()).unwrap().thread, None);
    }

    #[test]
    fn kind_discriminants_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_u8(kind as u8), Some(kind));
            assert!(!kind.name().is_empty() && !kind.unit().is_empty());
        }
        assert_eq!(SpanKind::from_u8(10), None);
    }

    #[test]
    fn ring_keeps_most_recent_capacity_spans() {
        let ring = ThreadRing::new(8);
        for i in 0..20 {
            ring.push(&rec(i));
        }
        let got = ring.collect_new();
        // 20 pushed into 8 slots: exactly spans 12..20 survive.
        assert_eq!(got.len(), 8);
        for (k, r) in got.iter().enumerate() {
            assert_eq!(*r, rec(12 + k as u64));
        }
        // Watermark: nothing new to drain, but a scan still sees all 8.
        assert!(ring.collect_new().is_empty());
        assert_eq!(ring.scan().len(), 8);
        ring.push(&rec(99));
        assert_eq!(ring.collect_new(), vec![rec(99)]);
    }

    #[test]
    fn collect_job_isolates_and_is_idempotent() {
        let _g = global_lock();
        let job_a = new_job();
        emit(job_a, SpanKind::Tile, Some(0), now_ns(), 5, 10, 10, [0; 4]);
        let job_b = new_job();
        emit(job_b, SpanKind::Read, None, now_ns(), 5, 20, 20, [1; 4]);
        let b = collect_job(job_b);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].kind, SpanKind::Read);
        assert_eq!(b[0].job, job_b);
        // Non-consuming: both jobs still fully visible.
        assert_eq!(collect_job(job_b), b);
        assert_eq!(collect_job(job_a).len(), 1);
    }

    #[test]
    fn disabled_recorder_emits_nothing() {
        let _g = global_lock();
        let job = new_job();
        set_enabled(false);
        emit(job, SpanKind::Tile, Some(0), now_ns(), 1, 1, 1, [0; 4]);
        set_enabled(true);
        emit(job, SpanKind::PackA, Some(0), now_ns(), 1, 1, 1, [0; 4]);
        let spans = collect_job(job);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::PackA);
    }

    #[test]
    fn collected_spans_sort_by_start_time() {
        let _g = global_lock();
        let job = new_job();
        emit(job, SpanKind::Tile, Some(1), 5000, 1, 1, 1, [0; 4]);
        emit(job, SpanKind::Tile, Some(1), 3000, 1, 1, 1, [0; 4]);
        emit(job, SpanKind::Tile, Some(1), 4000, 1, 1, 1, [0; 4]);
        let starts: Vec<u64> = collect_job(job).iter().map(|r| r.start_ns).collect();
        assert_eq!(starts, vec![3000, 4000, 5000]);
    }

    #[test]
    fn job_context_is_thread_local() {
        let _g = global_lock();
        let here = new_job();
        let there = std::thread::spawn(|| (current_job(), new_job())).join().unwrap();
        // Fresh thread starts unattributed, and its new_job does not
        // disturb this thread's context.
        assert_eq!(there.0, 0);
        assert_ne!(there.1, here);
        assert_eq!(current_job(), here);
    }
}
