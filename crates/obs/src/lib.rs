//! # mmc-obs
//!
//! Observability substrate for the multicore matrix-product workspace:
//! the layer that closes the paper's predicted-vs-measured loop.
//!
//! * [`registry`] — a zero-dependency, lock-free metrics registry
//!   (per-thread sharded counters, gauges, log2-bucketed histograms)
//!   with a process-wide instance ([`registry::global`]), serializable
//!   snapshots, and Prometheus-style text exposition for the future
//!   `mmc serve` scraper.
//! * [`perf_event`] — a raw `perf_event_open(2)` wrapper (no external
//!   deps) that samples cycles / instructions / LLC loads & misses
//!   around any GEMM run and degrades gracefully to a
//!   `counters: "unavailable"` marker when the PMU or permissions are
//!   missing.
//! * [`roofline`] — measured STREAM-triad bandwidth plus derived
//!   arithmetic-intensity / percent-of-peak records for
//!   `BENCH_exec.json`.
//! * [`span`] — per-job span tracing: lock-free per-thread ring-buffer
//!   recorders (seqlock slots, overwrite-oldest, no allocation or
//!   locking on the hot path) stamping every 5-loop macro-step and ooc
//!   pipeline stage with its predicted cost.
//! * [`drift`] — per-phase measured/predicted ratio reports over traced
//!   spans, with band flagging and always-finite ratios.
//!
//! Every `--json` report in the workspace stamps [`SCHEMA_VERSION`] so
//! downstream tooling (the perf regression gate, scrapers) can parse all
//! subcommands with one schema.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod drift;
pub mod perf_event;
pub mod registry;
pub mod roofline;
pub mod span;

pub use drift::{DriftReport, PhaseDrift, PhaseSample};
pub use perf_event::{CounterReading, CounterValue, PerfCounters};
pub use registry::{
    global, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramBucket,
    HistogramSnapshot, Registry, RegistrySnapshot,
};
pub use roofline::{
    cpu_ghz_estimate, flops_per_cycle_for_kernel, peak_gflops_estimate, roofline_bound,
    stream_triad_bandwidth_gbs, RooflineRecord,
};
pub use span::{SpanKind, SpanRecord, ThreadRing};

/// Version stamped into every `--json` report across `simulate` / `exec`
/// / `profile` / `ooc` / `counters` and `BENCH_*.json`. Bump when a
/// field is renamed or removed (additions are backward compatible).
pub const SCHEMA_VERSION: u32 = 1;

/// Default value hook for `#[serde(default = "...")]` on report structs:
/// reports loaded from files that predate the field read as version 0.
pub fn schema_version_default() -> u32 {
    0
}
