//! The lock-free metrics registry: sharded counters, gauges and
//! log-bucketed histograms behind a global snapshot API.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path takes no lock.** A [`Counter`] is a fixed array of
//!    cache-line-padded `AtomicU64` shards; each thread hashes to one
//!    shard (assigned round-robin at first use, so rayon workers spread
//!    out even when thread ids cluster) and does one relaxed
//!    `fetch_add`. Instrumented kernels call this once per *tile*, not
//!    per FLOP, so the cost disappears under the arithmetic it counts.
//! 2. **Registration is cold.** [`Registry::counter`] takes a `Mutex`
//!    only to intern the name; call sites cache the returned
//!    `Arc<Counter>` in a `OnceLock` and never look it up again.
//! 3. **Snapshots are serializable.** [`RegistrySnapshot`] derives
//!    `Serialize`/`Deserialize` so `mmc counters --json` and the golden
//!    reconciliation tests read the same structure, and
//!    [`Registry::render_prometheus`] emits the text exposition format a
//!    future `mmc serve` scheduler can scrape.
//!
//! Counter reads ([`Counter::get`]) sum the shards with relaxed loads:
//! exact once the writing threads have quiesced (the reconciliation
//! tests read after `join`), monotone but possibly mid-update otherwise.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per counter. A power of two comfortably above the core count
/// of the machines this repo targets (the paper's quad-core, CI runners).
const SHARDS: usize = 16;

/// One shard on its own cache line, so two threads bumping different
/// shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// The shard this thread writes, assigned round-robin at first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing, thread-sharded counter.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` to this thread's shard (lock-free, relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A settable signed gauge (queue depths, pool occupancy).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (possibly negative) to the gauge.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: bucket `i` holds values `v` with `bit_width(v) == i`,
/// i.e. `v == 0` in bucket 0 and `2^(i-1) <= v < 2^i` in bucket `i`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations (latencies in
/// microseconds, sizes in bytes). One relaxed `fetch_add` per bucket
/// observation plus count and sum — no locks, no allocation.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping on overflow, like Prometheus).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// Upper bound (inclusive) of log2 bucket `idx`: 0, 1, 3, 7, ...
fn bucket_le(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// One counter in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// One gauge in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One non-empty histogram bucket: `count` observations `<= le`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket (`2^i - 1`).
    pub le: u64,
    /// Observations that fell in this bucket (not cumulative).
    pub count: u64,
}

/// One histogram in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty buckets, ascending `le`.
    pub buckets: Vec<HistogramBucket>,
    /// Median estimate ([`HistogramSnapshot::quantile`] at 0.5); `None`
    /// when empty or read back from a snapshot that predates the field.
    #[serde(default)]
    pub p50: Option<u64>,
    /// 95th-percentile estimate; `None` when empty.
    #[serde(default)]
    pub p95: Option<u64>,
    /// 99th-percentile estimate; `None` when empty.
    #[serde(default)]
    pub p99: Option<u64>,
}

impl HistogramSnapshot {
    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `q`-th observation (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.le);
            }
        }
        self.buckets.last().map(|b| b.le)
    }

    /// The quantile summary (p50/p95/p99) this snapshot's buckets imply.
    fn with_quantiles(mut self) -> HistogramSnapshot {
        self.p50 = self.quantile(0.5);
        self.p95 = self.quantile(0.95);
        self.p99 = self.quantile(0.99);
        self
    }
}

/// A point-in-time copy of every registered metric, **sorted by metric
/// name** so two snapshots of the same state serialize byte-identically
/// regardless of which thread registered which metric first.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global`] registry; tests may build private ones.
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Registry {
        Registry {
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    /// The counter named `name`, registering it on first use. Cold path:
    /// cache the `Arc` at the call site rather than calling per event.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Copy every metric's current value. Entries are sorted by name:
    /// registration order depends on which thread's instrumentation ran
    /// first, and `--json` reports and golden tests need byte-stable
    /// output across those interleavings.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| CounterSnapshot { name: n.clone(), value: c.get() })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| GaugeSnapshot { name: n.clone(), value: g.get() })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| {
                let buckets = (0..BUCKETS)
                    .filter_map(|i| {
                        let count = h.buckets[i].load(Ordering::Relaxed);
                        (count > 0).then(|| HistogramBucket { le: bucket_le(i), count })
                    })
                    .collect();
                HistogramSnapshot {
                    name: n.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                    p50: None,
                    p95: None,
                    p99: None,
                }
                .with_quantiles()
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot { counters, gauges, histograms }
    }

    /// Render the registry in the Prometheus text exposition format
    /// (counters, gauges, and cumulative-bucket histograms), for the
    /// future `mmc serve` scraper.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for c in &snap.counters {
            let name = prom_name(&c.name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
        }
        for g in &snap.gauges {
            let name = prom_name(&g.name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
        }
        for h in &snap.histograms {
            let name = prom_name(&h.name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                out.push_str(&format!("{name}_bucket{{le=\"{}\"}} {cumulative}\n", b.le));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        // Quantile estimates (log2-bucket upper bounds) go out as their
        // own `_quantile`-suffixed gauge family. They used to be
        // summary-style `name{quantile="..."}` samples under the
        // `# TYPE name histogram` declaration — an exposition-format
        // violation (a histogram family may only carry `_bucket`,
        // `_sum` and `_count` samples) that conformant scrapers reject.
        for h in &snap.histograms {
            let name = prom_name(&h.name);
            let quantiles: Vec<(&str, u64)> = [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)]
                .into_iter()
                .filter_map(|(q, v)| v.map(|v| (q, v)))
                .collect();
            if quantiles.is_empty() {
                continue;
            }
            out.push_str(&format!("# TYPE {name}_quantile gauge\n"));
            for (q, v) in quantiles {
                out.push_str(&format!("{name}_quantile{{quantile=\"{q}\"}} {v}\n"));
            }
        }
        out
    }
}

/// Find-or-insert under the registration mutex.
fn intern<T: Default>(table: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut table = table.lock().unwrap();
    if let Some((_, v)) = table.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    table.push((name.to_string(), Arc::clone(&v)));
    v
}

/// Sanitize a metric name for the Prometheus exposition format.
fn prom_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

/// The process-wide registry every instrumented crate writes to.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t.adds");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(3);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8 * 1000 * 3);
        assert_eq!(reg.snapshot().counter("t.adds"), Some(24000));
    }

    #[test]
    fn interning_returns_the_same_metric() {
        let reg = Registry::new();
        reg.counter("x").add(1);
        reg.counter("x").add(1);
        assert_eq!(reg.counter("x").get(), 2);
        reg.gauge("g").set(-5);
        assert_eq!(reg.gauge("g").get(), -5);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.observe(0); // bucket le=0
        h.observe(1); // le=1
        h.observe(2); // le=3
        h.observe(3); // le=3
        h.observe(1000); // le=1023
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let reg = Registry::new();
        let hh = reg.histogram("lat");
        for v in [0, 1, 2, 3, 1000] {
            hh.observe(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").unwrap();
        let les: Vec<u64> = hs.buckets.iter().map(|b| b.le).collect();
        assert_eq!(les, vec![0, 1, 3, 1023]);
        let counts: Vec<u64> = hs.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 1, 2, 1]);
        assert_eq!(hs.quantile(0.5), Some(3));
        assert_eq!(hs.quantile(1.0), Some(1023));
    }

    #[test]
    fn snapshot_carries_quantile_estimates() {
        let reg = Registry::new();
        let h = reg.histogram("q");
        // 50 observations at 10 (le=15), one outlier at 1000 (le=1023):
        // p50 and p95 sit in the le=15 bucket, p99 (rank 51 of 51) falls
        // on the outlier's bucket.
        for _ in 0..50 {
            h.observe(10);
        }
        h.observe(1000);
        let snap = reg.snapshot();
        let hs = snap.histogram("q").unwrap();
        assert_eq!(hs.p50, Some(15));
        assert_eq!(hs.p95, Some(15));
        assert_eq!(hs.p99, Some(1023));
        assert_eq!(hs.p50, hs.quantile(0.5));
        // Empty histograms report no quantiles.
        let reg2 = Registry::new();
        reg2.histogram("empty");
        let snap2 = reg2.snapshot();
        let empty = snap2.histogram("empty").unwrap();
        assert_eq!((empty.p50, empty.p95, empty.p99), (None, None, None));
    }

    #[test]
    fn exposition_renders_quantiles_as_their_own_gauge_family() {
        let reg = Registry::new();
        let h = reg.histogram("lat_us");
        for v in [4, 4, 4, 4, 500] {
            h.observe(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_us_quantile gauge\n"), "{text}");
        assert!(text.contains("lat_us_quantile{quantile=\"0.5\"} 7\n"), "{text}");
        assert!(text.contains("lat_us_quantile{quantile=\"0.95\"} 511\n"), "{text}");
        assert!(text.contains("lat_us_quantile{quantile=\"0.99\"} 511\n"), "{text}");
        // Never again as summary-style samples of the histogram family.
        assert!(!text.contains("lat_us{quantile="), "{text}");
        // An empty histogram emits no quantile family at all.
        let reg2 = Registry::new();
        reg2.histogram("empty_us");
        let text2 = reg2.render_prometheus();
        assert!(!text2.contains("empty_us_quantile"), "{text2}");
    }

    /// Exposition-format conformance: every sample line must belong to
    /// its declared family — bare `name` samples for counters/gauges,
    /// and only `name_bucket{le=…}` / `name_sum` / `name_count` samples
    /// under a `# TYPE name histogram` declaration. The old renderer
    /// violated this with `name{quantile=…}` lines under histograms.
    #[test]
    fn exposition_is_conformant_per_declared_family() {
        let reg = Registry::new();
        reg.counter("jobs.total").add(7);
        reg.gauge("ram.in_use").set(123);
        let h = reg.histogram("job_us");
        for v in [1, 8, 64, 4000] {
            h.observe(v);
        }
        let text = reg.render_prometheus();

        let mut declared: Vec<(String, String)> = Vec::new(); // (name, type)
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let mut parts = line["# TYPE ".len()..].split_whitespace();
            let name = parts.next().unwrap().to_string();
            let ty = parts.next().unwrap().to_string();
            assert!(["counter", "gauge", "histogram"].contains(&ty.as_str()), "{line}");
            declared.push((name, ty));
        }

        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let sample = line.split([' ', '{']).next().unwrap();
            // Find the family this sample belongs to.
            let family = declared
                .iter()
                .find(|(name, ty)| match ty.as_str() {
                    "histogram" => {
                        [format!("{name}_bucket"), format!("{name}_sum"), format!("{name}_count")]
                            .contains(&sample.to_string())
                    }
                    _ => sample == name,
                })
                .unwrap_or_else(|| panic!("sample {sample:?} belongs to no declared family"));
            // Histogram families may not carry quantile-labelled samples.
            if family.1 == "histogram" {
                assert!(
                    !line.contains("quantile="),
                    "histogram family {} carries a quantile sample: {line}",
                    family.0
                );
            }
        }
        // And the quantile gauges exist, under their own declaration.
        assert!(text.contains("# TYPE job_us_quantile gauge\n"), "{text}");
    }

    #[test]
    fn snapshots_sort_by_name_not_registration_order() {
        let reg = Registry::new();
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("m.mid").set(3);
        reg.gauge("b.gauge").set(4);
        reg.histogram("z.h").observe(1);
        reg.histogram("a.h").observe(2);
        let snap = reg.snapshot();
        let counter_names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(counter_names, vec!["a.first", "z.last"]);
        let gauge_names: Vec<&str> = snap.gauges.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(gauge_names, vec!["b.gauge", "m.mid"]);
        let hist_names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(hist_names, vec!["a.h", "z.h"]);
        // Byte-stable: the same state serializes identically however
        // registration interleaved.
        let reg2 = Registry::new();
        reg2.histogram("a.h").observe(2);
        reg2.histogram("z.h").observe(1);
        reg2.gauge("b.gauge").set(4);
        reg2.gauge("m.mid").set(3);
        reg2.counter("a.first").add(2);
        reg2.counter("z.last").add(1);
        assert_eq!(
            serde_json::to_string_pretty(&snap).unwrap(),
            serde_json::to_string_pretty(&reg2.snapshot()).unwrap()
        );
    }

    #[test]
    fn quantile_on_empty_is_none() {
        let reg = Registry::new();
        reg.histogram("empty");
        assert_eq!(reg.snapshot().histogram("empty").unwrap().quantile(0.5), None);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = Registry::new();
        reg.counter("mmc_exec.flops").add(42);
        reg.gauge("pool free").set(3);
        let h = reg.histogram("read_us");
        h.observe(5);
        h.observe(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE mmc_exec_flops counter\nmmc_exec_flops 42\n"));
        assert!(text.contains("# TYPE pool_free gauge\npool_free 3\n"));
        assert!(text.contains("# TYPE read_us histogram\n"));
        assert!(text.contains("read_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("read_us_sum 105\nread_us_count 2\n"));
        // Cumulative buckets are monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("read_us_bucket{le=\"")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {text}");
            last = v;
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h").observe(9);
        let snap = reg.snapshot();
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
