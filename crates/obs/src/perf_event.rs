//! Raw `perf_event_open(2)` hardware-counter sampling with graceful
//! degradation.
//!
//! The workspace builds offline, so this is a direct syscall wrapper —
//! no `perf-event` crate, no bindgen. Only the fields this repo needs
//! from `struct perf_event_attr` are declared; the kernel accepts any
//! attr whose `size` matches a published ABI revision, and
//! `PERF_ATTR_SIZE_VER0` (64 bytes) covers everything used here.
//!
//! Degradation contract (the part callers rely on): [`PerfCounters::open`]
//! **never fails**. On containers without a PMU (hardware events return
//! `ENOENT`), under `perf_event_paranoid >= 2` without `CAP_PERFMON`
//! (`EPERM`/`EACCES`), or when the user sets `MMC_PERF=off`, the returned
//! sampler simply reports [`CounterReading::hardware`] as empty and
//! [`PerfCounters::unavailable_reason`] explains why. Software events
//! (task-clock, page-faults, context-switches) are attempted
//! independently and usually survive even when the PMU does not.
//!
//! Counting strategy: events are opened **enabled** (`disabled = 0`)
//! with `inherit = 1`, immediately before the measured region, so
//! threads spawned inside the region (the rayon pool) are counted too.
//! Inheritance only covers children created *after* the open — open the
//! sampler before the first pool use. A grouped open (one leader, one
//! `read` for all values) is attempted first for self-consistent
//! multiplexing; if the kernel rejects the group (`inherit` + grouped
//! reads EINVALs on some kernels) each event falls back to its own fd.
//! Per-event `time_enabled`/`time_running` are always requested so
//! multiplexed values can be scaled.

use serde::{Deserialize, Serialize};
use std::fs;
use std::os::raw::{c_int, c_long, c_ulong};

// --- syscall plumbing -------------------------------------------------------

#[cfg(target_arch = "x86_64")]
const SYS_PERF_EVENT_OPEN: c_long = 298;
#[cfg(target_arch = "aarch64")]
const SYS_PERF_EVENT_OPEN: c_long = 241;
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
const SYS_PERF_EVENT_OPEN: c_long = -1;

extern "C" {
    fn syscall(num: c_long, ...) -> c_long;
    fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn __errno_location() -> *mut c_int;
}

fn errno() -> i32 {
    unsafe { *__errno_location() }
}

const EPERM: i32 = 1;
const ENOENT: i32 = 2;
const EACCES: i32 = 13;

// --- perf ABI constants -----------------------------------------------------

const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_TYPE_SOFTWARE: u32 = 1;
const PERF_TYPE_HW_CACHE: u32 = 3;

const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
const PERF_COUNT_HW_CACHE_REFERENCES: u64 = 2;
const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;

const PERF_COUNT_SW_TASK_CLOCK: u64 = 1;
const PERF_COUNT_SW_PAGE_FAULTS: u64 = 2;
const PERF_COUNT_SW_CONTEXT_SWITCHES: u64 = 3;

/// `PERF_COUNT_HW_CACHE_LL | (OP_READ << 8) | (RESULT_ACCESS << 16)`.
const HW_CACHE_LL_READ_ACCESS: u64 = 2;
/// `PERF_COUNT_HW_CACHE_LL | (OP_READ << 8) | (RESULT_MISS << 16)`.
const HW_CACHE_LL_READ_MISS: u64 = 2 | (1 << 16);

const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1;
const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 2;
const PERF_FORMAT_GROUP: u64 = 8;

const PERF_EVENT_IOC_DISABLE: c_ulong = 0x2401;

/// `PERF_ATTR_SIZE_VER0`: the 64-byte first revision of the attr struct.
const ATTR_SIZE_VER0: u32 = 64;

/// attr flag bits (bit 0 = disabled, 1 = inherit, 5 = exclude_kernel,
/// 6 = exclude_hv).
const FLAG_INHERIT: u64 = 1 << 1;
const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
const FLAG_EXCLUDE_HV: u64 = 1 << 6;

/// The leading 64 bytes of `struct perf_event_attr` (ABI VER0), which is
/// all this wrapper needs. `size` tells the kernel where the struct ends.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup_events: u32,
    bp_type: u32,
    config1: u64,
}

fn perf_event_open(attr: &PerfEventAttr, group_fd: c_int) -> Result<c_int, i32> {
    // pid = 0 (this process + inherited children), cpu = -1 (any cpu).
    let pid: c_int = 0;
    let cpu: c_int = -1;
    let flags: c_ulong = 0;
    let fd = unsafe {
        syscall(SYS_PERF_EVENT_OPEN, attr as *const PerfEventAttr, pid, cpu, group_fd, flags)
    };
    if fd < 0 {
        Err(errno())
    } else {
        Ok(fd as c_int)
    }
}

fn disable(fd: c_int) {
    let arg: c_ulong = 0;
    unsafe { ioctl(fd, PERF_EVENT_IOC_DISABLE, arg) };
}

// --- event table ------------------------------------------------------------

/// (exported name, type, config) for every hardware event we sample.
const HW_EVENTS: &[(&str, u32, u64)] = &[
    ("cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
    ("instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
    ("cache_references", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES),
    ("cache_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
    ("llc_loads", PERF_TYPE_HW_CACHE, HW_CACHE_LL_READ_ACCESS),
    ("llc_load_misses", PERF_TYPE_HW_CACHE, HW_CACHE_LL_READ_MISS),
];

/// Software events, opened individually; these work even without a PMU.
const SW_EVENTS: &[(&str, u32, u64)] = &[
    ("task_clock_ns", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK),
    ("page_faults", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS),
    ("context_switches", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES),
];

// --- public reading types ---------------------------------------------------

/// One sampled counter value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Event name (`cycles`, `llc_load_misses`, `task_clock_ns`, ...).
    pub event: String,
    /// Counted value, scaled for multiplexing when the event was not
    /// scheduled on the PMU the whole time.
    pub value: u64,
}

/// Everything read back from one measurement window.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterReading {
    /// Hardware events (empty when the PMU is unavailable).
    pub hardware: Vec<CounterValue>,
    /// Software events (usually available even in containers).
    pub software: Vec<CounterValue>,
    /// True if any hardware value was scaled because the kernel
    /// multiplexed the counter group.
    pub multiplexed: bool,
}

impl CounterReading {
    /// Value of hardware or software event `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.hardware.iter().chain(self.software.iter()).find(|c| c.event == name).map(|c| c.value)
    }
}

// --- sampler ----------------------------------------------------------------

enum HwBackend {
    /// Group leader fd + member names, read with `PERF_FORMAT_GROUP`.
    Group { leader: c_int, fds: Vec<c_int>, names: Vec<&'static str> },
    /// One fd per event (group open rejected by this kernel).
    Individual { fds: Vec<(c_int, &'static str)> },
    /// No hardware counters; `reason` says why.
    Unavailable { reason: String },
}

/// An open set of perf counters wrapping one measurement window.
///
/// Construct with [`PerfCounters::open`] immediately before the measured
/// region (events start enabled), and call [`PerfCounters::read`] right
/// after it. Dropping closes every fd.
pub struct PerfCounters {
    hw: HwBackend,
    sw_fds: Vec<(c_int, &'static str)>,
}

impl PerfCounters {
    /// Open the full event set. Never fails: any event or group the
    /// kernel refuses is recorded as unavailable and skipped.
    pub fn open() -> PerfCounters {
        if std::env::var("MMC_PERF").as_deref() == Ok("off") {
            return PerfCounters {
                hw: HwBackend::Unavailable { reason: "disabled by MMC_PERF=off".to_string() },
                sw_fds: Vec::new(),
            };
        }
        if SYS_PERF_EVENT_OPEN < 0 {
            return PerfCounters {
                hw: HwBackend::Unavailable {
                    reason: "perf_event_open syscall number unknown on this architecture"
                        .to_string(),
                },
                sw_fds: Vec::new(),
            };
        }
        let hw = open_hardware();
        let sw_fds = SW_EVENTS
            .iter()
            .filter_map(|&(name, type_, config)| {
                perf_event_open(&event_attr(type_, config, false), -1).ok().map(|fd| (fd, name))
            })
            .collect();
        PerfCounters { hw, sw_fds }
    }

    /// Whether hardware counters are live.
    pub fn hardware_available(&self) -> bool {
        !matches!(self.hw, HwBackend::Unavailable { .. })
    }

    /// Why hardware counters are unavailable, when they are.
    pub fn unavailable_reason(&self) -> Option<&str> {
        match &self.hw {
            HwBackend::Unavailable { reason } => Some(reason),
            _ => None,
        }
    }

    /// Stop counting and read every event, scaling multiplexed values by
    /// `time_enabled / time_running`.
    pub fn read(&self) -> CounterReading {
        let mut reading = CounterReading::default();
        match &self.hw {
            HwBackend::Group { leader, fds, names } => {
                for fd in std::iter::once(leader).chain(fds.iter()) {
                    disable(*fd);
                }
                // Layout: [nr, time_enabled, time_running, value0, value1, ...]
                let mut buf = vec![0u64; 3 + names.len()];
                if read_u64s(*leader, &mut buf) && buf[0] as usize == names.len() {
                    let (enabled, running) = (buf[1], buf[2]);
                    let scaled = running > 0 && running < enabled;
                    reading.multiplexed = scaled;
                    for (i, name) in names.iter().enumerate() {
                        reading.hardware.push(CounterValue {
                            event: name.to_string(),
                            value: scale(buf[3 + i], enabled, running),
                        });
                    }
                }
            }
            HwBackend::Individual { fds } => {
                for &(fd, name) in fds {
                    disable(fd);
                    // Layout: [value, time_enabled, time_running]
                    let mut buf = [0u64; 3];
                    if read_u64s(fd, &mut buf) {
                        let scaled = buf[2] > 0 && buf[2] < buf[1];
                        reading.multiplexed |= scaled;
                        reading.hardware.push(CounterValue {
                            event: name.to_string(),
                            value: scale(buf[0], buf[1], buf[2]),
                        });
                    }
                }
            }
            HwBackend::Unavailable { .. } => {}
        }
        for &(fd, name) in &self.sw_fds {
            disable(fd);
            let mut buf = [0u64; 3];
            if read_u64s(fd, &mut buf) {
                reading.software.push(CounterValue {
                    event: name.to_string(),
                    value: scale(buf[0], buf[1], buf[2]),
                });
            }
        }
        reading
    }
}

impl Drop for PerfCounters {
    fn drop(&mut self) {
        let mut all: Vec<c_int> = Vec::new();
        match &self.hw {
            HwBackend::Group { leader, fds, .. } => {
                all.extend(fds.iter().copied());
                all.push(*leader); // leader last
            }
            HwBackend::Individual { fds } => all.extend(fds.iter().map(|&(fd, _)| fd)),
            HwBackend::Unavailable { .. } => {}
        }
        all.extend(self.sw_fds.iter().map(|&(fd, _)| fd));
        for fd in all {
            unsafe { close(fd) };
        }
    }
}

fn event_attr(type_: u32, config: u64, grouped: bool) -> PerfEventAttr {
    let mut read_format = PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    if grouped {
        read_format |= PERF_FORMAT_GROUP;
    }
    PerfEventAttr {
        type_,
        size: ATTR_SIZE_VER0,
        config,
        read_format,
        // Start enabled (disabled bit clear) so nothing needs an enable
        // ioctl — inherit + group enable semantics vary across kernels.
        flags: FLAG_INHERIT | FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV,
        ..PerfEventAttr::default()
    }
}

/// Open the hardware event set: grouped first, then individual fds, then
/// give up with a diagnostic that includes errno and the paranoid level.
fn open_hardware() -> HwBackend {
    // Grouped attempt: leader = cycles, members = the rest. LLC events
    // may be missing on some PMUs — a partial group keeps what opened.
    let (name0, type0, config0) = HW_EVENTS[0];
    let first_err = match perf_event_open(&event_attr(type0, config0, true), -1) {
        Ok(leader) => {
            let mut fds = Vec::new();
            let mut names = vec![name0];
            for &(name, type_, config) in &HW_EVENTS[1..] {
                if let Ok(fd) = perf_event_open(&event_attr(type_, config, true), leader) {
                    fds.push(fd);
                    names.push(name);
                }
            }
            return HwBackend::Group { leader, fds, names };
        }
        Err(e) => e,
    };

    // Individual attempt: some kernels reject inherit+group combinations.
    let mut fds = Vec::new();
    for &(name, type_, config) in HW_EVENTS {
        if let Ok(fd) = perf_event_open(&event_attr(type_, config, false), -1) {
            fds.push((fd, name));
        }
    }
    if !fds.is_empty() {
        return HwBackend::Individual { fds };
    }

    let paranoid = fs::read_to_string("/proc/sys/kernel/perf_event_paranoid")
        .ok()
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "?".to_string());
    let why = match first_err {
        EPERM | EACCES => "permission denied",
        ENOENT => "event not supported (no PMU exposed to this machine)",
        _ => "perf_event_open failed",
    };
    HwBackend::Unavailable {
        reason: format!("{why} (errno {first_err}, perf_event_paranoid {paranoid})"),
    }
}

fn read_u64s(fd: c_int, buf: &mut [u64]) -> bool {
    let bytes = std::mem::size_of_val(buf);
    let n = unsafe { read(fd, buf.as_mut_ptr() as *mut u8, bytes) };
    n > 0
}

/// Scale a multiplexed value by `enabled / running` (u128 to avoid
/// overflow on long runs), matching what `perf stat` reports.
fn scale(value: u64, enabled: u64, running: u64) -> u64 {
    if running == 0 || running >= enabled {
        value
    } else {
        ((value as u128 * enabled as u128) / running as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_never_fails_and_reads_something() {
        let counters = PerfCounters::open();
        // Burn a little CPU so software counters have something to see.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let reading = counters.read();
        if counters.hardware_available() {
            assert!(!reading.hardware.is_empty());
        } else {
            assert!(reading.hardware.is_empty());
            assert!(counters.unavailable_reason().is_some());
        }
        // task_clock should have advanced if software events opened at all.
        if let Some(tc) = reading.get("task_clock_ns") {
            assert!(tc > 0, "task clock must advance over a busy loop");
        }
    }

    #[test]
    fn mmc_perf_off_disables_hardware() {
        // Scoped env mutation: this test is the only writer of MMC_PERF in
        // this process (unit tests in this file run in one binary; keep it so).
        std::env::set_var("MMC_PERF", "off");
        let counters = PerfCounters::open();
        std::env::remove_var("MMC_PERF");
        assert!(!counters.hardware_available());
        assert_eq!(counters.unavailable_reason(), Some("disabled by MMC_PERF=off"));
        let reading = counters.read();
        assert!(reading.hardware.is_empty());
        assert!(reading.software.is_empty());
    }

    #[test]
    fn scaling_math_is_sane() {
        assert_eq!(scale(100, 10, 10), 100);
        assert_eq!(scale(100, 10, 0), 100);
        assert_eq!(scale(100, 10, 5), 200);
        assert_eq!(scale(u64::MAX / 2, 4, 2), u64::MAX - 1);
    }
}
