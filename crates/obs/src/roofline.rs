//! Roofline records: arithmetic intensity, achieved GFLOP/s, and a
//! measured memory-bandwidth ceiling, so `BENCH_exec.json` carries the
//! machine's position under the roofline every PR.
//!
//! The roofline model bounds attainable performance by
//! `min(peak_gflops, arithmetic_intensity × bandwidth)`. Peak FLOP/s is
//! estimated from measured clock rate and the kernel's issue width;
//! bandwidth is measured directly with a STREAM-triad style sweep over
//! an array far larger than any cache on the paper's machines.

use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One roofline point for a named kernel run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RooflineRecord {
    /// Record name (e.g. `gemm_q64/avx2_fma`).
    pub name: String,
    /// Kernel variant that produced the point.
    pub kernel: String,
    /// 5-loop blocking plan the run executed under
    /// (`mc=.. kc=.. nc=..`, elements), empty for records that predate
    /// the macro-kernel or paths that bypass it.
    #[serde(default)]
    pub blocking: String,
    /// Problem order (matrix blocks per side).
    pub order: usize,
    /// Useful floating-point operations performed.
    pub flops: u64,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// Achieved GFLOP/s (`flops / seconds / 1e9`).
    pub gflops: f64,
    /// Bytes moved to/from memory. Measured LLC-miss traffic when
    /// hardware counters are live, else the model's compulsory traffic.
    pub bytes_moved: u64,
    /// Where `bytes_moved` came from: `"llc_misses"` or `"model"`.
    pub bytes_source: String,
    /// Arithmetic intensity in FLOP/byte (`flops / bytes_moved`).
    pub arithmetic_intensity: f64,
    /// Measured STREAM-triad memory bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Estimated peak GFLOP/s used as the flat roof.
    pub peak_gflops: f64,
    /// Achieved fraction of the roofline bound, in percent:
    /// `100 × gflops / min(peak_gflops, intensity × bandwidth)`.
    pub percent_of_peak: f64,
}

impl RooflineRecord {
    /// Assemble a record from raw measurements, deriving the
    /// intensity/percent-of-peak fields.
    #[allow(clippy::too_many_arguments)]
    pub fn from_measurements(
        name: &str,
        kernel: &str,
        blocking: &str,
        order: usize,
        flops: u64,
        seconds: f64,
        bytes_moved: u64,
        bytes_source: &str,
        bandwidth_gbs: f64,
        peak_gflops: f64,
    ) -> RooflineRecord {
        let gflops = if seconds > 0.0 { flops as f64 / seconds / 1e9 } else { 0.0 };
        let arithmetic_intensity =
            if bytes_moved > 0 { flops as f64 / bytes_moved as f64 } else { 0.0 };
        let roof = roofline_bound(arithmetic_intensity, bandwidth_gbs, peak_gflops);
        let percent_of_peak = if roof > 0.0 { 100.0 * gflops / roof } else { 0.0 };
        RooflineRecord {
            name: name.to_string(),
            kernel: kernel.to_string(),
            blocking: blocking.to_string(),
            order,
            flops,
            seconds,
            gflops,
            bytes_moved,
            bytes_source: bytes_source.to_string(),
            arithmetic_intensity,
            bandwidth_gbs,
            peak_gflops,
            percent_of_peak,
        }
    }
}

/// The attainable GFLOP/s at `intensity` FLOP/byte under the roofline:
/// `min(peak_gflops, intensity × bandwidth_gbs)`.
pub fn roofline_bound(intensity: f64, bandwidth_gbs: f64, peak_gflops: f64) -> f64 {
    (intensity * bandwidth_gbs).min(peak_gflops)
}

/// Measure sustained memory bandwidth with a STREAM-triad kernel
/// (`a[i] = b[i] + s * c[i]`, 3 × 8 bytes moved per element) over arrays
/// too large for any cache level, returning the best-of-`passes` GB/s.
pub fn stream_triad_bandwidth_gbs() -> f64 {
    const N: usize = 1 << 19; // 3 arrays × 4 MiB: beyond the paper's largest L2/L3.
    const PASSES: usize = 5;
    let b = vec![1.0f64; N];
    let c = vec![2.0f64; N];
    let mut a = vec![0.0f64; N];
    let s = 3.0f64;
    // Warm-up pass populates pages and caches steady state.
    triad(&mut a, &b, &c, s);
    let mut best = 0.0f64;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        triad(&mut a, &b, &c, s);
        let dt = t0.elapsed().as_secs_f64();
        if dt > 0.0 {
            best = best.max((3 * N * 8) as f64 / dt / 1e9);
        }
    }
    std::hint::black_box(&a);
    best
}

fn triad(a: &mut [f64], b: &[f64], c: &[f64], s: f64) {
    for i in 0..a.len() {
        a[i] = b[i] + s * c[i];
    }
}

/// Estimate the flat roof in GFLOP/s for `threads` cores at `ghz` clock
/// with `flops_per_cycle` per core (16 for AVX2+FMA f64, 2 for the
/// scalar kernel's mul+add).
pub fn peak_gflops_estimate(threads: usize, ghz: f64, flops_per_cycle: f64) -> f64 {
    threads as f64 * ghz * flops_per_cycle
}

/// The CPU clock in GHz, from `/proc/cpuinfo`'s first `cpu MHz` line.
/// Containers and non-x86 kernels often omit the field; the 3.0 GHz
/// fallback is a nominal desktop clock, close to the 2.66/2.93 GHz
/// parts in the paper's evaluation, and only sizes the flat roof — the
/// record carries the measured GFLOP/s either way.
pub fn cpu_ghz_estimate() -> f64 {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines().find_map(|l| {
                let rest = l.strip_prefix("cpu MHz")?;
                rest.split(':').nth(1)?.trim().parse::<f64>().ok()
            })
        })
        .map(|mhz| mhz / 1000.0)
        .unwrap_or(3.0)
}

/// FLOPs per cycle per core for a kernel variant name, used when sizing
/// the flat roof: 16 for 4-wide FMA f64 (`avx2_fma`), 4 for 2-wide NEON
/// FMA, 2 for scalar mul+add; f32 variants (`*_f32`) double the lane
/// count and therefore the roof.
pub fn flops_per_cycle_for_kernel(kernel: &str) -> f64 {
    match kernel {
        "avx2_fma" => 16.0,
        "avx2_fma_f32" => 32.0,
        "neon" => 4.0,
        "neon_f32" => 8.0,
        _ => 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_bound_takes_the_min() {
        // Memory-bound region: low intensity.
        assert_eq!(roofline_bound(0.5, 10.0, 100.0), 5.0);
        // Compute-bound region: high intensity.
        assert_eq!(roofline_bound(50.0, 10.0, 100.0), 100.0);
    }

    #[test]
    fn record_derives_intensity_and_percent() {
        let r = RooflineRecord::from_measurements(
            "gemm_q64/scalar",
            "scalar",
            "mc=6 kc=8 nc=8",
            6,
            2_000_000_000,
            1.0,
            1_000_000_000,
            "model",
            10.0,
            100.0,
        );
        assert!((r.gflops - 2.0).abs() < 1e-12);
        assert!((r.arithmetic_intensity - 2.0).abs() < 1e-12);
        // Roof = min(100, 2 × 10) = 20 GFLOP/s → 10% of peak.
        assert!((r.percent_of_peak - 10.0).abs() < 1e-9);
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = RooflineRecord::from_measurements(
            "x",
            "scalar",
            "",
            4,
            100,
            0.5,
            50,
            "llc_misses",
            1.0,
            2.0,
        );
        let text = serde_json::to_string(&r).unwrap();
        let back: RooflineRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn bandwidth_measurement_is_positive() {
        let bw = stream_triad_bandwidth_gbs();
        assert!(bw > 0.0, "triad bandwidth must be positive, got {bw}");
    }

    #[test]
    fn clock_estimate_is_plausible() {
        let ghz = cpu_ghz_estimate();
        assert!((0.1..=10.0).contains(&ghz), "implausible clock {ghz} GHz");
    }

    #[test]
    fn f32_variants_double_the_roof() {
        assert_eq!(flops_per_cycle_for_kernel("avx2_fma_f32"), 32.0);
        assert_eq!(flops_per_cycle_for_kernel("neon_f32"), 8.0);
        assert_eq!(flops_per_cycle_for_kernel("scalar"), 2.0);
        assert_eq!(flops_per_cycle_for_kernel("scalar_f32"), 2.0);
    }

    #[test]
    fn blocking_field_defaults_for_legacy_records() {
        // Records written before the 5-loop macro-kernel have no
        // `blocking` key; deserialization must not reject them.
        let legacy = r#"{"name":"old","kernel":"scalar","order":2,"flops":1,
            "seconds":1.0,"gflops":0.0,"bytes_moved":1,"bytes_source":"model",
            "arithmetic_intensity":1.0,"bandwidth_gbs":1.0,"peak_gflops":1.0,
            "percent_of_peak":0.0}"#;
        let r: RooflineRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(r.blocking, "");
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let r =
            RooflineRecord::from_measurements("z", "scalar", "", 1, 0, 0.0, 0, "model", 0.0, 0.0);
        assert_eq!(r.gflops, 0.0);
        assert_eq!(r.arithmetic_intensity, 0.0);
        assert_eq!(r.percent_of_peak, 0.0);
    }
}
