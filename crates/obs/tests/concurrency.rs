//! Concurrency proptests: the sharded counters must never lose an
//! increment no matter how many threads hammer them, how the increments
//! are sized, or how the work is split — and the span ring's seqlock
//! must never hand a reader a torn record, no matter how the writer's
//! overwrites interleave with concurrent scans.

use mmc_obs::span::{SpanKind, SpanRecord, ThreadRing};
use mmc_obs::{Counter, Gauge, Registry};
use proptest::prelude::*;
use std::sync::Arc;

/// A record whose every field is derived from one index, so a reader
/// can prove the record it got back is internally consistent (untorn).
fn coded(i: u64) -> SpanRecord {
    SpanRecord {
        job: i,
        kind: SpanKind::ALL[(i % 10) as usize],
        thread: if i.is_multiple_of(4) { None } else { Some(i as u32) },
        start_ns: i.wrapping_mul(3),
        dur_ns: i ^ 0xABCD_1234,
        pred: i.wrapping_mul(7),
        val: i.wrapping_mul(11),
        args: [i as u32, (i >> 1) as u32, (i >> 2) as u32, (i >> 3) as u32],
    }
}

/// The tear check: every field must agree with the record's `job` index.
fn assert_coded(r: &SpanRecord) {
    let expect = coded(r.job);
    assert_eq!(*r, expect, "torn record for index {}", r.job);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N threads x M increments of arbitrary size: the final sum is the
    /// exact total, for any interleaving the scheduler produces.
    #[test]
    fn sharded_counter_never_drops_increments(
        threads in 1usize..12,
        per_thread in prop::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let counter = Arc::new(Counter::new());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&counter);
                let incs = per_thread.clone();
                std::thread::spawn(move || {
                    for &n in &incs {
                        c.add(n);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = threads as u64 * per_thread.iter().sum::<u64>();
        prop_assert_eq!(counter.get(), expected);
    }

    /// Histograms observed from many threads keep count and sum exact,
    /// and the bucket totals always add up to the count.
    #[test]
    fn concurrent_histogram_totals_stay_exact(
        threads in 1usize..8,
        values in prop::collection::vec(0u64..1_000_000_000, 1..48),
    ) {
        let registry = Arc::new(Registry::new());
        let hist = registry.histogram("h");
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let h = Arc::clone(&hist);
                let vals = values.clone();
                std::thread::spawn(move || {
                    for &v in &vals {
                        h.observe(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let full = registry.snapshot();
        let snap = full.histogram("h").expect("histogram registered");
        let n = threads as u64 * values.len() as u64;
        prop_assert_eq!(snap.count, n);
        prop_assert_eq!(snap.sum, threads as u64 * values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), n);
    }

    /// Interleaved registration and mutation through a shared registry:
    /// every name interns to the same instrument, so per-name totals are
    /// exact even when threads race to create them.
    #[test]
    fn registry_interning_is_race_free(
        threads in 2usize..10,
        adds in 1u64..500,
    ) {
        let registry = Arc::new(Registry::new());
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let r = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for _ in 0..adds {
                        r.counter("shared.total").add(1);
                        r.gauge("shared.level").add(1);
                    }
                    r.counter(&format!("private.{i}")).add(adds);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter("shared.total"), Some(threads as u64 * adds));
        prop_assert_eq!(snap.gauge("shared.level"), Some((threads as u64 * adds) as i64));
        for i in 0..threads {
            prop_assert_eq!(snap.counter(&format!("private.{i}")), Some(adds));
        }
    }

    /// One writer overwriting a small ring while reader threads scan it
    /// continuously: no scan ever returns a torn record, and a quiescent
    /// scan afterwards returns exactly the most recent `capacity` spans
    /// in push order.
    #[test]
    fn ring_scans_never_tear_under_concurrent_overwrite(
        capacity in 1usize..64,
        pushes in 1u64..2_000,
        readers in 1usize..4,
    ) {
        let ring = Arc::new(ThreadRing::new(capacity));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let r = Arc::clone(&ring);
                let s = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while !s.load(std::sync::atomic::Ordering::Acquire) {
                        for rec in r.scan() {
                            assert_coded(&rec);
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();
        for i in 0..pushes {
            ring.push(&coded(i));
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        // Quiescent scan: exactly the newest min(pushes, capacity) spans,
        // in push order, none torn.
        let live = ring.scan();
        let expect_lo = pushes.saturating_sub(capacity as u64);
        prop_assert_eq!(live.len() as u64, pushes - expect_lo);
        for (offset, rec) in live.iter().enumerate() {
            assert_coded(rec);
            prop_assert_eq!(rec.job, expect_lo + offset as u64);
        }
        prop_assert_eq!(ring.head(), pushes);
    }

    /// The consuming sweep never double-reports and never skips a span
    /// that was still live at sweep time: consecutive `collect_new`
    /// calls partition the pushed indices (modulo overwrite loss, which
    /// can only drop the *oldest* spans between sweeps).
    #[test]
    fn ring_collect_new_partitions_pushes(
        capacity in 1usize..48,
        batches in prop::collection::vec(1u64..96, 1..8),
    ) {
        let ring = ThreadRing::new(capacity);
        let mut next = 0u64;
        let mut collected: Vec<u64> = Vec::new();
        for batch in &batches {
            for _ in 0..*batch {
                ring.push(&coded(next));
                next += 1;
            }
            for rec in ring.collect_new() {
                assert_coded(&rec);
                collected.push(rec.job);
            }
        }
        // No duplicates, strictly increasing (each sweep resumes past
        // the watermark), and the final span is always reported.
        prop_assert!(collected.windows(2).all(|w| w[0] < w[1]), "{collected:?}");
        prop_assert_eq!(*collected.last().unwrap(), next - 1);
        // A sweep after quiescence finds nothing left.
        prop_assert!(ring.collect_new().is_empty());
        // Only overwrite can lose spans, and it only loses the oldest:
        // each batch contributes at least its newest min(batch, capacity).
        let min_kept: u64 =
            batches.iter().map(|b| (*b).min(capacity as u64)).sum();
        prop_assert!(collected.len() as u64 >= min_kept, "{} < {min_kept}", collected.len());
    }
}

/// A non-proptest sanity check that gauges tolerate concurrent set/add
/// without tearing (the last set wins, adds on top remain bounded).
#[test]
fn gauge_concurrent_set_and_add_is_sane() {
    let gauge = Arc::new(Gauge::new());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let g = Arc::clone(&gauge);
            std::thread::spawn(move || {
                for i in 0..1000i64 {
                    g.set(i);
                    g.add(1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let v = gauge.get();
    assert!((0..=1004).contains(&v), "gauge value {v} out of plausible range");
}
