//! Concurrency proptest: the sharded counters must never lose an
//! increment no matter how many threads hammer them, how the increments
//! are sized, or how the work is split — the registry's whole value
//! proposition is that relaxed per-shard adds still sum exactly.

use mmc_obs::{Counter, Gauge, Registry};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N threads x M increments of arbitrary size: the final sum is the
    /// exact total, for any interleaving the scheduler produces.
    #[test]
    fn sharded_counter_never_drops_increments(
        threads in 1usize..12,
        per_thread in prop::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let counter = Arc::new(Counter::new());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&counter);
                let incs = per_thread.clone();
                std::thread::spawn(move || {
                    for &n in &incs {
                        c.add(n);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = threads as u64 * per_thread.iter().sum::<u64>();
        prop_assert_eq!(counter.get(), expected);
    }

    /// Histograms observed from many threads keep count and sum exact,
    /// and the bucket totals always add up to the count.
    #[test]
    fn concurrent_histogram_totals_stay_exact(
        threads in 1usize..8,
        values in prop::collection::vec(0u64..1_000_000_000, 1..48),
    ) {
        let registry = Arc::new(Registry::new());
        let hist = registry.histogram("h");
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let h = Arc::clone(&hist);
                let vals = values.clone();
                std::thread::spawn(move || {
                    for &v in &vals {
                        h.observe(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let full = registry.snapshot();
        let snap = full.histogram("h").expect("histogram registered");
        let n = threads as u64 * values.len() as u64;
        prop_assert_eq!(snap.count, n);
        prop_assert_eq!(snap.sum, threads as u64 * values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), n);
    }

    /// Interleaved registration and mutation through a shared registry:
    /// every name interns to the same instrument, so per-name totals are
    /// exact even when threads race to create them.
    #[test]
    fn registry_interning_is_race_free(
        threads in 2usize..10,
        adds in 1u64..500,
    ) {
        let registry = Arc::new(Registry::new());
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let r = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for _ in 0..adds {
                        r.counter("shared.total").add(1);
                        r.gauge("shared.level").add(1);
                    }
                    r.counter(&format!("private.{i}")).add(adds);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter("shared.total"), Some(threads as u64 * adds));
        prop_assert_eq!(snap.gauge("shared.level"), Some((threads as u64 * adds) as i64));
        for i in 0..threads {
            prop_assert_eq!(snap.counter(&format!("private.{i}")), Some(adds));
        }
    }
}

/// A non-proptest sanity check that gauges tolerate concurrent set/add
/// without tearing (the last set wins, adds on top remain bounded).
#[test]
fn gauge_concurrent_set_and_add_is_sane() {
    let gauge = Arc::new(Gauge::new());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let g = Arc::clone(&gauge);
            std::thread::spawn(move || {
                for i in 0..1000i64 {
                    g.set(i);
                    g.add(1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let v = gauge.get();
    assert!((0..=1004).contains(&v), "gauge value {v} out of plausible range");
}
