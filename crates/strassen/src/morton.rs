//! Z-order (Morton) block layout for the Strassen–Winograd recursion.
//!
//! The recursion halves a square matrix into quadrants at every level, so
//! the natural storage is the one where **every quadrant at every level
//! is one contiguous slice**. A pure element-wise Z-order curve would buy
//! that at the price of scattering the `q×q` blocks the packed 5-loop
//! kernels consume; this module uses the hybrid the cache-oblivious
//! literature recommends instead:
//!
//! * the padded matrix is a `2^d × 2^d` grid of *leaf tiles*, stored in
//!   Morton order of their `(tile_row, tile_col)` coordinates;
//! * each leaf tile is an `ℓ×ℓ` grid of `q×q` blocks in ordinary
//!   block-row-major order — byte-for-byte the [`BlockMatrixOf`] layout,
//!   so a leaf converts to the packed kernels' input with one `memcpy`.
//!
//! Splitting a Morton square of side `2^k` tiles yields four contiguous
//! chunks, in the order `[Q11, Q12, Q21, Q22]` (the row bit interleaves
//! *above* the column bit), and the recursion bottoms out on slices that
//! are whole leaf tiles. Conversion from/to row-major [`BlockMatrixOf`]
//! pads with zero blocks on the right/bottom; the round trip is the
//! identity on the logical `rows × cols` region (tested below).

use mmc_exec::{BlockMatrixOf, Element};

/// Spread the low 32 bits of `x` so bit `i` lands at position `2i`.
#[inline]
fn spread(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Compact the even-position bits of `x` back into the low 32 bits.
#[inline]
fn compact(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Morton index of tile `(row, col)`: row bits interleaved above column
/// bits, so quadrants of a `2^k` square enumerate as Q11, Q12, Q21, Q22.
#[inline]
pub fn morton_encode(row: u32, col: u32) -> u64 {
    (spread(row) << 1) | spread(col)
}

/// Inverse of [`morton_encode`]: `(row, col)` of a tile index.
#[inline]
pub fn morton_decode(idx: u64) -> (u32, u32) {
    (compact(idx >> 1), compact(idx))
}

/// Geometry of one Morton-hybrid layout: `2^depth × 2^depth` leaf tiles
/// of `leaf_side × leaf_side` blocks of `q×q` elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MortonLayout {
    /// Recursion depth `d` (number of quadrant splits until a leaf).
    pub depth: u32,
    /// Leaf tile side `ℓ`, in blocks.
    pub leaf_side: u32,
    /// Block side `q`, in elements.
    pub q: usize,
}

impl MortonLayout {
    /// The layout the recursion uses for an `m×z · z×n` block product
    /// with the given leaf `cutoff`: pad all three extents to the square
    /// side `S = ℓ·2^d` where `d` is the *smallest* depth that brings
    /// the leaf side `ℓ = ⌈max(m,n,z)/2^d⌉` down to `cutoff` blocks.
    ///
    /// Padding overhead is bounded: `S < max(m,n,z) + 2^d` and the
    /// minimal depth keeps `2^d ≤ 2·max(m,n,z)/cutoff`, so the padded
    /// area exceeds the logical one by at most a `(1 + 2/cutoff)²`
    /// factor — unlike pad-to-power-of-two, which can double each side.
    pub fn for_shape(m: u32, n: u32, z: u32, cutoff: u32, q: usize) -> MortonLayout {
        let base = m.max(n).max(z).max(1);
        let cutoff = cutoff.max(1);
        let mut depth = 0u32;
        while base.div_ceil(1 << depth) > cutoff && depth < 20 {
            depth += 1;
        }
        MortonLayout { depth, leaf_side: base.div_ceil(1 << depth), q }
    }

    /// Padded side `S = ℓ·2^d`, in blocks.
    pub fn side(&self) -> u32 {
        self.leaf_side << self.depth
    }

    /// Elements in one leaf tile (`ℓ²q²`) — the contiguous chunk size at
    /// the bottom of the recursion.
    pub fn leaf_len(&self) -> usize {
        let l = self.leaf_side as usize;
        l * l * self.q * self.q
    }

    /// Total elements in the padded Morton buffer (`S²q²`).
    pub fn len(&self) -> usize {
        self.leaf_len() << (2 * self.depth)
    }

    /// Whether the layout holds no elements (never true: sides are ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A square matrix stored in the Morton-hybrid layout, remembering the
/// logical (unpadded) block extents it was converted from.
#[derive(Clone, Debug)]
pub struct MortonMatrix<T> {
    layout: MortonLayout,
    rows: u32,
    cols: u32,
    data: Vec<T>,
}

impl<T: Element> MortonMatrix<T> {
    /// An all-zero Morton matrix with logical extent `rows × cols`.
    pub fn zeros(layout: MortonLayout, rows: u32, cols: u32) -> MortonMatrix<T> {
        assert!(rows <= layout.side() && cols <= layout.side(), "logical extent exceeds layout");
        MortonMatrix { layout, rows, cols, data: vec![T::ZERO; layout.len()] }
    }

    /// Convert a row-major block matrix into the layout, padding the
    /// right/bottom with zero blocks.
    pub fn from_blocks(src: &BlockMatrixOf<T>, layout: MortonLayout) -> MortonMatrix<T> {
        assert_eq!(src.q(), layout.q, "block sides must agree");
        let mut m = MortonMatrix::zeros(layout, src.rows(), src.cols());
        let (l, q2) = (layout.leaf_side, layout.q * layout.q);
        let tiles = 1u64 << (2 * layout.depth);
        for t in 0..tiles {
            let (tr, tc) = morton_decode(t);
            let chunk = &mut m.data[t as usize * layout.leaf_len()..][..layout.leaf_len()];
            for i in 0..l {
                let gr = tr * l + i;
                if gr >= src.rows() {
                    break;
                }
                for j in 0..l {
                    let gc = tc * l + j;
                    if gc >= src.cols() {
                        break;
                    }
                    let dst = &mut chunk[(i * l + j) as usize * q2..][..q2];
                    dst.copy_from_slice(src.block(gr, gc));
                }
            }
        }
        m
    }

    /// Convert back to a row-major block matrix, dropping the padding.
    pub fn to_blocks(&self) -> BlockMatrixOf<T> {
        let mut out = BlockMatrixOf::zeros(self.rows, self.cols, self.layout.q);
        let (l, q2) = (self.layout.leaf_side, self.layout.q * self.layout.q);
        let tiles = 1u64 << (2 * self.layout.depth);
        for t in 0..tiles {
            let (tr, tc) = morton_decode(t);
            let chunk = &self.data[t as usize * self.layout.leaf_len()..][..self.layout.leaf_len()];
            for i in 0..l {
                let gr = tr * l + i;
                if gr >= self.rows {
                    break;
                }
                for j in 0..l {
                    let gc = tc * l + j;
                    if gc >= self.cols {
                        break;
                    }
                    out.block_mut(gr, gc)
                        .copy_from_slice(&chunk[(i * l + j) as usize * q2..][..q2]);
                }
            }
        }
        out
    }

    /// The layout geometry.
    pub fn layout(&self) -> MortonLayout {
        self.layout
    }

    /// The full padded buffer, quadrants contiguous at every level.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the full padded buffer.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_exec::BlockMatrix;

    #[test]
    fn encode_decode_round_trip_and_quadrant_order() {
        for row in [0u32, 1, 2, 3, 7, 100, 65535] {
            for col in [0u32, 1, 2, 3, 5, 99, 65535] {
                assert_eq!(morton_decode(morton_encode(row, col)), (row, col));
            }
        }
        // 2x2 tile grid enumerates Q11, Q12, Q21, Q22.
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(0, 1), 1);
        assert_eq!(morton_encode(1, 0), 2);
        assert_eq!(morton_encode(1, 1), 3);
        // The four 2x2 quadrants of a 4x4 grid are contiguous index ranges.
        for (tr, tc, base) in [(0, 0, 0u64), (0, 2, 4), (2, 0, 8), (2, 2, 12)] {
            for di in 0..2 {
                for dj in 0..2 {
                    let idx = morton_encode(tr + di, tc + dj);
                    assert!((base..base + 4).contains(&idx), "({},{}) -> {idx}", tr + di, tc + dj);
                }
            }
        }
    }

    #[test]
    fn layout_picks_minimal_depth_for_cutoff() {
        let l = MortonLayout::for_shape(12, 12, 12, 4, 8);
        assert_eq!((l.depth, l.leaf_side, l.side()), (2, 3, 12));
        let l = MortonLayout::for_shape(13, 13, 13, 4, 8);
        assert_eq!((l.depth, l.leaf_side, l.side()), (2, 4, 16));
        // Already under the cutoff: no recursion, no padding.
        let l = MortonLayout::for_shape(3, 3, 3, 4, 8);
        assert_eq!((l.depth, l.leaf_side, l.side()), (0, 3, 3));
        // Ragged shapes pad to the largest extent.
        let l = MortonLayout::for_shape(5, 9, 2, 4, 8);
        assert_eq!((l.depth, l.leaf_side, l.side()), (2, 3, 12));
    }

    #[test]
    fn block_round_trip_is_identity_on_ragged_shapes() {
        for (rows, cols, q, cutoff) in [(5u32, 7u32, 4usize, 2u32), (1, 1, 3, 1), (8, 3, 2, 2)] {
            let src = BlockMatrix::pseudo_random(rows, cols, q, 42);
            let layout = MortonLayout::for_shape(rows, cols, rows.max(cols), cutoff, q);
            let m = MortonMatrix::from_blocks(&src, layout);
            assert_eq!(m.data().len(), layout.len());
            assert_eq!(m.to_blocks(), src);
        }
    }

    #[test]
    fn padding_is_zero_blocks() {
        let src = BlockMatrix::pseudo_random(3, 3, 2, 7);
        let layout = MortonLayout::for_shape(3, 3, 3, 2, 2);
        assert_eq!(layout.side(), 4);
        let m = MortonMatrix::from_blocks(&src, layout);
        let logical: f64 = src.data().iter().map(|v| v.abs()).sum();
        let total: f64 = m.data().iter().map(|v| v.abs()).sum();
        assert!((logical - total).abs() < 1e-12, "padding must not add mass");
    }
}
