//! Strassen–Winograd recursive GEMM over Morton-ordered blocks.
//!
//! Classic GEMM is cubic: every path in this repo so far — the 5-loop
//! executor, the out-of-core pipeline, the serve scheduler — runs and
//! prices `2n³q³` flops. This crate adds the first sub-cubic path: the
//! Winograd variant of Strassen's recursion, which multiplies two `2×2`
//! quadrant matrices with **7** recursive products and 15 quadrant
//! additions (the classic schedule needs 8 and 4), so `d` levels of
//! recursion cost `7^d` leaf products instead of `8^d`.
//!
//! The implementation follows three design rules:
//!
//! * **Morton layout** ([`morton`]): operands convert once into a hybrid
//!   Z-order layout where every quadrant at every recursion level is one
//!   contiguous slice, so the recursion is pure slice arithmetic with no
//!   strided views, and each leaf is byte-identical to the row-major
//!   [`BlockMatrixOf`] layout the packed kernels consume.
//! * **Packed leaves**: below a tunable `cutoff` (in blocks), products
//!   are handed to the existing 5-loop packed kernels via
//!   [`mmc_exec::gemm_accumulate_cancellable`], inheriting their SIMD
//!   micro-kernels and analytic `MC`/`KC`/`NC` blocking unchanged.
//! * **Pooled workspace** ([`pool`]): the recursion runs its 7 products
//!   sequentially with two quadrant temporaries per level, recycled
//!   through a free list, so the live workspace is bounded by the
//!   geometric series `2·S²/4·(1 + 1/4 + …) ≤ (2/3)·S²` blocks plus one
//!   leaf staging set — and the realized high-water mark is reported in
//!   [`StrassenReport::workspace_bytes`].
//!
//! The 22-step in-place schedule below (two temps `X`, `Y`; every
//! recursive call *overwrites* its destination) is the classic
//! memory-lean ordering of Winograd's `S`/`T`/`P`/`U` terms; it was
//! re-derived and checked term-by-term against
//! `C11=P1+P2, C12=U3+P3, C21=U2−P4, C22=U2+P5` with
//! `U1=P1+P6, U2=U1+P7, U3=U1+P5`.
//!
//! Numerically, Winograd's recursion is stabler than folklore suggests
//! but weaker than classic GEMM: the max-norm error grows like `18^d`
//! (Higham, *Accuracy and Stability of Numerical Algorithms*, §23.2.2).
//! [`winograd_error_bound`] exposes that bound so callers can verify
//! results with an honest, documented tolerance instead of exact
//! comparison.

#![warn(missing_docs)]

pub mod morton;
pub mod pool;

use std::ops::Sub;

use mmc_exec::{
    gemm_accumulate_cancellable, gemm_parallel_cancellable, gemm_parallel_with_plan, BlockMatrixOf,
    BlockingPlan, CancelToken, Element, KernelVariant, Tiling,
};
use serde::{Deserialize, Serialize};

use morton::{MortonLayout, MortonMatrix};
use pool::BufferPool;

/// Default leaf cutoff, in blocks: recursion stops once a quadrant side
/// is at most this many `q×q` blocks and hands the product to the packed
/// 5-loop kernels. 8 blocks keeps the leaf big enough to amortize
/// packing while still reaching depth ≥ 1 on modest problem sizes.
pub const DEFAULT_CUTOFF: u32 = 8;

/// Tunable knobs for one Strassen–Winograd multiply.
#[derive(Clone, Copy, Debug)]
pub struct StrassenOpts {
    /// Leaf cutoff in blocks (see [`DEFAULT_CUTOFF`]).
    pub cutoff: u32,
    /// Kernel variant the leaf products run.
    pub variant: KernelVariant,
    /// `MC`/`KC`/`NC` blocking for the depth-0 (classic) fallback path.
    pub plan: BlockingPlan,
    /// Task tiling for leaf products, clamped to the leaf side.
    pub tiling: Tiling,
}

impl StrassenOpts {
    /// Options with the given cutoff and the host's detected kernel
    /// variant, blocking plan, and a whole-leaf tiling.
    pub fn with_cutoff<T: Element>(cutoff: u32) -> StrassenOpts {
        StrassenOpts {
            cutoff,
            variant: mmc_exec::kernel::variant(),
            plan: mmc_exec::blocking::active_plan::<T>(),
            tiling: Tiling { tile_m: u32::MAX, tile_n: u32::MAX, tile_k: u32::MAX },
        }
    }
}

/// What one Strassen–Winograd multiply actually did — geometry, work,
/// and realized workspace — for pricing reconciliation and reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrassenReport {
    /// Recursion depth `d` (0 means the classic fallback ran).
    pub depth: u32,
    /// Leaf side `ℓ`, in blocks.
    pub leaf_side: u32,
    /// Padded square side `S = ℓ·2^d`, in blocks.
    pub padded_side: u32,
    /// Leaf products executed — exactly `7^d`.
    pub leaf_products: u64,
    /// High-water mark of pooled recursion workspace, in bytes
    /// (0 on the depth-0 fallback, which needs no quadrant temps).
    pub workspace_bytes: u64,
}

/// Higham's max-norm forward error bound for Winograd's variant,
/// recursing from element side `n` down to leaf side `n0 = n/2^depth`:
///
/// `max|C − Ĉ| ≤ [(n/n0)^log2(18) · (n0² + 5n0)] · u · max|A| · max|B|`
///
/// (§23.2.2 of *Accuracy and Stability of Numerical Algorithms*; the
/// small `−5n` sharpening is dropped, keeping the bound conservative).
/// `unit` is the unit roundoff of the element type — `EPSILON / 2`.
/// At `depth == 0` this degenerates to the classic `n²u` style bound.
pub fn winograd_error_bound(n_elems: u64, depth: u32, unit: f64) -> f64 {
    let n0 = (n_elems.max(1) as f64) / (1u64 << depth) as f64;
    18f64.powi(depth as i32) * (n0 * n0 + 5.0 * n0) * unit
}

/// Tolerance for comparing a Strassen result against a classic one:
/// [`winograd_error_bound`] scaled by the operands' max magnitudes.
pub fn comparison_tolerance<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    report: &StrassenReport,
    unit: f64,
) -> f64 {
    let amax = a.data().iter().map(|v| v.to_f64().abs()).fold(0.0, f64::max);
    let bmax = b.data().iter().map(|v| v.to_f64().abs()).fold(0.0, f64::max);
    let n = report.padded_side as u64 * a.q() as u64;
    // Both runs commit rounding errors; double the one-sided bound.
    2.0 * winograd_error_bound(n, report.depth, unit) * amax * bmax
}

#[inline]
fn sub_into<T: Element + Sub<Output = T>>(dst: &mut [T], a: &[T], b: &[T]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x - y;
    }
}

#[inline]
fn add_into<T: Element>(dst: &mut [T], a: &[T], b: &[T]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x + y;
    }
}

#[inline]
fn add_assign<T: Element>(dst: &mut [T], src: &[T]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = *d + s;
    }
}

#[inline]
fn sub_assign<T: Element + Sub<Output = T>>(dst: &mut [T], src: &[T]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = *d - s;
    }
}

/// `dst = src − dst`.
#[inline]
fn rsub_from<T: Element + Sub<Output = T>>(dst: &mut [T], src: &[T]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s - *d;
    }
}

/// Clamp a requested tiling to an `side × side` product so leaf tasks
/// never exceed the leaf extent.
fn clamped_tiling(t: Tiling, side: u32) -> Tiling {
    Tiling {
        tile_m: t.tile_m.clamp(1, side),
        tile_n: t.tile_n.clamp(1, side),
        tile_k: t.tile_k.clamp(1, side),
    }
}

struct Recursion<'a, T> {
    leaf_side: u32,
    q: usize,
    variant: KernelVariant,
    leaf_tiling: Tiling,
    pool: BufferPool<T>,
    cancel: Option<&'a CancelToken>,
    leaf_products: u64,
}

impl<T: Element + Sub<Output = T>> Recursion<'_, T> {
    /// One leaf product `dst = a·b` through the packed 5-loop kernels:
    /// stage the Morton chunks as row-major block matrices (they are
    /// byte-identical — one memcpy each), run, copy the result back.
    fn leaf(&mut self, dst: &mut [T], a: &[T], b: &[T]) -> bool {
        let (l, len) = (self.leaf_side, dst.len());
        let mut av = self.pool.take(len);
        av.copy_from_slice(a);
        let mut bv = self.pool.take(len);
        bv.copy_from_slice(b);
        let am = BlockMatrixOf::from_vec(l, l, self.q, av);
        let bm = BlockMatrixOf::from_vec(l, l, self.q, bv);
        let mut cm = BlockMatrixOf::from_vec(l, l, self.q, self.pool.take_zeroed(len));
        let ok = gemm_accumulate_cancellable(
            &mut cm,
            &am,
            &bm,
            self.leaf_tiling,
            self.variant,
            self.cancel,
        );
        if ok {
            dst.copy_from_slice(cm.data());
            self.leaf_products += 1;
        }
        self.pool.put(am.into_vec());
        self.pool.put(bm.into_vec());
        self.pool.put(cm.into_vec());
        ok
    }

    /// Winograd recursion over contiguous Morton chunks: fully overwrite
    /// `dst = a·b` where all three are squares of side `ℓ·2^depth`
    /// blocks. Returns `false` when cancelled mid-recursion.
    fn rec(&mut self, dst: &mut [T], a: &[T], b: &[T], depth: u32) -> bool {
        if self.cancel.is_some_and(|c| c.is_cancelled()) {
            return false;
        }
        if depth == 0 {
            return self.leaf(dst, a, b);
        }
        let half = dst.len() / 4;
        let (a11, a12, a21, a22) =
            (&a[..half], &a[half..2 * half], &a[2 * half..3 * half], &a[3 * half..]);
        let (b11, b12, b21, b22) =
            (&b[..half], &b[half..2 * half], &b[2 * half..3 * half], &b[3 * half..]);
        let (c_top, c_bot) = dst.split_at_mut(2 * half);
        let (c11, c12) = c_top.split_at_mut(half);
        let (c21, c22) = c_bot.split_at_mut(half);

        let mut x = self.pool.take(half);
        let mut y = self.pool.take(half);
        let d = depth - 1;
        // The 22-step two-temp schedule; `rec` overwrites its target.
        sub_into(&mut x, a11, a21); //  1. X = A11 − A21          (= S3)
        sub_into(&mut y, b22, b12); //  2. Y = B22 − B12          (= T3)
        let ok = self.rec(c21, &x, &y, d)
            && {
                //                           3. C21 = X·Y             (= P7)
                add_into(&mut x, a21, a22); //  4. X = A21 + A22      (= S1)
                sub_into(&mut y, b12, b11); //  5. Y = B12 − B11      (= T1)
                self.rec(c22, &x, &y, d) //     6. C22 = X·Y          (= P5)
            }
            && {
                sub_assign(&mut x, a11); //     7. X = X − A11        (= S2)
                rsub_from(&mut y, b22); //      8. Y = B22 − Y        (= T2)
                self.rec(c11, &x, &y, d) //     9. C11 = X·Y          (= P6)
            }
            && {
                rsub_from(&mut x, a12); //     10. X = A12 − X        (= S4)
                self.rec(c12, &x, b22, d) //   11. C12 = X·B22        (= P3)
            }
            && {
                add_assign(c12, c22); //       12. C12 += C22
                self.rec(&mut x, a11, b11, d) // 13. X = A11·B11      (= P1)
            }
            && {
                add_assign(c11, &x); //        14. C11 += X           (= U1)
                add_assign(c12, c11); //       15. C12 += C11         (final C12)
                add_assign(c11, c21); //       16. C11 += C21         (= U2)
                sub_assign(&mut y, b21); //    17. Y = Y − B21        (= T4)
                self.rec(c21, a22, &y, d) //   18. C21 = A22·Y        (= P4)
            }
            && {
                rsub_from(c21, c11); //        19. C21 = C11 − C21    (final C21)
                add_assign(c22, c11); //       20. C22 += C11         (final C22)
                self.rec(&mut y, a12, b21, d) // 21. Y = A12·B21      (= P2)
            };
        if !ok {
            return false;
        }
        add_into(c11, &x, &y); //          22. C11 = X + Y        (final C11)
        self.pool.put(x);
        self.pool.put(y);
        true
    }
}

/// [`strassen_multiply`] with cooperative cancellation: returns `None`
/// if `cancel` fires before the recursion completes.
pub fn strassen_multiply_cancellable<T: Element + Sub<Output = T>>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    opts: &StrassenOpts,
    cancel: Option<&CancelToken>,
) -> Option<(BlockMatrixOf<T>, StrassenReport)> {
    assert_eq!(a.cols(), b.rows(), "inner block dimensions must agree");
    assert_eq!(a.q(), b.q(), "block sides must agree");
    let layout = MortonLayout::for_shape(a.rows(), b.cols(), a.cols(), opts.cutoff, a.q());
    if layout.depth == 0 {
        // Already at or below the cutoff: the recursion would be a
        // single leaf, so skip the Morton round trip entirely and run
        // the classic packed path on the original row-major operands.
        let tiling = clamped_tiling(opts.tiling, a.rows().max(b.cols()).max(a.cols()));
        let c = match cancel {
            Some(t) => gemm_parallel_cancellable(a, b, tiling, opts.variant, opts.plan, t)?,
            None => gemm_parallel_with_plan(a, b, tiling, opts.variant, opts.plan),
        };
        let report = StrassenReport {
            depth: 0,
            leaf_side: layout.leaf_side,
            padded_side: layout.side(),
            leaf_products: 1,
            workspace_bytes: 0,
        };
        return Some((c, report));
    }
    let ma = MortonMatrix::from_blocks(a, layout);
    let mb = MortonMatrix::from_blocks(b, layout);
    let mut mc = MortonMatrix::<T>::zeros(layout, a.rows(), b.cols());
    let mut r = Recursion {
        leaf_side: layout.leaf_side,
        q: layout.q,
        variant: opts.variant,
        leaf_tiling: clamped_tiling(opts.tiling, layout.leaf_side),
        pool: BufferPool::new(),
        cancel,
        leaf_products: 0,
    };
    if !r.rec(mc.data_mut(), ma.data(), mb.data(), layout.depth) {
        return None;
    }
    let report = StrassenReport {
        depth: layout.depth,
        leaf_side: layout.leaf_side,
        padded_side: layout.side(),
        leaf_products: r.leaf_products,
        workspace_bytes: r.pool.peak_bytes(),
    };
    Some((mc.to_blocks(), report))
}

/// Multiply `a·b` with the Strassen–Winograd recursion, returning the
/// product and a [`StrassenReport`] of what ran. Accepts any block
/// shapes (ragged and odd sides are padded internally); the result has
/// the exact logical shape `a.rows() × b.cols()`.
pub fn strassen_multiply<T: Element + Sub<Output = T>>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    opts: &StrassenOpts,
) -> (BlockMatrixOf<T>, StrassenReport) {
    strassen_multiply_cancellable(a, b, opts, None).expect("uncancellable run cannot be cancelled")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_exec::gemm_naive;

    fn opts(cutoff: u32) -> StrassenOpts {
        StrassenOpts::with_cutoff::<f64>(cutoff)
    }

    fn check_f64(rows: u32, inner: u32, cols: u32, q: usize, cutoff: u32, want_depth: u32) {
        let a = BlockMatrixOf::<f64>::pseudo_random(rows, inner, q, 11);
        let b = BlockMatrixOf::<f64>::pseudo_random(inner, cols, q, 23);
        let (c, report) = strassen_multiply(&a, &b, &opts(cutoff));
        assert_eq!(report.depth, want_depth);
        assert_eq!(report.leaf_products, 7u64.pow(report.depth));
        let oracle = gemm_naive(&a, &b);
        let tol = comparison_tolerance(&a, &b, &report, f64::EPSILON / 2.0);
        let diff = c.max_abs_diff(&oracle);
        assert!(diff <= tol, "diff {diff:e} exceeds Winograd bound {tol:e}");
    }

    #[test]
    fn matches_naive_within_winograd_bound_on_square_shapes() {
        check_f64(8, 8, 8, 3, 2, 2);
        check_f64(16, 16, 16, 2, 2, 3);
    }

    #[test]
    fn matches_naive_on_ragged_and_odd_shapes() {
        check_f64(5, 3, 7, 3, 2, 2);
        check_f64(1, 9, 2, 2, 2, 3);
        check_f64(3, 3, 3, 4, 4, 0); // below cutoff: classic fallback
    }

    #[test]
    fn f32_path_matches_naive_within_its_bound() {
        let a = BlockMatrixOf::<f32>::pseudo_random(6, 5, 3, 5);
        let b = BlockMatrixOf::<f32>::pseudo_random(5, 7, 3, 9);
        let (c, report) = strassen_multiply(&a, &b, &opts(2));
        assert!(report.depth >= 1);
        let oracle = gemm_naive(&a, &b);
        let tol = comparison_tolerance(&a, &b, &report, f32::EPSILON as f64 / 2.0);
        assert!(c.max_abs_diff(&oracle) <= tol);
    }

    #[test]
    fn workspace_is_pooled_and_bounded() {
        let a = BlockMatrixOf::<f64>::pseudo_random(8, 8, 2, 1);
        let b = BlockMatrixOf::<f64>::pseudo_random(8, 8, 2, 2);
        let (_, report) = strassen_multiply(&a, &b, &opts(2));
        assert_eq!(report.depth, 2);
        assert!(report.workspace_bytes > 0);
        // Analytic bound: two temps per live level (geometric, ≤ (2/3)S²
        // blocks) plus one leaf staging set of 3ℓ² blocks.
        let s = report.padded_side as u64;
        let l = report.leaf_side as u64;
        let block_bytes = (a.q() * a.q() * std::mem::size_of::<f64>()) as u64;
        let bound = (2 * s * s / 3 + 3 * l * l + 1) * block_bytes;
        assert!(
            report.workspace_bytes <= bound,
            "pool peak {} exceeds analytic bound {}",
            report.workspace_bytes,
            bound
        );
    }

    #[test]
    fn cancellation_stops_the_recursion() {
        let a = BlockMatrixOf::<f64>::pseudo_random(8, 8, 2, 3);
        let b = BlockMatrixOf::<f64>::pseudo_random(8, 8, 2, 4);
        let token = CancelToken::new();
        token.cancel();
        assert!(strassen_multiply_cancellable(&a, &b, &opts(2), Some(&token)).is_none());
    }

    #[test]
    fn report_serializes_round_trip() {
        let r = StrassenReport {
            depth: 3,
            leaf_side: 4,
            padded_side: 32,
            leaf_products: 343,
            workspace_bytes: 65536,
        };
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<StrassenReport>(&json).unwrap(), r);
    }
}
