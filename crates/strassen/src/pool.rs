//! Temp-buffer pool bounding the recursion's workspace.
//!
//! Every level of the Strassen–Winograd recursion needs two quadrant
//! temporaries (`X`, `Y`), and every leaf product stages its operands
//! and result for the packed kernels. Allocating those on demand would
//! churn the allocator `O(7^d)` times; this free-list recycles buffers
//! across the recursion's sequential products instead, so the live
//! workspace stays at the analytic bound (two temps per *live* level
//! along one root-to-leaf path plus one leaf staging set, geometric in
//! the level area: `≤ (2/3)·S²q²` elements plus `3ℓ²q²`) and the pool's
//! high-water mark is reported as evidence.

use mmc_exec::Element;

/// A grow-only free list of `Vec<T>` scratch buffers.
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
    allocated_bytes: u64,
}

impl<T: Element> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> BufferPool<T> {
        BufferPool { free: Vec::new(), allocated_bytes: 0 }
    }

    /// Take a buffer of exactly `len` elements with unspecified contents
    /// (callers overwrite every element). Reuses a free buffer when one
    /// is available, growing it if needed.
    pub fn take(&mut self, len: usize) -> Vec<T> {
        match self.free.pop() {
            Some(mut v) => {
                if v.capacity() < len {
                    self.allocated_bytes +=
                        ((len - v.capacity()) * std::mem::size_of::<T>()) as u64;
                }
                v.resize(len, T::ZERO);
                v
            }
            None => {
                self.allocated_bytes += (len * std::mem::size_of::<T>()) as u64;
                vec![T::ZERO; len]
            }
        }
    }

    /// Take a buffer of `len` elements guaranteed to be all zero.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<T> {
        let mut v = self.take(len);
        v.fill(T::ZERO);
        v
    }

    /// Return a buffer for reuse.
    pub fn put(&mut self, v: Vec<T>) {
        self.free.push(v);
    }

    /// High-water mark of bytes ever allocated through the pool — the
    /// recursion's reported workspace bound.
    pub fn peak_bytes(&self) -> u64 {
        self.allocated_bytes
    }
}

impl<T: Element> Default for BufferPool<T> {
    fn default() -> Self {
        BufferPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_buffers_and_tracks_peak() {
        let mut pool: BufferPool<f64> = BufferPool::new();
        let a = pool.take(100);
        assert_eq!(a.len(), 100);
        assert_eq!(pool.peak_bytes(), 800);
        pool.put(a);
        // Smaller request reuses the same allocation: no growth.
        let b = pool.take(50);
        assert_eq!(b.len(), 50);
        assert_eq!(pool.peak_bytes(), 800);
        pool.put(b);
        // Larger request grows by the delta only.
        let c = pool.take(120);
        assert_eq!(c.len(), 120);
        assert_eq!(pool.peak_bytes(), 800 + 20 * 8);
        pool.put(c);
        // Two live buffers cost two allocations.
        let d = pool.take(10);
        let e = pool.take(10);
        assert_eq!(d.len() + e.len(), 20);
        assert_eq!(pool.peak_bytes(), 800 + 20 * 8 + 80);
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut pool: BufferPool<f64> = BufferPool::new();
        let mut a = pool.take(4);
        a.fill(7.0);
        pool.put(a);
        assert!(pool.take_zeroed(4).iter().all(|&v| v == 0.0));
    }
}
