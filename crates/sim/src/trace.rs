//! Flight recorder: structured event journals, Chrome/Perfetto trace
//! export, and JSON metrics snapshots.
//!
//! [`FlightRecorder`] is a [`SimSink`] decorator around a [`Simulator`]
//! that records a *structured journal* of everything the schedule does:
//! per-core read/write/FMA events, cache loads and evictions at both
//! levels (derived exactly from the simulator's miss/writeback counters,
//! so journal counts reconcile with [`SimStats`] by construction),
//! barrier-delimited supersteps, and a cache-occupancy time series.
//! Events are stamped with *logical time* from the same [`TimingModel`]
//! the BSP estimator uses: per-core clocks advance by `fma_time` per FMA
//! and `1/σ` per miss, and barriers synchronize all clocks to the
//! maximum.
//!
//! Two export paths sit on top of the journal:
//!
//! * [`FlightRecorder::chrome_trace`] renders the Chrome trace-event JSON
//!   format (hand-rolled — no external tracing dependency) that
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//!   directly: one track per core, a track for shared-level activity, and
//!   counter tracks for cache occupancy;
//! * [`MetricsSnapshot`] is a flat, serde-serializable summary (raw
//!   counters plus the paper's derived metrics `M_S`, `M_D`, CCRs,
//!   `T_data`, hit rates) for machine-readable CLI output.
//!
//! [`ChromeTraceBuilder`] is exposed separately so other crates (the
//! executor's wall-clock task spans, benchmark emitters) can write the
//! same format without depending on the simulator types.

use crate::block::Block;
use crate::error::SimError;
use crate::hierarchy::Simulator;
use crate::sink::SimSink;
use crate::stats::SimStats;
use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};

/// Kind of one recorded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventKind {
    /// A core read a block (through its distributed cache).
    Read,
    /// A core wrote a block (write-allocate).
    Write,
    /// A core performed one block multiply-accumulate.
    Fma,
    /// A block was loaded into the shared cache (one per `M_S` miss).
    SharedLoad,
    /// A dirty block was written back from the shared cache to memory.
    SharedEvict,
    /// A block was loaded into a distributed cache (one per `M_D` miss).
    DistLoad,
    /// A dirty block was written back from a distributed cache.
    DistEvict,
    /// All cores synchronized; closes a superstep.
    Barrier,
}

impl EventKind {
    /// Short lower-case label used in trace exports.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Read => "read",
            EventKind::Write => "write",
            EventKind::Fma => "fma",
            EventKind::SharedLoad => "load_shared",
            EventKind::SharedEvict => "evict_shared",
            EventKind::DistLoad => "load_dist",
            EventKind::DistEvict => "evict_dist",
            EventKind::Barrier => "barrier",
        }
    }
}

/// One record in the flight-recorder journal.
///
/// `ts` and `dur` are logical times from the recorder's [`TimingModel`]
/// (misses cost `1/σ`, FMAs cost `fma_time`, hits are free).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JournalEvent {
    /// What happened.
    pub kind: EventKind,
    /// The acting core; `None` for shared-level and barrier events.
    pub core: Option<usize>,
    /// The block involved, when known. Eviction events derived from LRU
    /// writeback counters carry `None`: the counters say *that* a dirty
    /// block left, not *which*.
    pub block: Option<Block>,
    /// Logical start time.
    pub ts: f64,
    /// Logical duration (0 for instantaneous bookkeeping events).
    pub dur: f64,
    /// Superstep index (barriers close supersteps, starting from 0).
    pub superstep: u64,
}

/// Cache occupancy at one instant (sampled at every barrier).
#[derive(Clone, Debug, PartialEq)]
pub struct OccupancySample {
    /// Logical time of the sample.
    pub ts: f64,
    /// Superstep index at the sample.
    pub superstep: u64,
    /// Blocks resident in the shared cache.
    pub shared_blocks: usize,
    /// Blocks resident in each distributed cache.
    pub dist_blocks: Vec<usize>,
}

/// Export granularity for [`FlightRecorder::chrome_trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChromeGranularity {
    /// One trace event per journal event. Exact, but large traces (an
    /// order-`n` product journals `Θ(n³)` events) produce huge files.
    Events,
    /// One span per core per superstep, carrying event counts in its
    /// `args`. Compact enough for any problem size.
    Supersteps,
}

/// A [`SimSink`] decorator recording a structured event journal with
/// logical timestamps, plus occupancy samples at every barrier.
pub struct FlightRecorder {
    sim: Simulator,
    model: TimingModel,
    clocks: Vec<f64>,
    shared_clock: f64,
    journal: Vec<JournalEvent>,
    occupancy: Vec<OccupancySample>,
    superstep: u64,
}

impl FlightRecorder {
    /// Wrap `sim` (any policy), stamping events with costs from `model`.
    pub fn new(sim: Simulator, model: TimingModel) -> FlightRecorder {
        assert!(model.sigma_s > 0.0 && model.sigma_d > 0.0, "bandwidths must be positive");
        assert!(model.fma_time >= 0.0, "FMA time must be non-negative");
        let cores = sim.config().cores;
        let mut rec = FlightRecorder {
            sim,
            model,
            clocks: vec![0.0; cores],
            shared_clock: 0.0,
            journal: Vec::new(),
            occupancy: Vec::new(),
            superstep: 0,
        };
        rec.sample_occupancy();
        rec
    }

    /// The wrapped simulator's counters.
    pub fn stats(&self) -> &SimStats {
        self.sim.stats()
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The cost model stamping the journal.
    pub fn model(&self) -> &TimingModel {
        &self.model
    }

    /// The recorded journal, in emission order.
    pub fn journal(&self) -> &[JournalEvent] {
        &self.journal
    }

    /// Occupancy samples (one at construction, one per barrier).
    pub fn occupancy(&self) -> &[OccupancySample] {
        &self.occupancy
    }

    /// Supersteps closed so far (= barriers recorded).
    pub fn supersteps(&self) -> u64 {
        self.superstep
    }

    /// Core `core`'s logical clock.
    pub fn clock(&self, core: usize) -> f64 {
        self.clocks[core]
    }

    /// The latest logical time across all clocks.
    pub fn elapsed(&self) -> f64 {
        self.clocks.iter().copied().fold(self.shared_clock, f64::max)
    }

    /// Number of journal events of kind `kind`.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.journal.iter().filter(|e| e.kind == kind).count() as u64
    }

    /// Number of journal events of kind `kind` attributed to `core`.
    pub fn count_for_core(&self, kind: EventKind, core: usize) -> u64 {
        self.journal.iter().filter(|e| e.kind == kind && e.core == Some(core)).count() as u64
    }

    /// Record an occupancy sample now (also done at every barrier).
    pub fn sample_occupancy(&mut self) {
        let cores = self.sim.config().cores;
        self.occupancy.push(OccupancySample {
            ts: self.elapsed(),
            superstep: self.superstep,
            shared_blocks: self.sim.shared_len(),
            dist_blocks: (0..cores).map(|c| self.sim.dist_len(c)).collect(),
        });
    }

    /// Unwrap, returning the simulator with its accumulated counters.
    pub fn into_simulator(self) -> Simulator {
        self.sim
    }

    /// Flat metrics summary of the run so far, labeled `label`.
    pub fn snapshot(&self, label: &str) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::from_stats(
            label,
            self.sim.config().policy.label(),
            self.sim.stats(),
            &self.model,
        );
        snap.supersteps = self.superstep;
        snap.elapsed = self.elapsed();
        snap
    }

    fn push(
        &mut self,
        kind: EventKind,
        core: Option<usize>,
        block: Option<Block>,
        ts: f64,
        dur: f64,
    ) {
        self.journal.push(JournalEvent { kind, core, block, ts, dur, superstep: self.superstep });
    }

    /// Snapshot of the counters a forwarded event may change.
    fn counters(&self, core: usize) -> (u64, u64, u64, u64) {
        let s = self.sim.stats();
        (s.shared_misses, s.dist_misses[core], s.shared_writebacks, s.dist_writebacks.iter().sum())
    }

    /// Journal an access (`read`/`write`) from counter deltas and advance
    /// the core clock by the access's data cost.
    fn record_access(
        &mut self,
        kind: EventKind,
        core: usize,
        block: Block,
        pre: (u64, u64, u64, u64),
    ) {
        let (sm0, dm0, swb0, dwb0) = pre;
        let (sm1, dm1, swb1, dwb1) = self.counters(core);
        let shared_cost = (sm1 - sm0) as f64 / self.model.sigma_s;
        let dist_cost = (dm1 - dm0) as f64 / self.model.sigma_d;
        let t0 = self.clocks[core];
        for _ in 0..(swb1 - swb0) {
            self.push(EventKind::SharedEvict, Some(core), None, t0, 0.0);
        }
        for _ in 0..(dwb1 - dwb0) {
            self.push(EventKind::DistEvict, Some(core), None, t0, 0.0);
        }
        if sm1 > sm0 {
            self.push(EventKind::SharedLoad, Some(core), Some(block), t0, shared_cost);
        }
        if dm1 > dm0 {
            self.push(EventKind::DistLoad, Some(core), Some(block), t0 + shared_cost, dist_cost);
        }
        self.push(kind, Some(core), Some(block), t0, shared_cost + dist_cost);
        self.clocks[core] = t0 + shared_cost + dist_cost;
    }
}

impl SimSink for FlightRecorder {
    fn read(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        let pre = self.counters(core);
        self.sim.read(core, block)?;
        self.record_access(EventKind::Read, core, block, pre);
        Ok(())
    }

    fn write(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        let pre = self.counters(core);
        self.sim.write(core, block)?;
        self.record_access(EventKind::Write, core, block, pre);
        Ok(())
    }

    fn fma(&mut self, core: usize, a: Block, b: Block, c: Block) -> Result<(), SimError> {
        self.sim.fma(core, a, b, c)?;
        let t0 = self.clocks[core];
        self.push(EventKind::Fma, Some(core), Some(c), t0, self.model.fma_time);
        self.clocks[core] = t0 + self.model.fma_time;
        Ok(())
    }

    fn load_shared(&mut self, block: Block) -> Result<(), SimError> {
        let sm0 = self.sim.stats().shared_misses;
        self.sim.load_shared(block)?;
        if self.sim.stats().shared_misses > sm0 {
            let cost = 1.0 / self.model.sigma_s;
            let t0 = self.shared_clock;
            self.push(EventKind::SharedLoad, None, Some(block), t0, cost);
            self.shared_clock = t0 + cost;
        }
        Ok(())
    }

    fn evict_shared(&mut self, block: Block) -> Result<(), SimError> {
        let swb0 = self.sim.stats().shared_writebacks;
        self.sim.evict_shared(block)?;
        if self.sim.stats().shared_writebacks > swb0 {
            let t0 = self.shared_clock;
            self.push(EventKind::SharedEvict, None, Some(block), t0, 0.0);
        }
        Ok(())
    }

    fn load_dist(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        let dm0 = self.sim.stats().dist_misses[core];
        self.sim.load_dist(core, block)?;
        if self.sim.stats().dist_misses[core] > dm0 {
            let cost = 1.0 / self.model.sigma_d;
            let t0 = self.clocks[core];
            self.push(EventKind::DistLoad, Some(core), Some(block), t0, cost);
            self.clocks[core] = t0 + cost;
        }
        Ok(())
    }

    fn evict_dist(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        let dwb0: u64 = self.sim.stats().dist_writebacks.iter().sum();
        self.sim.evict_dist(core, block)?;
        let dwb1: u64 = self.sim.stats().dist_writebacks.iter().sum();
        if dwb1 > dwb0 {
            let t0 = self.clocks[core];
            self.push(EventKind::DistEvict, Some(core), Some(block), t0, 0.0);
        }
        Ok(())
    }

    fn barrier(&mut self) -> Result<(), SimError> {
        self.sim.barrier()?;
        let t = self.elapsed();
        for c in self.clocks.iter_mut() {
            *c = t;
        }
        self.shared_clock = t;
        self.push(EventKind::Barrier, None, None, t, 0.0);
        self.superstep += 1;
        self.sample_occupancy();
        Ok(())
    }

    fn manages_residency(&self) -> bool {
        self.sim.manages_residency()
    }
}

/// Flat summary of a simulated run: raw counters plus the paper's derived
/// metrics. Serializes to a stable JSON object for `mmc --json` output.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Free-form label (typically the algorithm id).
    pub label: String,
    /// Replacement policy the run used (`"IDEAL"` or `"LRU"`).
    pub policy: String,
    /// Number of cores.
    pub cores: usize,
    /// Shared-cache misses.
    pub shared_misses: u64,
    /// Shared-cache hits.
    pub shared_hits: u64,
    /// Dirty writebacks from the shared cache to memory.
    pub shared_writebacks: u64,
    /// Per-core distributed-cache misses.
    pub dist_misses: Vec<u64>,
    /// Per-core distributed-cache hits.
    pub dist_hits: Vec<u64>,
    /// Per-core dirty writebacks from distributed caches.
    pub dist_writebacks: Vec<u64>,
    /// Per-core block FMA counts.
    pub fmas: Vec<u64>,
    /// Barriers emitted by the schedule.
    pub barriers: u64,
    /// `M_S` (= `shared_misses`).
    pub ms: u64,
    /// `M_D = max_c` per-core distributed misses.
    pub md: u64,
    /// Total block FMAs `K`.
    pub total_fmas: u64,
    /// `CCR_S = M_S / K` (0 if `K = 0`).
    pub ccr_shared: f64,
    /// `CCR_D = (1/p) Σ_c M_D^(c)/comp(c)` (0 if any core idled).
    pub ccr_dist: f64,
    /// `T_data = M_S/σ_S + M_D/σ_D`.
    pub t_data: f64,
    /// Memory → shared-cache bandwidth used for `t_data`.
    pub sigma_s: f64,
    /// Shared → distributed bandwidth used for `t_data`.
    pub sigma_d: f64,
    /// Shared-cache hit rate in `[0, 1]` (0 when there were no accesses).
    pub shared_hit_rate: f64,
    /// Per-core distributed-cache hit rates.
    pub dist_hit_rates: Vec<f64>,
    /// Supersteps closed (0 when not recorded through a flight recorder).
    pub supersteps: u64,
    /// Final logical time (0 when not recorded through a flight recorder).
    pub elapsed: f64,
}

/// `x` if finite, else 0 — keeps JSON round-trippable (JSON has no
/// Infinity/NaN literals).
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

impl MetricsSnapshot {
    /// Build a snapshot from raw counters and the cost model's bandwidths.
    pub fn from_stats(
        label: &str,
        policy: &str,
        stats: &SimStats,
        model: &TimingModel,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            label: label.to_string(),
            policy: policy.to_string(),
            cores: stats.cores(),
            shared_misses: stats.shared_misses,
            shared_hits: stats.shared_hits,
            shared_writebacks: stats.shared_writebacks,
            dist_misses: stats.dist_misses.clone(),
            dist_hits: stats.dist_hits.clone(),
            dist_writebacks: stats.dist_writebacks.clone(),
            fmas: stats.fmas.clone(),
            barriers: stats.barriers,
            ms: stats.ms(),
            md: stats.md(),
            total_fmas: stats.total_fmas(),
            ccr_shared: finite_or_zero(stats.ccr_shared()),
            ccr_dist: finite_or_zero(stats.ccr_dist()),
            t_data: stats.t_data(model.sigma_s, model.sigma_d),
            sigma_s: model.sigma_s,
            sigma_d: model.sigma_d,
            shared_hit_rate: stats.shared_hit_rate(),
            dist_hit_rates: (0..stats.cores()).map(|c| stats.dist_hit_rate(c)).collect(),
            supersteps: 0,
            elapsed: 0.0,
        }
    }
}

/// Incremental writer for the Chrome trace-event JSON format
/// (`{"traceEvents": [...]}`), loadable by Perfetto and
/// `chrome://tracing`. Hand-rolled — the workspace deliberately has no
/// tracing dependency. All events share `pid` 1; tracks are `tid`s.
///
/// Every lane is guaranteed a human-readable name in the Perfetto UI:
/// [`ChromeTraceBuilder::finish`] backfills a `thread_name` metadata
/// event for any track that carried spans or instants but was never
/// explicitly named with [`ChromeTraceBuilder::thread`].
pub struct ChromeTraceBuilder {
    out: String,
    any: bool,
    named_tids: std::collections::BTreeSet<u64>,
    used_tids: std::collections::BTreeSet<u64>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON number formatting: non-finite values (which JSON cannot
/// represent) become `null`, and only integral values safely inside the
/// `i64` range take the integer fast path — everything else goes through
/// `f64`'s round-trip `Display`.
fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        "null".to_string()
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

impl ChromeTraceBuilder {
    /// Start a trace whose single process is named `process`.
    pub fn new(process: &str) -> ChromeTraceBuilder {
        let mut b = ChromeTraceBuilder {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            any: false,
            named_tids: std::collections::BTreeSet::new(),
            used_tids: std::collections::BTreeSet::new(),
        };
        b.raw(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(process)
        ));
        b
    }

    fn raw(&mut self, event: String) {
        if self.any {
            self.out.push(',');
        }
        self.out.push('\n');
        self.out.push_str(&event);
        self.any = true;
    }

    /// Name track `tid` (a `thread_name` metadata event).
    pub fn thread(&mut self, tid: u64, name: &str) {
        self.named_tids.insert(tid);
        self.raw(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// A complete span (`ph: "X"`) on track `tid`; times in microseconds.
    pub fn span(&mut self, tid: u64, name: &str, ts_us: f64, dur_us: f64, args: &[(&str, f64)]) {
        self.used_tids.insert(tid);
        let mut ev = format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{},\"dur\":{}",
            json_escape(name),
            fmt_num(ts_us),
            fmt_num(dur_us)
        );
        if !args.is_empty() {
            ev.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    ev.push(',');
                }
                ev.push_str(&format!("\"{}\":{}", json_escape(k), fmt_num(*v)));
            }
            ev.push('}');
        }
        ev.push('}');
        self.raw(ev);
    }

    /// A thread-scoped instant event (`ph: "i"`) on track `tid`.
    pub fn instant(&mut self, tid: u64, name: &str, ts_us: f64) {
        self.used_tids.insert(tid);
        self.raw(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
            json_escape(name),
            fmt_num(ts_us)
        ));
    }

    /// A counter sample (`ph: "C"`) named `name` with one series `value`.
    pub fn counter(&mut self, name: &str, ts_us: f64, value: f64) {
        self.raw(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\
             \"args\":{{\"value\":{}}}}}",
            json_escape(name),
            fmt_num(ts_us),
            fmt_num(value)
        ));
    }

    /// Close the event array and return the JSON document, first naming
    /// any track that carried events but never got a `thread_name` —
    /// Perfetto then shows "lane N" instead of a bare tid.
    pub fn finish(mut self) -> String {
        let unnamed: Vec<u64> = self.used_tids.difference(&self.named_tids).copied().collect();
        for tid in unnamed {
            self.thread(tid, &format!("lane {tid}"));
        }
        self.out.push_str("\n]}");
        self.out
    }
}

impl FlightRecorder {
    /// Track id used for shared-level (core-less) events.
    fn shared_tid(&self) -> u64 {
        self.sim.config().cores as u64
    }

    /// Render the journal as Chrome trace-event JSON (see module docs):
    /// one track per core, one for shared-level activity, plus occupancy
    /// counter tracks. Logical time units map to microseconds.
    pub fn chrome_trace(&self, granularity: ChromeGranularity) -> String {
        let cores = self.sim.config().cores;
        let mut b = ChromeTraceBuilder::new("mmc-sim flight recorder");
        for c in 0..cores {
            b.thread(c as u64, &format!("core {c}"));
        }
        b.thread(self.shared_tid(), "shared cache");
        match granularity {
            ChromeGranularity::Events => self.chrome_events(&mut b),
            ChromeGranularity::Supersteps => self.chrome_supersteps(&mut b),
        }
        for s in &self.occupancy {
            b.counter("shared occupancy (blocks)", s.ts, s.shared_blocks as f64);
            let dist: usize = s.dist_blocks.iter().sum();
            b.counter("distributed occupancy (blocks, total)", s.ts, dist as f64);
        }
        b.finish()
    }

    fn chrome_events(&self, b: &mut ChromeTraceBuilder) {
        for e in &self.journal {
            let tid = e.core.map(|c| c as u64).unwrap_or_else(|| self.shared_tid());
            let name = match e.block {
                Some(blk) => format!("{} {blk}", e.kind.label()),
                None => e.kind.label().to_string(),
            };
            if e.kind == EventKind::Barrier {
                b.instant(tid, &name, e.ts);
            } else if e.dur > 0.0 {
                b.span(tid, &name, e.ts, e.dur, &[]);
            } else {
                b.instant(tid, &name, e.ts);
            }
        }
    }

    fn chrome_supersteps(&self, b: &mut ChromeTraceBuilder) {
        let cores = self.sim.config().cores;
        let tracks = cores + 1; // + shared-level track
        let steps = self.superstep as usize + 1;
        // Per (superstep, track): [reads, writes, fmas, loads, evicts],
        // plus the time window covered.
        let mut counts = vec![[0u64; 5]; steps * tracks];
        let mut lo = vec![f64::INFINITY; steps * tracks];
        let mut hi = vec![f64::NEG_INFINITY; steps * tracks];
        for e in &self.journal {
            if e.kind == EventKind::Barrier {
                continue;
            }
            let track = e.core.unwrap_or(cores);
            let slot = e.superstep as usize * tracks + track;
            let bucket = match e.kind {
                EventKind::Read => 0,
                EventKind::Write => 1,
                EventKind::Fma => 2,
                EventKind::SharedLoad | EventKind::DistLoad => 3,
                EventKind::SharedEvict | EventKind::DistEvict => 4,
                EventKind::Barrier => unreachable!(),
            };
            counts[slot][bucket] += 1;
            lo[slot] = lo[slot].min(e.ts);
            hi[slot] = hi[slot].max(e.ts + e.dur);
        }
        for step in 0..steps {
            for track in 0..tracks {
                let slot = step * tracks + track;
                if counts[slot] == [0; 5] {
                    continue;
                }
                let [reads, writes, fmas, loads, evicts] = counts[slot];
                b.span(
                    track as u64,
                    &format!("step {step}"),
                    lo[slot],
                    (hi[slot] - lo[slot]).max(0.0),
                    &[
                        ("reads", reads as f64),
                        ("writes", writes as f64),
                        ("fmas", fmas as f64),
                        ("loads", loads as f64),
                        ("evicts", evicts as f64),
                    ],
                );
            }
        }
        for e in &self.journal {
            if e.kind == EventKind::Barrier {
                b.instant(self.shared_tid(), "barrier", e.ts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::SimConfig;
    use crate::machine::MachineConfig;

    fn machine() -> MachineConfig {
        MachineConfig::new(2, 16, 4, 32)
    }

    fn lru_recorder() -> FlightRecorder {
        let sim = Simulator::new(SimConfig::lru(&machine()), 8, 8, 8);
        FlightRecorder::new(sim, TimingModel { fma_time: 1.0, sigma_s: 2.0, sigma_d: 1.0 })
    }

    #[test]
    fn journal_reconciles_with_stats() {
        let mut r = lru_recorder();
        for j in 0..6u32 {
            r.read(0, Block::a(0, j)).unwrap();
            r.read(0, Block::b(j, 0)).unwrap();
            r.fma(0, Block::a(0, j), Block::b(j, 0), Block::c(0, 0)).unwrap();
            r.write(0, Block::c(0, 0)).unwrap();
            r.read(1, Block::a(1, j)).unwrap();
        }
        r.barrier().unwrap();
        let stats = r.stats().clone();
        assert_eq!(r.count(EventKind::Fma), stats.total_fmas());
        assert_eq!(r.count(EventKind::SharedLoad), stats.shared_misses);
        for c in 0..2 {
            assert_eq!(r.count_for_core(EventKind::Fma, c), stats.fmas[c]);
            assert_eq!(r.count_for_core(EventKind::DistLoad, c), stats.dist_misses[c]);
        }
        assert_eq!(r.count(EventKind::Read), 18);
        assert_eq!(r.count(EventKind::Write), 6);
        assert_eq!(r.count(EventKind::Barrier), 1);
        assert_eq!(r.supersteps(), 1);
    }

    #[test]
    fn clocks_advance_by_model_costs_and_sync_at_barriers() {
        let mut r = lru_recorder();
        // Core 0: one read missing both levels: 1/2 + 1/1 = 1.5, then an
        // FMA at cost 1.0 → clock 2.5. Core 1 stays at 0 until the barrier.
        r.read(0, Block::a(0, 0)).unwrap();
        r.fma(0, Block::a(0, 0), Block::b(0, 0), Block::c(0, 0)).unwrap();
        assert!((r.clock(0) - 2.5).abs() < 1e-12);
        assert_eq!(r.clock(1), 0.0);
        r.barrier().unwrap();
        assert!((r.clock(1) - 2.5).abs() < 1e-12);
        assert!((r.elapsed() - 2.5).abs() < 1e-12);
        // A repeated read hits both levels: free.
        r.read(0, Block::a(0, 0)).unwrap();
        assert!((r.clock(0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_directives_become_load_events() {
        let sim = Simulator::new(SimConfig::ideal(&machine()), 4, 4, 4);
        let mut r = FlightRecorder::new(sim, TimingModel::data_only(1.0, 1.0));
        r.load_shared(Block::a(0, 0)).unwrap();
        r.load_shared(Block::a(0, 0)).unwrap(); // hit: no event
        r.load_dist(0, Block::a(0, 0)).unwrap();
        r.read(0, Block::a(0, 0)).unwrap();
        assert_eq!(r.count(EventKind::SharedLoad), 1);
        assert_eq!(r.count(EventKind::DistLoad), 1);
        assert_eq!(r.stats().shared_misses, 1);
        assert_eq!(r.stats().dist_misses[0], 1);
        // Evicting the clean copies writes nothing back: no evict events.
        r.evict_dist(0, Block::a(0, 0)).unwrap();
        r.evict_shared(Block::a(0, 0)).unwrap();
        assert_eq!(r.count(EventKind::SharedEvict), 0);
        assert_eq!(r.count(EventKind::DistEvict), 0);
    }

    #[test]
    fn occupancy_is_sampled_at_barriers() {
        let mut r = lru_recorder();
        r.read(0, Block::a(0, 0)).unwrap();
        r.read(0, Block::a(0, 1)).unwrap();
        r.barrier().unwrap();
        assert_eq!(r.occupancy().len(), 2); // construction + barrier
        let last = &r.occupancy()[1];
        assert_eq!(last.shared_blocks, 2);
        assert_eq!(last.dist_blocks[0], 2);
        assert_eq!(last.superstep, 1);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_per_core_tracks() {
        let mut r = lru_recorder();
        r.read(0, Block::a(0, 0)).unwrap();
        r.fma(0, Block::a(0, 0), Block::b(0, 0), Block::c(0, 0)).unwrap();
        r.read(1, Block::b(0, 0)).unwrap();
        r.barrier().unwrap();
        for granularity in [ChromeGranularity::Events, ChromeGranularity::Supersteps] {
            let text = r.chrome_trace(granularity);
            let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
            let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
            let mut names = Vec::new();
            for e in events {
                if e.get("name").and_then(|n| n.as_str()) == Some("thread_name") {
                    let args = e.get("args").unwrap();
                    names.push(args.get("name").unwrap().as_str().unwrap().to_string());
                }
            }
            assert!(names.contains(&"core 0".to_string()));
            assert!(names.contains(&"core 1".to_string()));
            assert!(names.contains(&"shared cache".to_string()));
            // Occupancy counters are present.
            assert!(events.iter().any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C")));
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut r = lru_recorder();
        for j in 0..4u32 {
            r.read(0, Block::a(0, j)).unwrap();
            r.fma(0, Block::a(0, j), Block::b(j, 0), Block::c(0, 0)).unwrap();
            r.read(1, Block::b(j, 1)).unwrap();
            r.fma(1, Block::a(1, j), Block::b(j, 1), Block::c(1, 1)).unwrap();
        }
        r.barrier().unwrap();
        let snap = r.snapshot("unit");
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(snap, back);
        assert!(text.contains("\"ms\""));
        assert!(text.contains("\"md\""));
        assert!(text.contains("\"ccr_shared\""));
        assert!(text.contains("\"t_data\""));
        assert!(snap.shared_hit_rate >= 0.0 && snap.shared_hit_rate <= 1.0);
        assert_eq!(snap.supersteps, 1);
    }

    #[test]
    fn builder_escapes_and_balances() {
        let mut b = ChromeTraceBuilder::new("p\"q\\r");
        b.thread(0, "line\nbreak");
        b.span(0, "s", 0.5, 1.25, &[("k", 2.0)]);
        b.counter("c", 0.0, 3.0);
        let text = b.finish();
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(doc.get("traceEvents").and_then(|v| v.as_array()).unwrap().len(), 4);
    }

    #[test]
    fn finish_backfills_names_for_unnamed_lanes() {
        let mut b = ChromeTraceBuilder::new("p");
        b.thread(0, "core 0");
        b.span(0, "s", 0.0, 1.0, &[]);
        b.span(7, "orphan", 0.0, 1.0, &[]);
        b.instant(9, "tick", 2.0);
        let text = b.finish();
        // Lanes 7 and 9 had events but no explicit name → backfilled.
        assert!(text.contains("\"tid\":7,\"args\":{\"name\":\"lane 7\"}"), "{text}");
        assert!(text.contains("\"tid\":9,\"args\":{\"name\":\"lane 9\"}"), "{text}");
        // Lane 0 was explicitly named: no backfill duplicate.
        assert!(!text.contains("lane 0"), "{text}");
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(doc.get("traceEvents").is_some());
    }

    #[test]
    fn fmt_num_emits_valid_json_numbers() {
        assert_eq!(fmt_num(f64::NAN), "null");
        assert_eq!(fmt_num(f64::INFINITY), "null");
        assert_eq!(fmt_num(f64::NEG_INFINITY), "null");
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(-2.5), "-2.5");
        // Integral but beyond the i64 fast-path range: must round-trip
        // as a number, not saturate through an i64 cast.
        assert_eq!(fmt_num(1e19).parse::<f64>(), Ok(1e19));
        assert_ne!(fmt_num(1e19), format!("{}", i64::MAX));
        assert_eq!(fmt_num(-1e300).parse::<f64>(), Ok(-1e300));
    }

    #[test]
    fn non_finite_span_still_parses() {
        // A span with NaN duration / infinite timestamp must still yield
        // a document the vendored serde_json accepts (non-finite → null).
        let mut b = ChromeTraceBuilder::new("nan");
        b.span(0, "bad", f64::NAN, f64::NAN, &[("v", f64::INFINITY)]);
        b.counter("c", f64::NEG_INFINITY, f64::NAN);
        let text = b.finish();
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let bad =
            events.iter().find(|e| e.get("name").and_then(|n| n.as_str()) == Some("bad")).unwrap();
        assert!(matches!(bad.get("dur"), Some(serde_json::Value::Null)));
        assert!(matches!(bad.get("ts"), Some(serde_json::Value::Null)));
    }
}
