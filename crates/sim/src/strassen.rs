//! Closed-form cost model of the Strassen–Winograd recursion, alongside
//! [`crate::fiveloop`] and [`crate::level3`] in the same `M_S`/`M_D`
//! block currency — so recursive schedules price exactly like classic
//! ones, and the model can choose *which algorithm* runs, not just how
//! it is blocked.
//!
//! The executor (`mmc-strassen`) pads an `m×z · z×n` block product to a
//! square of side `S = ℓ·2^d` blocks, recurses `d` levels with 7
//! products and 15 quadrant additions per level, and hands `7^d` leaf
//! products of side `ℓ` to the packed 5-loop kernels. Every term of
//! that schedule has a closed form here:
//!
//! * multiplication work: `7^d · ℓ³` block FMAs ([`block_fmas`]) —
//!   sub-cubic in `S` with exponent `log₂7 ≈ 2.807`;
//! * addition work: `Σ_{i<d} 7^i · 15 · (S/2^{i+1})²` block additions
//!   ([`add_block_ops`]), each `q²` scalar adds against the `2q³` flops
//!   of a block FMA;
//! * workspace: two pooled quadrant temporaries per live level plus one
//!   leaf staging set ([`workspace_blocks`]) — the admission term the
//!   serve scheduler adds for `"algo": "strassen"` jobs.
//!
//! Traffic ([`strassen_traffic`]) follows the cache-oblivious analysis
//! the recursion is designed around: a recursion node whose working set
//! (three matrices of its side) fits within a cache level generates
//! **no** misses at that level — its operands were staged by the parent,
//! whose own addition traffic is charged where *it* overflows. So each
//! level's 15 quadrant additions charge two operand loads per touched
//! block (write-backs are not counted, matching [`five_loop_traffic`]
//! which also counts loads) to exactly the cache levels its node
//! overflows, the `7^d` leaf products charge their 5-loop closed form
//! the same way, and the one-time Morton conversion streams all three
//! `S²` operands. Under the paper's machines the distributed cache
//! (tens of blocks) overflows at every interesting level while the
//! shared cache absorbs the deepest levels — which is precisely how the
//! recursion escapes the classic traffic floor.
//!
//! [`choose_algorithm`] compares the resulting [`strassen_time`] with
//! the classic 5-loop prediction at the same shape, and
//! [`predicted_crossover`] scans for the smallest square side where the
//! recursion wins — the model-predicted crossover the CI smoke test and
//! EXPERIMENTS.md quote.

use serde::{Deserialize, Serialize};

use crate::fiveloop::{five_loop_traffic, FiveLoopTraffic};
use crate::machine::MachineConfig;
use crate::timing::TimingModel;

/// Hard cap on recursion depth, matching the executor's layout search.
const MAX_DEPTH: u32 = 20;

/// Geometry the recursion adopts for a given square side and cutoff —
/// the modeling twin of the executor's Morton layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StrassenPlan {
    /// Recursion depth `d` (0 means the classic fallback runs).
    pub depth: u32,
    /// Leaf side `ℓ = ⌈base/2^d⌉`, in blocks.
    pub leaf_side: u64,
    /// Padded square side `S = ℓ·2^d`, in blocks.
    pub padded_side: u64,
}

/// The plan for a square product of side `base` blocks under `cutoff`:
/// the *smallest* depth that brings the leaf side down to the cutoff.
/// Must mirror the executor's `MortonLayout::for_shape` exactly — the
/// golden reconciliation test in the workspace root pins the agreement.
pub fn strassen_plan(base: u64, cutoff: u64) -> StrassenPlan {
    let base = base.max(1);
    let cutoff = cutoff.max(1);
    let mut depth = 0u32;
    while base.div_ceil(1 << depth) > cutoff && depth < MAX_DEPTH {
        depth += 1;
    }
    let leaf_side = base.div_ceil(1 << depth);
    StrassenPlan { depth, leaf_side, padded_side: leaf_side << depth }
}

fn pow7(d: u32) -> u128 {
    7u128.pow(d)
}

fn sat(x: u128) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// Block FMAs the leaves execute: `7^d · ℓ³` — the sub-cubic
/// multiplication count (classic would be `S³`).
pub fn block_fmas(plan: &StrassenPlan) -> u64 {
    let l = plan.leaf_side as u128;
    sat(pow7(plan.depth) * l * l * l)
}

/// Quadrant-addition block operations across all levels:
/// `Σ_{i=0}^{d-1} 7^i · 15 · (S/2^{i+1})²`. Each is one `q×q` block
/// worth of scalar adds (the `O(n²)` term Strassen trades for a whole
/// recursive product).
pub fn add_block_ops(plan: &StrassenPlan) -> u64 {
    let mut total = 0u128;
    for i in 0..plan.depth {
        let half = (plan.padded_side >> (i + 1)) as u128;
        total += pow7(i) * 15 * half * half;
    }
    sat(total)
}

/// Pooled recursion workspace, in blocks: two quadrant temps per level
/// along one root-to-leaf path (`Σ_{i=1}^{d} 2·(S/2^i)²`, a geometric
/// series ≤ `(2/3)·S²`) plus the `3ℓ²` leaf staging set. Zero at depth
/// 0, where the classic path runs in place.
pub fn workspace_blocks(plan: &StrassenPlan) -> u64 {
    if plan.depth == 0 {
        return 0;
    }
    let mut temps = 0u128;
    for i in 1..=plan.depth {
        let side = (plan.padded_side >> i) as u128;
        temps += 2 * side * side;
    }
    let l = plan.leaf_side as u128;
    sat(temps + 3 * l * l)
}

/// Scalar multiplication FLOPs the leaves execute: `7^d · ℓ³ · 2q³` —
/// exactly what the kernel registry counters record, so the golden
/// reconciliation test compares against this closed form with `==`.
pub fn flops(plan: &StrassenPlan, q: u64) -> u64 {
    sat(block_fmas(plan) as u128 * 2 * (q as u128).pow(3))
}

/// Everything the cost model needs to know about the machine and the
/// leaf executor to price an algorithm choice.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostEnv {
    /// Per-block-FMA time and the two bandwidths.
    pub model: TimingModel,
    /// Shared-cache capacity `C_S`, in blocks.
    pub shared_blocks: u64,
    /// Per-core distributed-cache capacity `C_D`, in blocks.
    pub dist_blocks: u64,
    /// Leaf 5-loop blocking `MC`, in blocks.
    pub mcb: u64,
    /// Leaf 5-loop blocking `KC`, in blocks.
    pub kcb: u64,
    /// Leaf 5-loop blocking `NC`, in blocks.
    pub ncb: u64,
}

impl CostEnv {
    /// Environment for a modeled machine and a `(mcb, kcb, ncb)` leaf
    /// blocking, with the trace-calibration convention `fma_time =
    /// 1/σ_D` (one block FMA per distributed-cache transfer).
    pub fn for_machine(machine: &MachineConfig, mcb: u64, kcb: u64, ncb: u64) -> CostEnv {
        CostEnv {
            model: TimingModel {
                fma_time: 1.0 / machine.sigma_d,
                sigma_s: machine.sigma_s,
                sigma_d: machine.sigma_d,
            },
            shared_blocks: machine.shared_capacity as u64,
            dist_blocks: machine.dist_capacity as u64,
            mcb,
            kcb,
            ncb,
        }
    }
}

/// Predicted block traffic of the full recursion under a cost
/// environment (see the module docs for the charging rule). At depth 0
/// this degenerates to the classic [`five_loop_traffic`] closed form.
pub fn strassen_traffic(plan: &StrassenPlan, env: &CostEnv) -> FiveLoopTraffic {
    let l = plan.leaf_side;
    let leaf = five_loop_traffic(l, l, l, env.mcb, env.kcb, env.ncb);
    if plan.depth == 0 {
        return leaf;
    }
    // A node of matrix side s has working set 3s² blocks; it generates
    // traffic at a cache level only when that overflows the level.
    let overflows = |side: u128, capacity: u64| 3 * side * side > capacity as u128;
    let products = pow7(plan.depth);
    let leaf_ws = plan.leaf_side as u128;
    let mut ms = if overflows(leaf_ws, env.shared_blocks) { products * leaf.ms as u128 } else { 0 };
    let mut md = if overflows(leaf_ws, env.dist_blocks) { products * leaf.md as u128 } else { 0 };
    for i in 0..plan.depth {
        let node_side = (plan.padded_side >> i) as u128;
        let half = (plan.padded_side >> (i + 1)) as u128;
        // 15 quadrant additions, two operand loads per touched block.
        let loads = pow7(i) * 15 * 2 * half * half;
        if overflows(node_side, env.shared_blocks) {
            ms += loads;
        }
        if overflows(node_side, env.dist_blocks) {
            md += loads;
        }
    }
    // One-time Morton conversion: all three S² operands stream in and
    // out of the root node.
    let s2 = (plan.padded_side as u128) * (plan.padded_side as u128);
    let root = plan.padded_side as u128;
    if overflows(root, env.shared_blocks) {
        ms += 6 * s2;
    }
    if overflows(root, env.dist_blocks) {
        md += 6 * s2;
    }
    FiveLoopTraffic { ms: sat(ms), md: sat(md) }
}

/// Predicted wall time of the recursion in the paper's currency:
/// `T = fma_time · (block_fmas + add_ops/2q) + M_S/σ_S + M_D/σ_D`.
/// A block addition is `q²` scalar adds against the `2q³` flops of one
/// block FMA, hence the `1/2q` weight on the addition term.
pub fn strassen_time(plan: &StrassenPlan, q: u64, env: &CostEnv) -> f64 {
    let traffic = strassen_traffic(plan, env);
    let adds = add_block_ops(plan) as f64 / (2.0 * q.max(1) as f64);
    env.model.fma_time * (block_fmas(plan) as f64 + adds)
        + traffic.t_data(env.model.sigma_s, env.model.sigma_d)
}

/// The model's verdict for one square product: which algorithm is
/// predicted cheaper, and both predicted times for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgoChoice {
    /// `true` when the recursion is predicted to beat the classic path.
    pub use_strassen: bool,
    /// The recursion depth the Strassen plan would use.
    pub depth: u32,
    /// Predicted classic 5-loop time at this shape.
    pub classic_time: f64,
    /// Predicted Strassen–Winograd time at this shape.
    pub strassen_time: f64,
}

/// Price both algorithms for an `n×n·n×n` block product and pick the
/// cheaper prediction. Classic is the 5-loop plan at the *unpadded*
/// shape; Strassen pays its padding, additions, conversion, and leaf
/// products. Ties go to classic (no reason to pay the workspace).
pub fn choose_algorithm(n: u64, q: u64, cutoff: u64, env: &CostEnv) -> AlgoChoice {
    let n = n.max(1);
    let classic_traffic = five_loop_traffic(n, n, n, env.mcb, env.kcb, env.ncb);
    let classic_time = env.model.fma_time * (n * n * n) as f64
        + classic_traffic.t_data(env.model.sigma_s, env.model.sigma_d);
    let plan = strassen_plan(n, cutoff);
    let st = strassen_time(&plan, q, env);
    AlgoChoice {
        use_strassen: plan.depth > 0 && st < classic_time,
        depth: plan.depth,
        classic_time,
        strassen_time: st,
    }
}

/// Smallest square side (in blocks, scanned up to `max_n`) where the
/// model predicts the recursion beats the classic path — the predicted
/// crossover. `None` when the recursion never wins in range.
pub fn predicted_crossover(q: u64, cutoff: u64, env: &CostEnv, max_n: u64) -> Option<u64> {
    (cutoff + 1..=max_n).find(|&n| choose_algorithm(n, q, cutoff, env).use_strassen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> CostEnv {
        CostEnv::for_machine(&MachineConfig::quad_q32(), 8, 8, 8)
    }

    #[test]
    fn plan_mirrors_the_executor_layout_search() {
        assert_eq!(strassen_plan(12, 4), StrassenPlan { depth: 2, leaf_side: 3, padded_side: 12 });
        assert_eq!(strassen_plan(13, 4), StrassenPlan { depth: 2, leaf_side: 4, padded_side: 16 });
        assert_eq!(strassen_plan(3, 4), StrassenPlan { depth: 0, leaf_side: 3, padded_side: 3 });
    }

    #[test]
    fn depth_zero_degenerates_to_the_classic_model() {
        let plan = strassen_plan(6, 8);
        assert_eq!(plan.depth, 0);
        assert_eq!(block_fmas(&plan), 6 * 6 * 6);
        assert_eq!(add_block_ops(&plan), 0);
        assert_eq!(workspace_blocks(&plan), 0);
        assert_eq!(strassen_traffic(&plan, &env()), five_loop_traffic(6, 6, 6, 8, 8, 8));
    }

    #[test]
    fn work_grows_as_seven_to_the_depth() {
        // ℓ fixed at 4: doubling the side adds one level and ×7 leaf work.
        let d1 = strassen_plan(8, 4);
        let d2 = strassen_plan(16, 4);
        assert_eq!((d1.depth, d2.depth), (1, 2));
        assert_eq!(block_fmas(&d1), 7 * 4 * 4 * 4);
        assert_eq!(block_fmas(&d2), 49 * 4 * 4 * 4);
        // One level of S=8: 15 quadrant ops on 4×4 quadrants.
        assert_eq!(add_block_ops(&d1), 15 * 16);
        // Two levels of S=16: top level 15·64, then 7 products each 15·16.
        assert_eq!(add_block_ops(&d2), 15 * 64 + 7 * 15 * 16);
        assert_eq!(flops(&d1, 2), 7 * 64 * 16);
    }

    #[test]
    fn workspace_matches_the_geometric_series() {
        // S=16, d=2, ℓ=4: temps 2·8² + 2·4², staging 3·4².
        let plan = strassen_plan(16, 4);
        assert_eq!(workspace_blocks(&plan), 2 * 64 + 2 * 16 + 3 * 16);
        // Always under the (2/3)·S² + 3ℓ² analytic bound.
        for base in [8u64, 32, 100, 1000] {
            let p = strassen_plan(base, 8);
            let bound = 2 * p.padded_side * p.padded_side / 3 + 3 * p.leaf_side * p.leaf_side + 1;
            assert!(workspace_blocks(&p) <= bound, "base {base}");
        }
    }

    #[test]
    fn cache_resident_levels_generate_no_traffic() {
        // A machine whose shared cache swallows the whole root working
        // set: only the distributed level sees any Strassen traffic.
        let plan = strassen_plan(16, 4);
        let big_shared = CostEnv { shared_blocks: 10_000, ..env() };
        let t = strassen_traffic(&plan, &big_shared);
        assert_eq!(t.ms, 0, "fully shared-resident recursion has no memory misses");
        assert!(t.md > 0, "the tiny distributed cache still streams");
        // Shrinking the shared cache only adds traffic, monotonically.
        let small = CostEnv { shared_blocks: 10, ..env() };
        let t_small = strassen_traffic(&plan, &small);
        assert!(t_small.ms > strassen_traffic(&plan, &env()).ms || t_small.ms > 0);
    }

    #[test]
    fn crossover_exists_and_auto_agrees_on_both_sides() {
        let env = env();
        let (q, cutoff) = (16u64, 8u64);
        let xover = predicted_crossover(q, cutoff, &env, 8192)
            .expect("the 7^d recursion must eventually beat n³");
        // Under the paper's quad_q32 machine the win shows up at modest
        // block counts; pin a sane range so model regressions are loud.
        assert!((cutoff + 1..=4096).contains(&xover), "crossover at {xover}");
        let below = choose_algorithm(xover - 1, q, cutoff, &env);
        let above = choose_algorithm(xover, q, cutoff, &env);
        assert!(!below.use_strassen);
        assert!(above.use_strassen);
        assert!(above.strassen_time < above.classic_time);
        // Well past the crossover the margin only widens.
        let far = choose_algorithm(4 * xover, q, cutoff, &env);
        assert!(far.use_strassen);
        assert!(
            far.strassen_time / far.classic_time < above.strassen_time / above.classic_time,
            "sub-cubic advantage must grow with n"
        );
    }

    #[test]
    fn tiny_problems_never_choose_strassen() {
        let env = env();
        for n in 1..=8 {
            let c = choose_algorithm(n, 16, 8, &env);
            assert!(!c.use_strassen, "n={n} chose strassen");
        }
    }

    #[test]
    fn serde_round_trip() {
        let plan = strassen_plan(24, 5);
        let json = serde_json::to_string(&plan).unwrap();
        assert_eq!(serde_json::from_str::<StrassenPlan>(&json).unwrap(), plan);
        let choice = choose_algorithm(100, 16, 8, &env());
        let json = serde_json::to_string(&choice).unwrap();
        assert_eq!(serde_json::from_str::<AlgoChoice>(&json).unwrap(), choice);
    }
}
