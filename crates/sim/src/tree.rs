//! Arbitrary-depth cache hierarchies — "clusters of multicores".
//!
//! The paper's conclusion anticipates "yet another level of hierarchy (or
//! tiling) in the algorithmic specification" for clusters of multicores.
//! This module generalizes the two-level simulator to a *tree* of
//! inclusive LRU caches: level 0 sits under main memory, each level-`l`
//! node has `arity` level-`l+1` children, and the innermost level's
//! caches are private to one core each.
//!
//! The paper's machine is the two-level special case
//! ([`TreeTopology::two_level`]); a cluster of `N` quad-core processors is
//! `[{N, C_node}, {1, C_S}, {4, C_D}]` ([`TreeTopology::cluster`]).
//!
//! Replacement is LRU at every level (the tree is the *realistic* model —
//! the omniscient IDEAL policy stays with the flat two-level
//! [`Simulator`](crate::Simulator)), so [`TreeSimulator`] accepts any
//! schedule through the ordinary [`SimSink`] interface with residency
//! directives as no-ops.

use crate::block::{Block, BlockSpace};
use crate::error::SimError;
use crate::lru::LruCache;
use crate::sink::SimSink;
use serde::{Deserialize, Serialize};

/// One level of the cache tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreeLevel {
    /// Nodes of this level per parent node (level 0: total nodes).
    pub arity: usize,
    /// Capacity of each node's cache, in blocks.
    pub capacity: usize,
    /// Bandwidth from the level above into this level (blocks/time).
    pub bandwidth: f64,
}

/// A uniform cache tree, outermost level first.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreeTopology {
    /// The levels, from the one under main memory to the per-core caches.
    pub levels: Vec<TreeLevel>,
}

impl TreeTopology {
    /// Validate and build a topology.
    ///
    /// # Panics
    /// Panics on an empty level list or zero arity/capacity.
    pub fn new(levels: Vec<TreeLevel>) -> TreeTopology {
        assert!(!levels.is_empty(), "topology needs at least one level");
        for (i, l) in levels.iter().enumerate() {
            assert!(l.arity > 0, "level {i}: arity must be positive");
            assert!(l.capacity > 0, "level {i}: capacity must be positive");
            assert!(l.bandwidth > 0.0, "level {i}: bandwidth must be positive");
        }
        TreeTopology { levels }
    }

    /// The paper's two-level machine: one shared cache over `p` private
    /// caches.
    pub fn two_level(cores: usize, shared: usize, dist: usize) -> TreeTopology {
        TreeTopology::new(vec![
            TreeLevel { arity: 1, capacity: shared, bandwidth: 1.0 },
            TreeLevel { arity: cores, capacity: dist, bandwidth: 1.0 },
        ])
    }

    /// A cluster of `nodes` processors, each with one shared cache of
    /// `shared` blocks over `cores_per_node` private caches of `dist`
    /// blocks, behind a per-node memory cache of `node_capacity` blocks.
    pub fn cluster(
        nodes: usize,
        node_capacity: usize,
        cores_per_node: usize,
        shared: usize,
        dist: usize,
    ) -> TreeTopology {
        TreeTopology::new(vec![
            TreeLevel { arity: nodes, capacity: node_capacity, bandwidth: 1.0 },
            TreeLevel { arity: 1, capacity: shared, bandwidth: 1.0 },
            TreeLevel { arity: cores_per_node, capacity: dist, bandwidth: 1.0 },
        ])
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of cache nodes at `level`.
    pub fn nodes_at(&self, level: usize) -> usize {
        self.levels[..=level].iter().map(|l| l.arity).product()
    }

    /// Total cores (= nodes of the innermost level).
    pub fn cores(&self) -> usize {
        self.nodes_at(self.depth() - 1)
    }

    /// The node at `level` on core `core`'s path to memory.
    pub fn node_of(&self, level: usize, core: usize) -> usize {
        core / (self.cores() / self.nodes_at(level))
    }

    /// Replace a level's bandwidth (builder style).
    pub fn with_bandwidth(mut self, level: usize, bandwidth: f64) -> TreeTopology {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        self.levels[level].bandwidth = bandwidth;
        self
    }
}

/// Per-level counters of a tree simulation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// `misses[l][n]`: misses of node `n` at level `l`.
    pub misses: Vec<Vec<u64>>,
    /// `hits[l][n]`.
    pub hits: Vec<Vec<u64>>,
    /// Per-core block FMAs.
    pub fmas: Vec<u64>,
}

impl TreeStats {
    /// The paper's per-level metric generalized: the *maximum* miss count
    /// over the (concurrent) nodes of `level`.
    pub fn level_misses(&self, level: usize) -> u64 {
        self.misses[level].iter().copied().max().unwrap_or(0)
    }

    /// Sum of misses over all nodes of `level` (total traffic into it).
    pub fn level_total(&self, level: usize) -> u64 {
        self.misses[level].iter().sum()
    }

    /// `T_data = Σ_l max-misses(l) / σ_l` over the given topology.
    pub fn t_data(&self, topo: &TreeTopology) -> f64 {
        topo.levels
            .iter()
            .enumerate()
            .map(|(l, lvl)| self.level_misses(l) as f64 / lvl.bandwidth)
            .sum()
    }

    /// Total block FMAs.
    pub fn total_fmas(&self) -> u64 {
        self.fmas.iter().sum()
    }
}

/// LRU simulator over a [`TreeTopology`]. Implements [`SimSink`];
/// residency directives are ignored (`manages_residency() == false`).
pub struct TreeSimulator {
    topo: TreeTopology,
    space: BlockSpace,
    /// `caches[l][n]`.
    caches: Vec<Vec<LruCache>>,
    stats: TreeStats,
    inclusive: bool,
}

impl TreeSimulator {
    /// Build for the problem `A: m×z`, `B: z×n`, `C: m×n` (block units).
    pub fn new(topo: TreeTopology, m: u32, n: u32, z: u32) -> TreeSimulator {
        TreeSimulator::with_space(topo, BlockSpace::new(m, n, z), true)
    }

    /// Build with an explicit block space and inclusivity flag.
    pub fn with_space(topo: TreeTopology, space: BlockSpace, inclusive: bool) -> TreeSimulator {
        let universe = space.total();
        let caches: Vec<Vec<LruCache>> = topo
            .levels
            .iter()
            .enumerate()
            .map(|(l, lvl)| {
                (0..topo.nodes_at(l)).map(|_| LruCache::new(lvl.capacity, universe)).collect()
            })
            .collect();
        let stats = TreeStats {
            misses: caches.iter().map(|level| vec![0; level.len()]).collect(),
            hits: caches.iter().map(|level| vec![0; level.len()]).collect(),
            fmas: vec![0; topo.cores()],
        };
        TreeSimulator { topo, space, caches, stats, inclusive }
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// The topology simulated.
    pub fn topology(&self) -> &TreeTopology {
        &self.topo
    }

    /// Consume the simulator, returning its counters.
    pub fn into_stats(self) -> TreeStats {
        self.stats
    }

    /// Whether `block` is resident in node `node` of `level`.
    pub fn contains(&self, level: usize, node: usize, block: Block) -> bool {
        self.caches[level][node].contains(self.space.id(block))
    }

    /// Verify inclusion along every core's path (tests; O(universe)).
    pub fn inclusion_holds(&self) -> bool {
        for core in 0..self.topo.cores() {
            for l in (1..self.topo.depth()).rev() {
                let child = &self.caches[l][self.topo.node_of(l, core)];
                let parent = &self.caches[l - 1][self.topo.node_of(l - 1, core)];
                if !child.iter_mru().all(|id| parent.contains(id)) {
                    return false;
                }
            }
        }
        true
    }

    /// Recursively drop `id` from every cache in the subtree rooted at
    /// (`level`, `node`), excluding that node itself.
    fn back_invalidate(&mut self, level: usize, node: usize, id: u32) {
        for l in level + 1..self.topo.depth() {
            let per_parent = self.topo.nodes_at(l) / self.topo.nodes_at(level);
            let lo = node * per_parent;
            for n in lo..lo + per_parent {
                self.caches[l][n].remove(id);
            }
        }
    }

    #[inline]
    fn access(&mut self, core: usize, block: Block, write: bool) -> Result<(), SimError> {
        if core >= self.topo.cores() {
            return Err(SimError::UnknownCore { core, cores: self.topo.cores() });
        }
        let id = self.space.id(block);
        let depth = self.topo.depth();
        // Probe from the innermost level outward until a hit.
        let mut hit_level = None;
        for l in (0..depth).rev() {
            let node = self.topo.node_of(l, core);
            let cache = &mut self.caches[l][node];
            let hit = if write && l == depth - 1 { cache.touch_dirty(id) } else { cache.touch(id) };
            if hit {
                self.stats.hits[l][node] += 1;
                hit_level = Some(l);
                break;
            }
            self.stats.misses[l][node] += 1;
        }
        // Fill the levels below the hit (or all levels on a memory access).
        let first_fill = hit_level.map(|l| l + 1).unwrap_or(0);
        for l in first_fill..depth {
            let node = self.topo.node_of(l, core);
            let dirty = write && l == depth - 1;
            if let Some(ev) = self.caches[l][node].insert(id, dirty) {
                if self.inclusive {
                    self.back_invalidate(l, node, ev.block);
                }
            }
        }
        Ok(())
    }
}

impl SimSink for TreeSimulator {
    fn read(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.access(core, block, false)
    }
    fn write(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.access(core, block, true)
    }
    fn fma(&mut self, core: usize, _a: Block, _b: Block, _c: Block) -> Result<(), SimError> {
        if core >= self.stats.fmas.len() {
            return Err(SimError::UnknownCore { core, cores: self.stats.fmas.len() });
        }
        self.stats.fmas[core] += 1;
        Ok(())
    }
    fn load_shared(&mut self, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn evict_shared(&mut self, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn load_dist(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn evict_dist(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn barrier(&mut self) -> Result<(), SimError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cluster() -> TreeTopology {
        // 2 nodes × (1 shared × 2 cores): 4 cores, depth 3.
        TreeTopology::cluster(2, 64, 2, 16, 4)
    }

    #[test]
    fn topology_arithmetic() {
        let t = tiny_cluster();
        assert_eq!(t.depth(), 3);
        assert_eq!(t.nodes_at(0), 2);
        assert_eq!(t.nodes_at(1), 2);
        assert_eq!(t.nodes_at(2), 4);
        assert_eq!(t.cores(), 4);
        assert_eq!(t.node_of(0, 0), 0);
        assert_eq!(t.node_of(0, 3), 1);
        assert_eq!(t.node_of(2, 2), 2);
    }

    #[test]
    fn two_level_matches_flat_simulator() {
        use crate::hierarchy::{SimConfig, Simulator};
        use crate::machine::MachineConfig;
        // Same accesses through the tree (depth 2) and the flat simulator
        // must count identically.
        let machine = MachineConfig::new(2, 16, 4, 32);
        let mut flat = Simulator::new(SimConfig::lru(&machine), 8, 8, 8);
        let mut tree = TreeSimulator::new(TreeTopology::two_level(2, 16, 4), 8, 8, 8);
        let accesses: Vec<(usize, Block)> = (0..400)
            .map(|t| {
                let core = t % 2;
                let i = (t * 7 % 8) as u32;
                let j = (t * 3 % 8) as u32;
                (core, Block::c(i, j))
            })
            .collect();
        for &(core, b) in &accesses {
            flat.read(core, b).unwrap();
            tree.read(core, b).unwrap();
        }
        assert_eq!(flat.stats().shared_misses, tree.stats().level_total(0));
        for c in 0..2 {
            assert_eq!(flat.stats().dist_misses[c], tree.stats().misses[1][c]);
        }
    }

    #[test]
    fn miss_propagates_through_all_levels_once() {
        let mut sim = TreeSimulator::new(tiny_cluster(), 4, 4, 4);
        sim.read(0, Block::a(0, 0)).unwrap();
        for l in 0..3 {
            assert_eq!(sim.stats().misses[l][0], 1, "level {l}");
        }
        // Second read: L1 hit only.
        sim.read(0, Block::a(0, 0)).unwrap();
        assert_eq!(sim.stats().hits[2][0], 1);
        assert_eq!(sim.stats().misses[0][0], 1);
        // Sibling core in the same node: hits at the shared level.
        sim.read(1, Block::a(0, 0)).unwrap();
        assert_eq!(sim.stats().hits[1][0], 1);
        assert_eq!(sim.stats().misses[2][1], 1);
        // Core on the *other* node: misses everywhere on its path.
        sim.read(2, Block::a(0, 0)).unwrap();
        assert_eq!(sim.stats().misses[0][1], 1);
        assert_eq!(sim.stats().misses[1][1], 1);
        assert_eq!(sim.stats().misses[2][2], 1);
    }

    #[test]
    fn inclusion_holds_under_traffic() {
        let mut sim = TreeSimulator::new(tiny_cluster(), 8, 8, 8);
        for t in 0..2000u32 {
            let core = (t % 4) as usize;
            let b = Block::c(t * 13 % 8, t * 5 % 8);
            if t % 3 == 0 {
                sim.write(core, b).unwrap();
            } else {
                sim.read(core, b).unwrap();
            }
            debug_assert!(sim.inclusion_holds());
        }
        assert!(sim.inclusion_holds());
    }

    #[test]
    fn t_data_weights_levels_by_bandwidth() {
        let topo = tiny_cluster().with_bandwidth(0, 0.5).with_bandwidth(2, 2.0);
        let mut sim = TreeSimulator::new(topo.clone(), 4, 4, 4);
        sim.read(0, Block::a(0, 0)).unwrap();
        // One miss per level: 1/0.5 + 1/1 + 1/2.
        assert!((sim.stats().t_data(&topo) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_core_rejected() {
        let mut sim = TreeSimulator::new(tiny_cluster(), 4, 4, 4);
        assert!(sim.read(9, Block::a(0, 0)).is_err());
        assert!(sim.fma(9, Block::a(0, 0), Block::b(0, 0), Block::c(0, 0)).is_err());
    }

    #[test]
    fn directives_are_noops() {
        let mut sim = TreeSimulator::new(tiny_cluster(), 4, 4, 4);
        assert!(!sim.manages_residency());
        sim.load_shared(Block::a(0, 0)).unwrap();
        sim.load_dist(0, Block::a(0, 0)).unwrap();
        assert!(!sim.contains(0, 0, Block::a(0, 0)));
    }
}
