//! Explicitly managed ("omniscient") cache for the IDEAL policy.
//!
//! The paper's theoretical model (§2.1) assumes "we are able to totally
//! control the behavior of each cache, and that we can load any data into
//! any cache". In the simulator's IDEAL mode (§4.1) "the user manually
//! decides which data needs to be loaded/unloaded in a given cache".
//!
//! This cache therefore has no replacement policy at all: loads fail when
//! the cache is full, and the algorithm is responsible for evicting. That
//! strictness is a feature — it turns the paper's capacity arithmetic
//! (`1 + λ + λ² ≤ C_S`, `α² + 2αβ ≤ C_S`, …) into machine-checked
//! invariants of our algorithm implementations.

/// Result of an explicit load.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoadOutcome {
    /// The block was absent and has been loaded: one cache miss.
    Miss,
    /// The block was already resident: no traffic.
    Hit,
}

/// Why an explicit load failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CapacityExceeded {
    /// The cache's capacity in blocks.
    pub capacity: usize,
}

const ABSENT: u8 = 0;
const CLEAN: u8 = 1;
const DIRTY: u8 = 2;

/// An explicitly managed cache of `capacity` blocks over ids `0..universe`.
#[derive(Clone, Debug)]
pub struct IdealCache {
    capacity: usize,
    flags: Vec<u8>,
    len: usize,
}

impl IdealCache {
    /// Create a cache holding up to `capacity` of the ids `0..universe`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, universe: usize) -> IdealCache {
        assert!(capacity > 0, "IDEAL cache capacity must be positive");
        IdealCache { capacity, flags: vec![ABSENT; universe], len: 0 }
    }

    /// Number of resident blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in blocks.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `id` is resident.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.flags[id as usize] != ABSENT
    }

    /// Whether `id` is resident and dirty.
    #[inline]
    pub fn is_dirty(&self, id: u32) -> bool {
        self.flags[id as usize] == DIRTY
    }

    /// Ensure `id` is resident.
    ///
    /// Idempotent: loading a resident block is a [`LoadOutcome::Hit`] and
    /// costs nothing. Loading into a full cache is an error: the IDEAL
    /// policy never evicts on its own.
    #[inline]
    pub fn load(&mut self, id: u32) -> Result<LoadOutcome, CapacityExceeded> {
        if self.flags[id as usize] != ABSENT {
            return Ok(LoadOutcome::Hit);
        }
        if self.len == self.capacity {
            return Err(CapacityExceeded { capacity: self.capacity });
        }
        self.flags[id as usize] = CLEAN;
        self.len += 1;
        Ok(LoadOutcome::Miss)
    }

    /// Evict `id`, returning whether its copy was dirty, or `None` if absent.
    #[inline]
    pub fn evict(&mut self, id: u32) -> Option<bool> {
        let f = self.flags[id as usize];
        if f == ABSENT {
            return None;
        }
        self.flags[id as usize] = ABSENT;
        self.len -= 1;
        Some(f == DIRTY)
    }

    /// Mark `id` dirty. Returns `false` if absent.
    #[inline]
    pub fn mark_dirty(&mut self, id: u32) -> bool {
        if self.flags[id as usize] == ABSENT {
            return false;
        }
        self.flags[id as usize] = DIRTY;
        true
    }

    /// Resident ids in increasing id order (diagnostics/tests only: O(universe)).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.flags.iter().enumerate().filter(|(_, &f)| f != ABSENT).map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_idempotent() {
        let mut c = IdealCache::new(2, 10);
        assert_eq!(c.load(3), Ok(LoadOutcome::Miss));
        assert_eq!(c.load(3), Ok(LoadOutcome::Hit));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn full_cache_rejects_loads() {
        let mut c = IdealCache::new(1, 10);
        c.load(0).unwrap();
        assert_eq!(c.load(1), Err(CapacityExceeded { capacity: 1 }));
        // Hit on the resident block still fine.
        assert_eq!(c.load(0), Ok(LoadOutcome::Hit));
    }

    #[test]
    fn evict_frees_space_and_reports_dirty() {
        let mut c = IdealCache::new(1, 10);
        c.load(4).unwrap();
        assert!(c.mark_dirty(4));
        assert_eq!(c.evict(4), Some(true));
        assert_eq!(c.evict(4), None);
        assert_eq!(c.load(5), Ok(LoadOutcome::Miss));
        assert_eq!(c.evict(5), Some(false));
    }

    #[test]
    fn mark_dirty_absent_is_false() {
        let mut c = IdealCache::new(1, 10);
        assert!(!c.mark_dirty(9));
    }

    #[test]
    fn iter_lists_residents() {
        let mut c = IdealCache::new(3, 10);
        c.load(7).unwrap();
        c.load(2).unwrap();
        let ids: Vec<u32> = c.iter().collect();
        assert_eq!(ids, vec![2, 7]);
    }
}
