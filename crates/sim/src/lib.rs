//! # mmc-sim — multicore cache-hierarchy simulator
//!
//! The simulation substrate of the `multicore-matmul` workspace: a
//! block-granularity model of the multicore memory architecture of
//!
//! > M. Jacquelin, L. Marchal, Y. Robert, *Complexity analysis and
//! > performance evaluation of matrix product on multicore architectures*,
//! > LIP RRLIP2009-09 / ICPP 2009.
//!
//! The modeled machine (paper Fig. 1) has `p` cores behind a *shared*
//! cache of `C_S` blocks (bandwidth `σ_S` to memory) and `p` private
//! *distributed* caches of `C_D` blocks each (bandwidth `σ_D`); the
//! hierarchy is inclusive and fully associative, and the data unit is a
//! square `q×q` block of matrix coefficients.
//!
//! The simulator counts shared-cache misses `M_S`, per-core distributed
//! misses `M_D^(c)` and derives the paper's objectives (`M_D = max_c`,
//! `T_data = M_S/σ_S + M_D/σ_D`, CCRs) under either the omniscient
//! **IDEAL** replacement policy of the theoretical model or a classical
//! **LRU** policy (§4.1 of the paper).
//!
//! ## Quick example
//!
//! ```
//! use mmc_sim::{Block, MachineConfig, Policy, SimConfig, SimSink, Simulator};
//!
//! let machine = MachineConfig::quad_q32();
//! let mut sim = Simulator::new(SimConfig::lru(&machine), 8, 8, 8);
//! // Core 0 reads block (0,0) of A twice: one miss at each level, one hit.
//! sim.read(0, Block::a(0, 0)).unwrap();
//! sim.read(0, Block::a(0, 0)).unwrap();
//! assert_eq!(sim.stats().shared_misses, 1);
//! assert_eq!(sim.stats().dist_misses[0], 1);
//! assert_eq!(sim.stats().dist_hits[0], 1);
//! assert!(matches!(sim.config().policy, Policy::Lru));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod assoc;
pub mod block;
pub(crate) mod cache;
pub mod error;
pub mod fiveloop;
pub mod hierarchy;
pub mod ideal;
pub mod level3;
pub mod lru;
pub mod machine;
pub mod sink;
pub mod stats;
pub mod strassen;
pub mod timing;
pub mod trace;
pub mod tree;
pub mod validate;

pub use analysis::{ProfilingSink, StackDistanceProfile};
pub use assoc::SetAssocCache;
pub use block::{Block, BlockSpace, MatrixId};
pub use error::SimError;
pub use fiveloop::{five_loop_traffic, FiveLoopTraffic};
pub use hierarchy::{Policy, SimConfig, Simulator};
pub use ideal::{IdealCache, LoadOutcome};
pub use level3::{FileLevel, TData3};
pub use lru::{Eviction, LruCache};
pub use machine::MachineConfig;
pub use sink::{CountingSink, SimSink, TraceEvent, TraceSink};
pub use stats::SimStats;
pub use strassen::{choose_algorithm, predicted_crossover, AlgoChoice, CostEnv, StrassenPlan};
pub use timing::{BspTiming, TimingModel};
pub use trace::{
    ChromeGranularity, ChromeTraceBuilder, EventKind, FlightRecorder, JournalEvent,
    MetricsSnapshot, OccupancySample,
};
pub use tree::{TreeLevel, TreeSimulator, TreeStats, TreeTopology};
pub use validate::{validate_ideal_trace, TraceViolation};

/// Compile-time audit that everything the sharded figure harness moves
/// across `rayon` workers stays `Send` — a later `Rc`/`RefCell` inside a
/// simulator would otherwise only surface as an opaque trait-bound error
/// deep in `mmc-bench`.
#[cfg(test)]
mod send_audit {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn harness_types_are_send() {
        assert_send::<Simulator>();
        assert_send::<TreeSimulator>();
        assert_send::<FlightRecorder>();
        assert_send::<CountingSink>();
        assert_send::<ProfilingSink>();
        assert_send_sync::<MachineConfig>();
        assert_send_sync::<SimConfig>();
        assert_send_sync::<SimStats>();
        assert_send_sync::<TreeStats>();
        assert_send_sync::<SimError>();
    }
}
