//! Bulk-synchronous timing estimates on top of the miss counters.
//!
//! The paper's objective `T_data = M_S/σ_S + M_D/σ_D` charges every miss
//! at full price and ignores computation. This module refines that into a
//! simple BSP-style makespan: the schedules' `barrier()` events delimit
//! supersteps, and each superstep costs
//!
//! ```text
//! T_step = max_c ( fma_c · t_fma  +  dist_misses_c / σ_D )  +  ΔM_S / σ_S
//! ```
//!
//! — cores proceed concurrently between barriers (private-cache fills are
//! contention-free, §2.1), while the shared cache is a single resource
//! filled at `σ_S`. Computation does not overlap communication (a
//! pessimistic but simple model; the paper's `T_data` is the special case
//! `t_fma = 0` with one superstep, so `makespan ≥`-style comparisons
//! against `T_data` quantify how much the barrier structure costs).
//!
//! [`BspTiming`] wraps any [`Simulator`] and derives the per-superstep
//! deltas from its counters, so it works with every schedule unchanged.

use crate::block::Block;
use crate::error::SimError;
use crate::hierarchy::Simulator;
use crate::sink::SimSink;

/// Cost parameters of the BSP estimate.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimingModel {
    /// Time per block FMA (e.g. `2q³ / flops-per-core`).
    pub fma_time: f64,
    /// Memory → shared-cache bandwidth (blocks per time unit).
    pub sigma_s: f64,
    /// Shared → private-cache bandwidth, per core (blocks per time unit).
    pub sigma_d: f64,
}

impl TimingModel {
    /// Pure data-movement model (`t_fma = 0`): the paper's regime.
    pub fn data_only(sigma_s: f64, sigma_d: f64) -> TimingModel {
        TimingModel { fma_time: 0.0, sigma_s, sigma_d }
    }
}

/// A [`SimSink`] decorator adding BSP makespan accounting to a simulator.
pub struct BspTiming {
    sim: Simulator,
    model: TimingModel,
    makespan: f64,
    supersteps: u64,
    // Snapshots at the previous barrier.
    last_shared: u64,
    last_dist: Vec<u64>,
    last_fmas: Vec<u64>,
}

impl BspTiming {
    /// Wrap `sim` (any policy) with cost model `model`.
    pub fn new(sim: Simulator, model: TimingModel) -> BspTiming {
        assert!(model.sigma_s > 0.0 && model.sigma_d > 0.0, "bandwidths must be positive");
        assert!(model.fma_time >= 0.0, "FMA time must be non-negative");
        let cores = sim.config().cores;
        BspTiming {
            sim,
            model,
            makespan: 0.0,
            supersteps: 0,
            last_shared: 0,
            last_dist: vec![0; cores],
            last_fmas: vec![0; cores],
        }
    }

    fn close_superstep(&mut self) {
        let stats = self.sim.stats();
        let mut slowest = 0.0f64;
        let mut any = false;
        for c in 0..stats.cores() {
            let d_fma = stats.fmas[c] - self.last_fmas[c];
            let d_miss = stats.dist_misses[c] - self.last_dist[c];
            if d_fma > 0 || d_miss > 0 {
                any = true;
            }
            let t = d_fma as f64 * self.model.fma_time + d_miss as f64 / self.model.sigma_d;
            slowest = slowest.max(t);
        }
        let d_shared = stats.shared_misses - self.last_shared;
        if !any && d_shared == 0 {
            return; // empty superstep (consecutive barriers)
        }
        self.makespan += slowest + d_shared as f64 / self.model.sigma_s;
        self.supersteps += 1;
        self.last_shared = stats.shared_misses;
        self.last_dist.copy_from_slice(&stats.dist_misses);
        self.last_fmas.copy_from_slice(&stats.fmas);
    }

    /// Close any trailing (un-barriered) superstep and return
    /// `(makespan, supersteps, simulator)`.
    pub fn finish(mut self) -> (f64, u64, Simulator) {
        self.close_superstep();
        (self.makespan, self.supersteps, self.sim)
    }

    /// Makespan accumulated so far (closed supersteps only).
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Supersteps closed so far.
    pub fn supersteps(&self) -> u64 {
        self.supersteps
    }

    /// The wrapped simulator (its counters include the open superstep).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }
}

impl SimSink for BspTiming {
    fn read(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.sim.read(core, block)
    }
    fn write(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.sim.write(core, block)
    }
    fn fma(&mut self, core: usize, a: Block, b: Block, c: Block) -> Result<(), SimError> {
        self.sim.fma(core, a, b, c)
    }
    fn load_shared(&mut self, block: Block) -> Result<(), SimError> {
        self.sim.load_shared(block)
    }
    fn evict_shared(&mut self, block: Block) -> Result<(), SimError> {
        self.sim.evict_shared(block)
    }
    fn load_dist(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.sim.load_dist(core, block)
    }
    fn evict_dist(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.sim.evict_dist(core, block)
    }
    fn barrier(&mut self) -> Result<(), SimError> {
        self.sim.barrier()?;
        self.close_superstep();
        Ok(())
    }
    fn manages_residency(&self) -> bool {
        self.sim.manages_residency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::SimConfig;
    use crate::machine::MachineConfig;

    fn sim() -> Simulator {
        Simulator::new(SimConfig::lru(&MachineConfig::new(2, 16, 4, 32)), 8, 8, 8)
    }

    #[test]
    fn one_superstep_costs_slowest_core_plus_shared_fill() {
        let model = TimingModel { fma_time: 1.0, sigma_s: 2.0, sigma_d: 1.0 };
        let mut t = BspTiming::new(sim(), model);
        // Core 0: 2 distinct misses + 1 fma; core 1: 1 miss.
        t.read(0, Block::a(0, 0)).unwrap();
        t.read(0, Block::a(0, 1)).unwrap();
        t.fma(0, Block::a(0, 0), Block::b(0, 0), Block::c(0, 0)).unwrap();
        t.read(1, Block::a(0, 2)).unwrap();
        t.barrier().unwrap();
        // core 0: 1·1 + 2/1 = 3; core 1: 1; shared: 3 misses / 2 = 1.5.
        assert!((t.makespan() - 4.5).abs() < 1e-12);
        assert_eq!(t.supersteps(), 1);
    }

    #[test]
    fn empty_supersteps_are_free() {
        let model = TimingModel::data_only(1.0, 1.0);
        let mut t = BspTiming::new(sim(), model);
        t.barrier().unwrap();
        t.barrier().unwrap();
        assert_eq!(t.supersteps(), 0);
        assert_eq!(t.makespan(), 0.0);
    }

    #[test]
    fn finish_closes_the_trailing_superstep() {
        let model = TimingModel::data_only(1.0, 1.0);
        let mut t = BspTiming::new(sim(), model);
        t.read(0, Block::a(0, 0)).unwrap();
        let (makespan, steps, sim) = t.finish();
        assert_eq!(steps, 1);
        assert!((makespan - 2.0).abs() < 1e-12); // 1 dist + 1 shared miss
        assert_eq!(sim.stats().shared_misses, 1);
    }

    #[test]
    fn data_only_makespan_at_least_t_data() {
        // With t_fma = 0 the BSP makespan dominates T_data: per-step maxes
        // sum to at least the global max (M_D term) and the shared term is
        // identical.
        use crate::sink::SimSink as _;
        let model = TimingModel::data_only(1.0, 1.0);
        let mut t = BspTiming::new(sim(), model);
        for i in 0..8u32 {
            for j in 0..8u32 {
                t.read((i % 2) as usize, Block::c(i, j)).unwrap();
            }
            t.barrier().unwrap();
        }
        let (makespan, _, simr) = t.finish();
        let t_data = simr.stats().t_data(1.0, 1.0);
        assert!(makespan >= t_data - 1e-9, "{makespan} vs {t_data}");
    }

    #[test]
    #[should_panic(expected = "bandwidths")]
    fn rejects_zero_bandwidth() {
        let _ = BspTiming::new(sim(), TimingModel { fma_time: 0.0, sigma_s: 0.0, sigma_d: 1.0 });
    }
}
