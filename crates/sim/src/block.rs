//! Block-granularity addressing of the three matrices.
//!
//! Following the paper (§2.1), the atomic data unit manipulated by every
//! algorithm is a square `q×q` *block* of matrix coefficients, not a single
//! coefficient: "the atomic elements that we manipulate are not matrix
//! coefficients but rather square blocks of coefficients of size q × q".
//! Cache capacities (`C_S`, `C_D`) are counted in blocks.
//!
//! A [`Block`] names one such block by matrix and block coordinates. A
//! [`BlockSpace`] maps blocks of a concrete problem (`A: m×z`, `B: z×n`,
//! `C: m×n`, all in block units) onto a dense `0..total` integer range so
//! that cache bookkeeping can be plain vector indexing with no hashing on
//! the simulator's hot path.

use serde::{Deserialize, Serialize};

/// Which of the three matrices of the product `C = A × B` a block belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MatrixId {
    /// The left operand, `m × z` blocks.
    A,
    /// The right operand, `z × n` blocks.
    B,
    /// The result, `m × n` blocks.
    C,
}

impl MatrixId {
    /// All three matrices, in `A, B, C` order.
    pub const ALL: [MatrixId; 3] = [MatrixId::A, MatrixId::B, MatrixId::C];
}

impl std::fmt::Display for MatrixId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixId::A => write!(f, "A"),
            MatrixId::B => write!(f, "B"),
            MatrixId::C => write!(f, "C"),
        }
    }
}

/// One `q×q` block of one matrix, addressed in block coordinates.
///
/// `row` and `col` are *block* indices: block `(row, col)` of matrix `M`
/// covers coefficients `M[row*q .. (row+1)*q, col*q .. (col+1)*q]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Block {
    /// Owning matrix.
    pub matrix: MatrixId,
    /// Block-row index.
    pub row: u32,
    /// Block-column index.
    pub col: u32,
}

impl Block {
    /// Block `(i, k)` of `A` (`i < m`, `k < z`).
    #[inline(always)]
    pub const fn a(i: u32, k: u32) -> Block {
        Block { matrix: MatrixId::A, row: i, col: k }
    }

    /// Block `(k, j)` of `B` (`k < z`, `j < n`).
    #[inline(always)]
    pub const fn b(k: u32, j: u32) -> Block {
        Block { matrix: MatrixId::B, row: k, col: j }
    }

    /// Block `(i, j)` of `C` (`i < m`, `j < n`).
    #[inline(always)]
    pub const fn c(i: u32, j: u32) -> Block {
        Block { matrix: MatrixId::C, row: i, col: j }
    }
}

impl std::fmt::Display for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{},{}]", self.matrix, self.row, self.col)
    }
}

/// Dense id assignment for every block of a concrete `C = A × B` problem.
///
/// Ids are laid out as `[A row-major | B row-major | C row-major]`, so the
/// id range is `0..total()` and each cache can use a flat lookup table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSpace {
    m: u32,
    n: u32,
    z: u32,
    base_b: u32,
    base_c: u32,
    total: u32,
}

impl BlockSpace {
    /// Build the id space for `A: m×z`, `B: z×n`, `C: m×n` (block units).
    ///
    /// # Panics
    /// Panics if any dimension is zero or the total block count overflows
    /// `u32` (problems that large are far beyond anything simulable anyway).
    pub fn new(m: u32, n: u32, z: u32) -> BlockSpace {
        assert!(m > 0 && n > 0 && z > 0, "matrix dimensions must be positive");
        let a = (m as u64) * (z as u64);
        let b = (z as u64) * (n as u64);
        let c = (m as u64) * (n as u64);
        let total = a + b + c;
        assert!(total <= u32::MAX as u64, "block space too large: {total} blocks");
        BlockSpace { m, n, z, base_b: a as u32, base_c: (a + b) as u32, total: total as u32 }
    }

    /// Number of block rows of `A` and `C`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of block columns of `B` and `C`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Shared dimension: block columns of `A`, block rows of `B`.
    #[inline]
    pub fn z(&self) -> u32 {
        self.z
    }

    /// Total number of distinct blocks across the three matrices.
    #[inline]
    pub fn total(&self) -> usize {
        self.total as usize
    }

    /// Dense id of `block`.
    ///
    /// Bounds are checked with `debug_assert!` only: the simulator calls
    /// this on every cache probe and the algorithms are trusted (and
    /// tested) to stay in range. Use [`BlockSpace::checked_id`] at API
    /// boundaries.
    #[inline(always)]
    pub fn id(&self, block: Block) -> u32 {
        debug_assert!(self.in_bounds(block), "block out of bounds: {block}");
        match block.matrix {
            MatrixId::A => block.row * self.z + block.col,
            MatrixId::B => self.base_b + block.row * self.n + block.col,
            MatrixId::C => self.base_c + block.row * self.n + block.col,
        }
    }

    /// Dense id of `block`, or `None` if its coordinates are out of range.
    pub fn checked_id(&self, block: Block) -> Option<u32> {
        if self.in_bounds(block) {
            Some(self.id(block))
        } else {
            None
        }
    }

    /// Whether `block`'s coordinates are valid for this problem.
    #[inline]
    pub fn in_bounds(&self, block: Block) -> bool {
        let (rows, cols) = self.dims(block.matrix);
        block.row < rows && block.col < cols
    }

    /// `(rows, cols)` in block units of one matrix.
    #[inline]
    pub fn dims(&self, matrix: MatrixId) -> (u32, u32) {
        match matrix {
            MatrixId::A => (self.m, self.z),
            MatrixId::B => (self.z, self.n),
            MatrixId::C => (self.m, self.n),
        }
    }

    /// Inverse of [`BlockSpace::id`], for diagnostics and error messages.
    pub fn block(&self, id: u32) -> Block {
        assert!(id < self.total, "block id {id} out of range (< {})", self.total);
        if id < self.base_b {
            Block::a(id / self.z, id % self.z)
        } else if id < self.base_c {
            let off = id - self.base_b;
            Block::b(off / self.n, off % self.n)
        } else {
            let off = id - self.base_c;
            Block::c(off / self.n, off % self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_layout_is_dense_and_disjoint() {
        let s = BlockSpace::new(3, 4, 5);
        assert_eq!(s.total(), 3 * 5 + 5 * 4 + 3 * 4);
        let mut seen = vec![false; s.total()];
        for i in 0..3 {
            for k in 0..5 {
                seen[s.id(Block::a(i, k)) as usize] = true;
            }
        }
        for k in 0..5 {
            for j in 0..4 {
                seen[s.id(Block::b(k, j)) as usize] = true;
            }
        }
        for i in 0..3 {
            for j in 0..4 {
                seen[s.id(Block::c(i, j)) as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every id must be covered exactly once");
    }

    #[test]
    fn id_round_trips() {
        let s = BlockSpace::new(7, 2, 9);
        for id in 0..s.total() as u32 {
            assert_eq!(s.id(s.block(id)), id);
        }
    }

    #[test]
    fn checked_id_rejects_out_of_bounds() {
        let s = BlockSpace::new(2, 2, 2);
        assert!(s.checked_id(Block::a(2, 0)).is_none());
        assert!(s.checked_id(Block::b(0, 2)).is_none());
        assert!(s.checked_id(Block::c(1, 1)).is_some());
    }

    #[test]
    fn dims_per_matrix() {
        let s = BlockSpace::new(3, 4, 5);
        assert_eq!(s.dims(MatrixId::A), (3, 5));
        assert_eq!(s.dims(MatrixId::B), (5, 4));
        assert_eq!(s.dims(MatrixId::C), (3, 4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = BlockSpace::new(0, 1, 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Block::a(1, 2).to_string(), "A[1,2]");
        assert_eq!(Block::b(0, 7).to_string(), "B[0,7]");
        assert_eq!(Block::c(3, 3).to_string(), "C[3,3]");
    }
}
