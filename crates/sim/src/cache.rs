//! Internal cache abstraction: fully-associative or set-associative LRU
//! behind one interface, so the hierarchy logic is written once.

use crate::assoc::SetAssocCache;
use crate::lru::{Eviction, LruCache};

/// Either replacement structure, with the common operations inlined.
#[derive(Clone, Debug)]
pub(crate) enum AnyCache {
    Full(LruCache),
    SetAssoc(SetAssocCache),
}

impl AnyCache {
    /// `associativity = None` → fully associative.
    pub(crate) fn new(capacity: usize, universe: usize, associativity: Option<usize>) -> AnyCache {
        match associativity {
            None => AnyCache::Full(LruCache::new(capacity, universe)),
            Some(ways) => AnyCache::SetAssoc(SetAssocCache::new(capacity, ways)),
        }
    }

    #[inline]
    pub(crate) fn touch(&mut self, id: u32) -> bool {
        match self {
            AnyCache::Full(c) => c.touch(id),
            AnyCache::SetAssoc(c) => c.touch(id),
        }
    }

    #[inline]
    pub(crate) fn touch_dirty(&mut self, id: u32) -> bool {
        match self {
            AnyCache::Full(c) => c.touch_dirty(id),
            AnyCache::SetAssoc(c) => c.touch_dirty(id),
        }
    }

    #[inline]
    pub(crate) fn mark_dirty(&mut self, id: u32) -> bool {
        match self {
            AnyCache::Full(c) => c.mark_dirty(id),
            AnyCache::SetAssoc(c) => c.mark_dirty(id),
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, id: u32, dirty: bool) -> Option<Eviction> {
        match self {
            AnyCache::Full(c) => c.insert(id, dirty),
            AnyCache::SetAssoc(c) => c.insert(id, dirty),
        }
    }

    #[inline]
    pub(crate) fn remove(&mut self, id: u32) -> Option<bool> {
        match self {
            AnyCache::Full(c) => c.remove(id),
            AnyCache::SetAssoc(c) => c.remove(id),
        }
    }

    #[inline]
    pub(crate) fn contains(&self, id: u32) -> bool {
        match self {
            AnyCache::Full(c) => c.contains(id),
            AnyCache::SetAssoc(c) => c.contains(id),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            AnyCache::Full(c) => c.len(),
            AnyCache::SetAssoc(c) => c.len(),
        }
    }

    /// Resident ids (diagnostics/tests).
    pub(crate) fn resident_ids(&self) -> Vec<u32> {
        match self {
            AnyCache::Full(c) => c.iter_mru().collect(),
            AnyCache::SetAssoc(c) => c.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_share_behaviour_on_hits() {
        for assoc in [None, Some(4), Some(1)] {
            let mut c = AnyCache::new(8, 100, assoc);
            assert!(!c.touch(5));
            c.insert(5, false);
            assert!(c.touch(5));
            assert!(c.touch_dirty(5));
            assert!(c.mark_dirty(5));
            assert!(c.contains(5));
            assert_eq!(c.len(), 1);
            assert_eq!(c.remove(5), Some(true));
            assert!(c.resident_ids().is_empty());
        }
    }
}
