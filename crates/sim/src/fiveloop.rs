//! Block-traffic model of the executor's 5-loop macro-kernel schedule.
//!
//! `mmc-exec` runs each `C` tile through a BLIS-style loop nest — `jc`
//! over `NC` columns, `pc` over `KC` of `k` (packing `B` once), `ic` over
//! `MC` rows (packing `A`) — so the volume of operand traffic it
//! generates is a *closed form* of the problem shape and the blocking
//! plan, in the same `M_S`/`M_D` currency the schedule simulators count:
//!
//! * every `B` block is packed once per `jc` pass it belongs to → `z·n`
//!   shared-level loads in total (each `B` block belongs to exactly one
//!   `jc` column group);
//! * every `A` block is packed once per `jc` pass → `m·z·⌈n/nc⌉`;
//! * every `C` block is revisited once per `k` panel → `m·n·⌈z/kc⌉`.
//!
//! At the distributed (per-core L2) level, the packed `B` panel is
//! re-read from the shared level once per `MC` block (`z·n·⌈m/mc⌉`)
//! while `A` and `C` traffic match the shared level. With
//! `mc = kc = nc = 1` block `M_D` degenerates to the naive `3mnz` —
//! the same anchor the paper's Table 1 models are checked against —
//! while `M_S` stays at `2mnz + zn` because packing reads each `B`
//! block from memory exactly once per `jc` pass it belongs to. Growing
//! any plan dimension monotonically removes traffic.
//!
//! [`five_loop_traffic`] lets `mmc counters` reconcile measured cache
//! misses against the analytic plan the executor actually ran, closing
//! the loop between the paper's `T_data = M_S/σ_S + M_D/σ_D` model and
//! hardware `perf` counts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Predicted operand traffic of the 5-loop schedule, in **blocks**.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FiveLoopTraffic {
    /// Shared-level loads `M_S`: memory → shared cache block transfers.
    pub ms: u64,
    /// Distributed-level loads `M_D` summed over cores: shared cache →
    /// private cache block transfers.
    pub md: u64,
}

impl FiveLoopTraffic {
    /// The paper's data-movement time `T_data = M_S/σ_S + M_D/σ_D` for
    /// bandwidths in blocks per unit time.
    pub fn t_data(&self, sigma_s: f64, sigma_d: f64) -> f64 {
        self.ms as f64 / sigma_s + self.md as f64 / sigma_d
    }
}

impl fmt::Display for FiveLoopTraffic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M_S={} M_D={}", self.ms, self.md)
    }
}

/// Closed-form 5-loop traffic for an `m×z · z×n` block product under a
/// `(mc, kc, nc)` plan in blocks.
///
/// Plan dimensions are clamped to at least one block (matching the
/// executor, whose loop steps are `max(plan/q, 1)`), so a degenerate
/// plan reproduces the naive `3mnz` bound.
pub fn five_loop_traffic(m: u64, n: u64, z: u64, mc: u64, kc: u64, nc: u64) -> FiveLoopTraffic {
    let (mc, kc, nc) = (mc.max(1), kc.max(1), nc.max(1));
    let jc_passes = n.div_ceil(nc);
    let k_panels = z.div_ceil(kc);
    let mc_blocks = m.div_ceil(mc);
    // Shared level: A streamed per jc pass, B once, C once per k panel.
    let ms = m * z * jc_passes + z * n + m * n * k_panels;
    // Distributed level: B re-read per MC block instead of once.
    let md = m * z * jc_passes + z * n * mc_blocks + m * n * k_panels;
    FiveLoopTraffic { ms, md }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_plan_is_naive_3mnz_at_the_distributed_level() {
        // mc = kc = nc = 1 block: every operand block moves once per use
        // at the distributed level (the naive 3mnz anchor); the shared
        // level still reads each B block only once per jc pass.
        for (m, n, z) in [(4u64, 5, 6), (1, 1, 1), (16, 16, 16)] {
            let t = five_loop_traffic(m, n, z, 1, 1, 1);
            assert_eq!(t.md, 3 * m * n * z, "{m}x{n}x{z}");
            assert_eq!(t.ms, 2 * m * n * z + z * n, "{m}x{n}x{z}");
        }
    }

    #[test]
    fn whole_problem_plan_reaches_the_compulsory_floor() {
        // Plan covering the full problem: every operand moves exactly once
        // at the shared level.
        let (m, n, z) = (8u64, 12, 10);
        let t = five_loop_traffic(m, n, z, m, z, n);
        assert_eq!(t.ms, m * z + z * n + m * n);
        assert_eq!(t.md, m * z + z * n + m * n);
    }

    #[test]
    fn shared_traffic_never_exceeds_distributed() {
        for plan in [(1u64, 1, 1), (2, 3, 4), (8, 8, 8), (64, 64, 64)] {
            let t = five_loop_traffic(7, 9, 11, plan.0, plan.1, plan.2);
            assert!(t.ms <= t.md, "plan {plan:?}: {t}");
        }
    }

    #[test]
    fn traffic_is_monotone_in_each_plan_dimension() {
        let base = five_loop_traffic(16, 16, 16, 2, 2, 2);
        for grown in [
            five_loop_traffic(16, 16, 16, 4, 2, 2),
            five_loop_traffic(16, 16, 16, 2, 4, 2),
            five_loop_traffic(16, 16, 16, 2, 2, 4),
        ] {
            assert!(grown.ms <= base.ms && grown.md <= base.md, "{grown} vs {base}");
        }
    }

    #[test]
    fn t_data_weighs_levels_by_bandwidth() {
        let t = FiveLoopTraffic { ms: 100, md: 300 };
        assert_eq!(t.t_data(10.0, 30.0), 20.0);
    }

    #[test]
    fn serde_round_trip() {
        let t = five_loop_traffic(6, 7, 8, 3, 2, 4);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<FiveLoopTraffic>(&json).unwrap(), t);
    }
}
