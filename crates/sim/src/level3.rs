//! Third memory level: extending the paper's two-level `T_data` to an
//! out-of-core disk/NVMe tier.
//!
//! The paper's objective is `T_data = M_S/σ_S + M_D/σ_D` over an
//! inclusive two-level hierarchy (§2.2). Its §6 points toward deeper
//! hierarchies, and Smith et al.'s tight multi-level I/O bound shows the
//! same per-level `2mnz/√C` structure repeats at every level. This module
//! is that extension for one extra level below memory: a *file* tier of
//! capacity `C_F` blocks (the tiled on-disk operands) reached at
//! bandwidth `σ_F`, giving the three-term objective
//!
//! ```text
//! T_data = M_F/σ_F + M_S/σ_S + M_D/σ_D
//! ```
//!
//! where `M_F` counts blocks moved between disk and RAM. The `mmc-ooc`
//! streaming executor reports a [`TData3`] built from its *measured* disk
//! traffic and bandwidth next to the model's predicted `M_S`/`M_D`, so
//! predictions and real runs line up term by term.

use serde::{Deserialize, Serialize};

/// The added (lowest) hierarchy level: a disk/NVMe tier of tiled files.
///
/// Mirrors the role `C_S`/`σ_S` play in
/// [`MachineConfig`](crate::MachineConfig), one level down: `capacity` is
/// the RAM budget (in blocks) available for staging resident tiles, and
/// `sigma_f` the disk→RAM bandwidth in blocks per time unit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FileLevel {
    /// RAM budget available to the staged product, in `q×q` blocks.
    pub capacity: u64,
    /// Disk → RAM bandwidth, in blocks per time unit.
    pub sigma_f: f64,
}

impl FileLevel {
    /// A file level with the given RAM budget and bandwidth.
    pub fn new(capacity: u64, sigma_f: f64) -> FileLevel {
        assert!(sigma_f > 0.0, "disk bandwidth must be positive");
        FileLevel { capacity, sigma_f }
    }

    /// The lower bound on disk traffic for an `m×n×z` block product with
    /// `capacity` blocks of RAM: the multi-level analogue of the paper's
    /// §2.2 bound, `2mnz/√C_F + mn` (read `A`/`B` at reuse `√C_F`, write
    /// `C` once). Matches Smith et al.'s tight bound up to the additive
    /// output term.
    pub fn mf_lower_bound(&self, m: u32, n: u32, z: u32) -> f64 {
        let (m, n, z) = (m as f64, n as f64, z as f64);
        2.0 * m * n * z / (self.capacity as f64).sqrt() + m * n
    }
}

/// The three-term data access time of an out-of-core run, with each
/// term's traffic and bandwidth kept separate so reports can show where
/// the time goes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TData3 {
    /// Blocks moved between disk and RAM (`M_F`).
    pub mf: f64,
    /// Shared-cache misses (`M_S`), from the two-level model.
    pub ms: f64,
    /// Distributed-cache misses (`M_D = max_c`), from the two-level model.
    pub md: f64,
    /// Disk → RAM bandwidth `σ_F` (blocks per time unit).
    pub sigma_f: f64,
    /// Memory → shared-cache bandwidth `σ_S`.
    pub sigma_s: f64,
    /// Shared → distributed bandwidth `σ_D`.
    pub sigma_d: f64,
}

impl TData3 {
    /// The three-term objective of a purely in-core job: no disk leg
    /// (`M_F = 0`), the model's two in-core terms, and `σ_F` pinned to
    /// `σ_S` so the unused disk bandwidth is a real, finite rate — a
    /// serve-scheduler pricing an in-RAM multiply must never divide by
    /// a fictitious `1 block/s` placeholder.
    pub fn in_core(ms: f64, md: f64, machine: &crate::MachineConfig) -> TData3 {
        TData3 {
            mf: 0.0,
            ms,
            md,
            sigma_f: machine.sigma_s,
            sigma_s: machine.sigma_s,
            sigma_d: machine.sigma_d,
        }
    }

    /// The disk term `M_F/σ_F`.
    pub fn disk_term(&self) -> f64 {
        self.mf / self.sigma_f
    }

    /// The shared term `M_S/σ_S`.
    pub fn shared_term(&self) -> f64 {
        self.ms / self.sigma_s
    }

    /// The distributed term `M_D/σ_D`.
    pub fn dist_term(&self) -> f64 {
        self.md / self.sigma_d
    }

    /// `T_data = M_F/σ_F + M_S/σ_S + M_D/σ_D`.
    pub fn total(&self) -> f64 {
        self.disk_term() + self.shared_term() + self.dist_term()
    }
}

impl std::fmt::Display for TData3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "T_data = M_F/sigma_F + M_S/sigma_S + M_D/sigma_D = {:.0}/{:.3} + {:.0}/{:.3} + {:.0}/{:.3} = {:.0}",
            self.mf,
            self.sigma_f,
            self.ms,
            self.sigma_s,
            self.md,
            self.sigma_d,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_terms_sum() {
        let t = TData3 { mf: 100.0, ms: 50.0, md: 20.0, sigma_f: 2.0, sigma_s: 1.0, sigma_d: 4.0 };
        assert!((t.disk_term() - 50.0).abs() < 1e-12);
        assert!((t.shared_term() - 50.0).abs() < 1e-12);
        assert!((t.dist_term() - 5.0).abs() < 1e-12);
        assert!((t.total() - 105.0).abs() < 1e-12);
        let text = format!("{t}");
        assert!(text.contains("M_F/sigma_F"), "{text}");
        assert!(text.ends_with("= 105"), "{text}");
    }

    #[test]
    fn in_core_pricing_has_no_disk_leg_and_finite_bandwidths() {
        let machine = crate::MachineConfig::quad_q32().with_bandwidths(0.25, 4.0);
        let t = TData3::in_core(50.0, 20.0, &machine);
        assert_eq!(t.disk_term(), 0.0);
        assert!((t.total() - (50.0 / 0.25 + 20.0 / 4.0)).abs() < 1e-12);
        assert!(t.sigma_f.is_finite() && t.sigma_f > 0.0);
        assert_ne!(t.sigma_f, 1.0, "pinned to the machine, not a placeholder");
    }

    #[test]
    fn mf_bound_reduces_to_paper_form() {
        // C_F = 100 blocks of RAM: 2mnz/10 + mn.
        let level = FileLevel::new(100, 1.0);
        assert!((level.mf_lower_bound(10, 10, 10) - (200.0 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn serializes_round_trip() {
        let t = TData3 { mf: 1.5, ms: 2.0, md: 3.0, sigma_f: 0.5, sigma_s: 1.0, sigma_d: 2.0 };
        let text = serde_json::to_string(&t).unwrap();
        let back: TData3 = serde_json::from_str(&text).unwrap();
        assert_eq!(t, back);
        let level = FileLevel::new(64, 2.0);
        let text = serde_json::to_string(&level).unwrap();
        let back: FileLevel = serde_json::from_str(&text).unwrap();
        assert_eq!(level, back);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_disk_bandwidth_rejected() {
        let _ = FileLevel::new(1, 0.0);
    }
}
