//! Miss counters and the paper's derived metrics.
//!
//! The two quantities the paper optimizes (§2.2) are
//!
//! * `M_S` — the number of shared-cache misses, and
//! * `M_D = max_c M_D^(c)` — the *maximum* over cores of the per-core
//!   distributed-cache misses (accesses from different private caches are
//!   concurrent, so the slowest core is what matters),
//!
//! combined into the data access time `T_data = M_S/σ_S + M_D/σ_D`.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Shared-cache misses `M_S` (loads from main memory).
    pub shared_misses: u64,
    /// Shared-cache hits (probes served without touching memory).
    pub shared_hits: u64,
    /// Dirty blocks written back from the shared cache to memory.
    pub shared_writebacks: u64,
    /// Per-core distributed-cache misses `M_D^(c)`.
    pub dist_misses: Vec<u64>,
    /// Per-core distributed-cache hits.
    pub dist_hits: Vec<u64>,
    /// Per-core dirty evictions from the distributed cache back to shared.
    pub dist_writebacks: Vec<u64>,
    /// Per-core block-level multiply-accumulate operations `comp(c)`.
    pub fmas: Vec<u64>,
    /// Synchronization barriers emitted by the algorithm (bookkeeping).
    pub barriers: u64,
}

impl SimStats {
    /// Zeroed statistics for a `cores`-core machine.
    pub fn new(cores: usize) -> SimStats {
        SimStats {
            shared_misses: 0,
            shared_hits: 0,
            shared_writebacks: 0,
            dist_misses: vec![0; cores],
            dist_hits: vec![0; cores],
            dist_writebacks: vec![0; cores],
            fmas: vec![0; cores],
            barriers: 0,
        }
    }

    /// Number of cores these statistics cover.
    pub fn cores(&self) -> usize {
        self.dist_misses.len()
    }

    /// `M_S`: total shared-cache misses.
    #[inline]
    pub fn ms(&self) -> u64 {
        self.shared_misses
    }

    /// `M_D = max_c M_D^(c)`: the paper's distributed-cache miss metric.
    #[inline]
    pub fn md(&self) -> u64 {
        self.dist_misses.iter().copied().max().unwrap_or(0)
    }

    /// Sum over cores of distributed-cache misses.
    #[inline]
    pub fn md_total(&self) -> u64 {
        self.dist_misses.iter().sum()
    }

    /// Mean per-core distributed-cache misses.
    pub fn md_avg(&self) -> f64 {
        if self.dist_misses.is_empty() {
            0.0
        } else {
            self.md_total() as f64 / self.dist_misses.len() as f64
        }
    }

    /// Total block multiply-accumulates `K = Σ_c comp(c)`; equals `m·n·z`
    /// (in blocks) for any complete matrix product.
    #[inline]
    pub fn total_fmas(&self) -> u64 {
        self.fmas.iter().sum()
    }

    /// `T_data = M_S/σ_S + M_D/σ_D` (§2.2).
    pub fn t_data(&self, sigma_s: f64, sigma_d: f64) -> f64 {
        assert!(sigma_s > 0.0 && sigma_d > 0.0, "bandwidths must be positive");
        self.ms() as f64 / sigma_s + self.md() as f64 / sigma_d
    }

    /// Shared-cache communication-to-computation ratio `CCR_S = M_S / K`.
    pub fn ccr_shared(&self) -> f64 {
        let k = self.total_fmas();
        if k == 0 {
            f64::INFINITY
        } else {
            self.ms() as f64 / k as f64
        }
    }

    /// Distributed communication-to-computation ratio
    /// `CCR_D = (1/p) Σ_c M_D^(c)/comp(c)` (§2.3.3).
    pub fn ccr_dist(&self) -> f64 {
        let p = self.cores();
        if p == 0 {
            return f64::INFINITY;
        }
        let mut acc = 0.0;
        for c in 0..p {
            if self.fmas[c] == 0 {
                return f64::INFINITY;
            }
            acc += self.dist_misses[c] as f64 / self.fmas[c] as f64;
        }
        acc / p as f64
    }

    /// Shared-cache hit rate `hits / (hits + misses)` in `[0, 1]`.
    /// Returns 0 when the shared cache was never probed, so the value is
    /// always finite (and JSON-serializable).
    pub fn shared_hit_rate(&self) -> f64 {
        let probes = self.shared_hits + self.shared_misses;
        if probes == 0 {
            0.0
        } else {
            self.shared_hits as f64 / probes as f64
        }
    }

    /// Core `core`'s distributed-cache hit rate in `[0, 1]` (0 when that
    /// cache was never probed).
    pub fn dist_hit_rate(&self, core: usize) -> f64 {
        let probes = self.dist_hits[core] + self.dist_misses[core];
        if probes == 0 {
            0.0
        } else {
            self.dist_hits[core] as f64 / probes as f64
        }
    }

    /// Ratio of the busiest to the least busy core, in FMAs (1.0 = perfectly
    /// balanced). Used by tests to confirm the paper's equal-distribution
    /// assumption (§2.3.4) holds for our implementations.
    pub fn compute_imbalance(&self) -> f64 {
        let max = self.fmas.iter().copied().max().unwrap_or(0);
        let min = self.fmas.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "M_S = {} (hits {}, writebacks {}, hit rate {:.1}%)",
            self.shared_misses,
            self.shared_hits,
            self.shared_writebacks,
            100.0 * self.shared_hit_rate()
        )?;
        writeln!(
            f,
            "M_D = {} (max of {:?}, hit rate {:.1}%)",
            self.md(),
            self.dist_misses,
            100.0
                * if self.cores() == 0 {
                    0.0
                } else {
                    (0..self.cores()).map(|c| self.dist_hit_rate(c)).sum::<f64>()
                        / self.cores() as f64
                }
        )?;
        write!(
            f,
            "K = {} block FMAs over {} cores (CCR_S = {:.4}, CCR_D = {:.4})",
            self.total_fmas(),
            self.cores(),
            self.ccr_shared(),
            self.ccr_dist()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        let mut s = SimStats::new(2);
        s.shared_misses = 100;
        s.dist_misses = vec![30, 50];
        s.fmas = vec![400, 400];
        s
    }

    #[test]
    fn md_is_max_over_cores() {
        let s = sample();
        assert_eq!(s.md(), 50);
        assert_eq!(s.md_total(), 80);
        assert!((s.md_avg() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn t_data_combines_both_levels() {
        let s = sample();
        // 100/2 + 50/1
        assert!((s.t_data(2.0, 1.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn ccrs() {
        let s = sample();
        assert!((s.ccr_shared() - 100.0 / 800.0).abs() < 1e-12);
        let expect = 0.5 * (30.0 / 400.0 + 50.0 / 400.0);
        assert!((s.ccr_dist() - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_compute_gives_infinite_ccr() {
        let s = SimStats::new(2);
        assert!(s.ccr_shared().is_infinite());
        assert!(s.ccr_dist().is_infinite());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn t_data_rejects_zero_bandwidth() {
        let _ = sample().t_data(0.0, 1.0);
    }

    #[test]
    fn imbalance_of_balanced_run_is_one() {
        let s = sample();
        assert_eq!(s.compute_imbalance(), 1.0);
    }

    #[test]
    fn display_summarizes_everything() {
        let text = sample().to_string();
        assert!(text.contains("M_S = 100"));
        assert!(text.contains("M_D = 50"));
        assert!(text.contains("800 block FMAs over 2 cores"));
        assert!(text.contains("hit rate"));
    }

    #[test]
    fn hit_rates_are_finite_fractions() {
        let mut s = sample();
        s.shared_hits = 300; // 300 hits vs 100 misses
        s.dist_hits = vec![90, 50];
        assert!((s.shared_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.dist_hit_rate(0) - 0.75).abs() < 1e-12);
        assert!((s.dist_hit_rate(1) - 0.5).abs() < 1e-12);
        // Untouched stats: defined as 0, never NaN.
        let empty = SimStats::new(2);
        assert_eq!(empty.shared_hit_rate(), 0.0);
        assert_eq!(empty.dist_hit_rate(0), 0.0);
    }
}
