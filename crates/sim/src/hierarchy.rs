//! The two-level multicore cache-hierarchy simulator.
//!
//! Mirrors the paper's simulator (§4.1): one shared cache in front of main
//! memory and `p` distributed (private) caches on top of it, all at block
//! granularity. Two data-replacement policies are offered:
//!
//! * **LRU** — "read and write operations are made at the distributed
//!   cache level (top of hierarchy); if a miss occurs, operations are
//!   propagated throughout the hierarchy until a cache hit happens";
//! * **IDEAL** — "the user manually decides which data needs to be
//!   loaded/unloaded in a given cache; I/O operations are not propagated
//!   throughout the hierarchy in case of a cache miss: it is the user['s]
//!   responsibility to guarantee that a given data is present in every
//!   caches below the target cache" — with optional strict checking that
//!   turns that responsibility into hard errors.
//!
//! The *actual* capacities simulated here are deliberately independent of
//! the capacities declared to the algorithms (see
//! [`MachineConfig`]): Fig. 4–6 run algorithms
//! parameterized for `C` on physical caches of size `C` and `2C`, and the
//! LRU-50 setting declares half of the physical size.

use crate::block::{Block, BlockSpace};
use crate::cache::AnyCache;
use crate::error::SimError;
use crate::ideal::{IdealCache, LoadOutcome};
use crate::machine::MachineConfig;
use crate::sink::SimSink;
use crate::stats::SimStats;

/// Data-replacement policy of both cache levels.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// Least-recently-used automatic replacement.
    Lru,
    /// Omniscient, explicitly managed replacement (the theoretical model).
    Ideal,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Physical configuration of a simulation run.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimConfig {
    /// Number of cores `p`.
    pub cores: usize,
    /// Replacement policy of both levels.
    pub policy: Policy,
    /// Actual shared-cache capacity in blocks.
    pub shared_capacity: usize,
    /// Actual per-core distributed-cache capacity in blocks.
    pub dist_capacity: usize,
    /// Enforce inclusivity: evicting a block from the shared cache
    /// invalidates every distributed copy (LRU), or errors (IDEAL with
    /// `check`). The paper's hierarchy is inclusive; disabling this is an
    /// ablation.
    pub inclusive: bool,
    /// In IDEAL mode, verify residency on every access and directive.
    /// Strongly recommended (and on by default): it machine-checks the
    /// paper's capacity arithmetic. No effect under LRU.
    pub check: bool,
    /// LRU-mode associativity: `None` is the paper's fully-associative
    /// model; `Some(ways)` simulates a set-associative cache at both
    /// levels (ablation of the associativity assumption). Ignored by the
    /// IDEAL policy.
    pub associativity: Option<usize>,
}

impl SimConfig {
    /// IDEAL policy at exactly the declared capacities of `machine`.
    pub fn ideal(machine: &MachineConfig) -> SimConfig {
        SimConfig {
            cores: machine.cores,
            policy: Policy::Ideal,
            shared_capacity: machine.shared_capacity,
            dist_capacity: machine.dist_capacity,
            inclusive: true,
            check: true,
            associativity: None,
        }
    }

    /// LRU policy with physical capacities `factor ×` the declared ones
    /// (`factor = 1` for Fig. 4's "LRU (C_S)", `2` for "LRU (2C_S)").
    pub fn lru_scaled(machine: &MachineConfig, factor: usize) -> SimConfig {
        assert!(factor > 0, "capacity factor must be positive");
        SimConfig {
            cores: machine.cores,
            policy: Policy::Lru,
            shared_capacity: machine.shared_capacity * factor,
            dist_capacity: machine.dist_capacity * factor,
            inclusive: true,
            check: false,
            associativity: None,
        }
    }

    /// LRU policy at exactly the declared capacities.
    pub fn lru(machine: &MachineConfig) -> SimConfig {
        SimConfig::lru_scaled(machine, 1)
    }

    /// LRU policy with `ways`-associative caches at both levels.
    pub fn lru_assoc(machine: &MachineConfig, ways: usize) -> SimConfig {
        SimConfig { associativity: Some(ways), ..SimConfig::lru(machine) }
    }
}

enum Caches {
    Lru { shared: AnyCache, dist: Vec<AnyCache> },
    Ideal { shared: IdealCache, dist: Vec<IdealCache> },
}

/// The multicore cache-hierarchy simulator. Implements [`SimSink`]; feed it
/// an algorithm schedule and read the counters back from
/// [`Simulator::stats`].
pub struct Simulator {
    cfg: SimConfig,
    space: BlockSpace,
    caches: Caches,
    stats: SimStats,
}

impl Simulator {
    /// Build a simulator for the problem `A: m×z`, `B: z×n`, `C: m×n`
    /// (block units) under `cfg`.
    pub fn new(cfg: SimConfig, m: u32, n: u32, z: u32) -> Simulator {
        let space = BlockSpace::new(m, n, z);
        Simulator::with_space(cfg, space)
    }

    /// Like [`Simulator::new`] with a pre-built [`BlockSpace`].
    pub fn with_space(cfg: SimConfig, space: BlockSpace) -> Simulator {
        assert!(cfg.cores > 0, "simulator needs at least one core");
        let universe = space.total();
        let caches = match cfg.policy {
            Policy::Lru => Caches::Lru {
                shared: AnyCache::new(cfg.shared_capacity, universe, cfg.associativity),
                dist: (0..cfg.cores)
                    .map(|_| AnyCache::new(cfg.dist_capacity, universe, cfg.associativity))
                    .collect(),
            },
            Policy::Ideal => Caches::Ideal {
                shared: IdealCache::new(cfg.shared_capacity, universe),
                dist: (0..cfg.cores)
                    .map(|_| IdealCache::new(cfg.dist_capacity, universe))
                    .collect(),
            },
        };
        let stats = SimStats::new(cfg.cores);
        Simulator { cfg, space, caches, stats }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Consume the simulator and return its counters.
    pub fn into_stats(self) -> SimStats {
        self.stats
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The block id space (problem dimensions).
    pub fn space(&self) -> &BlockSpace {
        &self.space
    }

    /// Whether `block` is currently resident in the shared cache.
    pub fn shared_contains(&self, block: Block) -> bool {
        let id = self.space.id(block);
        match &self.caches {
            Caches::Lru { shared, .. } => shared.contains(id),
            Caches::Ideal { shared, .. } => shared.contains(id),
        }
    }

    /// Whether `block` is currently resident in core `core`'s cache.
    pub fn dist_contains(&self, core: usize, block: Block) -> bool {
        let id = self.space.id(block);
        match &self.caches {
            Caches::Lru { dist, .. } => dist[core].contains(id),
            Caches::Ideal { dist, .. } => dist[core].contains(id),
        }
    }

    /// Current shared-cache occupancy in blocks.
    pub fn shared_len(&self) -> usize {
        match &self.caches {
            Caches::Lru { shared, .. } => shared.len(),
            Caches::Ideal { shared, .. } => shared.len(),
        }
    }

    /// Current occupancy of core `core`'s cache in blocks.
    pub fn dist_len(&self, core: usize) -> usize {
        match &self.caches {
            Caches::Lru { dist, .. } => dist[core].len(),
            Caches::Ideal { dist, .. } => dist[core].len(),
        }
    }

    /// Verify the inclusivity invariant (every distributed-resident block
    /// is shared-resident). O(universe); for tests.
    pub fn inclusion_holds(&self) -> bool {
        match &self.caches {
            Caches::Lru { shared, dist } => {
                dist.iter().all(|d| d.resident_ids().into_iter().all(|id| shared.contains(id)))
            }
            Caches::Ideal { shared, dist } => {
                dist.iter().all(|d| d.iter().all(|id| shared.contains(id)))
            }
        }
    }

    #[inline]
    fn check_core(&self, core: usize) -> Result<(), SimError> {
        if core >= self.cfg.cores {
            Err(SimError::UnknownCore { core, cores: self.cfg.cores })
        } else {
            Ok(())
        }
    }

    /// LRU access path shared by reads and writes.
    #[inline]
    fn lru_access(&mut self, core: usize, id: u32, is_write: bool) {
        let Caches::Lru { shared, dist } = &mut self.caches else { unreachable!() };
        let d = &mut dist[core];
        let hit = if is_write { d.touch_dirty(id) } else { d.touch(id) };
        if hit {
            self.stats.dist_hits[core] += 1;
            return;
        }
        self.stats.dist_misses[core] += 1;
        if shared.touch(id) {
            self.stats.shared_hits += 1;
        } else {
            self.stats.shared_misses += 1;
            if let Some(ev) = shared.insert(id, false) {
                let mut dirty = ev.dirty;
                if self.cfg.inclusive {
                    // Back-invalidate: inclusive hierarchies drop the
                    // distributed copies of a block leaving the shared cache.
                    for (c, dc) in dist.iter_mut().enumerate() {
                        if let Some(d_dirty) = dc.remove(ev.block) {
                            if d_dirty {
                                self.stats.dist_writebacks[c] += 1;
                                dirty = true;
                            }
                        }
                    }
                }
                if dirty {
                    self.stats.shared_writebacks += 1;
                }
            }
        }
        // Load into the distributed cache (write-allocate).
        if let Some(ev) = dist[core].insert(id, is_write) {
            if ev.dirty {
                self.stats.dist_writebacks[core] += 1;
                // Write the dirty copy back into the shared level; under
                // inclusivity it is still resident there.
                shared.mark_dirty(ev.block);
            }
        }
    }

    /// IDEAL access path: accesses hit by contract; optionally verified.
    #[inline]
    fn ideal_access(&mut self, core: usize, id: u32, is_write: bool) -> Result<(), SimError> {
        let Caches::Ideal { dist, .. } = &mut self.caches else { unreachable!() };
        let d = &mut dist[core];
        if self.cfg.check && !d.contains(id) {
            return Err(SimError::NotResidentDist { core, block: self.space.block(id) });
        }
        if is_write {
            d.mark_dirty(id);
        }
        self.stats.dist_hits[core] += 1;
        Ok(())
    }
}

impl SimSink for Simulator {
    #[inline]
    fn read(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.check_core(core)?;
        let id = self.space.id(block);
        match self.cfg.policy {
            Policy::Lru => {
                self.lru_access(core, id, false);
                Ok(())
            }
            Policy::Ideal => self.ideal_access(core, id, false),
        }
    }

    #[inline]
    fn write(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.check_core(core)?;
        let id = self.space.id(block);
        match self.cfg.policy {
            Policy::Lru => {
                self.lru_access(core, id, true);
                Ok(())
            }
            Policy::Ideal => self.ideal_access(core, id, true),
        }
    }

    #[inline]
    fn fma(&mut self, core: usize, a: Block, b: Block, c: Block) -> Result<(), SimError> {
        self.check_core(core)?;
        if self.cfg.check {
            if let Caches::Ideal { dist, .. } = &self.caches {
                let d = &dist[core];
                for blk in [a, b, c] {
                    if !d.contains(self.space.id(blk)) {
                        return Err(SimError::NotResidentDist { core, block: blk });
                    }
                }
            }
        }
        self.stats.fmas[core] += 1;
        Ok(())
    }

    #[inline]
    fn load_shared(&mut self, block: Block) -> Result<(), SimError> {
        let id = self.space.id(block);
        match &mut self.caches {
            Caches::Lru { .. } => Ok(()), // directive: no effect under LRU
            Caches::Ideal { shared, .. } => match shared.load(id) {
                Ok(LoadOutcome::Miss) => {
                    self.stats.shared_misses += 1;
                    Ok(())
                }
                Ok(LoadOutcome::Hit) => {
                    self.stats.shared_hits += 1;
                    Ok(())
                }
                Err(e) => Err(SimError::SharedCapacityExceeded { capacity: e.capacity, block }),
            },
        }
    }

    #[inline]
    fn evict_shared(&mut self, block: Block) -> Result<(), SimError> {
        let id = self.space.id(block);
        let check = self.cfg.check;
        let inclusive = self.cfg.inclusive;
        match &mut self.caches {
            Caches::Lru { .. } => Ok(()),
            Caches::Ideal { shared, dist } => {
                if check && inclusive {
                    for (c, dc) in dist.iter().enumerate() {
                        if dc.contains(id) {
                            return Err(SimError::InclusionViolated { block, core: c });
                        }
                    }
                }
                match shared.evict(id) {
                    Some(dirty) => {
                        if dirty {
                            self.stats.shared_writebacks += 1;
                        }
                        Ok(())
                    }
                    None if check => Err(SimError::EvictAbsent { block, core: None }),
                    None => Ok(()),
                }
            }
        }
    }

    #[inline]
    fn load_dist(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.check_core(core)?;
        let id = self.space.id(block);
        let check = self.cfg.check;
        match &mut self.caches {
            Caches::Lru { .. } => Ok(()),
            Caches::Ideal { shared, dist } => {
                if check && !shared.contains(id) {
                    return Err(SimError::NotResidentShared { block });
                }
                match dist[core].load(id) {
                    Ok(LoadOutcome::Miss) => {
                        self.stats.dist_misses[core] += 1;
                        Ok(())
                    }
                    Ok(LoadOutcome::Hit) => {
                        self.stats.dist_hits[core] += 1;
                        Ok(())
                    }
                    Err(e) => {
                        Err(SimError::DistCapacityExceeded { core, capacity: e.capacity, block })
                    }
                }
            }
        }
    }

    #[inline]
    fn evict_dist(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.check_core(core)?;
        let id = self.space.id(block);
        let check = self.cfg.check;
        match &mut self.caches {
            Caches::Lru { .. } => Ok(()),
            Caches::Ideal { shared, dist } => match dist[core].evict(id) {
                Some(dirty) => {
                    if dirty {
                        self.stats.dist_writebacks[core] += 1;
                        // Write back into the shared copy (inclusive hierarchy).
                        shared.mark_dirty(id);
                    }
                    Ok(())
                }
                None if check => Err(SimError::EvictAbsent { block, core: Some(core) }),
                None => Ok(()),
            },
        }
    }

    #[inline]
    fn barrier(&mut self) -> Result<(), SimError> {
        self.stats.barriers += 1;
        Ok(())
    }

    fn manages_residency(&self) -> bool {
        matches!(self.cfg.policy, Policy::Ideal)
    }
}

// Small display impl kept separate to avoid macro noise above.
impl Policy {
    /// Stable lowercase label (`"lru"` / `"ideal"`).
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Lru => "lru",
            Policy::Ideal => "ideal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru_sim(cs: usize, cd: usize, cores: usize) -> Simulator {
        let cfg = SimConfig {
            cores,
            policy: Policy::Lru,
            shared_capacity: cs,
            dist_capacity: cd,
            inclusive: true,
            check: false,
            associativity: None,
        };
        Simulator::new(cfg, 4, 4, 4)
    }

    fn ideal_sim(cs: usize, cd: usize, cores: usize) -> Simulator {
        let cfg = SimConfig {
            cores,
            policy: Policy::Ideal,
            shared_capacity: cs,
            dist_capacity: cd,
            inclusive: true,
            check: true,
            associativity: None,
        };
        Simulator::new(cfg, 4, 4, 4)
    }

    #[test]
    fn lru_cold_miss_hits_both_levels() {
        let mut s = lru_sim(8, 2, 2);
        s.read(0, Block::a(0, 0)).unwrap();
        assert_eq!(s.stats().shared_misses, 1);
        assert_eq!(s.stats().dist_misses[0], 1);
        // Same core again: full hit.
        s.read(0, Block::a(0, 0)).unwrap();
        assert_eq!(s.stats().dist_hits[0], 1);
        assert_eq!(s.stats().shared_misses, 1);
        // Other core: shared hit, distributed miss.
        s.read(1, Block::a(0, 0)).unwrap();
        assert_eq!(s.stats().shared_hits, 1);
        assert_eq!(s.stats().dist_misses[1], 1);
    }

    #[test]
    fn lru_shared_eviction_back_invalidates() {
        let mut s = lru_sim(2, 2, 1);
        s.read(0, Block::a(0, 0)).unwrap();
        s.read(0, Block::a(0, 1)).unwrap();
        // Third distinct block evicts A[0,0] from shared; the distributed
        // copy must disappear with it (inclusive hierarchy).
        s.read(0, Block::a(0, 2)).unwrap();
        assert!(!s.shared_contains(Block::a(0, 0)));
        assert!(!s.dist_contains(0, Block::a(0, 0)));
        assert!(s.inclusion_holds());
        // Re-reading it is a miss at both levels again.
        s.read(0, Block::a(0, 0)).unwrap();
        assert_eq!(s.stats().shared_misses, 4);
    }

    #[test]
    fn lru_dirty_eviction_counts_writeback() {
        let mut s = lru_sim(16, 1, 1);
        s.write(0, Block::c(0, 0)).unwrap();
        // Distributed cache holds one block: the next access evicts the
        // dirty C block back to shared.
        s.read(0, Block::a(0, 0)).unwrap();
        assert_eq!(s.stats().dist_writebacks[0], 1);
        // Now push C[0,0] out of shared: its dirty state must surface as a
        // shared writeback. Capacity 16 needs 15 more distinct blocks.
        for k in 0..4 {
            for i in 0..4 {
                s.read(0, Block::b(k, i)).unwrap();
            }
        }
        assert!(!s.shared_contains(Block::c(0, 0)));
        assert_eq!(s.stats().shared_writebacks, 1);
    }

    #[test]
    fn non_inclusive_mode_keeps_distributed_copies() {
        let cfg = SimConfig {
            cores: 1,
            policy: Policy::Lru,
            shared_capacity: 2,
            // Larger than the shared level so the private copy can only
            // disappear through back-invalidation, which is off here.
            dist_capacity: 3,
            inclusive: false,
            check: false,
            associativity: None,
        };
        let mut s = Simulator::new(cfg, 4, 4, 4);
        s.read(0, Block::a(0, 0)).unwrap();
        s.read(0, Block::a(0, 1)).unwrap();
        s.read(0, Block::a(0, 2)).unwrap(); // evicts A[0,0] from shared only
        assert!(!s.shared_contains(Block::a(0, 0)));
        assert!(s.dist_contains(0, Block::a(0, 0)));
    }

    #[test]
    fn ideal_requires_explicit_management() {
        let mut s = ideal_sim(8, 2, 1);
        // Access before load: checked error.
        assert_eq!(
            s.read(0, Block::a(0, 0)),
            Err(SimError::NotResidentDist { core: 0, block: Block::a(0, 0) })
        );
        // Distributed load requires the shared copy first.
        assert_eq!(
            s.load_dist(0, Block::a(0, 0)),
            Err(SimError::NotResidentShared { block: Block::a(0, 0) })
        );
        s.load_shared(Block::a(0, 0)).unwrap();
        s.load_dist(0, Block::a(0, 0)).unwrap();
        s.read(0, Block::a(0, 0)).unwrap();
        assert_eq!(s.stats().shared_misses, 1);
        assert_eq!(s.stats().dist_misses[0], 1);
        assert_eq!(s.stats().dist_hits[0], 1);
    }

    #[test]
    fn ideal_load_is_idempotent_and_counts_hits() {
        let mut s = ideal_sim(8, 2, 1);
        s.load_shared(Block::b(1, 1)).unwrap();
        s.load_shared(Block::b(1, 1)).unwrap();
        assert_eq!(s.stats().shared_misses, 1);
        assert_eq!(s.stats().shared_hits, 1);
    }

    #[test]
    fn ideal_capacity_is_enforced() {
        let mut s = ideal_sim(2, 1, 1);
        s.load_shared(Block::a(0, 0)).unwrap();
        s.load_shared(Block::a(0, 1)).unwrap();
        assert!(matches!(
            s.load_shared(Block::a(0, 2)),
            Err(SimError::SharedCapacityExceeded { capacity: 2, .. })
        ));
        s.load_dist(0, Block::a(0, 0)).unwrap();
        assert!(matches!(
            s.load_dist(0, Block::a(0, 1)),
            Err(SimError::DistCapacityExceeded { core: 0, capacity: 1, .. })
        ));
    }

    #[test]
    fn ideal_inclusion_violation_detected() {
        let mut s = ideal_sim(4, 2, 1);
        s.load_shared(Block::c(0, 0)).unwrap();
        s.load_dist(0, Block::c(0, 0)).unwrap();
        assert_eq!(
            s.evict_shared(Block::c(0, 0)),
            Err(SimError::InclusionViolated { block: Block::c(0, 0), core: 0 })
        );
        s.evict_dist(0, Block::c(0, 0)).unwrap();
        s.evict_shared(Block::c(0, 0)).unwrap();
    }

    #[test]
    fn ideal_dirty_propagation() {
        let mut s = ideal_sim(4, 2, 1);
        s.load_shared(Block::c(0, 0)).unwrap();
        s.load_dist(0, Block::c(0, 0)).unwrap();
        s.write(0, Block::c(0, 0)).unwrap();
        s.evict_dist(0, Block::c(0, 0)).unwrap();
        assert_eq!(s.stats().dist_writebacks[0], 1);
        s.evict_shared(Block::c(0, 0)).unwrap();
        assert_eq!(s.stats().shared_writebacks, 1);
    }

    #[test]
    fn ideal_fma_checks_operands() {
        let mut s = ideal_sim(8, 3, 1);
        let (a, b, c) = (Block::a(0, 0), Block::b(0, 0), Block::c(0, 0));
        assert!(s.fma(0, a, b, c).is_err());
        for blk in [a, b, c] {
            s.load_shared(blk).unwrap();
            s.load_dist(0, blk).unwrap();
        }
        s.fma(0, a, b, c).unwrap();
        assert_eq!(s.stats().fmas[0], 1);
    }

    #[test]
    fn unknown_core_rejected() {
        let mut s = lru_sim(4, 2, 2);
        assert_eq!(s.read(5, Block::a(0, 0)), Err(SimError::UnknownCore { core: 5, cores: 2 }));
    }

    #[test]
    fn directives_are_noops_under_lru() {
        let mut s = lru_sim(4, 2, 1);
        s.load_shared(Block::a(0, 0)).unwrap();
        s.load_dist(0, Block::a(0, 0)).unwrap();
        s.evict_shared(Block::a(3, 3)).unwrap();
        assert_eq!(s.stats().shared_misses, 0);
        assert!(!s.shared_contains(Block::a(0, 0)));
        assert!(!s.manages_residency());
    }

    #[test]
    fn sim_config_constructors() {
        let m = MachineConfig::quad_q32();
        let c = SimConfig::ideal(&m);
        assert_eq!(c.shared_capacity, 977);
        assert!(matches!(c.policy, Policy::Ideal));
        let c = SimConfig::lru_scaled(&m, 2);
        assert_eq!(c.shared_capacity, 1954);
        assert_eq!(c.dist_capacity, 42);
        assert!(matches!(c.policy, Policy::Lru));
    }
}
