//! Fully-associative LRU cache over dense block ids.
//!
//! The paper's simulator implements "a classical LRU replacement policy"
//! as the realistic counterpart of the ideal-cache model (§4.1). This
//! implementation is a fully-associative cache — the model's caches "can
//! store any data from main memory" (§2.1) — with:
//!
//! * O(1) probe / insert / remove via a flat `index` table (dense block id
//!   → slot) and an intrusive doubly-linked recency list over a slab;
//! * no allocation after construction (the slab is pre-sized to capacity);
//! * per-entry dirty bits so write-backs can be accounted separately from
//!   misses, as the paper's miss formulas count loads only.

/// A block evicted by [`LruCache::insert`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// Dense id of the evicted block.
    pub block: u32,
    /// Whether the evicted copy had been written to.
    pub dirty: bool,
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Slot {
    block: u32,
    prev: u32,
    next: u32,
    dirty: bool,
}

/// Fully-associative LRU cache of `capacity` blocks over ids `0..universe`.
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    /// `index[id] == NIL` means absent, otherwise the slot index.
    index: Vec<u32>,
    slots: Vec<Slot>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot.
    tail: u32,
    /// Head of the free-slot list (threaded through `next`).
    free: u32,
    len: usize,
}

impl LruCache {
    /// Create a cache holding up to `capacity` of the ids `0..universe`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`: the hierarchy logic requires every level
    /// to hold at least one block.
    pub fn new(capacity: usize, universe: usize) -> LruCache {
        assert!(capacity > 0, "LRU cache capacity must be positive");
        let mut slots = Vec::with_capacity(capacity);
        for i in 0..capacity {
            slots.push(Slot {
                block: NIL,
                prev: NIL,
                next: if i + 1 < capacity { (i + 1) as u32 } else { NIL },
                dirty: false,
            });
        }
        LruCache {
            capacity,
            index: vec![NIL; universe],
            slots,
            head: NIL,
            tail: NIL,
            free: if capacity > 0 { 0 } else { NIL },
            len: 0,
        }
    }

    /// Number of resident blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in blocks.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `id` is resident (does not affect recency).
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.index[id as usize] != NIL
    }

    /// Whether `id` is resident and dirty.
    #[inline]
    pub fn is_dirty(&self, id: u32) -> bool {
        let s = self.index[id as usize];
        s != NIL && self.slots[s as usize].dirty
    }

    /// Probe for `id`; on a hit move it to the most-recently-used position.
    ///
    /// Returns `true` on hit.
    #[inline]
    pub fn touch(&mut self, id: u32) -> bool {
        let slot = self.index[id as usize];
        if slot == NIL {
            return false;
        }
        self.move_to_front(slot);
        true
    }

    /// Like [`LruCache::touch`], additionally marking the entry dirty on hit.
    #[inline]
    pub fn touch_dirty(&mut self, id: u32) -> bool {
        let slot = self.index[id as usize];
        if slot == NIL {
            return false;
        }
        self.slots[slot as usize].dirty = true;
        self.move_to_front(slot);
        true
    }

    /// Mark `id` dirty without changing recency. Returns `false` if absent.
    #[inline]
    pub fn mark_dirty(&mut self, id: u32) -> bool {
        let slot = self.index[id as usize];
        if slot == NIL {
            return false;
        }
        self.slots[slot as usize].dirty = true;
        true
    }

    /// Insert `id` at the most-recently-used position.
    ///
    /// The caller must have established that `id` is absent (a real cache
    /// inserts only on a miss); this is checked with `debug_assert!`.
    /// If the cache is full the least-recently-used entry is evicted and
    /// returned.
    #[inline]
    pub fn insert(&mut self, id: u32, dirty: bool) -> Option<Eviction> {
        debug_assert!(!self.contains(id), "inserting already-resident block {id}");
        let evicted = if self.len == self.capacity {
            let victim = self.tail;
            let slot = &mut self.slots[victim as usize];
            let ev = Eviction { block: slot.block, dirty: slot.dirty };
            self.index[ev.block as usize] = NIL;
            self.unlink(victim);
            self.push_free(victim);
            self.len -= 1;
            Some(ev)
        } else {
            None
        };
        let slot = self.pop_free();
        {
            let s = &mut self.slots[slot as usize];
            s.block = id;
            s.dirty = dirty;
        }
        self.link_front(slot);
        self.index[id as usize] = slot;
        self.len += 1;
        evicted
    }

    /// Remove `id` if resident, returning whether its copy was dirty.
    #[inline]
    pub fn remove(&mut self, id: u32) -> Option<bool> {
        let slot = self.index[id as usize];
        if slot == NIL {
            return None;
        }
        let dirty = self.slots[slot as usize].dirty;
        self.index[id as usize] = NIL;
        self.unlink(slot);
        self.push_free(slot);
        self.len -= 1;
        Some(dirty)
    }

    /// Resident ids from most- to least-recently used (diagnostics/tests).
    pub fn iter_mru(&self) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let s = &self.slots[cur as usize];
            cur = s.next;
            Some(s.block)
        })
    }

    /// Drop every entry (recency and dirty state included).
    pub fn clear(&mut self) {
        let ids: Vec<u32> = self.iter_mru().collect();
        for id in ids {
            self.remove(id);
        }
    }

    #[inline]
    fn move_to_front(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.link_front(slot);
    }

    #[inline]
    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    #[inline]
    fn link_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
    }

    #[inline]
    fn push_free(&mut self, slot: u32) {
        self.slots[slot as usize].next = self.free;
        self.free = slot;
    }

    #[inline]
    fn pop_free(&mut self) -> u32 {
        let slot = self.free;
        debug_assert!(
            slot != NIL,
            "free list exhausted with len {} < capacity {}",
            self.len,
            self.capacity
        );
        self.free = self.slots[slot as usize].next;
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2, 10);
        assert_eq!(c.insert(1, false), None);
        assert_eq!(c.insert(2, false), None);
        // Touch 1 so 2 becomes LRU.
        assert!(c.touch(1));
        let ev = c.insert(3, false).expect("full cache must evict");
        assert_eq!(ev, Eviction { block: 2, dirty: false });
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn dirty_bit_travels_with_eviction() {
        let mut c = LruCache::new(1, 10);
        c.insert(5, false);
        assert!(c.touch_dirty(5));
        let ev = c.insert(6, false).unwrap();
        assert!(ev.dirty && ev.block == 5);
        // A clean entry evicts clean.
        let ev = c.insert(7, false).unwrap();
        assert!(!ev.dirty && ev.block == 6);
    }

    #[test]
    fn remove_returns_dirty_state() {
        let mut c = LruCache::new(3, 10);
        c.insert(1, true);
        c.insert(2, false);
        assert_eq!(c.remove(1), Some(true));
        assert_eq!(c.remove(2), Some(false));
        assert_eq!(c.remove(2), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn mru_order_is_maintained() {
        let mut c = LruCache::new(3, 10);
        c.insert(1, false);
        c.insert(2, false);
        c.insert(3, false);
        c.touch(1);
        let order: Vec<u32> = c.iter_mru().collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut c = LruCache::new(4, 1000);
        for round in 0..10u32 {
            for i in 0..100u32 {
                let id = round * 100 + i;
                if !c.touch(id) {
                    c.insert(id, false);
                }
            }
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = LruCache::new(3, 10);
        c.insert(1, true);
        c.insert(2, false);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(1));
        // Reusable after clear.
        assert_eq!(c.insert(7, false), None);
        assert!(c.contains(7));
    }

    #[test]
    fn mark_dirty_does_not_change_recency() {
        let mut c = LruCache::new(2, 10);
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.mark_dirty(1));
        // 1 is still LRU (insertion order 1 then 2; mark_dirty must not promote).
        let ev = c.insert(3, false).unwrap();
        assert_eq!(ev, Eviction { block: 1, dirty: true });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::new(0, 10);
    }
}
