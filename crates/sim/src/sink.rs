//! The streaming event interface between algorithms and consumers.
//!
//! Algorithms never materialize their access traces (an order-600 run is
//! on the order of 10⁹ events); instead they stream events into a
//! [`SimSink`]. Three consumers ship with the workspace:
//!
//! * [`Simulator`](crate::Simulator) — counts cache misses under the LRU
//!   or IDEAL policy (this crate);
//! * [`CountingSink`] — counts raw events without any cache model (cheap
//!   sanity checks and throughput benchmarks);
//! * [`TraceSink`] — records the full event list (tiny unit tests only).
//!
//! The `mmc-exec` crate adds a fourth consumer that *performs* the block
//! arithmetic, so the very same schedule code both predicts misses and
//! computes real products.

use crate::block::Block;
use crate::error::SimError;

/// Receiver of a matrix-product schedule's events.
///
/// `read`/`write`/`fma` model what the cores *do*; `load_*`/`evict_*` are
/// residency-management directives that only have meaning under the IDEAL
/// policy (§4.1: "the user manually decides which data needs to be
/// loaded/unloaded in a given cache"). Sinks that do not manage residency
/// (LRU simulation, counting, execution) treat the directives as no-ops and
/// report [`SimSink::manages_residency`] `== false`, which lets schedules
/// skip emitting per-element directives on their hot paths.
pub trait SimSink {
    /// Core `core` reads `block` (through its distributed cache).
    fn read(&mut self, core: usize, block: Block) -> Result<(), SimError>;

    /// Core `core` writes `block` (write-allocate, through its cache).
    fn write(&mut self, core: usize, block: Block) -> Result<(), SimError>;

    /// Core `core` performs the block multiply-accumulate `c += a × b`
    /// (one `q×q×q` GEMM kernel invocation).
    fn fma(&mut self, core: usize, a: Block, b: Block, c: Block) -> Result<(), SimError>;

    /// IDEAL-mode directive: ensure `block` is resident in the shared cache.
    fn load_shared(&mut self, block: Block) -> Result<(), SimError>;

    /// IDEAL-mode directive: drop `block` from the shared cache.
    fn evict_shared(&mut self, block: Block) -> Result<(), SimError>;

    /// IDEAL-mode directive: ensure `block` is resident in core `core`'s
    /// distributed cache (the block must already be in the shared cache —
    /// the hierarchy is inclusive).
    fn load_dist(&mut self, core: usize, block: Block) -> Result<(), SimError>;

    /// IDEAL-mode directive: drop `block` from core `core`'s cache,
    /// propagating its dirty state to the shared copy.
    fn evict_dist(&mut self, core: usize, block: Block) -> Result<(), SimError>;

    /// All cores synchronize. Purely bookkeeping — the simulator is not a
    /// timing model — but schedules emit it where the paper's pseudo-code
    /// has implicit lockstep, and executors may use it.
    fn barrier(&mut self) -> Result<(), SimError>;

    /// Whether residency directives have any effect on this sink. Sinks
    /// returning `false` allow schedules to skip emitting per-element
    /// `load_*`/`evict_*` calls in their innermost loops.
    fn manages_residency(&self) -> bool {
        false
    }
}

/// A sink that merely counts events. No cache model, no residency checks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of `read` events.
    pub reads: u64,
    /// Number of `write` events.
    pub writes: u64,
    /// Number of `fma` events.
    pub fmas: u64,
    /// Number of residency directives (all four kinds).
    pub directives: u64,
    /// Number of barriers.
    pub barriers: u64,
}

impl CountingSink {
    /// A zeroed counter.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Total events of every kind.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.fmas + self.directives + self.barriers
    }
}

impl SimSink for CountingSink {
    fn read(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        self.reads += 1;
        Ok(())
    }
    fn write(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        self.writes += 1;
        Ok(())
    }
    fn fma(&mut self, _core: usize, _a: Block, _b: Block, _c: Block) -> Result<(), SimError> {
        self.fmas += 1;
        Ok(())
    }
    fn load_shared(&mut self, _block: Block) -> Result<(), SimError> {
        self.directives += 1;
        Ok(())
    }
    fn evict_shared(&mut self, _block: Block) -> Result<(), SimError> {
        self.directives += 1;
        Ok(())
    }
    fn load_dist(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        self.directives += 1;
        Ok(())
    }
    fn evict_dist(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        self.directives += 1;
        Ok(())
    }
    fn barrier(&mut self) -> Result<(), SimError> {
        self.barriers += 1;
        Ok(())
    }
}

/// One recorded schedule event (see [`TraceSink`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// `read(core, block)`.
    Read(usize, Block),
    /// `write(core, block)`.
    Write(usize, Block),
    /// `fma(core, a, b, c)`.
    Fma(usize, Block, Block, Block),
    /// `load_shared(block)`.
    LoadShared(Block),
    /// `evict_shared(block)`.
    EvictShared(Block),
    /// `load_dist(core, block)`.
    LoadDist(usize, Block),
    /// `evict_dist(core, block)`.
    EvictDist(usize, Block),
    /// `barrier()`.
    Barrier,
}

/// A sink recording every event verbatim. Only for small unit tests:
/// memory grows linearly with the trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Whether to report `manages_residency() == true` (records
    /// directives emitted on IDEAL-style paths).
    pub residency: bool,
}

impl TraceSink {
    /// An empty trace recorder that reports `manages_residency() == false`.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// An empty trace recorder that reports `manages_residency() == true`,
    /// so schedules emit their full IDEAL-mode directive stream.
    pub fn with_residency() -> TraceSink {
        TraceSink { events: Vec::new(), residency: true }
    }
}

impl SimSink for TraceSink {
    fn read(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.events.push(TraceEvent::Read(core, block));
        Ok(())
    }
    fn write(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.events.push(TraceEvent::Write(core, block));
        Ok(())
    }
    fn fma(&mut self, core: usize, a: Block, b: Block, c: Block) -> Result<(), SimError> {
        self.events.push(TraceEvent::Fma(core, a, b, c));
        Ok(())
    }
    fn load_shared(&mut self, block: Block) -> Result<(), SimError> {
        self.events.push(TraceEvent::LoadShared(block));
        Ok(())
    }
    fn evict_shared(&mut self, block: Block) -> Result<(), SimError> {
        self.events.push(TraceEvent::EvictShared(block));
        Ok(())
    }
    fn load_dist(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.events.push(TraceEvent::LoadDist(core, block));
        Ok(())
    }
    fn evict_dist(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.events.push(TraceEvent::EvictDist(core, block));
        Ok(())
    }
    fn barrier(&mut self) -> Result<(), SimError> {
        self.events.push(TraceEvent::Barrier);
        Ok(())
    }
    fn manages_residency(&self) -> bool {
        self.residency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts_each_kind() {
        let mut s = CountingSink::new();
        s.read(0, Block::a(0, 0)).unwrap();
        s.write(0, Block::c(0, 0)).unwrap();
        s.fma(0, Block::a(0, 0), Block::b(0, 0), Block::c(0, 0)).unwrap();
        s.load_shared(Block::a(0, 0)).unwrap();
        s.evict_dist(1, Block::b(0, 0)).unwrap();
        s.barrier().unwrap();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.fmas, 1);
        assert_eq!(s.directives, 2);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.total(), 6);
        assert!(!s.manages_residency());
    }

    #[test]
    fn trace_sink_preserves_order() {
        let mut s = TraceSink::with_residency();
        s.load_shared(Block::c(1, 2)).unwrap();
        s.read(3, Block::c(1, 2)).unwrap();
        s.barrier().unwrap();
        assert_eq!(
            s.events,
            vec![
                TraceEvent::LoadShared(Block::c(1, 2)),
                TraceEvent::Read(3, Block::c(1, 2)),
                TraceEvent::Barrier,
            ]
        );
        assert!(s.manages_residency());
    }
}
