//! Machine model: core count, cache capacities (in blocks) and bandwidths.
//!
//! A [`MachineConfig`] carries the capacities an algorithm is *told about*
//! (its tile parameters are derived from these). The simulator's *actual*
//! cache sizes are configured separately (see
//! [`SimConfig`](crate::SimConfig)); the paper's LRU-50 setting declares
//! half of the physical capacity to the algorithm and lets the LRU policy
//! use the other half "as kind of an automatic prefetching buffer" (§4.2).
//!
//! The presets encode the paper's simulated "realistic quad-core" (§4.1):
//! 8 MB shared cache, four 256 KB private caches, with block sizes
//! q ∈ {32, 64, 80} and the optimistic (two-thirds of the private cache
//! for data) or pessimistic (one-half) assumptions, giving exactly the
//! capacities the paper lists: `C_S ∈ {977, 245, 157}`,
//! `C_D ∈ {21, 16, 6, 4, 3}`.

use serde::{Deserialize, Serialize};

/// Description of the multicore target (Fig. 1 of the paper).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores `p`.
    pub cores: usize,
    /// Shared-cache capacity `C_S`, in `q×q` blocks, as declared to algorithms.
    pub shared_capacity: usize,
    /// Per-core distributed-cache capacity `C_D`, in blocks.
    pub dist_capacity: usize,
    /// Memory→shared-cache bandwidth `σ_S` (blocks per time unit).
    pub sigma_s: f64,
    /// Shared→distributed-cache bandwidth `σ_D` (blocks per time unit).
    pub sigma_d: f64,
    /// Block side `q` (matrix coefficients); informational, used by the
    /// real executor and for element-count conversions.
    pub block_size: usize,
}

impl MachineConfig {
    /// A machine with unit bandwidths; the common constructor for studies
    /// that only look at miss counts.
    pub fn new(
        cores: usize,
        shared_capacity: usize,
        dist_capacity: usize,
        block_size: usize,
    ) -> MachineConfig {
        assert!(cores > 0, "machine needs at least one core");
        assert!(shared_capacity > 0 && dist_capacity > 0, "cache capacities must be positive");
        MachineConfig {
            cores,
            shared_capacity,
            dist_capacity,
            sigma_s: 1.0,
            sigma_d: 1.0,
            block_size,
        }
    }

    /// Derive block capacities from byte sizes, the way §4.1 derives its
    /// presets: a `q×q` block of `f64` takes `8q²` bytes; `data_fraction`
    /// of each private cache is usable for data (the paper uses ⅔, or ½
    /// in the pessimistic variant); and each capacity is the **ceiling**
    /// of the byte ratio (the paper's 8 MB / 8·32² = 976.56 → `C_S =
    /// 977`; 250 kB·⅔ / 8·32² = 20.83 → `C_D = 21`). Cache sizes are SI
    /// bytes — `MachineConfig::from_bytes(4, 8_000_000, 256_000, q, frac)`
    /// reproduces every §4.1 preset exactly for `q ∈ {32, 64, 80}` and
    /// `frac ∈ {⅔, ½}`.
    ///
    /// Returns `None` when either cache cannot hold even one full block
    /// (a raw ratio below 1 — the ceiling would otherwise fabricate a
    /// capacity of one).
    pub fn from_bytes(
        cores: usize,
        shared_bytes: usize,
        dist_bytes: usize,
        q: usize,
        data_fraction: f64,
    ) -> Option<MachineConfig> {
        assert!((0.0..=1.0).contains(&data_fraction), "data fraction in [0, 1]");
        let block_bytes = q * q * std::mem::size_of::<f64>();
        let cs_ratio = shared_bytes as f64 / block_bytes as f64;
        let cd_ratio = dist_bytes as f64 * data_fraction / block_bytes as f64;
        if cs_ratio < 1.0 || cd_ratio < 1.0 {
            return None;
        }
        Some(MachineConfig::new(cores, cs_ratio.ceil() as usize, cd_ratio.ceil() as usize, q))
    }

    /// Paper preset: q = 32, data occupy two thirds of each private cache
    /// (`C_S = 977`, `C_D = 21`).
    pub fn quad_q32() -> MachineConfig {
        MachineConfig::new(4, 977, 21, 32)
    }

    /// Paper preset: q = 32, pessimistic one-half data assumption
    /// (`C_S = 977`, `C_D = 16`).
    pub fn quad_q32_pessimistic() -> MachineConfig {
        MachineConfig::new(4, 977, 16, 32)
    }

    /// Paper preset: q = 64 (`C_S = 245`, `C_D = 6`).
    pub fn quad_q64() -> MachineConfig {
        MachineConfig::new(4, 245, 6, 64)
    }

    /// Paper preset: q = 64, pessimistic (`C_S = 245`, `C_D = 4`).
    pub fn quad_q64_pessimistic() -> MachineConfig {
        MachineConfig::new(4, 245, 4, 64)
    }

    /// Paper preset: q = 80 (`C_S = 157`, `C_D = 4`).
    pub fn quad_q80() -> MachineConfig {
        MachineConfig::new(4, 157, 4, 80)
    }

    /// Paper preset: q = 80, pessimistic (`C_S = 157`, `C_D = 3`).
    pub fn quad_q80_pessimistic() -> MachineConfig {
        MachineConfig::new(4, 157, 3, 80)
    }

    /// Every paper preset, with a short label, in the order the evaluation
    /// section uses them.
    pub fn paper_presets() -> Vec<(&'static str, MachineConfig)> {
        vec![
            ("q32_cd21", MachineConfig::quad_q32()),
            ("q32_cd16", MachineConfig::quad_q32_pessimistic()),
            ("q64_cd6", MachineConfig::quad_q64()),
            ("q64_cd4", MachineConfig::quad_q64_pessimistic()),
            ("q80_cd4", MachineConfig::quad_q80()),
            ("q80_cd3", MachineConfig::quad_q80_pessimistic()),
        ]
    }

    /// Replace both bandwidths.
    pub fn with_bandwidths(mut self, sigma_s: f64, sigma_d: f64) -> MachineConfig {
        assert!(sigma_s > 0.0 && sigma_d > 0.0, "bandwidths must be positive");
        self.sigma_s = sigma_s;
        self.sigma_d = sigma_d;
        self
    }

    /// Bandwidths parameterized by the paper's Fig. 12 ratio
    /// `r = σ_S / (σ_S + σ_D)` with `σ_S + σ_D = 1`: `σ_S = r`,
    /// `σ_D = 1 − r`. `r` must lie strictly inside `(0, 1)`.
    pub fn with_bandwidth_ratio(self, r: f64) -> MachineConfig {
        assert!(r > 0.0 && r < 1.0, "bandwidth ratio must be in (0, 1), got {r}");
        self.with_bandwidths(r, 1.0 - r)
    }

    /// The LRU-50 declaration: a machine whose declared capacities are half
    /// of this one's (the physical simulator still runs at full size).
    pub fn halved(&self) -> MachineConfig {
        MachineConfig {
            shared_capacity: (self.shared_capacity / 2).max(1),
            dist_capacity: (self.dist_capacity / 2).max(1),
            ..self.clone()
        }
    }

    /// Whether the inclusivity precondition `C_S ≥ p·C_D` (§2.1) holds.
    pub fn inclusivity_holds(&self) -> bool {
        self.shared_capacity >= self.cores * self.dist_capacity
    }

    /// Convert a block count into matrix coefficients (`blocks × q²`).
    pub fn blocks_to_elements(&self, blocks: u64) -> u64 {
        blocks * (self.block_size as u64) * (self.block_size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_section_4_1() {
        assert_eq!(MachineConfig::quad_q32().shared_capacity, 977);
        assert_eq!(MachineConfig::quad_q32().dist_capacity, 21);
        assert_eq!(MachineConfig::quad_q32_pessimistic().dist_capacity, 16);
        assert_eq!(MachineConfig::quad_q64().shared_capacity, 245);
        assert_eq!(MachineConfig::quad_q64().dist_capacity, 6);
        assert_eq!(MachineConfig::quad_q64_pessimistic().dist_capacity, 4);
        assert_eq!(MachineConfig::quad_q80().shared_capacity, 157);
        assert_eq!(MachineConfig::quad_q80().dist_capacity, 4);
        assert_eq!(MachineConfig::quad_q80_pessimistic().dist_capacity, 3);
        for (_, m) in MachineConfig::paper_presets() {
            assert_eq!(m.cores, 4);
            assert!(m.inclusivity_holds(), "paper presets satisfy C_S >= p*C_D");
        }
    }

    #[test]
    fn from_bytes_reproduces_paper_derivations() {
        // SI byte sizes (8 MB shared, 256 kB private) with ceiling
        // division reproduce §4.1's capacities for every block size.
        let m = MachineConfig::from_bytes(4, 8_000_000, 256_000, 32, 2.0 / 3.0).unwrap();
        assert_eq!((m.shared_capacity, m.dist_capacity), (977, 21));
        let m = MachineConfig::from_bytes(4, 8_000_000, 256_000, 64, 2.0 / 3.0).unwrap();
        assert_eq!((m.shared_capacity, m.dist_capacity), (245, 6));
        let m = MachineConfig::from_bytes(4, 8_000_000, 256_000, 80, 2.0 / 3.0).unwrap();
        assert_eq!((m.shared_capacity, m.dist_capacity), (157, 4));
        // Blocks too large for the private cache → None.
        assert!(MachineConfig::from_bytes(4, 8 << 20, 256 << 10, 256, 0.5).is_none());
        // A shared cache smaller than one block is rejected too, not
        // rounded up to capacity 1.
        assert!(MachineConfig::from_bytes(4, 8000, 256_000, 32, 0.5).is_none());
    }

    #[test]
    fn from_bytes_reconstructs_every_preset() {
        // The six hard-coded presets are exactly the from_bytes derivation
        // of the paper's 8 MB / 256 kB quad-core at q ∈ {32, 64, 80} under
        // the optimistic (⅔) and pessimistic (½) data fractions.
        let presets: [(MachineConfig, usize, f64); 6] = [
            (MachineConfig::quad_q32(), 32, 2.0 / 3.0),
            (MachineConfig::quad_q32_pessimistic(), 32, 0.5),
            (MachineConfig::quad_q64(), 64, 2.0 / 3.0),
            (MachineConfig::quad_q64_pessimistic(), 64, 0.5),
            (MachineConfig::quad_q80(), 80, 2.0 / 3.0),
            (MachineConfig::quad_q80_pessimistic(), 80, 0.5),
        ];
        for (preset, q, frac) in presets {
            let derived = MachineConfig::from_bytes(4, 8_000_000, 256_000, q, frac).unwrap();
            assert_eq!(derived, preset, "q = {q}, data fraction = {frac}");
        }
    }

    #[test]
    fn halved_declares_half() {
        let m = MachineConfig::quad_q32().halved();
        assert_eq!(m.shared_capacity, 488);
        assert_eq!(m.dist_capacity, 10);
        // Never below one block.
        let tiny = MachineConfig::new(1, 1, 1, 8).halved();
        assert_eq!(tiny.shared_capacity, 1);
        assert_eq!(tiny.dist_capacity, 1);
    }

    #[test]
    fn bandwidth_ratio_splits_unit_budget() {
        let m = MachineConfig::quad_q32().with_bandwidth_ratio(0.25);
        assert!((m.sigma_s - 0.25).abs() < 1e-12);
        assert!((m.sigma_d - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bandwidth ratio")]
    fn degenerate_ratio_rejected() {
        let _ = MachineConfig::quad_q32().with_bandwidth_ratio(1.0);
    }

    #[test]
    fn element_conversion_uses_q_squared() {
        let m = MachineConfig::quad_q32();
        assert_eq!(m.blocks_to_elements(3), 3 * 32 * 32);
    }
}
