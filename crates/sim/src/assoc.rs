//! Set-associative LRU caches.
//!
//! The paper's model is *fully associative* ("our caches are also 'fully
//! associative', and can therefore store any data from main memory",
//! §2.1). Real caches are set-associative, and tiled kernels are the
//! canonical victims of the resulting conflict misses. This module
//! provides a `ways`-associative LRU cache with the same interface as the
//! fully-associative [`LruCache`](crate::LruCache), so the simulator can
//! quantify how far the ideal-model predictions drift on a realistic
//! indexing scheme (`ablation_associativity` in the harness).
//!
//! Sets are indexed by `block_id mod sets` — the dense block id stands in
//! for the address bits a real cache would use; consecutive blocks of a
//! matrix row land in consecutive sets, which reproduces the classic
//! power-of-two-leading-dimension conflict pathology when tile rows alias.

use crate::lru::Eviction;

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Way {
    block: u32,
    dirty: bool,
    last_use: u64,
}

/// A `ways`-associative LRU cache of `capacity` blocks (`capacity/ways`
/// sets, rounded up to at least one).
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    ways: usize,
    sets: usize,
    entries: Vec<Way>,
    clock: u64,
    len: usize,
}

impl SetAssocCache {
    /// Create with `capacity` total blocks and `ways` blocks per set.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `ways == 0`.
    pub fn new(capacity: usize, ways: usize) -> SetAssocCache {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(ways > 0, "associativity must be positive");
        let ways = ways.min(capacity);
        let sets = (capacity / ways).max(1);
        SetAssocCache {
            ways,
            sets,
            entries: vec![Way { block: NONE, dirty: false, last_use: 0 }; sets * ways],
            clock: 0,
            len: 0,
        }
    }

    /// Total capacity actually usable (`sets × ways` — may round below the
    /// requested capacity when `ways ∤ capacity`).
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Resident blocks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn set_range(&self, id: u32) -> std::ops::Range<usize> {
        let set = (id as usize) % self.sets;
        set * self.ways..(set + 1) * self.ways
    }

    /// Whether `id` is resident (no recency update).
    pub fn contains(&self, id: u32) -> bool {
        self.entries[self.set_range(id)].iter().any(|w| w.block == id)
    }

    /// Probe; on hit refresh recency (and optionally mark dirty).
    #[inline]
    pub fn touch_with(&mut self, id: u32, dirty: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(id);
        for w in &mut self.entries[range] {
            if w.block == id {
                w.last_use = clock;
                w.dirty |= dirty;
                return true;
            }
        }
        false
    }

    /// Probe for a read.
    pub fn touch(&mut self, id: u32) -> bool {
        self.touch_with(id, false)
    }

    /// Probe for a write.
    pub fn touch_dirty(&mut self, id: u32) -> bool {
        self.touch_with(id, true)
    }

    /// Mark dirty without a recency update. Returns `false` if absent.
    pub fn mark_dirty(&mut self, id: u32) -> bool {
        let range = self.set_range(id);
        for w in &mut self.entries[range] {
            if w.block == id {
                w.dirty = true;
                return true;
            }
        }
        false
    }

    /// Insert `id` (must be absent), evicting the set's LRU way if full.
    pub fn insert(&mut self, id: u32, dirty: bool) -> Option<Eviction> {
        debug_assert!(!self.contains(id), "inserting resident block {id}");
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(id);
        let set = &mut self.entries[range];
        // Empty way first.
        if let Some(w) = set.iter_mut().find(|w| w.block == NONE) {
            *w = Way { block: id, dirty, last_use: clock };
            self.len += 1;
            return None;
        }
        // Evict the least recently used way of this set.
        let victim = set.iter_mut().min_by_key(|w| w.last_use).expect("sets have at least one way");
        let ev = Eviction { block: victim.block, dirty: victim.dirty };
        *victim = Way { block: id, dirty, last_use: clock };
        Some(ev)
    }

    /// Remove `id` if resident, returning its dirty state.
    pub fn remove(&mut self, id: u32) -> Option<bool> {
        let range = self.set_range(id);
        for w in &mut self.entries[range] {
            if w.block == id {
                let dirty = w.dirty;
                *w = Way { block: NONE, dirty: false, last_use: 0 };
                self.len -= 1;
                return Some(dirty);
            }
        }
        None
    }

    /// Resident ids (arbitrary order; diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().filter(|w| w.block != NONE).map(|w| w.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;

    #[test]
    fn single_set_behaves_like_full_lru() {
        // ways == capacity → one set → identical miss sequence to the
        // fully-associative cache on any trace.
        let capacity = 8;
        let mut assoc = SetAssocCache::new(capacity, capacity);
        let mut full = LruCache::new(capacity, 1000);
        let mut misses = (0u32, 0u32);
        for t in 0..5000u32 {
            let id = (t * 37 % 97) % 50;
            if !assoc.touch(id) {
                misses.0 += 1;
                assoc.insert(id, false);
            }
            if !full.touch(id) {
                misses.1 += 1;
                full.insert(id, false);
            }
        }
        assert_eq!(misses.0, misses.1);
        assert_eq!(assoc.sets(), 1);
    }

    #[test]
    fn conflicting_blocks_thrash_a_direct_mapped_cache() {
        // Direct-mapped (1 way): ids congruent mod sets evict each other
        // even though the cache is nearly empty.
        let mut c = SetAssocCache::new(8, 1);
        assert_eq!(c.sets(), 8);
        let (a, b) = (0u32, 8u32); // same set
        c.insert(a, false);
        let ev = c.insert(b, false).expect("conflict eviction");
        assert_eq!(ev.block, a);
        assert_eq!(c.len(), 1, "seven other sets stay empty");
        // A fully-associative cache of the same size would keep both.
        let mut full = LruCache::new(8, 100);
        full.insert(a, false);
        assert!(full.insert(b, false).is_none());
    }

    #[test]
    fn within_set_replacement_is_lru() {
        let mut c = SetAssocCache::new(4, 2); // 2 sets × 2 ways
                                              // Set 0 gets ids 0, 2, 4 (all even).
        c.insert(0, false);
        c.insert(2, false);
        assert!(c.touch(0)); // 2 becomes LRU in its set
        let ev = c.insert(4, false).unwrap();
        assert_eq!(ev.block, 2);
        assert!(c.contains(0) && c.contains(4));
    }

    #[test]
    fn dirty_travels_through_eviction_and_remove() {
        let mut c = SetAssocCache::new(2, 1);
        c.insert(0, false);
        assert!(c.touch_dirty(0));
        let ev = c.insert(2, false).unwrap(); // same set as 0
        assert!(ev.dirty && ev.block == 0);
        c.insert(1, true);
        assert_eq!(c.remove(1), Some(true));
        assert_eq!(c.remove(1), None);
    }

    #[test]
    fn mark_dirty_does_not_refresh_recency() {
        let mut c = SetAssocCache::new(2, 2);
        c.insert(0, false);
        c.insert(2, false); // same set (2 % 1? sets = 1) — capacity 2, ways 2 → 1 set
        assert!(c.mark_dirty(0));
        let ev = c.insert(4, false).unwrap();
        assert_eq!(ev.block, 0, "0 is still LRU after mark_dirty");
        assert!(ev.dirty);
    }

    #[test]
    fn rounding_when_ways_do_not_divide_capacity() {
        let c = SetAssocCache::new(21, 4);
        assert_eq!(c.sets(), 5);
        assert_eq!(c.capacity(), 20);
    }

    #[test]
    fn iter_lists_residents() {
        let mut c = SetAssocCache::new(8, 2);
        c.insert(3, false);
        c.insert(7, false);
        let mut ids: Vec<u32> = c.iter().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 7]);
    }
}
