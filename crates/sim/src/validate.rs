//! Static validation of recorded IDEAL-mode schedules.
//!
//! The simulator enforces capacity and residency *operationally*; this
//! module checks recorded traces ([`TraceSink`](crate::TraceSink))
//! *structurally*: every load is eventually evicted (schedules must leave
//! the caches empty), every access happens under residency, eviction
//! order respects inclusivity, and loads into a full cache never happen.
//! It reports the first violation with its event index — a debugging aid
//! when developing new schedules, and a second, independent checker the
//! tests run against every managed algorithm.

use crate::block::Block;
use crate::sink::TraceEvent;
use std::collections::{HashMap, HashSet};

/// A structural violation in a recorded schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceViolation {
    /// Index of the offending event in the trace.
    pub index: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event #{}: {}", self.index, self.message)
    }
}

impl std::error::Error for TraceViolation {}

/// Validate a recorded IDEAL-mode trace against the hierarchy's
/// structural rules, with the given capacities.
///
/// Checks, in order of detection:
/// 1. shared/distributed loads never exceed `shared_capacity` /
///    `dist_capacity` (idempotent re-loads allowed);
/// 2. distributed loads require shared residency; shared evictions
///    require no distributed copies (inclusivity);
/// 3. reads, writes and FMA operands are resident in the accessing
///    core's cache;
/// 4. evictions name resident blocks;
/// 5. at end of trace both levels are empty (schedules clean up).
pub fn validate_ideal_trace(
    events: &[TraceEvent],
    cores: usize,
    shared_capacity: usize,
    dist_capacity: usize,
) -> Result<(), TraceViolation> {
    let mut shared: HashSet<Block> = HashSet::new();
    let mut dist: Vec<HashSet<Block>> = vec![HashSet::new(); cores];
    let err = |index: usize, message: String| Err(TraceViolation { index, message });
    // How many private caches hold each block (for inclusivity checks).
    let mut holders: HashMap<Block, usize> = HashMap::new();

    for (i, ev) in events.iter().enumerate() {
        match *ev {
            TraceEvent::LoadShared(b) => {
                if !shared.contains(&b) && shared.len() == shared_capacity {
                    return err(i, format!("shared cache full ({shared_capacity}) loading {b}"));
                }
                shared.insert(b);
            }
            TraceEvent::EvictShared(b) => {
                if let Some(&n) = holders.get(&b) {
                    if n > 0 {
                        return err(
                            i,
                            format!("evicting {b} from shared while {n} private copies exist"),
                        );
                    }
                }
                if !shared.remove(&b) {
                    return err(i, format!("evicting absent {b} from shared"));
                }
            }
            TraceEvent::LoadDist(c, b) => {
                if c >= cores {
                    return err(i, format!("core {c} out of range"));
                }
                if !shared.contains(&b) {
                    return err(i, format!("core {c} loads {b} not resident in shared"));
                }
                if !dist[c].contains(&b) {
                    if dist[c].len() == dist_capacity {
                        return err(
                            i,
                            format!("core {c} cache full ({dist_capacity}) loading {b}"),
                        );
                    }
                    dist[c].insert(b);
                    *holders.entry(b).or_insert(0) += 1;
                }
            }
            TraceEvent::EvictDist(c, b) => {
                if c >= cores || !dist[c].remove(&b) {
                    return err(i, format!("core {c} evicts absent {b}"));
                }
                *holders.get_mut(&b).expect("holder count tracked") -= 1;
            }
            TraceEvent::Read(c, b) | TraceEvent::Write(c, b) => {
                if c >= cores || !dist[c].contains(&b) {
                    return err(i, format!("core {c} accesses {b} without residency"));
                }
            }
            TraceEvent::Fma(c, a, bb, cc) => {
                for op in [a, bb, cc] {
                    if c >= cores || !dist[c].contains(&op) {
                        return err(i, format!("core {c} FMA operand {op} not resident"));
                    }
                }
            }
            TraceEvent::Barrier => {}
        }
    }
    if !shared.is_empty() {
        let b = shared.iter().next().unwrap();
        return err(events.len(), format!("{} blocks left in shared (e.g. {b})", shared.len()));
    }
    for (c, d) in dist.iter().enumerate() {
        if !d.is_empty() {
            return err(events.len(), format!("core {c} left {} blocks resident", d.len()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceEvent as E;

    fn b(i: u32, j: u32) -> Block {
        Block::c(i, j)
    }

    #[test]
    fn clean_round_trip_passes() {
        let t = vec![
            E::LoadShared(b(0, 0)),
            E::LoadDist(0, b(0, 0)),
            E::Read(0, b(0, 0)),
            E::Write(0, b(0, 0)),
            E::EvictDist(0, b(0, 0)),
            E::EvictShared(b(0, 0)),
        ];
        validate_ideal_trace(&t, 1, 2, 2).unwrap();
    }

    #[test]
    fn detects_each_violation_kind() {
        // Access without residency.
        let t = vec![E::Read(0, b(0, 0))];
        assert!(validate_ideal_trace(&t, 1, 2, 2)
            .unwrap_err()
            .message
            .contains("without residency"));
        // Dist load without shared residency.
        let t = vec![E::LoadDist(0, b(0, 0))];
        assert!(validate_ideal_trace(&t, 1, 2, 2)
            .unwrap_err()
            .message
            .contains("not resident in shared"));
        // Inclusivity violation.
        let t = vec![E::LoadShared(b(0, 0)), E::LoadDist(0, b(0, 0)), E::EvictShared(b(0, 0))];
        assert!(validate_ideal_trace(&t, 1, 2, 2).unwrap_err().message.contains("private copies"));
        // Capacity overflow.
        let t = vec![E::LoadShared(b(0, 0)), E::LoadShared(b(0, 1)), E::LoadShared(b(0, 2))];
        assert!(validate_ideal_trace(&t, 1, 2, 2).unwrap_err().message.contains("full"));
        // Residue at end.
        let t = vec![E::LoadShared(b(0, 0))];
        assert!(validate_ideal_trace(&t, 1, 2, 2).unwrap_err().message.contains("left in shared"));
        // Evicting absent.
        let t = vec![E::EvictShared(b(0, 0))];
        assert!(validate_ideal_trace(&t, 1, 2, 2).unwrap_err().message.contains("absent"));
    }

    #[test]
    fn violation_reports_event_index() {
        let t = vec![E::Barrier, E::Barrier, E::Read(0, b(1, 1))];
        let v = validate_ideal_trace(&t, 1, 2, 2).unwrap_err();
        assert_eq!(v.index, 2);
        assert!(v.to_string().contains("event #2"));
    }
}
