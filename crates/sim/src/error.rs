//! Simulator error type.

use crate::block::Block;

/// Errors raised by the simulator.
///
/// In LRU mode the simulator is total (replacement is automatic) and never
/// errors. In IDEAL mode the *algorithm* manages residency explicitly, so
/// violating a capacity or residency invariant is reported as an error —
/// this is how the test-suite proves our algorithm implementations really
/// fit in the cache budget the paper claims.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// An IDEAL-mode `load_shared` would exceed the shared-cache capacity.
    SharedCapacityExceeded {
        /// Shared-cache capacity in blocks.
        capacity: usize,
        /// The block whose load failed.
        block: Block,
    },
    /// An IDEAL-mode `load_dist` would exceed a distributed-cache capacity.
    DistCapacityExceeded {
        /// The core whose private cache overflowed.
        core: usize,
        /// Distributed-cache capacity in blocks.
        capacity: usize,
        /// The block whose load failed.
        block: Block,
    },
    /// A block was loaded into a distributed cache (or accessed) without
    /// being resident in the shared cache first; the paper's hierarchy is
    /// inclusive and "a data has to be first loaded in the shared cache
    /// before it could be loaded in the distributed cache" (§2.1).
    NotResidentShared {
        /// The offending block.
        block: Block,
    },
    /// A core read or wrote a block that is not in its distributed cache
    /// (IDEAL mode with checking enabled).
    NotResidentDist {
        /// The accessing core.
        core: usize,
        /// The offending block.
        block: Block,
    },
    /// The shared cache evicted a block while some distributed cache still
    /// held a copy, violating inclusivity (IDEAL mode).
    InclusionViolated {
        /// The block still resident below.
        block: Block,
        /// A core whose private cache still holds it.
        core: usize,
    },
    /// An explicit eviction named a block that was not resident.
    EvictAbsent {
        /// The offending block.
        block: Block,
        /// `None` for the shared cache, `Some(c)` for core `c`'s cache.
        core: Option<usize>,
    },
    /// A core index was `>= p`.
    UnknownCore {
        /// The offending index.
        core: usize,
        /// Number of cores in the machine.
        cores: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SimError::SharedCapacityExceeded { capacity, block } => write!(
                f,
                "shared cache over capacity ({capacity} blocks) while loading {block}"
            ),
            SimError::DistCapacityExceeded { core, capacity, block } => write!(
                f,
                "distributed cache of core {core} over capacity ({capacity} blocks) while loading {block}"
            ),
            SimError::NotResidentShared { block } => {
                write!(f, "{block} is not resident in the shared cache")
            }
            SimError::NotResidentDist { core, block } => {
                write!(f, "{block} is not resident in the distributed cache of core {core}")
            }
            SimError::InclusionViolated { block, core } => write!(
                f,
                "inclusivity violated: shared cache evicted {block} still held by core {core}"
            ),
            SimError::EvictAbsent { block, core: Some(core) } => {
                write!(f, "evicting absent block {block} from distributed cache of core {core}")
            }
            SimError::EvictAbsent { block, core: None } => {
                write!(f, "evicting absent block {block} from shared cache")
            }
            SimError::UnknownCore { core, cores } => {
                write!(f, "core index {core} out of range (machine has {cores} cores)")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::DistCapacityExceeded { core: 2, capacity: 3, block: Block::c(1, 1) };
        let s = e.to_string();
        assert!(s.contains("core 2") && s.contains("C[1,1]") && s.contains('3'));
        let e = SimError::EvictAbsent { block: Block::a(0, 0), core: None };
        assert!(e.to_string().contains("shared"));
    }
}
