//! Reuse-distance (stack-distance) analysis.
//!
//! LRU is a *stack algorithm* (Mattson et al., 1970): a reference hits in
//! an LRU cache of capacity `c` exactly when its stack distance — the
//! number of distinct blocks touched since its previous use — is below
//! `c`. Recording the histogram of stack distances during **one** pass
//! over an access stream therefore yields the LRU miss count for *every*
//! capacity at once, which turns the paper's per-capacity sweeps (Figs.
//! 4–6) into a single simulation.
//!
//! [`ProfilingSink`] adapts this to the two-level hierarchy: per-core
//! profiles see the raw access streams, and a shared-level profile sees
//! the stream *filtered* by fixed-capacity private LRU caches (the shared
//! cache only sees distributed misses). The filtered model matches the
//! non-inclusive hierarchy exactly; with back-invalidation the coupling
//! between levels makes a single-pass profile impossible, so treat
//! inclusive results as the (very close) lower-coupling approximation.

use crate::block::{Block, BlockSpace};
use crate::error::SimError;
use crate::lru::LruCache;
use crate::sink::SimSink;

/// Stack-distance histogram of one access stream.
#[derive(Clone, Debug)]
pub struct StackDistanceProfile {
    /// Blocks in most-recently-used-first order.
    stack: Vec<u32>,
    /// `histogram[d]` = number of accesses whose stack distance was `d`.
    histogram: Vec<u64>,
    /// Accesses to never-before-seen blocks (infinite stack distance).
    cold: u64,
    accesses: u64,
}

impl Default for StackDistanceProfile {
    fn default() -> StackDistanceProfile {
        StackDistanceProfile::new()
    }
}

impl StackDistanceProfile {
    /// An empty profile.
    pub fn new() -> StackDistanceProfile {
        StackDistanceProfile { stack: Vec::new(), histogram: Vec::new(), cold: 0, accesses: 0 }
    }

    /// Record one access. Cost is O(stack distance of the access) — cheap
    /// on cache-friendly streams, linear in footprint on adversarial ones.
    pub fn access(&mut self, id: u32) {
        self.accesses += 1;
        match self.stack.iter().position(|&b| b == id) {
            Some(d) => {
                if self.histogram.len() <= d {
                    self.histogram.resize(d + 1, 0);
                }
                self.histogram[d] += 1;
                self.stack.remove(d);
                self.stack.insert(0, id);
            }
            None => {
                self.cold += 1;
                self.stack.insert(0, id);
            }
        }
    }

    /// LRU misses this stream would incur with a cache of `capacity`
    /// blocks: cold misses plus every access at stack distance
    /// `≥ capacity`.
    pub fn misses_for_capacity(&self, capacity: usize) -> u64 {
        let deep: u64 = self.histogram.iter().skip(capacity).sum();
        self.cold + deep
    }

    /// Total recorded accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of distinct blocks seen (= cold misses).
    pub fn distinct(&self) -> u64 {
        self.cold
    }

    /// The raw histogram (`histogram()[d]` = accesses at distance `d`).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Smallest capacity for which the miss count reaches its minimum
    /// (the cold misses) — i.e. the stream's LRU working-set size.
    pub fn working_set(&self) -> usize {
        self.histogram.len()
    }
}

/// A [`SimSink`] that profiles reuse distances at both hierarchy levels in
/// one schedule pass.
///
/// Private caches are modeled at a *fixed* capacity (they filter the
/// shared-level stream); the shared-level profile then answers "how many
/// shared misses at any `C_S`?" via
/// [`StackDistanceProfile::misses_for_capacity`].
pub struct ProfilingSink {
    space: BlockSpace,
    dist_caches: Vec<LruCache>,
    /// Per-core raw-stream profiles (answer any `C_D`; independent of the
    /// fixed filter capacity).
    pub dist_profiles: Vec<StackDistanceProfile>,
    /// Shared-level profile of the stream filtered by the fixed-capacity
    /// private caches (answers any `C_S`).
    pub shared_profile: StackDistanceProfile,
    /// Per-core FMA counts (for CCR computations).
    pub fmas: Vec<u64>,
}

impl ProfilingSink {
    /// Profile `cores` streams with private caches fixed at
    /// `dist_capacity` blocks.
    pub fn new(space: BlockSpace, cores: usize, dist_capacity: usize) -> ProfilingSink {
        let universe = space.total();
        ProfilingSink {
            space,
            dist_caches: (0..cores).map(|_| LruCache::new(dist_capacity, universe)).collect(),
            dist_profiles: (0..cores).map(|_| StackDistanceProfile::new()).collect(),
            shared_profile: StackDistanceProfile::new(),
            fmas: vec![0; cores],
        }
    }

    fn touch(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        if core >= self.dist_caches.len() {
            return Err(SimError::UnknownCore { core, cores: self.dist_caches.len() });
        }
        let id = self.space.id(block);
        self.dist_profiles[core].access(id);
        if !self.dist_caches[core].touch(id) {
            // Distributed miss: the shared level sees this access.
            self.shared_profile.access(id);
            self.dist_caches[core].insert(id, false);
        }
        Ok(())
    }
}

impl SimSink for ProfilingSink {
    fn read(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.touch(core, block)
    }
    fn write(&mut self, core: usize, block: Block) -> Result<(), SimError> {
        self.touch(core, block)
    }
    fn fma(&mut self, core: usize, _a: Block, _b: Block, _c: Block) -> Result<(), SimError> {
        if core >= self.fmas.len() {
            return Err(SimError::UnknownCore { core, cores: self.fmas.len() });
        }
        self.fmas[core] += 1;
        Ok(())
    }
    fn load_shared(&mut self, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn evict_shared(&mut self, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn load_dist(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn evict_dist(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn barrier(&mut self) -> Result<(), SimError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_of_a_cyclic_stream() {
        // Stream 0,1,2,0,1,2: the second round has distance 2 each.
        let mut p = StackDistanceProfile::new();
        for id in [0u32, 1, 2, 0, 1, 2] {
            p.access(id);
        }
        assert_eq!(p.distinct(), 3);
        assert_eq!(p.accesses(), 6);
        // capacity 3 → only cold misses; capacity 2 → everything misses.
        assert_eq!(p.misses_for_capacity(3), 3);
        assert_eq!(p.misses_for_capacity(2), 6);
        assert_eq!(p.misses_for_capacity(100), 3);
        assert_eq!(p.working_set(), 3);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut p = StackDistanceProfile::new();
        p.access(7);
        p.access(7);
        p.access(7);
        assert_eq!(p.misses_for_capacity(1), 1);
        assert_eq!(p.histogram(), &[2]);
    }

    #[test]
    fn monotone_in_capacity() {
        let mut p = StackDistanceProfile::new();
        // Pseudo-random-ish stream.
        for i in 0..500u32 {
            p.access((i * 7) % 23);
        }
        let mut prev = u64::MAX;
        for c in 1..26 {
            let m = p.misses_for_capacity(c);
            assert!(m <= prev, "capacity {c}");
            prev = m;
        }
        assert_eq!(p.misses_for_capacity(23), 23);
    }

    #[test]
    fn profiling_sink_filters_through_private_caches() {
        let space = BlockSpace::new(4, 4, 4);
        let mut sink = ProfilingSink::new(space, 2, 1);
        // Core 0 alternates two blocks: every access misses the 1-block
        // private cache, so the shared level sees all of them.
        for _ in 0..3 {
            sink.read(0, Block::a(0, 0)).unwrap();
            sink.read(0, Block::a(0, 1)).unwrap();
        }
        assert_eq!(sink.dist_profiles[0].accesses(), 6);
        assert_eq!(sink.shared_profile.accesses(), 6);
        // With a 2-block shared cache everything after the cold pair hits.
        assert_eq!(sink.shared_profile.misses_for_capacity(2), 2);
        // Private caches of capacity 2 would have eliminated the traffic:
        assert_eq!(sink.dist_profiles[0].misses_for_capacity(2), 2);
        assert_eq!(sink.dist_profiles[0].misses_for_capacity(1), 6);
    }

    #[test]
    fn unknown_core_is_an_error() {
        let space = BlockSpace::new(2, 2, 2);
        let mut sink = ProfilingSink::new(space, 1, 2);
        assert!(sink.read(3, Block::a(0, 0)).is_err());
        assert!(sink.fma(3, Block::a(0, 0), Block::b(0, 0), Block::c(0, 0)).is_err());
    }
}
