//! Model-based property tests for the LRU cache and the hierarchy.
//!
//! The intrusive-list [`LruCache`] is checked operation-by-operation
//! against a trivially correct `Vec`-based reference model, and the
//! two-level hierarchy is checked for the inclusion invariant and the
//! LRU *stack property* (misses never increase with capacity — LRU is a
//! stack algorithm, so this holds exactly for a fixed access trace).

use mmc_sim::{Block, LruCache, Policy, SimConfig, SimSink, Simulator};
use proptest::prelude::*;

/// Obviously-correct reference: a Vec ordered most-recent-first.
#[derive(Default)]
struct ModelLru {
    capacity: usize,
    entries: Vec<(u32, bool)>, // (id, dirty), MRU first
}

impl ModelLru {
    fn new(capacity: usize) -> ModelLru {
        ModelLru { capacity, entries: Vec::new() }
    }
    fn touch(&mut self, id: u32, dirty: bool) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(e, _)| e == id) {
            let (_, was_dirty) = self.entries.remove(pos);
            self.entries.insert(0, (id, was_dirty || dirty));
            true
        } else {
            false
        }
    }
    fn insert(&mut self, id: u32, dirty: bool) -> Option<(u32, bool)> {
        let evicted = if self.entries.len() == self.capacity { self.entries.pop() } else { None };
        self.entries.insert(0, (id, dirty));
        evicted
    }
    fn remove(&mut self, id: u32) -> Option<bool> {
        let pos = self.entries.iter().position(|&(e, _)| e == id)?;
        Some(self.entries.remove(pos).1)
    }
}

#[derive(Clone, Debug)]
enum Op {
    Touch(u32),
    TouchDirty(u32),
    Insert(u32, bool),
    Remove(u32),
    MarkDirty(u32),
}

fn op_strategy(universe: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..universe).prop_map(Op::Touch),
        (0..universe).prop_map(Op::TouchDirty),
        ((0..universe), any::<bool>()).prop_map(|(id, d)| Op::Insert(id, d)),
        (0..universe).prop_map(Op::Remove),
        (0..universe).prop_map(Op::MarkDirty),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lru_cache_matches_reference_model(
        capacity in 1usize..12,
        ops in proptest::collection::vec(op_strategy(24), 1..400),
    ) {
        let universe = 24usize;
        let mut real = LruCache::new(capacity, universe);
        let mut model = ModelLru::new(capacity);
        for op in ops {
            match op {
                Op::Touch(id) => {
                    prop_assert_eq!(real.touch(id), model.touch(id, false));
                }
                Op::TouchDirty(id) => {
                    prop_assert_eq!(real.touch_dirty(id), model.touch(id, true));
                }
                Op::Insert(id, dirty) => {
                    // Real cache requires absence; model mirrors that contract.
                    if !real.contains(id) {
                        let ev = real.insert(id, dirty);
                        let mev = model.insert(id, dirty);
                        prop_assert_eq!(ev.map(|e| (e.block, e.dirty)), mev);
                    }
                }
                Op::Remove(id) => {
                    prop_assert_eq!(real.remove(id), model.remove(id));
                }
                Op::MarkDirty(id) => {
                    let expected = model.entries.iter_mut().find(|(e, _)| *e == id)
                        .map(|entry| { entry.1 = true; true })
                        .unwrap_or(false);
                    prop_assert_eq!(real.mark_dirty(id), expected);
                }
            }
            // Full-state comparison after every operation.
            prop_assert_eq!(real.len(), model.entries.len());
            let real_order: Vec<u32> = real.iter_mru().collect();
            let model_order: Vec<u32> = model.entries.iter().map(|&(e, _)| e).collect();
            prop_assert_eq!(real_order, model_order);
            for &(id, dirty) in &model.entries {
                prop_assert!(real.contains(id));
                prop_assert_eq!(real.is_dirty(id), dirty);
            }
        }
    }

    #[test]
    fn hierarchy_inclusion_invariant_under_random_traffic(
        accesses in proptest::collection::vec(
            ((0usize..3), (0u32..6), (0u32..6), any::<bool>()), 1..300),
        cs in 3usize..20,
        cd in 1usize..6,
    ) {
        let cfg = SimConfig {
            cores: 3,
            policy: Policy::Lru,
            shared_capacity: cs.max(3 * cd), // keep C_S >= p*C_D as the model assumes
            dist_capacity: cd,
            inclusive: true,
            check: false,
            associativity: None,
        };
        let (max_shared, max_dist) = (cfg.shared_capacity, cfg.dist_capacity);
        let mut sim = Simulator::new(cfg, 6, 6, 6);
        for (core, i, j, write) in accesses {
            let block = Block::c(i, j);
            if write {
                sim.write(core, block).unwrap();
            } else {
                sim.read(core, block).unwrap();
            }
            prop_assert!(sim.inclusion_holds(), "inclusion violated after access");
            prop_assert!(sim.shared_len() <= max_shared);
            for c in 0..3 {
                prop_assert!(sim.dist_len(c) <= max_dist);
            }
        }
    }

    #[test]
    fn lru_stack_property_misses_monotone_in_capacity(
        accesses in proptest::collection::vec(((0u32..8), (0u32..8), any::<bool>()), 1..400),
        cd in 1usize..5,
        cs_small in 2usize..10,
        extra in 1usize..10,
    ) {
        // Fixed per-core trace, non-inclusive hierarchy (back-invalidation
        // couples the levels and breaks the pure stack property), single
        // core so the shared-access stream is identical in both runs.
        let run = |cs: usize| -> (u64, u64) {
            let cfg = SimConfig {
                cores: 1,
                policy: Policy::Lru,
                shared_capacity: cs,
                dist_capacity: cd,
                inclusive: false,
                check: false,
                associativity: None,
            };
            let mut sim = Simulator::new(cfg, 8, 8, 8);
            for &(i, j, write) in &accesses {
                let b = Block::a(i, j);
                if write { sim.write(0, b).unwrap() } else { sim.read(0, b).unwrap() }
            }
            (sim.stats().shared_misses, sim.stats().dist_misses[0])
        };
        let (ms_small, md_small) = run(cs_small);
        let (ms_big, md_big) = run(cs_small + extra);
        prop_assert!(ms_big <= ms_small, "shared misses must not grow with capacity");
        // The distributed cache is untouched by the shared capacity.
        prop_assert_eq!(md_big, md_small);
    }

    #[test]
    fn ideal_mode_counts_equal_explicit_loads(
        loads in proptest::collection::vec((0u32..5, 0u32..5), 1..50),
    ) {
        let cfg = SimConfig {
            cores: 1,
            policy: Policy::Ideal,
            shared_capacity: 25,
            dist_capacity: 25,
            inclusive: true,
            check: true,
            associativity: None,
        };
        let mut sim = Simulator::new(cfg, 5, 5, 5);
        let mut distinct = std::collections::BTreeSet::new();
        for &(i, k) in &loads {
            let b = Block::a(i, k);
            sim.load_shared(b).unwrap();
            sim.load_dist(0, b).unwrap();
            sim.read(0, b).unwrap();
            distinct.insert((i, k));
        }
        // Idempotent loads: misses equal the number of distinct blocks.
        prop_assert_eq!(sim.stats().shared_misses, distinct.len() as u64);
        prop_assert_eq!(sim.stats().dist_misses[0], distinct.len() as u64);
    }
}
