//! Sweep points: every figure decomposed into independent, serializable
//! units of simulation work.
//!
//! A [`PointSpec`] is a self-describing record of *one* simulation a
//! figure needs — which algorithm, which machine, which cache/sink
//! configuration, which problem — with a pure interpreter
//! ([`PointSpec::compute`]) that produces its [`PointValue`]. Because the
//! spec is the complete input, points can be:
//!
//! * **sharded** across a rayon pool (`figures <id> --jobs N`),
//! * **cached** on disk keyed by their canonical serialization
//!   ([`PointSpec::key`], served by [`crate::cache::PointCache`]), and
//! * **isolated**: each point computes under `catch_unwind`, so one
//!   failing point degrades to a recorded per-cell error instead of
//!   killing the sweep.
//!
//! The figure functions in [`crate::figures`] stay the single source of
//! truth for figure *structure* (panels, series, labels, x-values): they
//! request every point through the [`PointRunner`] carried by
//! [`crate::figures::SweepOpts`]. The sharded driver
//! ([`run_figure_sharded`]) runs each figure function twice — once in
//! `Enumerate` mode to collect the point list (placeholder values, no
//! simulation), then, after the pool has filled the memo, in `Replay`
//! mode to assemble the real output. Serial and sharded runs therefore
//! execute the *same* figure code against the *same* computed values,
//! which is what makes the merged CSV/JSON byte-identical by
//! construction.

use crate::cache::{PointCache, POINT_CACHE_VERSION};
use crate::figures::{run_figure, SweepOpts};
use crate::sweep::{simulate, Panel, Setting};
use mmc_core::algorithms::{
    Algorithm, CacheOblivious, DistributedEqual, DistributedOpt, HierarchicalMaxReuse,
    OuterProduct, SharedEqual, SharedOpt, Tradeoff,
};
use mmc_core::params::{CoreGrid, TradeoffParams};
use mmc_core::ProblemSpec;
use mmc_lu::{BlockedLu, SimLuHooks, UpdateTiling};
use mmc_sim::{
    choose_algorithm, predicted_crossover, BspTiming, CostEnv, CountingSink, MachineConfig,
    SimConfig, SimStats, Simulator, TimingModel, TreeSimulator, TreeTopology,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which algorithm a point runs.
///
/// Default-parameterized algorithms go through [`AlgoSpec::Named`] (the
/// stable [`Algorithm::id`] string); the variants carry the explicit
/// parameters a few figures override.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AlgoSpec {
    /// An algorithm by its stable id (`shared_opt`, `outer_product`, …;
    /// `hierarchical_max_reuse` is valid under [`ConfigSpec::Cluster`]).
    Named(String),
    /// Tradeoff with explicit `(α, β, µ, grid)` (Fig. 12).
    TradeoffWith(TradeoffParams),
    /// Distributed Opt on an explicit core grid (grid ablation).
    DistGrid(CoreGrid),
    /// Cache-oblivious recursion with an explicit leaf size.
    ObliviousLeaf(u32),
    /// Blocked LU with the given panel width and update tiling
    /// (`row_stripes` / `shared_opt` / `tradeoff`); only valid under
    /// [`ConfigSpec::LuLru`].
    BlockedLuSpec(LuSpec),
}

/// Parameters of a blocked-LU point (see [`AlgoSpec::BlockedLuSpec`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LuSpec {
    /// Panel width in blocks.
    pub panel: u32,
    /// Update tiling id: `row_stripes`, `shared_opt` or `tradeoff`.
    pub tiling: String,
}

impl AlgoSpec {
    /// Spec for a default-parameterized algorithm.
    pub fn named(id: &str) -> AlgoSpec {
        AlgoSpec::Named(id.to_string())
    }

    fn instantiate(&self) -> Result<Box<dyn Algorithm>, String> {
        match self {
            AlgoSpec::Named(id) => match id.as_str() {
                "shared_opt" => Ok(Box::new(SharedOpt)),
                "shared_equal" => Ok(Box::new(SharedEqual)),
                "distributed_opt" => Ok(Box::new(DistributedOpt::default())),
                "distributed_equal" => Ok(Box::new(DistributedEqual::default())),
                "outer_product" => Ok(Box::new(OuterProduct::default())),
                "tradeoff" => Ok(Box::new(Tradeoff::default())),
                "cache_oblivious" => Ok(Box::new(CacheOblivious::new())),
                other => Err(format!("unknown algorithm id {other:?}")),
            },
            AlgoSpec::TradeoffWith(tp) => Ok(Box::new(Tradeoff::with_params(*tp))),
            AlgoSpec::DistGrid(grid) => Ok(Box::new(DistributedOpt::with_grid(*grid))),
            AlgoSpec::ObliviousLeaf(leaf) => Ok(Box::new(CacheOblivious::with_leaf(*leaf))),
            AlgoSpec::BlockedLuSpec(_) => {
                Err("blocked LU runs under ConfigSpec::LuLru, not as an Algorithm".to_string())
            }
        }
    }

    fn short(&self) -> String {
        match self {
            AlgoSpec::Named(id) => id.clone(),
            AlgoSpec::TradeoffWith(tp) => format!("tradeoff(a={},b={})", tp.alpha, tp.beta),
            AlgoSpec::DistGrid(g) => format!("distributed_opt({}x{})", g.rows, g.cols),
            AlgoSpec::ObliviousLeaf(l) => format!("cache_oblivious(leaf={l})"),
            AlgoSpec::BlockedLuSpec(l) => format!("blocked_lu(w={},{})", l.panel, l.tiling),
        }
    }
}

/// How a point's simulator / sink is configured.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ConfigSpec {
    /// A paper evaluation setting (IDEAL / LRU-50 / LRU at scaled
    /// capacity) through [`crate::sweep::simulate`].
    Setting(Setting),
    /// Full-capacity LRU with explicit inclusivity / associativity
    /// overrides (the ablations that build [`SimConfig`] by hand).
    Lru(LruSpec),
    /// BSP makespan under full-capacity LRU with the given per-FMA time
    /// (unit bandwidths). Value: `Scalars[makespan]`.
    Bsp(BspSpec),
    /// Pure event counting (no cache model). Value:
    /// `Scalars[reads, writes, fmas]`.
    Counting,
    /// Three-level cluster tree. Value: `Scalars[misses at level 0, 1, 2]`
    /// (max over same-level nodes).
    Cluster(ClusterSpec),
    /// Blocked LU under full-capacity LRU (`z = 1` simulator); the
    /// algorithm must be [`AlgoSpec::BlockedLuSpec`].
    LuLru,
    /// Strassen–Winograd cost model at the point's square side
    /// (`problem.m` blocks). Value: `Scalars[classic_time,
    /// strassen_time, depth, use_strassen, crossover]` (`crossover` is
    /// `-1` when the recursion never wins in the scanned range). The
    /// algorithm spec is ignored — the point prices both algorithms.
    StrassenModel(StrassenSpec),
}

/// Parameters of a [`ConfigSpec::StrassenModel`] point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StrassenSpec {
    /// Block side in elements.
    pub q: u64,
    /// Recursion cutoff: leaf side at or below which the 5-loop kernel
    /// takes over, in blocks.
    pub cutoff: u64,
    /// Leaf 5-loop blocking `MC`, in blocks.
    pub mcb: u64,
    /// Leaf 5-loop blocking `KC`, in blocks.
    pub kcb: u64,
    /// Leaf 5-loop blocking `NC`, in blocks.
    pub ncb: u64,
}

/// Overrides for [`ConfigSpec::Lru`] on top of [`SimConfig::lru`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LruSpec {
    /// Inclusive hierarchy (back-invalidation) on or off.
    pub inclusive: bool,
    /// `Some(ways)` for set-associative caches, `None` for fully
    /// associative.
    pub associativity: Option<usize>,
    /// Declare half the physical capacities to the algorithm (the LRU-50
    /// declaration) while simulating at full size.
    pub declared_halved: bool,
}

impl LruSpec {
    /// Plain full-capacity LRU (the `SimConfig::lru` defaults).
    pub fn plain() -> LruSpec {
        LruSpec { inclusive: true, associativity: None, declared_halved: false }
    }
}

/// Parameters of a [`ConfigSpec::Bsp`] point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BspSpec {
    /// Time per block FMA, in block-transfer units.
    pub fma_time: f64,
}

/// Parameters of a [`ConfigSpec::Cluster`] point (see
/// [`TreeTopology::cluster`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of multicore nodes.
    pub nodes: usize,
    /// Per-node cache capacity in blocks.
    pub node_capacity: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Per-node shared-cache capacity in blocks.
    pub shared_capacity: usize,
    /// Per-core private-cache capacity in blocks.
    pub dist_capacity: usize,
}

impl ClusterSpec {
    fn topology(&self) -> TreeTopology {
        TreeTopology::cluster(
            self.nodes,
            self.node_capacity,
            self.cores_per_node,
            self.shared_capacity,
            self.dist_capacity,
        )
    }
}

/// One independent sweep point: the complete input of one simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointSpec {
    /// Figure id the point belongs to (part of the cache key so figures
    /// stay independently resumable).
    pub figure: String,
    /// Algorithm under test.
    pub algo: AlgoSpec,
    /// Simulator / sink configuration.
    pub config: ConfigSpec,
    /// Machine the algorithm is told about.
    pub machine: MachineConfig,
    /// Problem dimensions in blocks.
    pub problem: ProblemSpec,
}

impl PointSpec {
    /// Canonical cache/memo key: harness version salt + the spec's serde
    /// serialization. Stable across processes for identical specs.
    pub fn key(&self) -> String {
        let body = serde_json::to_string(self).expect("PointSpec serializes");
        format!("{POINT_CACHE_VERSION}|{body}")
    }

    /// Short human-readable description for progress lines and errors.
    pub fn describe(&self) -> String {
        format!(
            "{}: {} {:?} {}x{}x{} (C_S={}, C_D={})",
            self.figure,
            self.algo.short(),
            self.config_tag(),
            self.problem.m,
            self.problem.n,
            self.problem.z,
            self.machine.shared_capacity,
            self.machine.dist_capacity,
        )
    }

    fn config_tag(&self) -> String {
        match &self.config {
            ConfigSpec::Setting(s) => s.label(),
            ConfigSpec::Lru(l) => format!(
                "LRU(incl={}, assoc={:?}{})",
                l.inclusive,
                l.associativity,
                if l.declared_halved { ", halved" } else { "" }
            ),
            ConfigSpec::Bsp(b) => format!("BSP(t_fma={})", b.fma_time),
            ConfigSpec::Counting => "counting".to_string(),
            ConfigSpec::Cluster(c) => format!("cluster({}x{})", c.nodes, c.cores_per_node),
            ConfigSpec::LuLru => "LU LRU".to_string(),
            ConfigSpec::StrassenModel(s) => format!("strassen(q={}, cutoff={})", s.q, s.cutoff),
        }
    }

    /// A placeholder value of the right shape, returned during the
    /// `Enumerate` pass (figure control flow never depends on point
    /// values, so placeholders only have to type-check downstream math).
    pub fn placeholder(&self) -> PointValue {
        match &self.config {
            ConfigSpec::Setting(_) | ConfigSpec::Lru(_) | ConfigSpec::LuLru => {
                PointValue::Stats(SimStats::new(self.machine.cores))
            }
            ConfigSpec::Bsp(_) => PointValue::Scalars(vec![0.0]),
            ConfigSpec::Counting | ConfigSpec::Cluster(_) => PointValue::Scalars(vec![0.0; 3]),
            ConfigSpec::StrassenModel(_) => PointValue::Scalars(vec![0.0; 5]),
        }
    }

    /// Run the simulation this point describes. Pure: everything the
    /// result depends on is in `self`, which is what makes points
    /// shardable and cacheable.
    pub fn compute(&self) -> Result<PointValue, String> {
        let problem = self.problem;
        match &self.config {
            ConfigSpec::Setting(setting) => {
                let algo = self.algo.instantiate()?;
                let stats = simulate(algo.as_ref(), &self.machine, *setting, problem)
                    .map_err(|e| e.to_string())?;
                Ok(PointValue::Stats(stats))
            }
            ConfigSpec::Lru(lru) => {
                let algo = self.algo.instantiate()?;
                let cfg = SimConfig {
                    inclusive: lru.inclusive,
                    associativity: lru.associativity,
                    ..SimConfig::lru(&self.machine)
                };
                let declared =
                    if lru.declared_halved { self.machine.halved() } else { self.machine.clone() };
                let mut sim = Simulator::new(cfg, problem.m, problem.n, problem.z);
                algo.execute(&declared, &problem, &mut sim).map_err(|e| e.to_string())?;
                Ok(PointValue::Stats(sim.into_stats()))
            }
            ConfigSpec::Bsp(bsp) => {
                let algo = self.algo.instantiate()?;
                let model = TimingModel { fma_time: bsp.fma_time, sigma_s: 1.0, sigma_d: 1.0 };
                let sim =
                    Simulator::new(SimConfig::lru(&self.machine), problem.m, problem.n, problem.z);
                let mut bsp_sim = BspTiming::new(sim, model);
                algo.execute(&self.machine, &problem, &mut bsp_sim).map_err(|e| e.to_string())?;
                let (makespan, _, _) = bsp_sim.finish();
                Ok(PointValue::Scalars(vec![makespan]))
            }
            ConfigSpec::Counting => {
                let algo = self.algo.instantiate()?;
                let mut sink = CountingSink::new();
                algo.execute(&self.machine, &problem, &mut sink).map_err(|e| e.to_string())?;
                Ok(PointValue::Scalars(vec![
                    sink.reads as f64,
                    sink.writes as f64,
                    sink.fmas as f64,
                ]))
            }
            ConfigSpec::Cluster(cluster) => {
                let topo = cluster.topology();
                let mut sim = TreeSimulator::new(topo.clone(), problem.m, problem.n, problem.z);
                match &self.algo {
                    AlgoSpec::Named(id) if id == "hierarchical_max_reuse" => {
                        HierarchicalMaxReuse::new(topo)
                            .run(&problem, &mut sim)
                            .map_err(|e| e.to_string())?;
                    }
                    other => {
                        let algo = other.instantiate()?;
                        algo.execute(&self.machine, &problem, &mut sim)
                            .map_err(|e| e.to_string())?;
                    }
                }
                let stats = sim.into_stats();
                Ok(PointValue::Scalars((0..3).map(|l| stats.level_misses(l) as f64).collect()))
            }
            ConfigSpec::LuLru => {
                let AlgoSpec::BlockedLuSpec(lu_spec) = &self.algo else {
                    return Err("ConfigSpec::LuLru needs AlgoSpec::BlockedLuSpec".to_string());
                };
                let tiling = match lu_spec.tiling.as_str() {
                    "row_stripes" => UpdateTiling::RowStripes,
                    "shared_opt" => UpdateTiling::SharedOpt,
                    "tradeoff" => UpdateTiling::Tradeoff,
                    other => return Err(format!("unknown LU tiling {other:?}")),
                };
                let lu = BlockedLu::new(lu_spec.panel, tiling);
                let n = problem.m;
                let mut sim = Simulator::new(SimConfig::lru(&self.machine), n, n, 1);
                {
                    let mut hooks = SimLuHooks::new(&mut sim);
                    lu.run(&self.machine, n, &mut hooks).map_err(|e| e.to_string())?;
                }
                Ok(PointValue::Stats(sim.into_stats()))
            }
            ConfigSpec::StrassenModel(s) => {
                let env = CostEnv::for_machine(&self.machine, s.mcb, s.kcb, s.ncb);
                let choice = choose_algorithm(problem.m as u64, s.q, s.cutoff, &env);
                let crossover =
                    predicted_crossover(s.q, s.cutoff, &env, 8192).map_or(-1.0, |n| n as f64);
                Ok(PointValue::Scalars(vec![
                    choice.classic_time,
                    choice.strassen_time,
                    choice.depth as f64,
                    if choice.use_strassen { 1.0 } else { 0.0 },
                    crossover,
                ]))
            }
        }
    }
}

/// The result of one computed point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PointValue {
    /// Full two-level simulator statistics.
    Stats(SimStats),
    /// Scalar results for points that are not plain simulations (BSP
    /// makespan, event counts, per-level cluster misses).
    Scalars(Vec<f64>),
}

impl PointValue {
    /// The statistics, for simulator-backed points.
    pub fn stats(&self) -> Option<&SimStats> {
        match self {
            PointValue::Stats(s) => Some(s),
            PointValue::Scalars(_) => None,
        }
    }

    /// The scalar vector, for scalar-valued points.
    pub fn scalars(&self) -> Option<&[f64]> {
        match self {
            PointValue::Stats(_) => None,
            PointValue::Scalars(v) => Some(v),
        }
    }
}

/// A recorded per-point failure (panic or error); the owning cell is left
/// empty in the figure output and the sweep continues.
#[derive(Clone, Debug)]
pub struct PointError {
    /// Figure the point belonged to.
    pub figure: String,
    /// Human description of the point ([`PointSpec::describe`]).
    pub point: String,
    /// Error or panic message.
    pub message: String,
}

/// Counters and errors from one figure's point executions.
#[derive(Clone, Debug, Default)]
pub struct PointReport {
    /// Points served from the on-disk cache.
    pub cached: usize,
    /// Points computed this run.
    pub computed: usize,
    /// Points that failed (error or panic).
    pub failed: usize,
    /// The recorded failures.
    pub errors: Vec<PointError>,
}

impl PointReport {
    /// Total points touched (cached + computed + failed).
    pub fn total(&self) -> usize {
        self.cached + self.computed + self.failed
    }

    /// One-line summary, as printed (and grepped by CI's cache-smoke job).
    pub fn summary(&self, figure: &str) -> String {
        format!(
            "[points] {figure}: {} points — {} cached, {} computed, {} failed",
            self.total(),
            self.cached,
            self.computed,
            self.failed
        )
    }
}

const MODE_INLINE: u8 = 0;
const MODE_ENUMERATE: u8 = 1;
const MODE_REPLAY: u8 = 2;

/// Execution mode of a [`PointRunner`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunMode {
    /// Compute each point on first request (the serial path; also the
    /// default for library callers).
    Inline,
    /// Record requested specs, return placeholders (first sharded pass).
    Enumerate,
    /// Serve memoized values computed by the pool (second sharded pass);
    /// falls back to inline computation on an unexpected miss.
    Replay,
}

type Outcome = Result<PointValue, String>;

#[derive(Debug, Default)]
struct RunnerInner {
    mode: AtomicU8,
    memo: Mutex<HashMap<String, Outcome>>,
    pending: Mutex<Vec<(String, PointSpec)>>,
    cache: Mutex<Option<PointCache>>,
    cached: AtomicUsize,
    computed: AtomicUsize,
    failed: AtomicUsize,
    errors: Mutex<Vec<PointError>>,
}

/// Shared executor for sweep points: memoizes by canonical key, consults
/// the on-disk cache, isolates panics, and (in the sharded modes)
/// separates point discovery from point computation. Cloning is cheap and
/// shares all state — [`SweepOpts`](crate::figures::SweepOpts) carries a
/// clone into every figure function.
#[derive(Clone, Default)]
pub struct PointRunner {
    inner: Arc<RunnerInner>,
}

impl std::fmt::Debug for PointRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PointRunner")
            .field("mode", &self.mode())
            .field("memoized", &self.inner.memo.lock().unwrap().len())
            .field("pending", &self.inner.pending.lock().unwrap().len())
            .finish()
    }
}

impl PointRunner {
    /// A fresh inline runner with no cache.
    pub fn new() -> PointRunner {
        PointRunner::default()
    }

    /// Current mode.
    pub fn mode(&self) -> RunMode {
        match self.inner.mode.load(Ordering::Relaxed) {
            MODE_ENUMERATE => RunMode::Enumerate,
            MODE_REPLAY => RunMode::Replay,
            _ => RunMode::Inline,
        }
    }

    /// Switch mode (the sharded driver flips Enumerate → Replay).
    pub fn set_mode(&self, mode: RunMode) {
        let v = match mode {
            RunMode::Inline => MODE_INLINE,
            RunMode::Enumerate => MODE_ENUMERATE,
            RunMode::Replay => MODE_REPLAY,
        };
        self.inner.mode.store(v, Ordering::Relaxed);
    }

    /// Attach an on-disk cache (hits require it to have reads enabled).
    pub fn set_cache(&self, cache: PointCache) {
        *self.inner.cache.lock().unwrap() = Some(cache);
    }

    /// Request a point's value. `None` means the point failed (its error
    /// is in the report) — the caller leaves the cell empty.
    pub fn point(&self, spec: PointSpec) -> Option<PointValue> {
        let key = spec.key();
        match self.mode() {
            RunMode::Enumerate => {
                let placeholder = spec.placeholder();
                if !self.inner.memo.lock().unwrap().contains_key(&key) {
                    let mut pending = self.inner.pending.lock().unwrap();
                    if !pending.iter().any(|(k, _)| *k == key) {
                        pending.push((key, spec));
                    }
                }
                Some(placeholder)
            }
            RunMode::Replay | RunMode::Inline => {
                if let Some(outcome) = self.inner.memo.lock().unwrap().get(&key) {
                    return outcome.as_ref().ok().cloned();
                }
                self.resolve(key, &spec)
            }
        }
    }

    /// [`Self::point`] narrowed to simulator statistics.
    pub fn stats(&self, spec: PointSpec) -> Option<SimStats> {
        self.point(spec).and_then(|v| v.stats().cloned())
    }

    /// [`Self::point`] narrowed to scalar values.
    pub fn scalars(&self, spec: PointSpec) -> Option<Vec<f64>> {
        self.point(spec).and_then(|v| v.scalars().map(<[f64]>::to_vec))
    }

    /// Number of distinct points recorded by the Enumerate pass and not
    /// yet computed.
    pub fn pending_len(&self) -> usize {
        self.inner.pending.lock().unwrap().len()
    }

    /// Compute every pending point (call under `ThreadPool::install` to
    /// control the worker count). Each point is cache-checked, computed
    /// under `catch_unwind`, memoized, and stored back to the cache.
    pub fn compute_pending(&self, verbose: bool) {
        use rayon::prelude::*;
        let pending: Vec<(String, PointSpec)> =
            std::mem::take(&mut *self.inner.pending.lock().unwrap());
        pending.par_iter().for_each(|(key, spec)| {
            if self.inner.memo.lock().unwrap().contains_key(key) {
                return;
            }
            if verbose {
                eprintln!("  [points] {}", spec.describe());
            }
            let _ = self.resolve(key.clone(), spec);
        });
    }

    /// Cache-check, compute (panic-isolated), record, and store one point.
    fn resolve(&self, key: String, spec: &PointSpec) -> Option<PointValue> {
        let cache = self.inner.cache.lock().unwrap().clone();
        if let Some(value) = cache.as_ref().and_then(|c| c.load(&key)) {
            self.inner.cached.fetch_add(1, Ordering::Relaxed);
            self.inner.memo.lock().unwrap().insert(key, Ok(value.clone()));
            return Some(value);
        }
        let outcome = compute_guarded(spec);
        match &outcome {
            Ok(value) => {
                self.inner.computed.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = &cache {
                    c.store(&key, value);
                }
            }
            Err(message) => {
                self.inner.failed.fetch_add(1, Ordering::Relaxed);
                self.inner.errors.lock().unwrap().push(PointError {
                    figure: spec.figure.clone(),
                    point: spec.describe(),
                    message: message.clone(),
                });
            }
        }
        let value = outcome.as_ref().ok().cloned();
        self.inner.memo.lock().unwrap().insert(key, outcome);
        value
    }

    /// Snapshot the counters and errors.
    pub fn report(&self) -> PointReport {
        PointReport {
            cached: self.inner.cached.load(Ordering::Relaxed),
            computed: self.inner.computed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            errors: self.inner.errors.lock().unwrap().clone(),
        }
    }
}

/// Run `spec.compute()` with panic isolation: a panicking point becomes
/// an `Err` naming the panic payload.
fn compute_guarded(spec: &PointSpec) -> Outcome {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.compute())) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Options of the sharded driver (the `--jobs` / `--resume` surface).
#[derive(Clone, Debug, Default)]
pub struct HarnessOpts {
    /// Worker count; `None` or `Some(0)` uses all available cores.
    pub jobs: Option<usize>,
    /// Serve completed points from the on-disk cache.
    pub resume: bool,
    /// Cache directory (`<out>/cache` in the binaries); `None` disables
    /// the cache entirely.
    pub cache_dir: Option<PathBuf>,
    /// Force the single-pass serial path (still cache-writing, so a
    /// serial run can seed a later `--resume`).
    pub serial: bool,
}

/// Run one figure through the sharded harness: enumerate its points,
/// compute them on a rayon pool (cache-served under `--resume`,
/// panic-isolated), then replay the figure function against the memo.
/// With `opts.serial` the figure runs in one inline pass instead; either
/// way the emitted panels are byte-identical because the same figure code
/// consumes the same computed values.
pub fn run_figure_sharded(
    id: &str,
    opts: &SweepOpts,
    harness: &HarnessOpts,
) -> (Vec<Panel>, PointReport) {
    let runner = PointRunner::new();
    if let Some(dir) = &harness.cache_dir {
        match PointCache::new(dir.clone(), harness.resume) {
            Ok(cache) => runner.set_cache(cache),
            Err(e) => eprintln!("  [points] cache disabled ({}): {e}", dir.display()),
        }
    }
    let mut run_opts = opts.clone();
    run_opts.runner = runner.clone();
    if harness.serial {
        let panels = run_figure(id, &run_opts);
        return (panels, runner.report());
    }
    runner.set_mode(RunMode::Enumerate);
    let mut enum_opts = run_opts.clone();
    enum_opts.verbose = false;
    let _ = run_figure(id, &enum_opts);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(harness.jobs.unwrap_or(0))
        .build()
        .expect("thread pool");
    pool.install(|| runner.compute_pending(opts.verbose));
    runner.set_mode(RunMode::Replay);
    let panels = run_figure(id, &run_opts);
    (panels, runner.report())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(figure: &str, algo: AlgoSpec, config: ConfigSpec, d: u32) -> PointSpec {
        PointSpec {
            figure: figure.to_string(),
            algo,
            config,
            machine: MachineConfig::quad_q32(),
            problem: ProblemSpec::square(d),
        }
    }

    #[test]
    fn setting_point_matches_direct_simulate() {
        let p = spec("t", AlgoSpec::named("shared_opt"), ConfigSpec::Setting(Setting::Ideal), 24);
        let direct = simulate(
            &SharedOpt,
            &MachineConfig::quad_q32(),
            Setting::Ideal,
            ProblemSpec::square(24),
        )
        .unwrap();
        assert_eq!(p.compute().unwrap(), PointValue::Stats(direct));
    }

    #[test]
    fn keys_are_stable_and_distinguish_specs() {
        let a = spec("t", AlgoSpec::named("shared_opt"), ConfigSpec::Setting(Setting::Ideal), 24);
        let b = spec("t", AlgoSpec::named("shared_opt"), ConfigSpec::Setting(Setting::Ideal), 24);
        let c = spec("t", AlgoSpec::named("shared_opt"), ConfigSpec::Setting(Setting::Lru50), 24);
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert!(a.key().starts_with(POINT_CACHE_VERSION));
    }

    #[test]
    fn point_value_round_trips_through_serde() {
        let p = spec("t", AlgoSpec::named("tradeoff"), ConfigSpec::Setting(Setting::Lru50), 20);
        let value = p.compute().unwrap();
        let text = serde_json::to_string(&value).unwrap();
        let back: PointValue = serde_json::from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn runner_memoizes_and_counts() {
        let runner = PointRunner::new();
        let p = spec("t", AlgoSpec::named("shared_opt"), ConfigSpec::Setting(Setting::Ideal), 16);
        let first = runner.point(p.clone()).unwrap();
        let second = runner.point(p).unwrap();
        assert_eq!(first, second);
        let report = runner.report();
        assert_eq!((report.computed, report.cached, report.failed), (1, 0, 0));
    }

    #[test]
    fn failing_point_degrades_to_recorded_error() {
        let runner = PointRunner::new();
        let bad = spec("t", AlgoSpec::named("no_such"), ConfigSpec::Setting(Setting::Ideal), 8);
        assert_eq!(runner.point(bad.clone()), None);
        // A second request is served from the memo, not recounted.
        assert_eq!(runner.point(bad), None);
        let report = runner.report();
        assert_eq!(report.failed, 1);
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].message.contains("no_such"));
    }

    #[test]
    fn panicking_point_is_isolated() {
        // A panel width of 0 is rejected inside BlockedLu::run — whether
        // it panics or errors, the point must degrade to a recorded
        // failure, never an unwind out of the runner.
        let p = PointSpec {
            figure: "t".to_string(),
            algo: AlgoSpec::BlockedLuSpec(LuSpec { panel: 0, tiling: "row_stripes".to_string() }),
            config: ConfigSpec::LuLru,
            machine: MachineConfig::quad_q32(),
            problem: ProblemSpec::square(8),
        };
        let runner = PointRunner::new();
        let got = runner.point(p);
        let report = runner.report();
        // Either a recorded panic or a recorded error — never an unwind.
        assert_eq!(got, None);
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn enumerate_then_replay_matches_inline() {
        let specs: Vec<PointSpec> = vec![
            spec("t", AlgoSpec::named("shared_opt"), ConfigSpec::Setting(Setting::Ideal), 16),
            spec("t", AlgoSpec::named("outer_product"), ConfigSpec::Setting(Setting::LruAt(1)), 16),
            spec("t", AlgoSpec::named("shared_opt"), ConfigSpec::Counting, 12),
        ];
        let inline = PointRunner::new();
        let expected: Vec<_> = specs.iter().map(|s| inline.point(s.clone())).collect();

        let sharded = PointRunner::new();
        sharded.set_mode(RunMode::Enumerate);
        for s in &specs {
            let placeholder = sharded.point(s.clone()).unwrap();
            // Placeholders have the right shape.
            match s.config {
                ConfigSpec::Counting => assert!(placeholder.scalars().is_some()),
                _ => assert!(placeholder.stats().is_some()),
            }
        }
        // Requesting a spec twice records it once.
        let _ = sharded.point(specs[0].clone());
        assert_eq!(sharded.pending_len(), specs.len());
        sharded.compute_pending(false);
        sharded.set_mode(RunMode::Replay);
        let got: Vec<_> = specs.iter().map(|s| sharded.point(s.clone())).collect();
        assert_eq!(got, expected);
        assert_eq!(sharded.report().computed, specs.len());
    }

    #[test]
    fn resolve_consults_and_fills_cache() {
        let dir =
            std::env::temp_dir().join(format!("mmc_points_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = spec("t", AlgoSpec::named("shared_opt"), ConfigSpec::Setting(Setting::Ideal), 16);

        let first = PointRunner::new();
        first.set_cache(PointCache::new(&dir, true).unwrap());
        let value = first.point(p.clone()).unwrap();
        assert_eq!(first.report().computed, 1);

        let second = PointRunner::new();
        second.set_cache(PointCache::new(&dir, true).unwrap());
        assert_eq!(second.point(p.clone()).unwrap(), value);
        let report = second.report();
        assert_eq!((report.cached, report.computed), (1, 0));

        // Without --resume the same directory is ignored for reads.
        let third = PointRunner::new();
        third.set_cache(PointCache::new(&dir, false).unwrap());
        assert_eq!(third.point(p).unwrap(), value);
        let report = third.report();
        assert_eq!((report.cached, report.computed), (0, 1));
    }

    #[test]
    fn cluster_and_bsp_points_compute_scalars() {
        let c = PointSpec {
            figure: "t".to_string(),
            algo: AlgoSpec::named("hierarchical_max_reuse"),
            config: ConfigSpec::Cluster(ClusterSpec {
                nodes: 2,
                node_capacity: 4096,
                cores_per_node: 2,
                shared_capacity: 977,
                dist_capacity: 21,
            }),
            machine: MachineConfig::new(4, 977 * 2, 21, 32),
            problem: ProblemSpec::square(16),
        };
        let v = c.compute().unwrap();
        assert_eq!(v.scalars().unwrap().len(), 3);
        let b = spec(
            "t",
            AlgoSpec::named("shared_opt"),
            ConfigSpec::Bsp(BspSpec { fma_time: 1.0 }),
            12,
        );
        let v = b.compute().unwrap();
        assert_eq!(v.scalars().unwrap().len(), 1);
        assert!(v.scalars().unwrap()[0] > 0.0);
    }
}
