//! Figure definitions: every figure of the paper's evaluation section
//! (Figs. 4–12) plus eight ablation/extension studies, expressed as
//! sweeps over the simulator.
//!
//! Each `figN` function reproduces the corresponding paper figure's
//! series; the harness does not draw plots but emits CSV + text tables
//! whose *shape* (orderings, gaps, crossovers) is what the reproduction
//! is judged on. See `EXPERIMENTS.md` at the workspace root.
//!
//! Every simulation a figure needs is requested through the
//! [`PointRunner`] carried by [`SweepOpts`] as a declarative
//! [`PointSpec`](crate::points::PointSpec): with the default inline
//! runner the figure executes serially exactly as before, while the
//! sharded driver ([`crate::points::run_figure_sharded`]) reuses these
//! same functions to enumerate, parallelize, cache, and replay the
//! points. A `None` from the runner means the point failed — its error
//! is in the report — and the cell is simply left empty.

use crate::points::{
    AlgoSpec, BspSpec, ClusterSpec, ConfigSpec, LruSpec, LuSpec, PointRunner, PointSpec,
    StrassenSpec,
};
use crate::sweep::{Metric, Panel, Series, Setting};
use mmc_core::algorithms::{
    all_algorithms, Algorithm, DistributedEqual, DistributedOpt, OuterProduct, SharedEqual,
    SharedOpt, Tradeoff,
};
use mmc_core::{bounds, formulas, params, ProblemSpec};
use mmc_sim::MachineConfig;

/// Sweep configuration shared by every figure.
#[derive(Clone, Debug, Default)]
pub struct SweepOpts {
    /// Use the paper-exact (long) ranges instead of the trimmed defaults.
    pub full: bool,
    /// Override the matrix-order sweep entirely.
    pub orders: Option<Vec<u32>>,
    /// Print per-point progress to stderr.
    pub verbose: bool,
    /// Executor for the figure's sweep points (inline by default; the
    /// sharded driver swaps in a shared enumerating/replaying runner).
    pub runner: PointRunner,
}

impl SweepOpts {
    /// Orders for Figs. 4–6 (paper: 50–600).
    pub fn orders_lru_validation(&self) -> Vec<u32> {
        if let Some(o) = &self.orders {
            return o.clone();
        }
        let step = if self.full { 50 } else { 60 };
        (step..=600).step_by(step as usize).collect()
    }

    /// Orders for Figs. 7–11 (paper: up to 1100).
    pub fn orders_performance(&self) -> Vec<u32> {
        if let Some(o) = &self.orders {
            return o.clone();
        }
        let max = if self.full { 1100 } else { 600 };
        (100..=max).step_by(100).collect()
    }

    /// Bandwidth ratios for Fig. 12 (`r = σ_S/(σ_S+σ_D)`, open interval).
    pub fn r_values(&self) -> Vec<f64> {
        (1..20).map(|i| i as f64 * 0.05).collect()
    }

    /// Fig. 12 matrix order (the paper fixes m = 384).
    pub fn fig12_order(&self) -> u32 {
        384
    }

    fn progress(&self, msg: &str) {
        if self.verbose {
            eprintln!("  [sweep] {msg}");
        }
    }
}

/// Request one `(algorithm × setting × square problem)` point.
fn run(
    opts: &SweepOpts,
    fig: &str,
    algo: &dyn Algorithm,
    machine: &MachineConfig,
    setting: Setting,
    d: u32,
) -> Option<mmc_sim::SimStats> {
    run_spec(opts, fig, AlgoSpec::named(algo.id()), machine, setting, ProblemSpec::square(d))
}

/// Request one point with an explicit algorithm spec.
fn run_spec(
    opts: &SweepOpts,
    fig: &str,
    algo: AlgoSpec,
    machine: &MachineConfig,
    setting: Setting,
    problem: ProblemSpec,
) -> Option<mmc_sim::SimStats> {
    opts.runner.stats(PointSpec {
        figure: fig.to_string(),
        algo,
        config: ConfigSpec::Setting(setting),
        machine: machine.clone(),
        problem,
    })
}

/// Fig. 4 — impact of the LRU policy on `M_S` of Shared Opt (`C_S = 977`):
/// LRU at declared capacity, LRU at twice the declared capacity, the
/// closed-form prediction, and twice the prediction (the Frigo et al.
/// competitiveness envelope).
pub fn fig4(opts: &SweepOpts) -> Vec<Panel> {
    lru_validation_figure(
        opts,
        "fig4",
        "Impact of LRU on M_S of Shared Opt., C_S = 977",
        &SharedOpt,
        Metric::Ms,
        |p, m| formulas::shared_opt(p, m).expect("preset feasible").ms,
    )
}

/// Fig. 5 — impact of the LRU policy on `M_D` of Distributed Opt
/// (`C_D = 21`).
pub fn fig5(opts: &SweepOpts) -> Vec<Panel> {
    lru_validation_figure(
        opts,
        "fig5",
        "Impact of LRU on M_D of Distributed Opt., C_D = 21",
        &DistributedOpt::default(),
        Metric::Md,
        |p, m| formulas::distributed_opt(p, m).expect("preset feasible").md,
    )
}

/// Fig. 6 — impact of the LRU policy on `T_data` of Tradeoff
/// (`C_S = 977`, `C_D = 21`, unit bandwidths).
pub fn fig6(opts: &SweepOpts) -> Vec<Panel> {
    lru_validation_figure(
        opts,
        "fig6",
        "Impact of LRU on T_data of Tradeoff, C_S = 977, C_D = 21",
        &Tradeoff::default(),
        Metric::TData,
        |p, m| {
            let t = params::tradeoff_params(m).expect("preset feasible");
            formulas::tradeoff_with(p, m, &t).t_data(m)
        },
    )
}

fn lru_validation_figure(
    opts: &SweepOpts,
    id: &str,
    title: &str,
    algo: &dyn Algorithm,
    metric: Metric,
    formula: impl Fn(&ProblemSpec, &MachineConfig) -> f64,
) -> Vec<Panel> {
    let machine = MachineConfig::quad_q32();
    let mut panel = Panel::new(id, title, "matrix order (blocks)", metric.label());
    let mut lru1 = Series::new(format!("{} LRU (C)", algo.name()));
    let mut lru2 = Series::new(format!("{} LRU (2C)", algo.name()));
    let mut form = Series::new("Formula (C)");
    let mut form2 = Series::new("2 x Formula (C)");
    for d in opts.orders_lru_validation() {
        opts.progress(&format!("{id}: order {d}"));
        let problem = ProblemSpec::square(d);
        if let Some(s1) = run(opts, id, algo, &machine, Setting::LruAt(1), d) {
            lru1.push(d as f64, metric.of(&s1, &machine));
        }
        if let Some(s2) = run(opts, id, algo, &machine, Setting::LruAt(2), d) {
            lru2.push(d as f64, metric.of(&s2, &machine));
        }
        let f = formula(&problem, &machine);
        form.push(d as f64, f);
        form2.push(d as f64, 2.0 * f);
    }
    panel.series = vec![lru1, lru2, form, form2];
    vec![panel]
}

/// The three shared-cache machine presets of §4.1, optimistic
/// distributed-cache occupancy.
fn shared_presets() -> Vec<(&'static str, &'static str, MachineConfig)> {
    vec![
        ("a", "C_S = 977, q = 32", MachineConfig::quad_q32()),
        ("b", "C_S = 245, q = 64", MachineConfig::quad_q64()),
        ("c", "C_S = 157, q = 80", MachineConfig::quad_q80()),
    ]
}

/// Fig. 7 — shared-cache misses `M_S` of Shared Opt (LRU-50 and IDEAL)
/// against Outer Product, Shared Equal (LRU-50) and the lower bound, for
/// the three block sizes.
pub fn fig7(opts: &SweepOpts) -> Vec<Panel> {
    shared_presets()
        .into_iter()
        .map(|(suffix, title, machine)| {
            let mut panel = Panel::new(
                format!("fig7{suffix}"),
                title,
                "matrix order (blocks)",
                Metric::Ms.label(),
            );
            let mut so_lru = Series::new("Shared Opt. LRU-50");
            let mut so_ideal = Series::new("Shared Opt. IDEAL");
            let mut se_lru = Series::new("Shared Equal LRU-50");
            let mut op = Series::new("Outer Product");
            let mut lb = Series::new("Lower Bound");
            for d in opts.orders_performance() {
                opts.progress(&format!("fig7{suffix}: order {d}"));
                let x = d as f64;
                let problem = ProblemSpec::square(d);
                if let Some(s) = run(opts, "fig7", &SharedOpt, &machine, Setting::Lru50, d) {
                    so_lru.push(x, s.ms() as f64);
                }
                if let Some(s) = run(opts, "fig7", &SharedOpt, &machine, Setting::Ideal, d) {
                    so_ideal.push(x, s.ms() as f64);
                }
                if let Some(s) = run(opts, "fig7", &SharedEqual, &machine, Setting::Lru50, d) {
                    se_lru.push(x, s.ms() as f64);
                }
                if let Some(s) =
                    run(opts, "fig7", &OuterProduct::default(), &machine, Setting::LruAt(1), d)
                {
                    op.push(x, s.ms() as f64);
                }
                lb.push(x, bounds::ms_lower_bound(&problem, &machine));
            }
            panel.series = vec![so_lru, so_ideal, se_lru, op, lb];
            panel
        })
        .collect()
}

/// Fig. 8 — distributed-cache misses `M_D` of Distributed Opt (LRU-50 and
/// IDEAL) against Outer Product, Distributed Equal (LRU-50) and the lower
/// bound, for `C_D ∈ {21, 16, 6}`.
pub fn fig8(opts: &SweepOpts) -> Vec<Panel> {
    let presets = vec![
        ("a", "C_D = 21 (q = 32, two thirds for data)", MachineConfig::quad_q32()),
        ("b", "C_D = 16 (q = 32, one half for data)", MachineConfig::quad_q32_pessimistic()),
        ("c", "C_D = 6 (q = 64)", MachineConfig::quad_q64()),
    ];
    presets
        .into_iter()
        .map(|(suffix, title, machine)| {
            let mut panel = Panel::new(
                format!("fig8{suffix}"),
                title,
                "matrix order (blocks)",
                Metric::Md.label(),
            );
            let mut do_lru = Series::new("Distributed Opt. LRU-50");
            let mut do_ideal = Series::new("Distributed Opt. IDEAL");
            let mut de_lru = Series::new("Distributed Equal LRU-50");
            let mut op = Series::new("Outer Product");
            let mut lb = Series::new("Lower Bound");
            for d in opts.orders_performance() {
                opts.progress(&format!("fig8{suffix}: order {d}"));
                let x = d as f64;
                let problem = ProblemSpec::square(d);
                if let Some(s) =
                    run(opts, "fig8", &DistributedOpt::default(), &machine, Setting::Lru50, d)
                {
                    do_lru.push(x, s.md() as f64);
                }
                if let Some(s) =
                    run(opts, "fig8", &DistributedOpt::default(), &machine, Setting::Ideal, d)
                {
                    do_ideal.push(x, s.md() as f64);
                }
                if let Some(s) =
                    run(opts, "fig8", &DistributedEqual::default(), &machine, Setting::Lru50, d)
                {
                    de_lru.push(x, s.md() as f64);
                }
                if let Some(s) =
                    run(opts, "fig8", &OuterProduct::default(), &machine, Setting::LruAt(1), d)
                {
                    op.push(x, s.md() as f64);
                }
                lb.push(x, bounds::md_lower_bound(&problem, &machine));
            }
            panel.series = vec![do_lru, do_ideal, de_lru, op, lb];
            panel
        })
        .collect()
}

/// Figs. 9–11 share this four-panel structure: `T_data` of all six
/// algorithms under LRU-50 and IDEAL, for the optimistic and pessimistic
/// distributed-cache occupancies of one shared-cache preset.
fn tdata_figure(
    opts: &SweepOpts,
    fig: &str,
    optimistic: MachineConfig,
    pessimistic: MachineConfig,
) -> Vec<Panel> {
    let variants = [
        ("a", Setting::Lru50, optimistic.clone()),
        ("b", Setting::Ideal, optimistic),
        ("c", Setting::Lru50, pessimistic.clone()),
        ("d", Setting::Ideal, pessimistic),
    ];
    variants
        .into_iter()
        .map(|(suffix, setting, machine)| {
            let title = format!(
                "{} setting, C_S = {}, C_D = {}",
                setting.label(),
                machine.shared_capacity,
                machine.dist_capacity
            );
            let mut panel = Panel::new(
                format!("{fig}{suffix}"),
                title,
                "matrix order (blocks)",
                Metric::TData.label(),
            );
            let algos = all_algorithms();
            let mut series: Vec<Series> = algos
                .iter()
                .map(|a| Series::new(format!("{} {}", a.name(), setting.label())))
                .collect();
            // The paper's LRU-50 panels overlay Tradeoff IDEAL as a reference.
            let mut tr_ideal = (setting == Setting::Lru50).then(|| Series::new("Tradeoff IDEAL"));
            let mut lb = Series::new("Lower Bound");
            for d in opts.orders_performance() {
                opts.progress(&format!("{fig}{suffix}: order {d}"));
                let x = d as f64;
                let problem = ProblemSpec::square(d);
                for (a, s) in algos.iter().zip(series.iter_mut()) {
                    if let Some(stats) = run(opts, fig, a.as_ref(), &machine, setting, d) {
                        s.push(x, Metric::TData.of(&stats, &machine));
                    }
                }
                if let Some(s) = tr_ideal.as_mut() {
                    if let Some(stats) =
                        run(opts, fig, &Tradeoff::default(), &machine, Setting::Ideal, d)
                    {
                        s.push(x, Metric::TData.of(&stats, &machine));
                    }
                }
                lb.push(x, bounds::tdata_lower_bound(&problem, &machine));
            }
            if let Some(s) = tr_ideal {
                series.push(s);
            }
            series.push(lb);
            panel.series = series;
            panel
        })
        .collect()
}

/// Fig. 9 — `T_data`, `C_S = 977`, `C_D ∈ {21, 16}`.
pub fn fig9(opts: &SweepOpts) -> Vec<Panel> {
    tdata_figure(opts, "fig9", MachineConfig::quad_q32(), MachineConfig::quad_q32_pessimistic())
}

/// Fig. 10 — `T_data`, `C_S = 245`, `C_D ∈ {6, 4}`.
pub fn fig10(opts: &SweepOpts) -> Vec<Panel> {
    tdata_figure(opts, "fig10", MachineConfig::quad_q64(), MachineConfig::quad_q64_pessimistic())
}

/// Fig. 11 — `T_data`, `C_S = 157`, `C_D ∈ {4, 3}`.
pub fn fig11(opts: &SweepOpts) -> Vec<Panel> {
    tdata_figure(opts, "fig11", MachineConfig::quad_q80(), MachineConfig::quad_q80_pessimistic())
}

/// Fig. 12 — `T_data` as a function of the bandwidth ratio
/// `r = σ_S/(σ_S + σ_D)` (with `σ_S + σ_D = 1`), square matrices of order
/// 384, IDEAL setting, for all six cache configurations.
///
/// Only Tradeoff's *schedule* depends on `r` (its `(α, β)` optimization
/// reads the bandwidths); every other algorithm's miss counts are
/// simulated once per configuration and recosted per `r`. Miss counts
/// never depend on the bandwidths, so every point is keyed on the base
/// (unit-bandwidth) preset machine — distinct Tradeoff points exist only
/// per distinct `(α, β)`.
pub fn fig12(opts: &SweepOpts) -> Vec<Panel> {
    let d = opts.fig12_order();
    let problem = ProblemSpec::square(d);
    MachineConfig::paper_presets()
        .into_iter()
        .enumerate()
        .map(|(idx, (label, machine))| {
            let suffix = (b'a' + idx as u8) as char;
            let title = format!(
                "C_S = {}, C_D = {} ({label}), m = {d}",
                machine.shared_capacity, machine.dist_capacity
            );
            let mut panel = Panel::new(
                format!("fig12{suffix}"),
                title,
                "r = sigma_S / (sigma_S + sigma_D)",
                Metric::TData.label(),
            );
            opts.progress(&format!("fig12{suffix}: fixed-count sims"));
            // One simulation per r-independent algorithm.
            let fixed: Vec<(&str, Option<mmc_sim::SimStats>)> = [
                ("Shared Opt. IDEAL", &SharedOpt as &dyn Algorithm),
                ("Distributed Opt. IDEAL", &DistributedOpt::default()),
                ("Shared Equal IDEAL", &SharedEqual),
                ("Distributed Equal IDEAL", &DistributedEqual::default()),
                ("Outer Product", &OuterProduct::default()),
            ]
            .into_iter()
            .map(|(name, a)| (name, run(opts, "fig12", a, &machine, Setting::Ideal, d)))
            .collect();
            let mut series: Vec<Series> =
                fixed.iter().map(|(name, _)| Series::new(*name)).collect();
            let mut tr = Series::new("Tradeoff IDEAL");
            let mut lb = Series::new("Lower Bound");
            for r in opts.r_values() {
                let m_r = machine.clone().with_bandwidth_ratio(r);
                for ((_, stats), s) in fixed.iter().zip(series.iter_mut()) {
                    if let Some(stats) = stats {
                        s.push(r, stats.t_data(m_r.sigma_s, m_r.sigma_d));
                    }
                }
                let tp = params::tradeoff_params(&m_r)
                    .unwrap_or_else(|| panic!("tradeoff feasible on preset {label}"));
                // Keyed on the base machine: equal (α, β) across r values
                // dedupe to one point in the runner's memo/cache.
                if let Some(stats) = run_spec(
                    opts,
                    "fig12",
                    AlgoSpec::TradeoffWith(tp),
                    &machine,
                    Setting::Ideal,
                    problem,
                ) {
                    tr.push(r, stats.t_data(m_r.sigma_s, m_r.sigma_d));
                }
                lb.push(r, bounds::tdata_lower_bound(&problem, &m_r));
            }
            series.push(tr);
            series.push(lb);
            panel.series = series;
            panel
        })
        .collect()
}

/// Ablation (beyond the paper): effect of the inclusive-hierarchy
/// back-invalidation on LRU miss counts, for Shared Opt and Outer Product.
pub fn ablation_inclusion(opts: &SweepOpts) -> Vec<Panel> {
    let machine = MachineConfig::quad_q32();
    let mut ms_panel = Panel::new(
        "ablation_inclusion_ms",
        "Inclusive vs non-inclusive LRU hierarchy (C_S = 977)",
        "matrix order (blocks)",
        Metric::Ms.label(),
    );
    let mut md_panel = Panel::new(
        "ablation_inclusion_md",
        "Inclusive vs non-inclusive LRU hierarchy (C_S = 977)",
        "matrix order (blocks)",
        Metric::Md.label(),
    );
    let algos: Vec<(&str, &str)> =
        vec![("Shared Opt.", "shared_opt"), ("Outer Product", "outer_product")];
    let mut ms_series: Vec<Series> = Vec::new();
    let mut md_series: Vec<Series> = Vec::new();
    for (name, _) in &algos {
        for inc in ["inclusive", "non-inclusive"] {
            ms_series.push(Series::new(format!("{name} {inc}")));
            md_series.push(Series::new(format!("{name} {inc}")));
        }
    }
    for d in opts.orders_lru_validation() {
        opts.progress(&format!("ablation_inclusion: order {d}"));
        let mut idx = 0;
        for (_, algo_id) in &algos {
            for inclusive in [true, false] {
                let stats = opts.runner.stats(PointSpec {
                    figure: "ablation_inclusion".to_string(),
                    algo: AlgoSpec::named(algo_id),
                    config: ConfigSpec::Lru(LruSpec { inclusive, ..LruSpec::plain() }),
                    machine: machine.clone(),
                    problem: ProblemSpec::square(d),
                });
                if let Some(stats) = stats {
                    ms_series[idx].push(d as f64, stats.ms() as f64);
                    md_series[idx].push(d as f64, stats.md() as f64);
                }
                idx += 1;
            }
        }
    }
    ms_panel.series = ms_series;
    md_panel.series = md_series;
    vec![ms_panel, md_panel]
}

/// Ablation (beyond the paper): Distributed Opt on non-square core counts
/// via rectangular grids, against the per-core lower bound.
pub fn ablation_grid(opts: &SweepOpts) -> Vec<Panel> {
    let d = if opts.full { 240 } else { 120 };
    let problem = ProblemSpec::square(d);
    let mut panel = Panel::new(
        "ablation_grid",
        format!("Distributed Opt. on p-core grids (C_D = 21, order {d})"),
        "cores p",
        Metric::Md.label(),
    );
    let mut md = Series::new("Distributed Opt. IDEAL (best grid)");
    let mut lbs = Series::new("Lower Bound");
    for p in [1usize, 2, 4, 6, 8, 9, 12, 16] {
        opts.progress(&format!("ablation_grid: p = {p}"));
        let machine = MachineConfig::new(p, 977, 21, 32);
        let grid = params::CoreGrid::square(p).unwrap_or_else(|| params::CoreGrid::balanced(p));
        if let Some(stats) = run_spec(
            opts,
            "ablation_grid",
            AlgoSpec::DistGrid(grid),
            &machine,
            Setting::Ideal,
            problem,
        ) {
            md.push(p as f64, stats.md() as f64);
        }
        lbs.push(p as f64, bounds::md_lower_bound(&problem, &machine));
    }
    panel.series = vec![md, lbs];
    vec![panel]
}

/// Ablation (beyond the paper): the cache-oblivious recursive product
/// (Frigo et al., the paper's reference \[5\]; multicore analysis in
/// Blelloch et al., reference \[3\]) against the cache-aware schedules
/// under full-capacity LRU. The recursion is asymptotically optimal at
/// every level simultaneously but pays a constant factor over the aware
/// tilings — this sweep measures that constant on both metrics.
pub fn ablation_oblivious(opts: &SweepOpts) -> Vec<Panel> {
    let machine = MachineConfig::quad_q32();
    let mut ms_panel = Panel::new(
        "ablation_oblivious_ms",
        "Cache-oblivious recursion vs cache-aware tilings (LRU, C_S = 977)",
        "matrix order (blocks)",
        Metric::Ms.label(),
    );
    let mut md_panel = Panel::new(
        "ablation_oblivious_md",
        "Cache-oblivious recursion vs cache-aware tilings (LRU, C_D = 21)",
        "matrix order (blocks)",
        Metric::Md.label(),
    );
    let algos: Vec<(&str, AlgoSpec)> = vec![
        ("Cache Oblivious", AlgoSpec::named("cache_oblivious")),
        ("Cache Oblivious (leaf 4)", AlgoSpec::ObliviousLeaf(4)),
        ("Shared Opt.", AlgoSpec::named("shared_opt")),
        ("Distributed Opt.", AlgoSpec::named("distributed_opt")),
        ("Outer Product", AlgoSpec::named("outer_product")),
    ];
    let mut ms_series: Vec<Series> =
        algos.iter().map(|(name, _)| Series::new(format!("{name} LRU"))).collect();
    let mut md_series: Vec<Series> =
        algos.iter().map(|(name, _)| Series::new(format!("{name} LRU"))).collect();
    let mut ms_lb = Series::new("Lower Bound");
    let mut md_lb = Series::new("Lower Bound");
    for d in opts.orders_lru_validation() {
        opts.progress(&format!("ablation_oblivious: order {d}"));
        let problem = ProblemSpec::square(d);
        for ((_, algo), (ms_s, md_s)) in
            algos.iter().zip(ms_series.iter_mut().zip(md_series.iter_mut()))
        {
            if let Some(stats) = run_spec(
                opts,
                "ablation_oblivious",
                algo.clone(),
                &machine,
                Setting::LruAt(1),
                problem,
            ) {
                ms_s.push(d as f64, stats.ms() as f64);
                md_s.push(d as f64, stats.md() as f64);
            }
        }
        ms_lb.push(d as f64, bounds::ms_lower_bound(&problem, &machine));
        md_lb.push(d as f64, bounds::md_lower_bound(&problem, &machine));
    }
    ms_series.push(ms_lb);
    md_series.push(md_lb);
    ms_panel.series = ms_series;
    md_panel.series = md_series;
    vec![ms_panel, md_panel]
}

/// Ablation (beyond the paper): the fully-associative assumption. The
/// same schedules under `ways`-associative LRU caches at both levels —
/// conflict misses push the measured counts away from the ideal-model
/// predictions, quantifying the model/hardware gap of §2.1.
pub fn ablation_associativity(opts: &SweepOpts) -> Vec<Panel> {
    // Power-of-two capacities so every way count yields a power-of-two
    // set count (realistic indexing); the paper's 977/21 preset has a
    // *prime* shared capacity, whose modulo indexing is nearly
    // conflict-free and would mask the effect being measured.
    let machine = MachineConfig::new(4, 1024, 16, 32);
    let orders: Vec<u32> = match &opts.orders {
        Some(o) => o.clone(),
        None => {
            let max = if opts.full { 480 } else { 300 };
            (60..=max).step_by(60).collect()
        }
    };
    let ways: [(&str, Option<usize>); 5] = [
        ("direct-mapped", Some(1)),
        ("2-way", Some(2)),
        ("8-way", Some(8)),
        ("16-way", Some(16)),
        ("fully associative", None),
    ];
    let algos: [(&str, &str); 2] =
        [("Shared Opt. M_S", "shared_opt"), ("Distributed Opt. M_D", "distributed_opt")];
    algos
        .into_iter()
        .enumerate()
        .map(|(ai, (aname, algo_id))| {
            let mut panel = Panel::new(
                format!("ablation_associativity_{}", if ai == 0 { "ms" } else { "md" }),
                format!("{aname} under set-associative LRU (C_S = 1024, C_D = 16)"),
                "matrix order (blocks)",
                if ai == 0 { Metric::Ms.label() } else { Metric::Md.label() },
            );
            let mut series: Vec<Series> = ways.iter().map(|(w, _)| Series::new(*w)).collect();
            // The paper's LRU-50 mitigation (declare half the capacity,
            // leave the rest as replacement slack) under the *least*
            // associative configuration — the fix is what matters.
            let mut lru50 = Series::new("direct-mapped, LRU-50 declaration");
            for &d in &orders {
                opts.progress(&format!("ablation_associativity: {aname} order {d}"));
                for ((_, assoc), s) in ways.iter().zip(series.iter_mut()) {
                    let stats = opts.runner.stats(PointSpec {
                        figure: "ablation_associativity".to_string(),
                        algo: AlgoSpec::named(algo_id),
                        config: ConfigSpec::Lru(LruSpec {
                            associativity: *assoc,
                            ..LruSpec::plain()
                        }),
                        machine: machine.clone(),
                        problem: ProblemSpec::square(d),
                    });
                    if let Some(stats) = stats {
                        let y = if ai == 0 { stats.ms() } else { stats.md() };
                        s.push(d as f64, y as f64);
                    }
                }
                let stats = opts.runner.stats(PointSpec {
                    figure: "ablation_associativity".to_string(),
                    algo: AlgoSpec::named(algo_id),
                    config: ConfigSpec::Lru(LruSpec {
                        associativity: Some(1),
                        declared_halved: true,
                        ..LruSpec::plain()
                    }),
                    machine: machine.clone(),
                    problem: ProblemSpec::square(d),
                });
                if let Some(stats) = stats {
                    let y = if ai == 0 { stats.ms() } else { stats.md() };
                    lru50.push(d as f64, y as f64);
                }
            }
            series.push(lru50);
            panel.series = series;
            panel
        })
        .collect()
}

/// Ablation (beyond the paper): continuous block-size sweep. The paper
/// evaluates q in {32, 64, 80}; this re-derives the capacities from the
/// byte sizes for every q and shows where `µ` collapses to 1 and the
/// distributed-optimized strategies stop paying off (the Fig. 8(c)
/// phenomenon as a function of q).
///
/// Pure closed-form formulas — no simulations, so nothing to shard.
pub fn q_sweep(opts: &SweepOpts) -> Vec<Panel> {
    let elems = if opts.full { 3072u32 } else { 2048 }; // matrix order in elements
    let mut panel = Panel::new(
        "q_sweep",
        format!("Block-size sweep, 8MB/256KB quad-core, {elems}x{elems}-element product"),
        "block size q",
        "predicted T_data (element blocks)",
    );
    let mut mu_s = Series::new("mu (C sub-block side)");
    let mut lam = Series::new("lambda");
    let mut t_so = Series::new("Shared Opt. predicted T_data");
    let mut t_do = Series::new("Distributed Opt. predicted T_data");
    let mut t_tr = Series::new("Tradeoff predicted T_data");
    for q in [16u32, 24, 32, 40, 48, 64, 80, 96, 128] {
        opts.progress(&format!("q_sweep: q = {q}"));
        // The paper's SI byte sizes (§4.1): 8 MB shared, 256 kB private.
        let Some(machine) = MachineConfig::from_bytes(4, 8_000_000, 256_000, q as usize, 2.0 / 3.0)
        else {
            continue;
        };
        let order = (elems / q).max(1);
        let problem = ProblemSpec::square(order);
        mu_s.push(q as f64, params::mu(&machine).unwrap_or(0) as f64);
        lam.push(q as f64, params::lambda(&machine).unwrap_or(0) as f64);
        // Normalize to element-granularity traffic (misses x q^2) so
        // different q values are comparable.
        let scale = (q as f64) * (q as f64);
        if let Some(p) = formulas::shared_opt(&problem, &machine) {
            t_so.push(q as f64, p.t_data(&machine) * scale);
        }
        if let Some(p) = formulas::distributed_opt(&problem, &machine) {
            t_do.push(q as f64, p.t_data(&machine) * scale);
        }
        if let Some(p) = formulas::tradeoff(&problem, &machine) {
            t_tr.push(q as f64, p.t_data(&machine) * scale);
        }
    }
    panel.series = vec![mu_s, lam, t_so, t_do, t_tr];
    vec![panel]
}

/// Ablation (beyond the paper): rectangular problems. The paper sweeps
/// square matrices only; this fixes the work volume `m·n·z` and varies
/// the aspect ratio, checking that the normalized miss counts (CCR per
/// block FMA) of the cache-aware schedules stay flat — the Maximum Reuse
/// tilings never depend on the global shape, only on the cache sizes.
pub fn ablation_shapes(opts: &SweepOpts) -> Vec<Panel> {
    let machine = MachineConfig::quad_q32();
    // Shapes of (roughly) constant volume 240³ scaled by `s`.
    let base = if opts.full { 240u32 } else { 120 };
    let shapes: Vec<(&str, u32, u32, u32)> = vec![
        ("square", base, base, base),
        ("tall C (4:1:1)", base * 4, base, base / 4),
        ("wide C (1:4:1)", base / 4, base * 4, base),
        ("deep k (1:1:16)", base / 4, base / 4, base * 16),
        ("panel (16:16:1)", base * 4, base * 4, base / 16),
    ];
    let mut ms_panel = Panel::new(
        "ablation_shapes_ccr_s",
        format!("CCR_S across aspect ratios (volume = {base}^3 blocks, IDEAL)"),
        "shape index",
        "CCR_S = M_S / (m n z)",
    );
    let mut md_panel = Panel::new(
        "ablation_shapes_ccr_d",
        format!("per-core CCR_D across aspect ratios (volume = {base}^3 blocks, IDEAL)"),
        "shape index",
        "CCR_D (average)",
    );
    let mut so = Series::new("Shared Opt. CCR_S");
    let mut so_b = Series::new("Lower bound CCR_S");
    let mut dopt = Series::new("Distributed Opt. CCR_D");
    let mut do_b = Series::new("Lower bound CCR_D");
    for (idx, (name, m, n, z)) in shapes.iter().enumerate() {
        opts.progress(&format!("ablation_shapes: {name}"));
        let problem = ProblemSpec::new(*m, *n, *z);
        let x = idx as f64;
        if let Some(stats) = run_spec(
            opts,
            "ablation_shapes",
            AlgoSpec::named("shared_opt"),
            &machine,
            Setting::Ideal,
            problem,
        ) {
            so.push(x, stats.ccr_shared());
        }
        so_b.push(x, bounds::ccr_lower_bound(machine.shared_capacity));
        if let Some(stats) = run_spec(
            opts,
            "ablation_shapes",
            AlgoSpec::named("distributed_opt"),
            &machine,
            Setting::Ideal,
            problem,
        ) {
            dopt.push(x, stats.ccr_dist());
        }
        do_b.push(x, bounds::ccr_lower_bound(machine.dist_capacity));
    }
    ms_panel.series = vec![so, so_b];
    md_panel.series = vec![dopt, do_b];
    vec![ms_panel, md_panel]
}

/// Extension: BSP makespan versus compute intensity. Sweeps the per-FMA
/// compute time `t_fma` (relative to the transfer time of one block) and
/// reports each algorithm's bulk-synchronous makespan: at `t_fma = 0` the
/// ranking is the paper's `T_data` story; as compute grows, all schedules
/// converge to `mnz·t_fma/p` and the cache-awareness premium vanishes.
pub fn timing(opts: &SweepOpts) -> Vec<Panel> {
    let machine = MachineConfig::quad_q32();
    let d = if opts.full { 192 } else { 96 };
    let problem = ProblemSpec::square(d);
    let mut panel = Panel::new(
        "timing",
        format!("BSP makespan vs compute intensity (order {d}, LRU, unit bandwidths)"),
        "t_fma (block-transfer units)",
        "BSP makespan",
    );
    let algos = all_algorithms();
    let mut series: Vec<Series> = algos.iter().map(|a| Series::new(a.name())).collect();
    let mut compute_floor = Series::new("compute floor mnz*t_fma/p");
    for &t_fma in &[0.0f64, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        opts.progress(&format!("timing: t_fma = {t_fma}"));
        for (a, s) in algos.iter().zip(series.iter_mut()) {
            let scalars = opts.runner.scalars(PointSpec {
                figure: "timing".to_string(),
                algo: AlgoSpec::named(a.id()),
                config: ConfigSpec::Bsp(BspSpec { fma_time: t_fma }),
                machine: machine.clone(),
                problem,
            });
            if let Some(scalars) = scalars {
                s.push(t_fma, scalars[0]);
            }
        }
        compute_floor.push(t_fma, problem.total_fmas() as f64 * t_fma / machine.cores as f64);
    }
    series.push(compute_floor);
    panel.series = series;
    vec![panel]
}

/// Extension (the paper's concluding future work): a cluster of
/// multicores — a three-level cache tree — comparing the hierarchy-aware
/// multi-level Maximum Reuse schedule against the flat two-level
/// algorithms and the cache-oblivious recursion, per tree level.
pub fn cluster(opts: &SweepOpts) -> Vec<Panel> {
    // 4 nodes × (shared 977 × 4 cores of 21) with a 16k-block node cache.
    let cluster_spec = ClusterSpec {
        nodes: 4,
        node_capacity: 16384,
        cores_per_node: 4,
        shared_capacity: 977,
        dist_capacity: 21,
    };
    let total_cores = cluster_spec.nodes * cluster_spec.cores_per_node;
    // The flat algorithms see a two-level machine with all 16 cores.
    let flat_machine = MachineConfig::new(total_cores, 977 * 4, 21, 32);
    let orders: Vec<u32> = match &opts.orders {
        Some(o) => o.clone(),
        None => {
            let max = if opts.full { 480 } else { 320 };
            (64..=max).step_by(64).collect()
        }
    };
    let mut panels: Vec<Panel> = (0..3)
        .map(|l| {
            Panel::new(
                format!("cluster_l{l}"),
                format!(
                    "4-node x 4-core cluster, level {l} ({}) max misses per node",
                    ["node cache", "shared cache", "private cache"][l]
                ),
                "matrix order (blocks)",
                "level misses (max over nodes)",
            )
        })
        .collect();
    let entries: [(&str, &str); 3] = [
        ("Hierarchical Max Reuse", "hierarchical_max_reuse"),
        ("Distributed Opt. (flat)", "distributed_opt"),
        ("Cache Oblivious", "cache_oblivious"),
    ];
    for p in &mut panels {
        p.series = entries.iter().map(|(n, _)| Series::new(*n)).collect();
    }
    for d in orders {
        opts.progress(&format!("cluster: order {d}"));
        for (si, (_, algo_id)) in entries.iter().enumerate() {
            let scalars = opts.runner.scalars(PointSpec {
                figure: "cluster".to_string(),
                algo: AlgoSpec::named(algo_id),
                config: ConfigSpec::Cluster(cluster_spec.clone()),
                machine: flat_machine.clone(),
                problem: ProblemSpec::square(d),
            });
            if let Some(level_misses) = scalars {
                for (l, p) in panels.iter_mut().enumerate() {
                    p.series[si].push(d as f64, level_misses[l]);
                }
            }
        }
    }
    panels
}

/// Extension (the paper's future work): LRU miss counts of the blocked LU
/// factorization, whose trailing updates are scheduled with the paper's
/// matrix-product tilings, against the Loomis–Whitney bound on the update
/// stream.
pub fn lu_update(opts: &SweepOpts) -> Vec<Panel> {
    use mmc_lu::bounds as lu_bounds;
    let machine = MachineConfig::quad_q32();
    let orders: Vec<u32> = match &opts.orders {
        Some(o) => o.clone(),
        None => {
            let max = if opts.full { 288 } else { 160 };
            (32..=max).step_by(32).collect()
        }
    };
    let variants: [(&str, u32, &str); 4] = [
        ("Row stripes w=1", 1, "row_stripes"),
        ("Row stripes w=8", 8, "row_stripes"),
        ("Shared Opt. tiles w=8", 8, "shared_opt"),
        ("Tradeoff tiles w=8", 8, "tradeoff"),
    ];
    let mut ms_panel = Panel::new(
        "lu_update_ms",
        "Blocked LU on the q=32 quad-core (LRU), shared misses",
        "matrix order (blocks)",
        Metric::Ms.label(),
    );
    let mut md_panel = Panel::new(
        "lu_update_md",
        "Blocked LU on the q=32 quad-core (LRU), distributed misses",
        "matrix order (blocks)",
        Metric::Md.label(),
    );
    let mut ms_series: Vec<Series> = variants.iter().map(|(name, ..)| Series::new(*name)).collect();
    let mut md_series: Vec<Series> = variants.iter().map(|(name, ..)| Series::new(*name)).collect();
    let mut ms_lb = Series::new("Update-stream Lower Bound");
    let mut md_lb = Series::new("Update-stream Lower Bound");
    for n in orders {
        opts.progress(&format!("lu_update: order {n}"));
        for ((_, panel_w, tiling), (ms_s, md_s)) in
            variants.iter().zip(ms_series.iter_mut().zip(md_series.iter_mut()))
        {
            let stats = opts.runner.stats(PointSpec {
                figure: "lu_update".to_string(),
                algo: AlgoSpec::BlockedLuSpec(LuSpec {
                    panel: *panel_w,
                    tiling: (*tiling).to_string(),
                }),
                config: ConfigSpec::LuLru,
                machine: machine.clone(),
                problem: ProblemSpec::new(n, n, 1),
            });
            if let Some(stats) = stats {
                ms_s.push(n as f64, stats.ms() as f64);
                md_s.push(n as f64, stats.md() as f64);
            }
        }
        ms_lb.push(n as f64, lu_bounds::ms_lower_bound(n as u64, &machine));
        md_lb.push(n as f64, lu_bounds::md_lower_bound(n as u64, &machine));
    }
    ms_series.push(ms_lb);
    md_series.push(md_lb);
    ms_panel.series = ms_series;
    md_panel.series = md_series;
    vec![ms_panel, md_panel]
}

/// Extension: sanity comparison of every schedule replayed on real data —
/// wall-clock lives in the Criterion benches; this records the per-schedule
/// block-FMA throughput via the counting sink (no cache model).
pub fn event_counts(opts: &SweepOpts) -> Vec<Panel> {
    let d = if opts.full { 200 } else { 100 };
    let problem = ProblemSpec::square(d);
    let machine = MachineConfig::quad_q32();
    let mut panel = Panel::new(
        "event_counts",
        format!("Schedule event volume (order {d})"),
        "algorithm index",
        "events",
    );
    let mut reads = Series::new("reads");
    let mut writes = Series::new("writes");
    let mut fmas = Series::new("fmas");
    for (i, algo) in all_algorithms().iter().enumerate() {
        let scalars = opts.runner.scalars(PointSpec {
            figure: "event_counts".to_string(),
            algo: AlgoSpec::named(algo.id()),
            config: ConfigSpec::Counting,
            machine: machine.clone(),
            problem,
        });
        if let Some(counts) = scalars {
            reads.push(i as f64, counts[0]);
            writes.push(i as f64, counts[1]);
            fmas.push(i as f64, counts[2]);
        }
    }
    panel.series = vec![reads, writes, fmas];
    vec![panel]
}

/// Extension: the Strassen–Winograd cutoff sweep. For each recursion
/// cutoff, the cost model prices a large square product both ways
/// (classic packed 5-loop versus the `7^d` recursion on the paper's
/// quad-core q=32 machine) and reports the predicted crossover side —
/// where the recursion starts to win. Deep recursion (small cutoff)
/// pays addition and conversion traffic; shallow recursion (large
/// cutoff) forfeits the sub-cubic exponent; the sweep exposes the
/// moderate-cutoff sweet spot `mmc exec --algo auto` rides.
pub fn strassen_cutoff(opts: &SweepOpts) -> Vec<Panel> {
    let machine = MachineConfig::quad_q32();
    let q = machine.block_size as u64;
    // One large fixed side, well past every interesting crossover;
    // opts.orders overrides for the smoke tests.
    let d = match &opts.orders {
        Some(o) => o.iter().copied().max().unwrap_or(512),
        None => {
            if opts.full {
                1024
            } else {
                512
            }
        }
    };
    let cutoffs = [2u64, 3, 4, 6, 8, 12, 16, 24, 32];
    let mut time_panel = Panel::new(
        "strassen_cutoff",
        format!("Predicted time vs Strassen cutoff (order {d}, quad q=32, blocking 8x8x8)"),
        "cutoff (blocks)",
        "predicted time (block-transfer units)",
    );
    let mut xover_panel = Panel::new(
        "strassen_crossover",
        "Predicted classic/Strassen crossover vs cutoff (quad q=32)",
        "cutoff (blocks)",
        "crossover side (blocks; -1 = never)",
    );
    let mut classic = Series::new("classic 5-loop");
    let mut strassen = Series::new("Strassen-Winograd");
    let mut depth = Series::new("recursion depth");
    let mut crossover = Series::new("predicted crossover");
    for &cutoff in &cutoffs {
        opts.progress(&format!("strassen_cutoff: cutoff {cutoff}"));
        let scalars = opts.runner.scalars(PointSpec {
            figure: "strassen_cutoff".to_string(),
            algo: AlgoSpec::named("strassen"),
            config: ConfigSpec::StrassenModel(StrassenSpec { q, cutoff, mcb: 8, kcb: 8, ncb: 8 }),
            machine: machine.clone(),
            problem: ProblemSpec::square(d),
        });
        if let Some(s) = scalars {
            classic.push(cutoff as f64, s[0]);
            strassen.push(cutoff as f64, s[1]);
            depth.push(cutoff as f64, s[2]);
            crossover.push(cutoff as f64, s[4]);
        }
    }
    time_panel.series = vec![classic, strassen];
    xover_panel.series = vec![crossover, depth];
    vec![time_panel, xover_panel]
}

/// Stable ids of every figure/ablation the harness can regenerate.
pub fn figure_ids() -> Vec<&'static str> {
    vec![
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "ablation_inclusion",
        "ablation_grid",
        "ablation_oblivious",
        "ablation_associativity",
        "ablation_shapes",
        "q_sweep",
        "timing",
        "lu_update",
        "cluster",
        "event_counts",
        "strassen_cutoff",
    ]
}

/// Run one figure by id.
///
/// # Panics
/// Panics on an unknown id; use [`figure_ids`] for the valid set.
pub fn run_figure(id: &str, opts: &SweepOpts) -> Vec<Panel> {
    match id {
        "fig4" => fig4(opts),
        "fig5" => fig5(opts),
        "fig6" => fig6(opts),
        "fig7" => fig7(opts),
        "fig8" => fig8(opts),
        "fig9" => fig9(opts),
        "fig10" => fig10(opts),
        "fig11" => fig11(opts),
        "fig12" => fig12(opts),
        "ablation_inclusion" => ablation_inclusion(opts),
        "ablation_grid" => ablation_grid(opts),
        "ablation_oblivious" => ablation_oblivious(opts),
        "ablation_associativity" => ablation_associativity(opts),
        "ablation_shapes" => ablation_shapes(opts),
        "timing" => timing(opts),
        "q_sweep" => q_sweep(opts),
        "lu_update" => lu_update(opts),
        "cluster" => cluster(opts),
        "event_counts" => event_counts(opts),
        "strassen_cutoff" => strassen_cutoff(opts),
        other => panic!("unknown figure id {other:?}; known: {:?}", figure_ids()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepOpts {
        SweepOpts { orders: Some(vec![30, 60]), ..SweepOpts::default() }
    }

    #[test]
    fn fig4_series_respect_competitiveness() {
        let panels = fig4(&tiny());
        assert_eq!(panels.len(), 1);
        let p = &panels[0];
        assert_eq!(p.series.len(), 4);
        // LRU(2C) must stay within 2×formula at every sampled order.
        for x in p.xs() {
            let lru2 = p.series[1].y_at(x).unwrap();
            let two_formula = p.series[3].y_at(x).unwrap();
            assert!(lru2 <= two_formula, "x={x}: {lru2} > {two_formula}");
        }
    }

    #[test]
    fn fig7_shared_opt_beats_baselines() {
        let opts = SweepOpts { orders: Some(vec![120]), ..SweepOpts::default() };
        let panels = fig7(&opts);
        assert_eq!(panels.len(), 3);
        let p = &panels[0]; // q = 32
        let x = 120.0;
        let so = p.series[0].y_at(x).unwrap(); // Shared Opt LRU-50
        let se = p.series[2].y_at(x).unwrap(); // Shared Equal LRU-50
        let op = p.series[3].y_at(x).unwrap(); // Outer Product
        let lb = p.series[4].y_at(x).unwrap();
        assert!(so < se, "Shared Opt {so} must beat Shared Equal {se}");
        assert!(so < op, "Shared Opt {so} must beat Outer Product {op}");
        assert!(lb <= p.series[1].y_at(x).unwrap(), "lower bound below IDEAL");
    }

    #[test]
    fn fig12_tradeoff_tracks_the_winner_at_the_extremes() {
        let opts = SweepOpts::default();
        // Sample two ratios directly at a tiny order instead of running
        // the full m = 384 figure.
        let machine = MachineConfig::quad_q32();
        let d = 96u32;
        let stats_so = run(&opts, "test", &SharedOpt, &machine, Setting::Ideal, d).unwrap();
        let stats_do =
            run(&opts, "test", &DistributedOpt::default(), &machine, Setting::Ideal, d).unwrap();
        for (r, reference) in [(0.05, &stats_so), (0.95, &stats_do)] {
            let m_r = machine.clone().with_bandwidth_ratio(r);
            let tp = params::tradeoff_params(&m_r).unwrap();
            let tr = run_spec(
                &opts,
                "test",
                AlgoSpec::TradeoffWith(tp),
                &m_r,
                Setting::Ideal,
                ProblemSpec::square(d),
            )
            .unwrap();
            let t_tr = tr.t_data(m_r.sigma_s, m_r.sigma_d);
            let t_ref = reference.t_data(m_r.sigma_s, m_r.sigma_d);
            assert!(
                t_tr <= t_ref * 1.10,
                "r={r}: Tradeoff {t_tr} should be within 10% of the specialist {t_ref}"
            );
        }
    }

    #[test]
    fn every_figure_id_runs_on_a_tiny_sweep() {
        // Smoke-test the registry (fig12 is skipped here: it pins m = 384
        // and is exercised by the binary / integration tests).
        let opts = tiny();
        for id in figure_ids() {
            if id == "fig12" {
                continue;
            }
            let panels = run_figure(id, &opts);
            assert!(!panels.is_empty(), "{id} produced no panels");
            for p in &panels {
                assert!(!p.series.is_empty(), "{id}/{} has no series", p.id);
                assert!(
                    p.series.iter().all(|s| !s.points.is_empty()),
                    "{id}/{} has empty series",
                    p.id
                );
            }
        }
        // No figure failed a point on the inline path.
        assert_eq!(opts.runner.report().failed, 0);
    }
}
