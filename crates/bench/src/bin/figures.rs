//! `figures` — regenerate the paper's figures as CSV + text tables.
//!
//! ```text
//! figures <id>... [--out DIR] [--full] [--orders 100,200,300] [--quiet]
//!                 [--jobs N] [--resume] [--serial] [--no-cache]
//! figures all
//! figures list
//! ```
//!
//! Each figure id produces one CSV file per panel under `--out`
//! (default `target/figures`) and prints the same data as an aligned
//! table. `--full` switches to the paper-exact sweep ranges (slow);
//! `--orders` overrides the matrix-order sweep for quick looks; `--json`
//! additionally writes each panel as a JSON document.
//!
//! Sweep points run sharded on a rayon pool (`--jobs N`, default all
//! cores) and are written to a content-addressed cache under
//! `<out>/cache/`; `--resume` serves completed points from that cache so
//! an interrupted sweep picks up where it left off. `--serial` forces the
//! single-threaded single-pass path (output is byte-identical either
//! way); `--no-cache` disables the point cache entirely.

use mmc_bench::{figure_ids, run_figure_sharded, HarnessOpts, SweepOpts};
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: figures <id>...|all|list [--out DIR] [--full] [--json] [--orders N,N,...] \
         [--quiet] [--jobs N] [--resume] [--serial] [--no-cache]\n\
         known ids: {}",
        figure_ids().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut out = PathBuf::from("target/figures");
    let mut json = false;
    let mut no_cache = false;
    let mut opts = SweepOpts { verbose: true, ..SweepOpts::default() };
    let mut harness = HarnessOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--full" => opts.full = true,
            "--json" => json = true,
            "--quiet" => opts.verbose = false,
            "--jobs" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match spec.parse::<usize>() {
                    Ok(n) => harness.jobs = Some(n),
                    Err(_) => usage(),
                }
            }
            "--resume" => harness.resume = true,
            "--serial" => harness.serial = true,
            "--no-cache" => no_cache = true,
            "--orders" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let orders: Result<Vec<u32>, _> =
                    spec.split(',').map(|t| t.trim().parse::<u32>()).collect();
                match orders {
                    Ok(o) if !o.is_empty() => opts.orders = Some(o),
                    _ => usage(),
                }
            }
            "list" => {
                for id in figure_ids() {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(figure_ids().iter().map(|s| s.to_string())),
            s if s.starts_with('-') => usage(),
            s => ids.push(s.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();
    let known = figure_ids();
    for id in &ids {
        if !known.contains(&id.as_str()) {
            eprintln!("unknown figure id {id:?}");
            usage();
        }
    }
    if !no_cache {
        harness.cache_dir = Some(out.join("cache"));
    }

    let mut failures = 0usize;
    for id in &ids {
        let t0 = Instant::now();
        eprintln!("== {id} ==");
        let (panels, report) = run_figure_sharded(id, &opts, &harness);
        eprintln!("{}", report.summary(id));
        for err in &report.errors {
            eprintln!("  [points] FAILED {}: {}", err.point, err.message);
        }
        failures += report.failed;
        for panel in &panels {
            match panel.write_csv(&out) {
                Ok(path) => eprintln!("  wrote {}", path.display()),
                Err(e) => {
                    eprintln!("  failed to write CSV for {}: {e}", panel.id);
                    std::process::exit(1);
                }
            }
            if json {
                match panel.write_json(&out) {
                    Ok(path) => eprintln!("  wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("  failed to write JSON for {}: {e}", panel.id);
                        std::process::exit(1);
                    }
                }
            }
            println!("{}", panel.to_table());
        }
        eprintln!("== {id} done in {:.1}s ==\n", t0.elapsed().as_secs_f64());
    }
    if failures > 0 {
        eprintln!("{failures} point(s) failed; affected cells are empty");
        std::process::exit(1);
    }
}
