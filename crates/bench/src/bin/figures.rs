//! `figures` — regenerate the paper's figures as CSV + text tables.
//!
//! ```text
//! figures <id>... [--out DIR] [--full] [--orders 100,200,300] [--quiet]
//! figures all
//! figures list
//! ```
//!
//! Each figure id produces one CSV file per panel under `--out`
//! (default `target/figures`) and prints the same data as an aligned
//! table. `--full` switches to the paper-exact sweep ranges (slow);
//! `--orders` overrides the matrix-order sweep for quick looks; `--json`
//! additionally writes each panel as a JSON document.

use mmc_bench::{figure_ids, run_figure, SweepOpts};
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: figures <id>...|all|list [--out DIR] [--full] [--json] [--orders N,N,...] [--quiet]\n\
         known ids: {}",
        figure_ids().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut out = PathBuf::from("target/figures");
    let mut json = false;
    let mut opts = SweepOpts { verbose: true, ..SweepOpts::default() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--full" => opts.full = true,
            "--json" => json = true,
            "--quiet" => opts.verbose = false,
            "--orders" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let orders: Result<Vec<u32>, _> =
                    spec.split(',').map(|t| t.trim().parse::<u32>()).collect();
                match orders {
                    Ok(o) if !o.is_empty() => opts.orders = Some(o),
                    _ => usage(),
                }
            }
            "list" => {
                for id in figure_ids() {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(figure_ids().iter().map(|s| s.to_string())),
            s if s.starts_with('-') => usage(),
            s => ids.push(s.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();
    let known = figure_ids();
    for id in &ids {
        if !known.contains(&id.as_str()) {
            eprintln!("unknown figure id {id:?}");
            usage();
        }
    }

    for id in &ids {
        let t0 = Instant::now();
        eprintln!("== {id} ==");
        let panels = run_figure(id, &opts);
        for panel in &panels {
            match panel.write_csv(&out) {
                Ok(path) => eprintln!("  wrote {}", path.display()),
                Err(e) => {
                    eprintln!("  failed to write CSV for {}: {e}", panel.id);
                    std::process::exit(1);
                }
            }
            if json {
                match panel.write_json(&out) {
                    Ok(path) => eprintln!("  wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("  failed to write JSON for {}: {e}", panel.id);
                        std::process::exit(1);
                    }
                }
            }
            println!("{}", panel.to_table());
        }
        eprintln!("== {id} done in {:.1}s ==\n", t0.elapsed().as_secs_f64());
    }
}
