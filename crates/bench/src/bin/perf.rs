//! `perf` — emit `BENCH_*.json` machine-readable performance records.
//!
//! ```bash
//! cargo run -p mmc-bench --release --bin perf -- [--out DIR] [--order N] [--q Q]
//! ```
//!
//! Writes `BENCH_exec.json` (parallel/blocked GEMM wall-clock, a
//! per-micro-kernel-variant comparison at q=64 so the dispatched SIMD
//! path's speedup over the scalar fallback is recorded, and an
//! out-of-core streamed run of the same product at a ~5x-undersized
//! RAM budget) and
//! `BENCH_sim.json` (simulator event throughput per algorithm) into the
//! output directory (default `.`).

use mmc_bench::figures::SweepOpts;
use mmc_bench::perf::{best_seconds, write_records, PerfRecord};
use mmc_bench::{run_figure_sharded, HarnessOpts, Setting};
use mmc_core::algorithms::all_algorithms;
use mmc_core::ProblemSpec;
use mmc_exec::{
    gemm_blocked, gemm_parallel, gemm_parallel_with_kernel, kernel, BlockMatrix, Tiling,
};
use mmc_sim::MachineConfig;
use std::path::PathBuf;
use std::process::exit;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = PathBuf::from(flag(&args, "--out").unwrap_or_else(|| ".".into()));
    let order: u32 = flag(&args, "--order").map_or(12, |v| v.parse().unwrap_or(12));
    let q: usize = flag(&args, "--q").map_or(16, |v| v.parse().unwrap_or(16));
    if !out.is_dir() {
        eprintln!("--out {} is not a directory", out.display());
        exit(2);
    }
    let machine = MachineConfig::quad_q32();
    let dispatched = kernel::variant().name();

    // Executor suite: parallel vs cached single-thread blocked GEMM.
    let a = BlockMatrix::pseudo_random(order, order, q, 1);
    let b = BlockMatrix::pseudo_random(order, order, q, 2);
    let flops = 2.0 * (order as f64 * q as f64).powi(3);
    let mut exec_records = Vec::new();
    for (name, tiling) in [
        ("tradeoff", Tiling::tradeoff(&machine)),
        ("shared_opt", Tiling::shared_opt(&machine)),
        ("equal", Tiling::equal(machine.shared_capacity)),
    ] {
        let Some(tiling) = tiling else { continue };
        let secs = best_seconds(3, || {
            std::hint::black_box(gemm_parallel(&a, &b, tiling));
        });
        exec_records.push(PerfRecord {
            suite: "exec".into(),
            name: format!("gemm_parallel/{name}"),
            order,
            seconds: secs,
            work: flops,
            rate_unit: "flop".into(),
            kernel: dispatched.into(),
        });
        let secs = best_seconds(3, || {
            std::hint::black_box(gemm_blocked(&a, &b, tiling));
        });
        exec_records.push(PerfRecord {
            suite: "exec".into(),
            name: format!("gemm_blocked/{name}"),
            order,
            seconds: secs,
            work: flops,
            rate_unit: "flop".into(),
            kernel: dispatched.into(),
        });
    }

    // Kernel comparison: the same parallel GEMM at q=64 under every
    // micro-kernel variant this host supports. The dispatched SIMD
    // record vs the scalar record *is* the packing + register-blocking
    // speedup claim, kept machine-readable.
    let kq = 64;
    let korder = 6u32;
    let ka = BlockMatrix::pseudo_random(korder, korder, kq, 3);
    let kb = BlockMatrix::pseudo_random(korder, korder, kq, 4);
    let kflops = 2.0 * (korder as f64 * kq as f64).powi(3);
    if let Some(tiling) = Tiling::tradeoff(&machine) {
        for v in kernel::variants_available() {
            let secs = best_seconds(3, || {
                std::hint::black_box(gemm_parallel_with_kernel(&ka, &kb, tiling, v));
            });
            exec_records.push(PerfRecord {
                suite: "exec".into(),
                name: format!("gemm_q64/{}", v.name()),
                order: korder,
                seconds: secs,
                work: kflops,
                rate_unit: "flop".into(),
                kernel: v.name().into(),
            });
        }
    }
    // Out-of-core suite: the same product streamed from tiled files on
    // disk through the double-buffered prefetch pipeline, with a RAM
    // budget ~5x smaller than the operands so the record tracks the
    // end-to-end out-of-core path, not a cached in-RAM run.
    {
        use mmc_ooc::{ooc_multiply, write_pseudo_random, OocOpts};
        let dir = std::env::temp_dir().join(format!("mmc-perf-ooc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("ooc temp dir");
        let (a_path, b_path, c_path) =
            (dir.join("a.tiled"), dir.join("b.tiled"), dir.join("c.tiled"));
        write_pseudo_random(&a_path, order, order, q, 1).expect("gen A");
        write_pseudo_random(&b_path, order, order, q, 2).expect("gen B");
        let operand_blocks = 3 * u64::from(order) * u64::from(order);
        let opts = OocOpts::new(operand_blocks / 5 * (q * q * 8) as u64);
        let secs = best_seconds(3, || {
            std::hint::black_box(
                ooc_multiply(&a_path, &b_path, &c_path, &opts).expect("ooc multiply"),
            );
        });
        exec_records.push(PerfRecord {
            suite: "exec".into(),
            name: "ooc_stream/tradeoff".into(),
            order,
            seconds: secs,
            work: flops,
            rate_unit: "flop".into(),
            kernel: dispatched.into(),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    let path = write_records(&out, "exec", &exec_records).expect("write BENCH_exec.json");
    println!("wrote {} ({} records)", path.display(), exec_records.len());

    // Simulator suite: block-FMA throughput under LRU per algorithm.
    let problem = ProblemSpec::square(order.max(20));
    let mut sim_records = Vec::new();
    for algo in all_algorithms() {
        let mut fmas = 0u64;
        let secs = best_seconds(2, || {
            let stats = mmc_bench::simulate(algo.as_ref(), &machine, Setting::LruAt(1), problem)
                .expect("simulate");
            fmas = stats.total_fmas();
        });
        sim_records.push(PerfRecord {
            suite: "sim".into(),
            name: format!("lru/{}", algo.id()),
            order: problem.m,
            seconds: secs,
            work: fmas as f64,
            rate_unit: "block_fmas".into(),
            kernel: "-".into(),
        });
    }
    // Sharded figure harness: serial vs pooled wall-clock for one
    // representative figure. The ratio of these two records is the
    // `--jobs` speedup quoted in EXPERIMENTS.md.
    let sweep = SweepOpts { orders: Some(vec![60, 120, 180, 240]), ..SweepOpts::default() };
    let mut points = 0usize;
    let serial_secs = best_seconds(2, || {
        let opts = HarnessOpts { serial: true, ..HarnessOpts::default() };
        let (_, report) = run_figure_sharded("fig4", &sweep, &opts);
        points = report.total();
    });
    sim_records.push(PerfRecord {
        suite: "sim".into(),
        name: "figures/fig4_serial".into(),
        order: 240,
        seconds: serial_secs,
        work: points as f64,
        rate_unit: "points".into(),
        kernel: "-".into(),
    });
    let jobs = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let sharded_secs = best_seconds(2, || {
        let opts = HarnessOpts { jobs: Some(jobs), ..HarnessOpts::default() };
        let (_, report) = run_figure_sharded("fig4", &sweep, &opts);
        points = report.total();
    });
    sim_records.push(PerfRecord {
        suite: "sim".into(),
        name: format!("figures/fig4_jobs{jobs}"),
        order: 240,
        seconds: sharded_secs,
        work: points as f64,
        rate_unit: "points".into(),
        kernel: "-".into(),
    });
    println!(
        "figures fig4: serial {serial_secs:.3}s, --jobs {jobs} {sharded_secs:.3}s ({:.2}x)",
        serial_secs / sharded_secs
    );

    let path = write_records(&out, "sim", &sim_records).expect("write BENCH_sim.json");
    println!("wrote {} ({} records)", path.display(), sim_records.len());
}
