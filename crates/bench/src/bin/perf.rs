//! `perf` — emit `BENCH_*.json` machine-readable performance records.
//!
//! ```bash
//! cargo run -p mmc-bench --release --bin perf -- [--out DIR] [--order N] [--q Q]
//! cargo run -p mmc-bench --release --bin perf -- --check BENCH_exec.json
//! ```
//!
//! Writes `BENCH_exec.json` (parallel/blocked GEMM wall-clock, a
//! per-micro-kernel-variant comparison at q=64 in both f64 and f32 so
//! the dispatched SIMD path's speedup over the scalar fallback is
//! recorded, an out-of-core streamed run of the same product at a
//! ~5x-undersized RAM budget, and one `roofline` point per kernel
//! variant and element width — arithmetic intensity, GFLOP/s, measured
//! STREAM-triad bandwidth, percent-of-peak, and the 5-loop blocking
//! plan the run executed under) and
//! `BENCH_sim.json` (simulator event throughput per algorithm) into the
//! output directory (default `.`).
//!
//! With `--check BASELINE`, the exec suite is re-measured and compared
//! against the committed baseline instead of written: any kernel-variant
//! record whose rate drops more than 20% below the baseline's fails the
//! run (exit 1) — the CI `perf-regression` gate.

use mmc_bench::figures::SweepOpts;
use mmc_bench::perf::{
    best_seconds, regressions, write_records, write_report, PerfRecord, PerfReport,
};
use mmc_bench::{run_figure_sharded, HarnessOpts, Setting};
use mmc_core::algorithms::all_algorithms;
use mmc_core::ProblemSpec;
use mmc_exec::{
    blocking, exec_drift, gemm_blocked, gemm_parallel, gemm_parallel_with_kernel, kernel,
    run_traced, BlockMatrix, BlockMatrixOf, ExecModel, Tiling,
};
use mmc_obs::{span, PerfCounters, RooflineRecord};
use mmc_sim::MachineConfig;
use std::path::PathBuf;
use std::process::exit;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Fraction below the baseline rate that counts as a regression.
const REGRESSION_TOLERANCE: f64 = 0.2;

/// One roofline point for a kernel-variant run: bytes moved from LLC
/// misses when the PMU is live, else the model's compulsory traffic
/// (2 operand reads + 1 result write of `N²` elements of `elem_bytes`).
#[allow(clippy::too_many_arguments)]
fn roofline_point(
    name: &str,
    kernel_name: &str,
    blocking: &str,
    korder: u32,
    kq: usize,
    elem_bytes: u64,
    kflops: f64,
    seconds: f64,
    bandwidth_gbs: f64,
    run: impl FnOnce(),
) -> RooflineRecord {
    let counters = PerfCounters::open();
    run();
    let reading = counters.read();
    let n = korder as u64 * kq as u64;
    let (bytes_moved, bytes_source) = match reading.get("llc_load_misses") {
        Some(misses) if counters.hardware_available() => (misses * 64, "llc_misses"),
        _ => (3 * n * n * elem_bytes, "model"),
    };
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let peak = mmc_obs::peak_gflops_estimate(
        threads,
        mmc_obs::cpu_ghz_estimate(),
        mmc_obs::flops_per_cycle_for_kernel(kernel_name),
    );
    RooflineRecord::from_measurements(
        name,
        kernel_name,
        blocking,
        korder as usize,
        kflops as u64,
        seconds,
        bytes_moved,
        bytes_source,
        bandwidth_gbs,
        peak,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = PathBuf::from(flag(&args, "--out").unwrap_or_else(|| ".".into()));
    let order: u32 = flag(&args, "--order").map_or(12, |v| v.parse().unwrap_or(12));
    let q: usize = flag(&args, "--q").map_or(16, |v| v.parse().unwrap_or(16));
    let check: Option<PathBuf> = flag(&args, "--check").map(PathBuf::from);
    if check.is_none() && !out.is_dir() {
        eprintln!("--out {} is not a directory", out.display());
        exit(2);
    }
    let machine = MachineConfig::quad_q32();
    let dispatched = kernel::variant().name();

    // Executor suite: parallel vs cached single-thread blocked GEMM.
    let a = BlockMatrix::pseudo_random(order, order, q, 1);
    let b = BlockMatrix::pseudo_random(order, order, q, 2);
    let flops = 2.0 * (order as f64 * q as f64).powi(3);
    let mut exec_records = Vec::new();
    for (name, tiling) in [
        ("tradeoff", Tiling::tradeoff(&machine)),
        ("shared_opt", Tiling::shared_opt(&machine)),
        ("equal", Tiling::equal(machine.shared_capacity)),
    ] {
        let Some(tiling) = tiling else { continue };
        // Sub-millisecond runs: best-of-10 so the committed rate is the
        // machine's actual capability, not scheduler noise — the 20%
        // regression gate needs stable numerators.
        let secs = best_seconds(10, || {
            std::hint::black_box(gemm_parallel(&a, &b, tiling));
        });
        exec_records.push(PerfRecord {
            suite: "exec".into(),
            name: format!("gemm_parallel/{name}"),
            order,
            seconds: secs,
            work: flops,
            rate_unit: "flop".into(),
            kernel: dispatched.into(),
        });
        let secs = best_seconds(10, || {
            std::hint::black_box(gemm_blocked(&a, &b, tiling));
        });
        exec_records.push(PerfRecord {
            suite: "exec".into(),
            name: format!("gemm_blocked/{name}"),
            order,
            seconds: secs,
            work: flops,
            rate_unit: "flop".into(),
            kernel: dispatched.into(),
        });
    }

    // Kernel comparison: the same parallel GEMM at q=64 under every
    // micro-kernel variant this host supports. The dispatched SIMD
    // record vs the scalar record *is* the packing + register-blocking
    // speedup claim, kept machine-readable.
    let kq = 64;
    let korder = 6u32;
    let ka = BlockMatrix::pseudo_random(korder, korder, kq, 3);
    let kb = BlockMatrix::pseudo_random(korder, korder, kq, 4);
    let kflops = 2.0 * (korder as f64 * kq as f64).powi(3);
    let mut roofline = Vec::new();
    let mut drift_reports = Vec::new();
    let bandwidth_gbs = mmc_obs::stream_triad_bandwidth_gbs();
    if let Some(tiling) = Tiling::tradeoff(&machine) {
        // The 5-loop plans the SIMD variants run under (scalar bypasses
        // the macro-kernel, so its records carry no blocking).
        let plan64 = blocking::active_plan::<f64>().to_string();
        let plan32 = blocking::active_plan::<f32>().to_string();
        for v in kernel::variants_available() {
            let plan = if v.is_simd() { plan64.as_str() } else { "" };
            let secs = best_seconds(5, || {
                std::hint::black_box(gemm_parallel_with_kernel(&ka, &kb, tiling, v));
            });
            exec_records.push(PerfRecord {
                suite: "exec".into(),
                name: format!("gemm_q64/{}", v.name()),
                order: korder,
                seconds: secs,
                work: kflops,
                rate_unit: "flop".into(),
                kernel: v.name().into(),
            });
            // One extra counted run puts the variant under the roofline
            // (bytes from LLC misses when the PMU is live).
            roofline.push(roofline_point(
                &format!("gemm_q64/{}", v.name()),
                v.name(),
                plan,
                korder,
                kq,
                8,
                kflops,
                secs,
                bandwidth_gbs,
                || {
                    std::hint::black_box(gemm_parallel_with_kernel(&ka, &kb, tiling, v));
                },
            ));
        }
        // The same product in f32: twice the SIMD lanes, half the
        // traffic. Records are named `gemm_q64_f32/<variant>` with kernel
        // `<variant>_f32` so the roofline uses the doubled flat roof.
        let ka32 = BlockMatrixOf::<f32>::pseudo_random(korder, korder, kq, 3);
        let kb32 = BlockMatrixOf::<f32>::pseudo_random(korder, korder, kq, 4);
        for v in kernel::variants_available() {
            let kname = format!("{}_f32", v.name());
            let plan = if v.is_simd() { plan32.as_str() } else { "" };
            let secs = best_seconds(5, || {
                std::hint::black_box(gemm_parallel_with_kernel(&ka32, &kb32, tiling, v));
            });
            exec_records.push(PerfRecord {
                suite: "exec".into(),
                name: format!("gemm_q64_f32/{}", v.name()),
                order: korder,
                seconds: secs,
                work: kflops,
                rate_unit: "flop".into(),
                kernel: kname.clone(),
            });
            roofline.push(roofline_point(
                &format!("gemm_q64_f32/{}", v.name()),
                &kname,
                plan,
                korder,
                kq,
                4,
                kflops,
                secs,
                bandwidth_gbs,
                || {
                    std::hint::black_box(gemm_parallel_with_kernel(&ka32, &kb32, tiling, v));
                },
            ));
        }
        // Span-recorder overhead A/B: the dispatched variant again with
        // recording disabled. `gemm_q64/<k>` vs `gemm_q64_nospans/<k>`
        // in the committed file *is* the always-on-tracing overhead
        // claim, machine-readable.
        let v = kernel::variant();
        let spans_were_on = span::enabled();
        span::set_enabled(false);
        let secs = best_seconds(5, || {
            std::hint::black_box(gemm_parallel_with_kernel(&ka, &kb, tiling, v));
        });
        span::set_enabled(spans_were_on);
        exec_records.push(PerfRecord {
            suite: "exec".into(),
            name: format!("gemm_q64_nospans/{}", v.name()),
            order: korder,
            seconds: secs,
            work: kflops,
            rate_unit: "flop".into(),
            kernel: v.name().into(),
        });
        // Drift leg: one whole-problem-tile traced run so the five-loop
        // closed forms apply exactly, held to account per phase.
        if span::enabled() {
            let whole = Tiling { tile_m: korder, tile_n: korder, tile_k: 1 };
            let (_c, trun) = run_traced(&ka, &kb, whole, v, blocking::active_plan::<f64>());
            let model = ExecModel::for_run(&ka, &kb, whole, v);
            drift_reports.push(exec_drift(&trun, &model, mmc_obs::drift::DEFAULT_BAND));
        }
    }
    // Strassen–Winograd suite: the recursion against the classic 5-loop
    // path, machine-readable. Three record families:
    //   gemm_strassen_q64/<variant> — a depth-1 recursion at the
    //     kernel-comparison shape with work set to the simulator's
    //     closed-form flop count, so the rate column is directly
    //     comparable with gemm_q64/<variant>;
    //   strassen_cutoff/<c> — one fixed shape swept across leaf
    //     cutoffs (the largest cutoff degenerates to the classic
    //     fallback, anchoring the sweep);
    //   strassen_crossover/measured — the first swept block order where
    //     the measured recursion beats the measured classic run, stored
    //     in the `order` field (0 when classic won everywhere). `work`
    //     is 0 so the regression gate skips this record: the crossover
    //     is a claim about the machine, not a rate to defend.
    {
        use mmc_sim::strassen as sim_strassen;
        use mmc_strassen::{strassen_multiply, StrassenOpts};
        let plan = sim_strassen::strassen_plan(u64::from(korder), 3);
        let sflops = sim_strassen::flops(&plan, kq as u64) as f64;
        for v in kernel::variants_available() {
            let mut opts = StrassenOpts::with_cutoff::<f64>(3);
            opts.variant = v;
            let secs = best_seconds(5, || {
                std::hint::black_box(strassen_multiply(&ka, &kb, &opts));
            });
            exec_records.push(PerfRecord {
                suite: "exec".into(),
                name: format!("gemm_strassen_q64/{}", v.name()),
                order: korder,
                seconds: secs,
                work: sflops,
                rate_unit: "flop".into(),
                kernel: v.name().into(),
            });
        }
        let sorder = 8u32;
        let sa = BlockMatrix::pseudo_random(sorder, sorder, kq, 5);
        let sb = BlockMatrix::pseudo_random(sorder, sorder, kq, 6);
        for cutoff in [2u32, 4, 8] {
            let plan = sim_strassen::strassen_plan(u64::from(sorder), u64::from(cutoff));
            let work = sim_strassen::flops(&plan, kq as u64) as f64;
            let secs = best_seconds(3, || {
                let opts = StrassenOpts::with_cutoff::<f64>(cutoff);
                std::hint::black_box(strassen_multiply(&sa, &sb, &opts));
            });
            exec_records.push(PerfRecord {
                suite: "exec".into(),
                name: format!("strassen_cutoff/{cutoff}"),
                order: sorder,
                seconds: secs,
                work,
                rate_unit: "flop".into(),
                kernel: dispatched.into(),
            });
        }
        // Crossover sweep at q=32 so the cubic growth stays affordable:
        // best-of-3 classic vs best-of-3 depth-capable recursion per
        // order, first strassen win recorded.
        let xq = 32usize;
        let mut measured = 0u32;
        let mut measured_secs = 0.0f64;
        if let Some(tiling) = Tiling::tradeoff(&machine) {
            for n in [4u32, 6, 8, 10, 12] {
                let a = BlockMatrix::pseudo_random(n, n, xq, 7);
                let b = BlockMatrix::pseudo_random(n, n, xq, 8);
                let classic = best_seconds(3, || {
                    std::hint::black_box(gemm_parallel(&a, &b, tiling));
                });
                let strassen = best_seconds(3, || {
                    let opts = StrassenOpts::with_cutoff::<f64>(2);
                    std::hint::black_box(strassen_multiply(&a, &b, &opts));
                });
                println!(
                    "  strassen crossover n={n}: classic {classic:.3e}s, strassen {strassen:.3e}s"
                );
                if measured == 0 && strassen < classic {
                    measured = n;
                    measured_secs = strassen;
                }
            }
        }
        exec_records.push(PerfRecord {
            suite: "exec".into(),
            name: "strassen_crossover/measured".into(),
            order: measured,
            seconds: measured_secs,
            work: 0.0,
            rate_unit: "blocks".into(),
            kernel: dispatched.into(),
        });
    }
    // Out-of-core suite: the same product streamed from tiled files on
    // disk through the double-buffered prefetch pipeline, with a RAM
    // budget ~5x smaller than the operands so the record tracks the
    // end-to-end out-of-core path, not a cached in-RAM run.
    {
        use mmc_ooc::{ooc_multiply, write_pseudo_random, OocOpts};
        let dir = std::env::temp_dir().join(format!("mmc-perf-ooc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("ooc temp dir");
        let (a_path, b_path, c_path) =
            (dir.join("a.tiled"), dir.join("b.tiled"), dir.join("c.tiled"));
        write_pseudo_random(&a_path, order, order, q, 1).expect("gen A");
        write_pseudo_random(&b_path, order, order, q, 2).expect("gen B");
        let operand_blocks = 3 * u64::from(order) * u64::from(order);
        let opts = OocOpts::new(operand_blocks / 5 * (q * q * 8) as u64);
        let mut streamed = None;
        let secs = best_seconds(3, || {
            span::new_job();
            streamed = Some(ooc_multiply(&a_path, &b_path, &c_path, &opts).expect("ooc multiply"));
        });
        if let Some(d) = streamed.and_then(|r| r.drift) {
            drift_reports.push(d);
        }
        exec_records.push(PerfRecord {
            suite: "exec".into(),
            name: "ooc_stream/tradeoff".into(),
            order,
            seconds: secs,
            work: flops,
            rate_unit: "flop".into(),
            kernel: dispatched.into(),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    let mut exec_report = PerfReport::new("exec", exec_records, roofline);
    exec_report.drift = drift_reports;

    // Regression-gate mode: compare against the committed baseline and
    // exit without writing anything.
    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            exit(2);
        });
        let baseline: PerfReport = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {}: {e}", baseline_path.display());
            exit(2);
        });
        let kernel_records: Vec<&PerfRecord> =
            baseline.records.iter().filter(|r| r.kernel != "-").collect();
        println!(
            "checking {} kernel records against {} (tolerance {:.0}%)",
            kernel_records.len(),
            baseline_path.display(),
            100.0 * REGRESSION_TOLERANCE
        );
        for r in &exec_report.records {
            if let Some(base) = baseline.record(&r.name) {
                println!(
                    "  {}: {:.3e} {}/s (baseline {:.3e})",
                    r.name,
                    r.rate(),
                    r.rate_unit,
                    base.rate()
                );
            }
        }
        let bad = regressions(&baseline, &exec_report, REGRESSION_TOLERANCE);
        if bad.is_empty() {
            println!("perf gate: OK");
            exit(0);
        }
        eprintln!("perf gate: {} regression(s) beyond 20%:", bad.len());
        for line in &bad {
            eprintln!("  REGRESSION {line}");
        }
        exit(1);
    }

    let path = write_report(&out, &exec_report).expect("write BENCH_exec.json");
    println!(
        "wrote {} ({} records, {} roofline points)",
        path.display(),
        exec_report.records.len(),
        exec_report.roofline.len()
    );
    for r in &exec_report.roofline {
        println!(
            "  roofline {}: {:.2} GFLOP/s, AI {:.2} flop/B ({}), bw {:.2} GB/s, {:.1}% of roof",
            r.name,
            r.gflops,
            r.arithmetic_intensity,
            r.bytes_source,
            r.bandwidth_gbs,
            r.percent_of_peak
        );
    }

    // Simulator suite: block-FMA throughput under LRU per algorithm.
    let problem = ProblemSpec::square(order.max(20));
    let mut sim_records = Vec::new();
    for algo in all_algorithms() {
        let mut fmas = 0u64;
        let secs = best_seconds(2, || {
            let stats = mmc_bench::simulate(algo.as_ref(), &machine, Setting::LruAt(1), problem)
                .expect("simulate");
            fmas = stats.total_fmas();
        });
        sim_records.push(PerfRecord {
            suite: "sim".into(),
            name: format!("lru/{}", algo.id()),
            order: problem.m,
            seconds: secs,
            work: fmas as f64,
            rate_unit: "block_fmas".into(),
            kernel: "-".into(),
        });
    }
    // Sharded figure harness: serial vs pooled wall-clock for one
    // representative figure. The ratio of these two records is the
    // `--jobs` speedup quoted in EXPERIMENTS.md.
    let sweep = SweepOpts { orders: Some(vec![60, 120, 180, 240]), ..SweepOpts::default() };
    let mut points = 0usize;
    let serial_secs = best_seconds(2, || {
        let opts = HarnessOpts { serial: true, ..HarnessOpts::default() };
        let (_, report) = run_figure_sharded("fig4", &sweep, &opts);
        points = report.total();
    });
    sim_records.push(PerfRecord {
        suite: "sim".into(),
        name: "figures/fig4_serial".into(),
        order: 240,
        seconds: serial_secs,
        work: points as f64,
        rate_unit: "points".into(),
        kernel: "-".into(),
    });
    let jobs = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let sharded_secs = best_seconds(2, || {
        let opts = HarnessOpts { jobs: Some(jobs), ..HarnessOpts::default() };
        let (_, report) = run_figure_sharded("fig4", &sweep, &opts);
        points = report.total();
    });
    sim_records.push(PerfRecord {
        suite: "sim".into(),
        name: format!("figures/fig4_jobs{jobs}"),
        order: 240,
        seconds: sharded_secs,
        work: points as f64,
        rate_unit: "points".into(),
        kernel: "-".into(),
    });
    println!(
        "figures fig4: serial {serial_secs:.3}s, --jobs {jobs} {sharded_secs:.3}s ({:.2}x)",
        serial_secs / sharded_secs
    );

    let path = write_records(&out, "sim", &sim_records).expect("write BENCH_sim.json");
    println!("wrote {} ({} records)", path.display(), sim_records.len());
}
