//! Sweep engine: run (algorithm × setting × problem) simulations and
//! collect labeled series, the building blocks of every figure.

use mmc_core::algorithms::{AlgoError, Algorithm};
use mmc_core::ProblemSpec;
use mmc_sim::{MachineConfig, SimConfig, SimStats, Simulator};
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The simulation settings of the paper's evaluation (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Setting {
    /// Omniscient replacement at the declared capacities — the
    /// theoretical model.
    Ideal,
    /// LRU replacement with only *half* of each physical capacity declared
    /// to the algorithm; "the other half is thus used by the LRU policy as
    /// kind of an automatic prefetching buffer".
    Lru50,
    /// LRU replacement with physical capacities `factor ×` the declared
    /// ones (Fig. 4–6 use factors 1 and 2).
    LruAt(usize),
}

impl Setting {
    /// Figure-legend label fragment.
    pub fn label(&self) -> String {
        match self {
            Setting::Ideal => "IDEAL".to_string(),
            Setting::Lru50 => "LRU-50".to_string(),
            Setting::LruAt(1) => "LRU (C)".to_string(),
            Setting::LruAt(f) => format!("LRU ({f}C)"),
        }
    }

    /// The capacities declared to the algorithm.
    pub fn declared(&self, machine: &MachineConfig) -> MachineConfig {
        match self {
            Setting::Lru50 => machine.halved(),
            _ => machine.clone(),
        }
    }

    /// The physical simulator configuration.
    pub fn sim_config(&self, machine: &MachineConfig) -> SimConfig {
        match self {
            Setting::Ideal => SimConfig::ideal(machine),
            Setting::Lru50 => SimConfig::lru(machine),
            Setting::LruAt(f) => SimConfig::lru_scaled(machine, *f),
        }
    }
}

/// Run one simulation point.
///
/// Outer Product manages no residency, so under [`Setting::Ideal`] it is
/// (as in the paper, which calls it "insensitive to cache policies") run
/// once under full-capacity LRU instead.
pub fn simulate(
    algo: &dyn Algorithm,
    machine: &MachineConfig,
    setting: Setting,
    problem: ProblemSpec,
) -> Result<SimStats, AlgoError> {
    let (declared, cfg) = if algo.id() == "outer_product" && setting == Setting::Ideal {
        (machine.clone(), SimConfig::lru(machine))
    } else {
        (setting.declared(machine), setting.sim_config(machine))
    };
    let mut sim = Simulator::new(cfg, problem.m, problem.n, problem.z);
    algo.execute(&declared, &problem, &mut sim)?;
    Ok(sim.into_stats())
}

/// Which scalar a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Shared-cache misses `M_S`.
    Ms,
    /// Max-over-cores distributed misses `M_D`.
    Md,
    /// `T_data = M_S/σ_S + M_D/σ_D`.
    TData,
}

impl Metric {
    /// Extract the metric from run statistics under `machine` bandwidths.
    pub fn of(&self, stats: &SimStats, machine: &MachineConfig) -> f64 {
        match self {
            Metric::Ms => stats.ms() as f64,
            Metric::Md => stats.md() as f64,
            Metric::TData => stats.t_data(machine.sigma_s, machine.sigma_d),
        }
    }

    /// Axis label.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Ms => "shared cache misses M_S",
            Metric::Md => "distributed cache misses M_D",
            Metric::TData => "data access time T_data",
        }
    }
}

/// One plotted curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A new empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series { label: label.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| (px - x).abs() < 1e-9).map(|&(_, y)| y)
    }
}

/// One (sub-)figure: an x-axis sweep with several series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Panel {
    /// Stable file-system id, e.g. `fig7a`.
    pub id: String,
    /// Human title, e.g. `C_S = 977, q = 32`.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Panel {
    /// Create an empty panel.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
    ) -> Panel {
        Panel {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
        }
    }

    /// Write `<id>.csv` under `dir` (one `x` column, one column per series).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        write!(f, "{}", csv_quote(&self.xlabel))?;
        for s in &self.series {
            write!(f, ",{}", csv_quote(&s.label))?;
        }
        writeln!(f)?;
        let xs = self.xs();
        for x in xs {
            write!(f, "{x}")?;
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => write!(f, ",{y}")?,
                    None => write!(f, ",")?,
                }
            }
            writeln!(f)?;
        }
        Ok(path)
    }

    /// Write `<id>.json` under `dir` (the full panel, serde-serialized,
    /// for downstream plotting tools).
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        serde_json::to_writer_pretty(file, self).map_err(std::io::Error::other)?;
        Ok(path)
    }

    /// All distinct x values across series, in ascending order.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> =
            self.series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Render an aligned text table (what the `figures` binary prints).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out, "   y: {}", self.ylabel);
        let mut header = format!("{:>12}", self.xlabel);
        for s in &self.series {
            header.push_str(&format!(" {:>22}", truncate(&s.label, 22)));
        }
        let _ = writeln!(out, "{header}");
        for x in self.xs() {
            let mut row = format!("{:>12}", trim_float(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => row.push_str(&format!(" {:>22}", trim_float(y))),
                    None => row.push_str(&format!(" {:>22}", "-")),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).chain(std::iter::once('…')).collect()
    }
}

fn trim_float(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

fn csv_quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_core::algorithms::SharedOpt;

    #[test]
    fn settings_declare_the_right_capacities() {
        let m = MachineConfig::quad_q32();
        assert_eq!(Setting::Ideal.declared(&m).shared_capacity, 977);
        assert_eq!(Setting::Lru50.declared(&m).shared_capacity, 488);
        assert_eq!(Setting::Lru50.sim_config(&m).shared_capacity, 977);
        assert_eq!(Setting::LruAt(2).sim_config(&m).shared_capacity, 1954);
        assert_eq!(Setting::LruAt(2).declared(&m).shared_capacity, 977);
        assert_eq!(Setting::LruAt(1).label(), "LRU (C)");
        assert_eq!(Setting::LruAt(2).label(), "LRU (2C)");
    }

    #[test]
    fn simulate_runs_an_algorithm_end_to_end() {
        let m = MachineConfig::quad_q32();
        let p = ProblemSpec::square(30);
        let stats = simulate(&SharedOpt, &m, Setting::Ideal, p).unwrap();
        assert_eq!(stats.ms(), 30 * 30 + 2 * 30u64.pow(3) / 30);
        let stats = simulate(&SharedOpt, &m, Setting::Lru50, p).unwrap();
        assert!(stats.ms() >= 900);
    }

    #[test]
    fn outer_product_falls_back_to_lru_under_ideal_setting() {
        use mmc_core::algorithms::OuterProduct;
        let m = MachineConfig::quad_q32();
        let p = ProblemSpec::square(8);
        let ideal = simulate(&OuterProduct::default(), &m, Setting::Ideal, p).unwrap();
        let lru = simulate(&OuterProduct::default(), &m, Setting::LruAt(1), p).unwrap();
        assert_eq!(ideal, lru);
    }

    #[test]
    fn metric_extraction() {
        let m = MachineConfig::quad_q32().with_bandwidths(2.0, 1.0);
        let mut stats = SimStats::new(2);
        stats.shared_misses = 10;
        stats.dist_misses = vec![4, 6];
        assert_eq!(Metric::Ms.of(&stats, &m), 10.0);
        assert_eq!(Metric::Md.of(&stats, &m), 6.0);
        assert_eq!(Metric::TData.of(&stats, &m), 5.0 + 6.0);
    }

    #[test]
    fn panel_csv_and_table() {
        let mut p = Panel::new("t", "title", "x", "y");
        let mut s = Series::new("a,b");
        s.push(1.0, 2.0);
        s.push(2.0, 4.0);
        p.series.push(s);
        let dir = std::env::temp_dir().join("mmc_bench_test_csv");
        let path = p.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("x,\"a,b\"\n1,2\n2,4\n"));
        let table = p.to_table();
        assert!(table.contains("## t"));
        assert!(table.contains('4'));
    }

    #[test]
    fn series_y_at() {
        let mut s = Series::new("s");
        s.push(3.0, 9.0);
        assert_eq!(s.y_at(3.0), Some(9.0));
        assert_eq!(s.y_at(4.0), None);
    }
}
