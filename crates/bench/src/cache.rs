//! Content-addressed on-disk cache for completed sweep points.
//!
//! Each completed point is written to its own JSON file under the cache
//! directory, addressed by an FNV-1a hash of the point's canonical key
//! (the serde serialization of its [`PointSpec`](crate::points::PointSpec)
//! prefixed with a harness version salt). The full key string is stored
//! *inside* the file and verified on load, so a hash collision or a
//! harness upgrade can never replay a stale value — it just misses.
//!
//! Writes go through a temp file + rename so an interrupted run (Ctrl-C,
//! OOM kill) leaves either a complete entry or none; `--resume` then
//! skips every point whose entry survived.

use crate::points::PointValue;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Version salt mixed into every cache key. Bump whenever the meaning of
/// a point (simulator semantics, spec encoding, value encoding) changes:
/// old entries then miss instead of replaying stale results.
pub const POINT_CACHE_VERSION: &str = "points-v1";

/// 64-bit FNV-1a hash (the cache's file-addressing hash; collisions are
/// tolerated because the full key is re-checked on load).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct CacheEntry {
    /// The full canonical key (salt + spec JSON), verified on load.
    key: String,
    /// The cached point value.
    value: PointValue,
}

/// Handle on the on-disk point cache.
///
/// Stores are always enabled (a completed point is always worth keeping);
/// loads are gated on `read` so a plain run recomputes everything while a
/// `--resume` run is served from disk.
#[derive(Clone, Debug)]
pub struct PointCache {
    dir: PathBuf,
    read: bool,
}

impl PointCache {
    /// Open (creating if needed) the cache under `dir`. `read` enables
    /// serving hits (the `--resume` flag); writes always happen.
    pub fn new(dir: impl Into<PathBuf>, read: bool) -> std::io::Result<PointCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PointCache { dir, read })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether loads are enabled.
    pub fn reads_enabled(&self) -> bool {
        self.read
    }

    /// File path addressing `key`.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", fnv1a_64(key.as_bytes())))
    }

    /// Load the value cached under `key`, if reads are enabled and a
    /// complete entry with a matching key exists.
    pub fn load(&self, key: &str) -> Option<PointValue> {
        if !self.read {
            return None;
        }
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        let entry: CacheEntry = serde_json::from_str(&text).ok()?;
        (entry.key == key).then_some(entry.value)
    }

    /// Store `value` under `key`, atomically (temp file + rename).
    /// Best-effort: cache I/O failures never fail the sweep.
    pub fn store(&self, key: &str, value: &PointValue) {
        let path = self.path_for(key);
        let tmp =
            self.dir.join(format!(".{:016x}.tmp{}", fnv1a_64(key.as_bytes()), std::process::id()));
        let entry = CacheEntry { key: key.to_string(), value: value.clone() };
        if let Ok(text) = serde_json::to_string(&entry) {
            let _ = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mmc_point_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = PointCache::new(tmp_dir("round_trip"), true).unwrap();
        let value = PointValue::Scalars(vec![1.5, -2.0, 0.0]);
        cache.store("key-1", &value);
        assert_eq!(cache.load("key-1"), Some(value));
        assert_eq!(cache.load("key-2"), None);
    }

    #[test]
    fn reads_gated_but_writes_always_on() {
        let dir = tmp_dir("gated");
        let write_only = PointCache::new(&dir, false).unwrap();
        let value = PointValue::Scalars(vec![42.0]);
        write_only.store("k", &value);
        assert_eq!(write_only.load("k"), None, "reads disabled");
        let reader = PointCache::new(&dir, true).unwrap();
        assert_eq!(reader.load("k"), Some(value), "entry was still written");
    }

    #[test]
    fn key_mismatch_in_entry_misses() {
        // A colliding or stale file whose stored key differs must miss.
        let cache = PointCache::new(tmp_dir("mismatch"), true).unwrap();
        cache.store("old-key", &PointValue::Scalars(vec![1.0]));
        let stale = cache.path_for("old-key");
        let clashing = cache.path_for("new-key");
        std::fs::rename(stale, clashing).unwrap();
        assert_eq!(cache.load("new-key"), None);
    }

    #[test]
    fn corrupt_entry_misses() {
        let cache = PointCache::new(tmp_dir("corrupt"), true).unwrap();
        std::fs::write(cache.path_for("k"), "{not json").unwrap();
        assert_eq!(cache.load("k"), None);
    }
}
