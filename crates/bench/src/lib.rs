//! # mmc-bench — experiment harness
//!
//! Regenerates every figure of the paper's evaluation section (Figs.
//! 4–12) plus ablations, as CSV series and text tables:
//!
//! ```bash
//! cargo run -p mmc-bench --release --bin figures -- all
//! cargo run -p mmc-bench --release --bin figures -- fig7 --full
//! ```
//!
//! The [`sweep`] module provides the simulation settings (IDEAL, LRU-50,
//! LRU at scaled capacity) and series/panel plumbing; [`figures`] defines
//! the per-figure sweeps; [`points`] decomposes them into independent
//! sweep points for the sharded/resumable driver (`--jobs`/`--resume`),
//! with [`cache`] providing the content-addressed on-disk point cache.
//! Criterion wall-clock benches live under `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod figures;
pub mod perf;
pub mod points;
pub mod sweep;

pub use cache::{PointCache, POINT_CACHE_VERSION};
pub use figures::{figure_ids, run_figure, SweepOpts};
pub use perf::{regressions, write_records, write_report, PerfRecord, PerfReport};
pub use points::{
    run_figure_sharded, HarnessOpts, PointReport, PointRunner, PointSpec, PointValue, RunMode,
};
pub use sweep::{simulate, Metric, Panel, Series, Setting};
