//! Machine-readable performance records (`BENCH_*.json`).
//!
//! Criterion's reports are for humans; CI and the figure pipeline want
//! flat JSON. A [`PerfRecord`] is one timed measurement (suite, name,
//! problem size, seconds, optional derived rate); [`write_records`]
//! serializes a batch to `BENCH_<suite>.json` in a target directory. The
//! `perf` binary (`cargo run -p mmc-bench --bin perf`) emits records for
//! the executor and the simulator.

use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// One timed measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Suite the record belongs to (`"exec"`, `"sim"`, ...).
    pub suite: String,
    /// Measurement name within the suite.
    pub name: String,
    /// Problem order (blocks per matrix dimension).
    pub order: u32,
    /// Best observed wall-clock seconds.
    pub seconds: f64,
    /// Work per run, in the unit named by `rate_unit` (0 if untimed work).
    pub work: f64,
    /// Unit of `work` (`"flop"`, `"events"`, ...).
    pub rate_unit: String,
    /// Micro-kernel variant the measurement ran on (`"scalar"`,
    /// `"avx2_fma"`, `"neon"`), or `"-"` for records where no kernel is
    /// involved (simulator suites), so the perf trajectory attributes
    /// speedups to the kernel in use.
    #[serde(default = "PerfRecord::no_kernel")]
    pub kernel: String,
}

impl PerfRecord {
    /// Placeholder kernel name for suites that don't run one.
    fn no_kernel() -> String {
        "-".to_string()
    }

    /// Work per second (`work / seconds`); 0 if the timing is degenerate.
    pub fn rate(&self) -> f64 {
        if self.seconds > 0.0 {
            self.work / self.seconds
        } else {
            0.0
        }
    }
}

/// A batch of records plus the file layout they serialize to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Report schema version ([`mmc_obs::SCHEMA_VERSION`]); files
    /// written before the field read back as 0.
    #[serde(default)]
    pub schema_version: u32,
    /// Suite name; the file is `BENCH_<suite>.json`.
    pub suite: String,
    /// The measurements.
    pub records: Vec<PerfRecord>,
    /// Roofline points for the kernel-variant records (empty for suites
    /// that don't run kernels, and for files written before the field).
    #[serde(default)]
    pub roofline: Vec<mmc_obs::RooflineRecord>,
    /// Git commit the record was measured at (best-effort `git
    /// rev-parse HEAD`; `"unknown"` when git or the repo is missing,
    /// and for files written before the field).
    #[serde(default = "unknown_commit")]
    pub git_commit: String,
    /// Predicted-vs-measured drift reports captured alongside the
    /// timings (exec and ooc legs; empty for suites without traced
    /// runs and for files written before the field).
    #[serde(default)]
    pub drift: Vec<mmc_obs::DriftReport>,
}

/// Placeholder for reports measured outside a git checkout.
fn unknown_commit() -> String {
    "unknown".to_string()
}

/// Best-effort commit stamp: `git rev-parse HEAD` in the current
/// directory, `"unknown"` when git is absent, the cwd is not a repo, or
/// the output is not a hex id.
pub fn git_commit() -> String {
    let out = std::process::Command::new("git").args(["rev-parse", "HEAD"]).output();
    match out {
        Ok(o) if o.status.success() => {
            let text = String::from_utf8_lossy(&o.stdout).trim().to_string();
            if !text.is_empty() && text.chars().all(|c| c.is_ascii_hexdigit()) {
                text
            } else {
                unknown_commit()
            }
        }
        _ => unknown_commit(),
    }
}

impl PerfReport {
    /// Assemble a report, stamping the current schema version and the
    /// checkout's commit id.
    pub fn new(
        suite: &str,
        records: Vec<PerfRecord>,
        roofline: Vec<mmc_obs::RooflineRecord>,
    ) -> PerfReport {
        PerfReport {
            schema_version: mmc_obs::SCHEMA_VERSION,
            suite: suite.to_string(),
            records,
            roofline,
            git_commit: git_commit(),
            drift: Vec::new(),
        }
    }

    /// The record named `name`, if present.
    pub fn record(&self, name: &str) -> Option<&PerfRecord> {
        self.records.iter().find(|r| r.name == name)
    }
}

/// Serialize `records` to `<dir>/BENCH_<suite>.json` (pretty-printed),
/// returning the path written.
pub fn write_records(dir: &Path, suite: &str, records: &[PerfRecord]) -> io::Result<PathBuf> {
    write_report(dir, &PerfReport::new(suite, records.to_vec(), Vec::new()))
}

/// Serialize a full report (records + roofline points) to
/// `<dir>/BENCH_<suite>.json`, returning the path written.
pub fn write_report(dir: &Path, report: &PerfReport) -> io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{}.json", report.suite));
    let file = std::fs::File::create(&path)?;
    serde_json::to_writer_pretty(file, report).map_err(io::Error::other)?;
    Ok(path)
}

/// Compare fresh exec records against a committed baseline report: any
/// kernel-variant record whose rate drops more than `tolerance`
/// (fractional, e.g. `0.2`) below the baseline's is a regression.
/// Returns human-readable regression lines (empty = gate passes).
/// Records missing from either side are skipped — new benchmarks must
/// not fail the gate, and retired ones must not block it.
pub fn regressions(baseline: &PerfReport, fresh: &PerfReport, tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for base in &baseline.records {
        let Some(now) = fresh.record(&base.name) else { continue };
        let (base_rate, now_rate) = (base.rate(), now.rate());
        if base_rate <= 0.0 {
            continue;
        }
        if now_rate < base_rate * (1.0 - tolerance) {
            out.push(format!(
                "{}: {:.3e} {}/s vs baseline {:.3e} ({:+.1}%)",
                base.name,
                now_rate,
                base.rate_unit,
                base_rate,
                100.0 * (now_rate / base_rate - 1.0),
            ));
        }
    }
    out
}

/// Time `f` (one warmup + `runs` timed runs) and return the best seconds.
pub fn best_seconds<F: FnMut()>(runs: u32, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_and_land_in_named_file() {
        let dir = std::env::temp_dir().join(format!("mmc-perf-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let records = vec![PerfRecord {
            suite: "exec".into(),
            name: "gemm_parallel/tradeoff".into(),
            order: 8,
            seconds: 0.25,
            work: 1.0e9,
            rate_unit: "flop".into(),
            kernel: "avx2_fma".into(),
        }];
        let path = write_records(&dir, "exec", &records).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_exec.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let back: PerfReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.records, records);
        assert!((back.records[0].rate() - 4.0e9).abs() < 1.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kernel_field_defaults_for_pre_kernel_records() {
        // BENCH_*.json written before the kernel subsystem lacks the
        // field; deserialization fills the placeholder.
        let old = r#"{"suite":"sim","name":"lru/shared_opt","order":20,
                      "seconds":0.1,"work":8000.0,"rate_unit":"block_fmas"}"#;
        let rec: PerfRecord = serde_json::from_str(old).unwrap();
        assert_eq!(rec.kernel, "-");
    }

    fn rec(name: &str, seconds: f64) -> PerfRecord {
        PerfRecord {
            suite: "exec".into(),
            name: name.into(),
            order: 6,
            seconds,
            work: 1.0e9,
            rate_unit: "flop".into(),
            kernel: "scalar".into(),
        }
    }

    #[test]
    fn regression_gate_flags_big_drops_only() {
        let baseline = PerfReport::new(
            "exec",
            vec![rec("gemm_q64/scalar", 1.0), rec("gemm_q64/avx2_fma", 0.5), rec("gone", 1.0)],
            Vec::new(),
        );
        let fresh = PerfReport::new(
            "exec",
            vec![
                rec("gemm_q64/scalar", 1.1),    // 9% slower: within tolerance
                rec("gemm_q64/avx2_fma", 0.75), // 33% slower: regression
                rec("brand_new", 5.0),          // not in baseline: skipped
            ],
            Vec::new(),
        );
        let bad = regressions(&baseline, &fresh, 0.2);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].starts_with("gemm_q64/avx2_fma"), "{bad:?}");
        assert!(regressions(&baseline, &fresh, 0.5).is_empty());
    }

    #[test]
    fn old_reports_read_with_schema_defaults() {
        let old = r#"{"suite":"exec","records":[]}"#;
        let rep: PerfReport = serde_json::from_str(old).unwrap();
        assert_eq!(rep.schema_version, 0);
        assert!(rep.roofline.is_empty());
        assert_eq!(rep.git_commit, "unknown");
        assert!(rep.drift.is_empty());
        assert_eq!(PerfReport::new("exec", vec![], vec![]).schema_version, mmc_obs::SCHEMA_VERSION);
    }

    #[test]
    fn commit_stamp_is_hex_or_unknown() {
        let c = git_commit();
        assert!(
            c == "unknown" || (c.len() == 40 && c.chars().all(|ch| ch.is_ascii_hexdigit())),
            "{c}"
        );
        // Fresh reports carry the stamp.
        let rep = PerfReport::new("exec", vec![], vec![]);
        assert_eq!(rep.git_commit, c);
    }

    #[test]
    fn best_seconds_is_positive() {
        let s = best_seconds(2, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(s >= 0.0 && s.is_finite());
    }
}
