//! Machine-readable performance records (`BENCH_*.json`).
//!
//! Criterion's reports are for humans; CI and the figure pipeline want
//! flat JSON. A [`PerfRecord`] is one timed measurement (suite, name,
//! problem size, seconds, optional derived rate); [`write_records`]
//! serializes a batch to `BENCH_<suite>.json` in a target directory. The
//! `perf` binary (`cargo run -p mmc-bench --bin perf`) emits records for
//! the executor and the simulator.

use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// One timed measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Suite the record belongs to (`"exec"`, `"sim"`, ...).
    pub suite: String,
    /// Measurement name within the suite.
    pub name: String,
    /// Problem order (blocks per matrix dimension).
    pub order: u32,
    /// Best observed wall-clock seconds.
    pub seconds: f64,
    /// Work per run, in the unit named by `rate_unit` (0 if untimed work).
    pub work: f64,
    /// Unit of `work` (`"flop"`, `"events"`, ...).
    pub rate_unit: String,
    /// Micro-kernel variant the measurement ran on (`"scalar"`,
    /// `"avx2_fma"`, `"neon"`), or `"-"` for records where no kernel is
    /// involved (simulator suites), so the perf trajectory attributes
    /// speedups to the kernel in use.
    #[serde(default = "PerfRecord::no_kernel")]
    pub kernel: String,
}

impl PerfRecord {
    /// Placeholder kernel name for suites that don't run one.
    fn no_kernel() -> String {
        "-".to_string()
    }

    /// Work per second (`work / seconds`); 0 if the timing is degenerate.
    pub fn rate(&self) -> f64 {
        if self.seconds > 0.0 {
            self.work / self.seconds
        } else {
            0.0
        }
    }
}

/// A batch of records plus the file layout they serialize to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Suite name; the file is `BENCH_<suite>.json`.
    pub suite: String,
    /// The measurements.
    pub records: Vec<PerfRecord>,
}

/// Serialize `records` to `<dir>/BENCH_<suite>.json` (pretty-printed),
/// returning the path written.
pub fn write_records(dir: &Path, suite: &str, records: &[PerfRecord]) -> io::Result<PathBuf> {
    let report = PerfReport { suite: suite.to_string(), records: records.to_vec() };
    let path = dir.join(format!("BENCH_{suite}.json"));
    let file = std::fs::File::create(&path)?;
    serde_json::to_writer_pretty(file, &report).map_err(io::Error::other)?;
    Ok(path)
}

/// Time `f` (one warmup + `runs` timed runs) and return the best seconds.
pub fn best_seconds<F: FnMut()>(runs: u32, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_and_land_in_named_file() {
        let dir = std::env::temp_dir().join(format!("mmc-perf-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let records = vec![PerfRecord {
            suite: "exec".into(),
            name: "gemm_parallel/tradeoff".into(),
            order: 8,
            seconds: 0.25,
            work: 1.0e9,
            rate_unit: "flop".into(),
            kernel: "avx2_fma".into(),
        }];
        let path = write_records(&dir, "exec", &records).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_exec.json");
        let text = std::fs::read_to_string(&path).unwrap();
        let back: PerfReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.records, records);
        assert!((back.records[0].rate() - 4.0e9).abs() < 1.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kernel_field_defaults_for_pre_kernel_records() {
        // BENCH_*.json written before the kernel subsystem lacks the
        // field; deserialization fills the placeholder.
        let old = r#"{"suite":"sim","name":"lru/shared_opt","order":20,
                      "seconds":0.1,"work":8000.0,"rate_unit":"block_fmas"}"#;
        let rec: PerfRecord = serde_json::from_str(old).unwrap();
        assert_eq!(rec.kernel, "-");
    }

    #[test]
    fn best_seconds_is_positive() {
        let s = best_seconds(2, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(s >= 0.0 && s.is_finite());
    }
}
