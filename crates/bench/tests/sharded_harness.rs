//! Integration tests for the sharded figure harness: byte-identical
//! serial vs sharded output, and `--resume` cache behaviour.

use mmc_bench::figures::{figure_ids, SweepOpts};
use mmc_bench::sweep::Panel;
use mmc_bench::{run_figure_sharded, HarnessOpts};
use std::path::{Path, PathBuf};

fn tiny() -> SweepOpts {
    SweepOpts { orders: Some(vec![30, 60]), ..SweepOpts::default() }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmc_sharded_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Render every panel of a figure the way the binaries do and return the
/// concatenated CSV bytes.
fn csv_bytes(panels: &[Panel], dir: &Path) -> Vec<u8> {
    let mut all = Vec::new();
    for p in panels {
        let path = p.write_csv(dir).expect("write csv");
        all.extend_from_slice(&std::fs::read(&path).expect("read csv"));
    }
    all
}

/// The tentpole guarantee: for every figure id, the sharded run emits
/// CSV bytes identical to the serial run's. The id list covers every
/// `ConfigSpec` variant — `Setting` (fig4/fig7), `Lru`
/// (ablation_inclusion, ablation_associativity), `Bsp` (timing),
/// `Counting` (event_counts), `Cluster` (cluster), `LuLru` (lu_update) —
/// plus the formula-only q_sweep. fig12 pins m = 384 and is exercised by
/// the CI smoke job instead.
#[test]
fn sharded_output_is_byte_identical_to_serial() {
    let dir = temp_dir("identity");
    for id in figure_ids() {
        if id == "fig12" {
            continue;
        }
        let serial_opts = HarnessOpts { serial: true, ..HarnessOpts::default() };
        let (serial_panels, serial_report) = run_figure_sharded(id, &tiny(), &serial_opts);
        assert_eq!(serial_report.failed, 0, "{id}: serial run failed points");

        let sharded_opts = HarnessOpts { jobs: Some(4), ..HarnessOpts::default() };
        let (sharded_panels, sharded_report) = run_figure_sharded(id, &tiny(), &sharded_opts);
        assert_eq!(sharded_report.failed, 0, "{id}: sharded run failed points");

        let serial_dir = dir.join(format!("{id}_serial"));
        let sharded_dir = dir.join(format!("{id}_sharded"));
        assert_eq!(
            csv_bytes(&serial_panels, &serial_dir),
            csv_bytes(&sharded_panels, &sharded_dir),
            "{id}: sharded CSV differs from serial"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--resume` semantics end to end: a second run against the same cache
/// directory computes nothing, and deleting a single cache file recomputes
/// exactly that one point.
#[test]
fn resume_serves_completed_points_from_the_cache() {
    let dir = temp_dir("resume");
    let cache_dir = dir.join("cache");
    let opts = HarnessOpts {
        jobs: Some(2),
        resume: true,
        cache_dir: Some(cache_dir.clone()),
        serial: false,
    };

    let (panels1, report1) = run_figure_sharded("fig4", &tiny(), &opts);
    assert!(report1.computed > 0, "first run computes points");
    assert_eq!((report1.cached, report1.failed), (0, 0));

    let (panels2, report2) = run_figure_sharded("fig4", &tiny(), &opts);
    assert_eq!(report2.computed, 0, "second run must be fully cache-served");
    assert_eq!(report2.cached, report1.computed);
    assert_eq!(report2.failed, 0);
    assert_eq!(
        csv_bytes(&panels1, &dir.join("run1")),
        csv_bytes(&panels2, &dir.join("run2")),
        "resumed output differs from the original"
    );

    // Invalidate exactly one point: only it is recomputed.
    let victim = std::fs::read_dir(&cache_dir)
        .expect("cache dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("cache has entries");
    std::fs::remove_file(&victim).expect("remove one cache entry");
    let (_, report3) = run_figure_sharded("fig4", &tiny(), &opts);
    assert_eq!(report3.computed, 1, "exactly the deleted point is recomputed");
    assert_eq!(report3.cached, report1.computed - 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Without `resume`, a populated cache directory is write-only: every
/// point recomputes (and refreshes its entry).
#[test]
fn without_resume_the_cache_is_not_read() {
    let dir = temp_dir("noresume");
    let cache_dir = dir.join("cache");
    let warm = HarnessOpts {
        jobs: Some(2),
        resume: true,
        cache_dir: Some(cache_dir.clone()),
        serial: false,
    };
    let (_, report1) = run_figure_sharded("event_counts", &tiny(), &warm);
    assert!(report1.computed > 0);

    let cold = HarnessOpts { resume: false, ..warm };
    let (_, report2) = run_figure_sharded("event_counts", &tiny(), &cold);
    assert_eq!(report2.cached, 0, "cache reads must be gated on --resume");
    assert_eq!(report2.computed, report1.computed);

    let _ = std::fs::remove_dir_all(&dir);
}
