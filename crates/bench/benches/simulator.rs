//! Criterion benches for the cache-hierarchy simulator substrate:
//! raw LRU cache operations and full-schedule simulation throughput
//! under each policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmc_core::algorithms::{Algorithm, SharedOpt};
use mmc_core::ProblemSpec;
use mmc_sim::{Block, LruCache, MachineConfig, SimConfig, SimSink, Simulator};

fn bench_lru_cache_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_cache");
    let universe = 100_000;
    for capacity in [21usize, 977] {
        g.throughput(Throughput::Elements(universe as u64));
        g.bench_with_input(BenchmarkId::new("streaming_insert", capacity), &capacity, |b, &cap| {
            b.iter(|| {
                let mut cache = LruCache::new(cap, universe);
                for id in 0..universe as u32 {
                    if !cache.touch(id) {
                        cache.insert(id, false);
                    }
                }
                cache.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("hot_touch", capacity), &capacity, |b, &cap| {
            let mut cache = LruCache::new(cap, universe);
            for id in 0..cap as u32 {
                cache.insert(id, false);
            }
            b.iter(|| {
                let mut acc = 0u64;
                for rep in 0..universe as u32 {
                    acc += cache.touch(rep % cap as u32) as u64;
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_schedule_simulation(c: &mut Criterion) {
    let machine = MachineConfig::quad_q32();
    let d = 60u32;
    let problem = ProblemSpec::square(d);
    let events = 5 * problem.total_fmas(); // ~3 reads + 1 write + 1 fma per block FMA
    let mut g = c.benchmark_group("simulate_shared_opt");
    g.throughput(Throughput::Elements(events));
    g.sample_size(10);
    g.bench_function("lru", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
            SharedOpt.execute(&machine, &problem, &mut sim).unwrap();
            sim.stats().ms()
        })
    });
    g.bench_function("ideal", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig::ideal(&machine), d, d, d);
            SharedOpt.execute(&machine, &problem, &mut sim).unwrap();
            sim.stats().ms()
        })
    });
    g.finish();
}

fn bench_raw_access_path(c: &mut Criterion) {
    let machine = MachineConfig::quad_q32();
    let d = 64u32;
    let mut g = c.benchmark_group("raw_access");
    let n = 1_000_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("lru_read_hit", |b| {
        let mut sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
        sim.read(0, Block::a(0, 0)).unwrap();
        b.iter(|| {
            for _ in 0..n {
                sim.read(0, Block::a(0, 0)).unwrap();
            }
            sim.stats().dist_hits[0]
        })
    });
    g.bench_function("lru_read_miss_stream", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
            for rep in 0..n / (d as u64 * d as u64) + 1 {
                for i in 0..d {
                    for k in 0..d {
                        sim.read((rep % 4) as usize, Block::a(i, k)).unwrap();
                    }
                }
            }
            sim.stats().md_total()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lru_cache_ops, bench_schedule_simulation, bench_raw_access_path);
criterion_main!(benches);
