//! One Criterion bench per paper figure: each group runs the figure's
//! distinctive simulation workload at a reduced matrix order, so
//! `cargo bench` exercises (and times) the code path behind every figure
//! without the multi-minute full sweeps — those are
//! `cargo run -p mmc-bench --release --bin figures -- all [--full]`.

use criterion::{criterion_group, criterion_main, Criterion};
use mmc_bench::{run_figure, simulate, Setting, SweepOpts};
use mmc_core::algorithms::Tradeoff;
use mmc_core::{params, ProblemSpec};
use mmc_sim::MachineConfig;

fn tiny_opts() -> SweepOpts {
    SweepOpts { orders: Some(vec![60]), ..SweepOpts::default() }
}

fn bench_figures(c: &mut Criterion) {
    // Figures that honor an order override.
    for id in [
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "ablation_inclusion",
        "ablation_grid",
        "ablation_oblivious",
        "lu_update",
        "cluster",
        "event_counts",
    ] {
        let mut g = c.benchmark_group(id);
        g.sample_size(10);
        g.bench_function("order_60", |b| {
            let opts = tiny_opts();
            b.iter(|| run_figure(id, &opts))
        });
        g.finish();
    }

    // Fig. 12 pins m = 384 in the real harness; bench its distinctive
    // workload (bandwidth-dependent Tradeoff re-parameterization) at a
    // reduced order instead.
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("order_64_r_sweep", |b| {
        let machine = MachineConfig::quad_q32();
        b.iter(|| {
            let mut acc = 0.0;
            for r in [0.05, 0.5, 0.95] {
                let m_r = machine.clone().with_bandwidth_ratio(r);
                let tp = params::tradeoff_params(&m_r).unwrap();
                let stats = simulate(
                    &Tradeoff::with_params(tp),
                    &m_r,
                    Setting::Ideal,
                    ProblemSpec::square(64),
                )
                .unwrap();
                acc += stats.t_data(m_r.sigma_s, m_r.sigma_d);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
