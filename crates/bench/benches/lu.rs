//! Criterion benches for the LU extension: block kernels, full
//! factorization wall-clock per tiling, and schedule-simulation
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmc_lu::{exec, kernel, BlockedLu, SimLuHooks, UpdateTiling};
use mmc_sim::{MachineConfig, SimConfig, Simulator};

fn bench_lu_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_kernels");
    for q in [32usize, 64] {
        let a = exec::diagonally_dominant(1, q, 1);
        let flops_getrf = (2 * q * q * q / 3) as u64;
        g.throughput(Throughput::Elements(flops_getrf));
        g.bench_with_input(BenchmarkId::new("getrf", q), &q, |b, &q| {
            b.iter(|| {
                let mut blk = a.block(0, 0).to_vec();
                assert!(kernel::getrf_nopiv(&mut blk, q));
                blk[0]
            })
        });
        let mut lu = a.block(0, 0).to_vec();
        assert!(kernel::getrf_nopiv(&mut lu, q));
        let rhs = exec::diagonally_dominant(1, q, 2);
        g.throughput(Throughput::Elements((q * q * q) as u64));
        g.bench_with_input(BenchmarkId::new("trsm_left", q), &q, |b, &q| {
            b.iter(|| {
                let mut x = rhs.block(0, 0).to_vec();
                kernel::trsm_left_lower_unit(&lu, &mut x, q);
                x[0]
            })
        });
        g.bench_with_input(BenchmarkId::new("trsm_right", q), &q, |b, &q| {
            b.iter(|| {
                let mut x = rhs.block(0, 0).to_vec();
                assert!(kernel::trsm_right_upper(&lu, &mut x, q));
                x[0]
            })
        });
    }
    g.finish();
}

fn bench_lu_factorization(c: &mut Criterion) {
    let machine = MachineConfig::quad_q32();
    let (n, q) = (12u32, 16usize);
    let a = exec::diagonally_dominant(n, q, 3);
    let mut g = c.benchmark_group("lu_factor_192");
    g.sample_size(10);
    for (name, lu) in [
        ("w1_rowstripes", BlockedLu::new(1, UpdateTiling::RowStripes)),
        ("w4_rowstripes", BlockedLu::new(4, UpdateTiling::RowStripes)),
        ("w4_shared_opt", BlockedLu::new(4, UpdateTiling::SharedOpt)),
        ("w4_tradeoff", BlockedLu::new(4, UpdateTiling::Tradeoff)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = a.clone();
                exec::lu_factor(&mut m, &machine, &lu).unwrap();
                m.block(0, 0)[0]
            })
        });
    }
    for w in [1u32, 4] {
        g.bench_function(format!("w{w}_parallel"), |b| {
            b.iter(|| {
                let mut m = a.clone();
                mmc_lu::lu_factor_parallel(&mut m, w).unwrap();
                m.block(0, 0)[0]
            })
        });
    }
    g.finish();
}

fn bench_lu_simulation(c: &mut Criterion) {
    let machine = MachineConfig::quad_q32();
    let n = 48u32;
    let mut g = c.benchmark_group("lu_simulate_48");
    g.sample_size(10);
    for (name, lu) in [
        ("w8_shared_opt", BlockedLu::new(8, UpdateTiling::SharedOpt)),
        ("w8_tradeoff", BlockedLu::new(8, UpdateTiling::Tradeoff)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = Simulator::new(SimConfig::lru(&machine), n, n, 1);
                let mut hooks = SimLuHooks::new(&mut sim);
                lu.run(&machine, n, &mut hooks).unwrap();
                sim.stats().ms()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lu_kernels, bench_lu_factorization, bench_lu_simulation);
criterion_main!(benches);
