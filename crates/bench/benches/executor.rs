//! Criterion benches for the real executor: the `q×q` micro-kernel and
//! the tiled GEMM variants whose tilings come from the paper's
//! parameters. This is the wall-clock side of the study the paper leaves
//! as future work ("implement all algorithms on state-of-the-art
//! multicore machines").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmc_exec::{gemm_blocked, gemm_naive, gemm_parallel, BlockMatrix, Tiling};
use mmc_sim::MachineConfig;

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_kernel");
    for q in [32usize, 64, 80] {
        let a = BlockMatrix::pseudo_random(1, 1, q, 1);
        let b = BlockMatrix::pseudo_random(1, 1, q, 2);
        let mut out = BlockMatrix::zeros(1, 1, q);
        g.throughput(Throughput::Elements((2 * q * q * q) as u64)); // flops
        g.bench_with_input(BenchmarkId::new("fma", q), &q, |bench, &q| {
            bench.iter(|| {
                mmc_exec::kernel::block_fma(out.block_mut(0, 0), a.block(0, 0), b.block(0, 0), q);
                out.block(0, 0)[0]
            })
        });
        // One series per dispatchable variant, so the SIMD-over-scalar
        // ratio is visible in the criterion report on any host.
        for v in mmc_exec::kernel::variants_available() {
            g.bench_with_input(
                BenchmarkId::new(format!("fma_{}", v.name()), q),
                &q,
                |bench, &q| {
                    bench.iter(|| {
                        mmc_exec::kernel::block_fma_with(
                            v,
                            out.block_mut(0, 0),
                            a.block(0, 0),
                            b.block(0, 0),
                            q,
                        );
                        out.block(0, 0)[0]
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_gemm_variants(c: &mut Criterion) {
    let machine = MachineConfig::quad_q32();
    let q = 32usize;
    let d = 8u32; // 256×256 elements: quick but past the kernel-only regime
    let a = BlockMatrix::pseudo_random(d, d, q, 1);
    let b = BlockMatrix::pseudo_random(d, d, q, 2);
    let flops = 2 * (d as u64 * q as u64).pow(3);
    let mut g = c.benchmark_group("gemm_256");
    g.sample_size(10);
    g.throughput(Throughput::Elements(flops));
    g.bench_function("naive", |bench| bench.iter(|| gemm_naive(&a, &b)));
    let tilings = [
        ("shared_opt", Tiling::shared_opt(&machine).unwrap()),
        ("distributed_opt", Tiling::distributed_opt(&machine).unwrap()),
        ("tradeoff", Tiling::tradeoff(&machine).unwrap()),
        ("equal_thirds", Tiling::equal(machine.shared_capacity).unwrap()),
    ];
    for (name, tiling) in tilings {
        g.bench_with_input(BenchmarkId::new("parallel", name), &tiling, |bench, t| {
            bench.iter(|| gemm_parallel(&a, &b, *t))
        });
        g.bench_with_input(BenchmarkId::new("blocked_1thread", name), &tiling, |bench, t| {
            bench.iter(|| gemm_blocked(&a, &b, *t))
        });
    }
    g.finish();
}

fn bench_schedule_replay(c: &mut Criterion) {
    use mmc_core::algorithms::all_algorithms;
    let machine = MachineConfig::quad_q32();
    let q = 16usize;
    let d = 6u32;
    let a = BlockMatrix::pseudo_random(d, d, q, 1);
    let b = BlockMatrix::pseudo_random(d, d, q, 2);
    let mut g = c.benchmark_group("schedule_replay_96");
    g.sample_size(10);
    for algo in all_algorithms() {
        g.bench_function(algo.id(), |bench| {
            bench.iter(|| mmc_exec::run_schedule(algo.as_ref(), &machine, &a, &b).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernel, bench_gemm_variants, bench_schedule_replay);
criterion_main!(benches);
