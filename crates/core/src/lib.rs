//! # mmc-core — cache-aware matrix-product algorithms
//!
//! The primary contribution of
//!
//! > M. Jacquelin, L. Marchal, Y. Robert, *Complexity analysis and
//! > performance evaluation of matrix product on multicore architectures*,
//! > LIP RRLIP2009-09 / ICPP 2009,
//!
//! implemented on top of the [`mmc_sim`] cache-hierarchy substrate:
//!
//! * [`algorithms`] — the three Multicore Maximum Reuse algorithms
//!   (Shared Opt, Distributed Opt, Tradeoff) and the two reference
//!   algorithms (Outer Product, Shared/Distributed Equal), all as
//!   streaming schedule generators over any [`mmc_sim::SimSink`];
//! * [`params`] — tile-parameter selection (`λ`, `µ`, `α`, `β`, core
//!   grids) including the Tradeoff bandwidth-dependent optimization;
//! * [`bounds`] — the Loomis–Whitney communication lower bounds extended
//!   to the two-level hierarchy (§2.3);
//! * [`formulas`] — the paper's closed-form miss predictions, which the
//!   test-suite matches *exactly* against IDEAL-mode simulation;
//! * [`problem`] — problem dimensions in block units.
//!
//! ## Quick example
//!
//! ```
//! use mmc_core::algorithms::{Algorithm, SharedOpt};
//! use mmc_core::{formulas, ProblemSpec};
//! use mmc_sim::{MachineConfig, SimConfig, Simulator};
//!
//! let machine = MachineConfig::quad_q32(); // the paper's q=32 preset
//! let problem = ProblemSpec::square(60);
//! let mut sim = Simulator::new(SimConfig::ideal(&machine), 60, 60, 60);
//! SharedOpt.execute(&machine, &problem, &mut sim).unwrap();
//! // The simulated shared misses equal the paper's formula mn + 2mnz/λ.
//! let predicted = formulas::shared_opt(&problem, &machine).unwrap();
//! assert_eq!(sim.stats().ms() as f64, predicted.ms);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod bounds;
pub mod exact;
pub mod formulas;
pub mod lineage;
pub mod params;
pub mod problem;

pub use algorithms::{AlgoError, Algorithm, AlgorithmKind};
pub use formulas::Prediction;
pub use params::{CoreGrid, OocStaging, TradeoffParams};
pub use problem::ProblemSpec;
