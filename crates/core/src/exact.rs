//! Exact IDEAL-mode miss counts in closed form — for *any* problem size,
//! including ragged (non-divisible) ones.
//!
//! The paper's formulas (`formulas`) assume tile sizes divide the matrix
//! dimensions. The schedules themselves clamp edge tiles, and this module
//! mirrors that clamping arithmetically, so its counts equal the
//! simulator's IDEAL counts **exactly, for every size** — in O(tiles)
//! instead of O(mnz) — which makes instant predictions possible at orders
//! far beyond what is simulable (used by `mmc plan`), and gives the
//! test-suite a second, independent implementation of every count to
//! crosscheck the simulator against.
//!
//! Derivations (write `R = ⌈m/t_r⌉`, `C = ⌈n/t_c⌉` for the tile grid):
//!
//! * every tiled schedule loads each `C` tile once plus, per `k`, one
//!   `B`-row fraction (width `tw`) and `th` elements of `A`, so
//!   `M_S = mn + z·(R·n + C·m)` with the schedule's own tile sides;
//! * per-core distributed counts factor into per-axis aggregates of the
//!   core's clamped sub-ranges (see each function).

use crate::params::{self, CoreGrid, TradeoffParams};
use crate::problem::ProblemSpec;
use mmc_sim::MachineConfig;

/// Exact per-run counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactCounts {
    /// Shared-cache misses `M_S`.
    pub ms: u64,
    /// Per-core distributed-cache misses.
    pub md_per_core: Vec<u64>,
}

impl ExactCounts {
    /// The paper's `M_D = max_c` metric.
    pub fn md(&self) -> u64 {
        self.md_per_core.iter().copied().max().unwrap_or(0)
    }
}

/// `⌈a/b⌉` for positive `b`.
fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Shared `M_S` shape of every tiled Maximum-Reuse schedule:
/// `mn + z·(R·n + C·m)`.
fn tiled_ms(m: u64, n: u64, z: u64, tile_r: u64, tile_c: u64) -> u64 {
    let r = ceil_div(m, tile_r);
    let c = ceil_div(n, tile_c);
    m * n + z * (r * n + c * m)
}

/// Balanced contiguous chunk length: chunk `idx` of `0..total` split
/// `parts` ways (mirrors the schedules' `chunk`).
fn chunk_len(total: u64, parts: u64, idx: u64) -> u64 {
    (idx + 1) * total / parts - idx * total / parts
}

/// Exact counts of **Shared Opt** (Algorithm 1) with parameter `λ` on a
/// `p`-core machine.
pub fn shared_opt(problem: &ProblemSpec, machine: &MachineConfig) -> Option<ExactCounts> {
    let lambda = params::lambda(machine)? as u64;
    if machine.dist_capacity < 3 {
        return None;
    }
    let (m, n, z) = (problem.m as u64, problem.n as u64, problem.z as u64);
    let p = machine.cores as u64;
    let ms = tiled_ms(m, n, z, lambda, lambda);
    // Per core: for each tile column of width tw, each of the m tile rows
    // contributes z·(1_{chunk≠∅} + 2·chunk_len) per row element — i.e.
    // summed over tile rows, z·m·(…) per tile column.
    let mut md_per_core = vec![0u64; p as usize];
    let mut j0 = 0;
    while j0 < n {
        let tw = lambda.min(n - j0);
        for (c, md) in md_per_core.iter_mut().enumerate() {
            let len = chunk_len(tw, p, c as u64);
            if len > 0 {
                *md += z * m * (1 + 2 * len);
            }
        }
        j0 += tw;
    }
    Some(ExactCounts { ms, md_per_core })
}

/// Per-axis aggregates of one grid position's clamped sub-ranges across
/// the tile grid of `dim` split into `tile`-sized tiles, where the
/// position owns `[off·µ, (off+1)·µ)` of every tile (Distributed Opt) —
/// returns `(Σ len, #nonempty)`.
fn dist_axis(dim: u64, tile: u64, mu: u64, off: u64) -> (u64, u64) {
    let (mut sum, mut nonempty) = (0u64, 0u64);
    let mut x0 = 0;
    while x0 < dim {
        let t = tile.min(dim - x0);
        let lo = (off * mu).min(t);
        let hi = ((off + 1) * mu).min(t);
        if hi > lo {
            sum += hi - lo;
            nonempty += 1;
        }
        x0 += t;
    }
    (sum, nonempty)
}

/// Exact counts of **Distributed Opt** (Algorithm 2) with parameter `µ`
/// on a `grid`-arranged machine.
pub fn distributed_opt(
    problem: &ProblemSpec,
    machine: &MachineConfig,
    grid: Option<CoreGrid>,
) -> Option<ExactCounts> {
    let mu = params::mu(machine)? as u64;
    let grid = match grid {
        Some(g) if g.cores() == machine.cores => g,
        Some(_) => return None,
        None => CoreGrid::square(machine.cores)?,
    };
    let (m, n, z) = (problem.m as u64, problem.n as u64, problem.z as u64);
    let (tr, tc) = (grid.rows as u64 * mu, grid.cols as u64 * mu);
    let ms = tiled_ms(m, n, z, tr, tc);
    let mut md_per_core = Vec::with_capacity(machine.cores);
    for core in 0..machine.cores {
        let (r, cj) = grid.coords(core);
        let (sr, nr) = dist_axis(m, tr, mu, r as u64);
        let (sc, nc) = dist_axis(n, tc, mu, cj as u64);
        // C sub-blocks once (Σrl·Σcl factorizes over the tile grid), plus
        // per k: one B fraction per nonempty-row tile and one A element
        // per sub-row with a nonempty column range.
        md_per_core.push(sr * sc + z * (nr * sc + nc * sr));
    }
    Some(ExactCounts { ms, md_per_core })
}

/// Per-axis aggregates for the Tradeoff cyclic assignment: grid position
/// `off` owns sub-ranges `off, off+period, …` (each `µ` wide, clamped) of
/// every `alpha`-tile of `dim` — returns `(Σ len, #nonempty sub-ranges)`.
fn cyclic_axis(dim: u64, alpha: u64, mu: u64, period: u64, off: u64) -> (u64, u64) {
    let (mut sum, mut count) = (0u64, 0u64);
    let mut x0 = 0;
    while x0 < dim {
        let t = alpha.min(dim - x0);
        let mut s = off;
        while s * mu < t {
            let lo = s * mu;
            let hi = ((s + 1) * mu).min(t);
            sum += hi - lo;
            count += 1;
            s += period;
        }
        x0 += t;
    }
    (sum, count)
}

/// Exact counts of **Tradeoff** (Algorithm 3) with explicit parameters.
pub fn tradeoff(
    problem: &ProblemSpec,
    machine: &MachineConfig,
    t: &TradeoffParams,
) -> Option<ExactCounts> {
    if t.grid.cores() != machine.cores || t.alpha == 0 || t.beta == 0 {
        return None;
    }
    let (m, n, z) = (problem.m as u64, problem.n as u64, problem.z as u64);
    let (alpha, beta, mu) = (t.alpha as u64, t.beta as u64, t.mu as u64);
    let single = t.alpha == t.grid.rows * t.mu && t.alpha == t.grid.cols * t.mu;
    let ms = tiled_ms(m, n, z, alpha, alpha);
    let substeps = ceil_div(z, beta);
    // Per core, per tile: Σ over its sub-blocks (rl × cl) of
    //   loads(C) + z·(cl + rl)
    // with loads(C) = substeps·rl·cl in the general case (re-loaded every
    // substep) and rl·cl in the single-sub-block case. The double sum
    // over tiles × sub-blocks factorizes per axis because every tile of
    // the same extent contributes identically — handled by aggregating
    // over the actual tile grid in `cyclic_axis`.
    let mut md_per_core = Vec::with_capacity(machine.cores);
    for core in 0..machine.cores {
        let (r, cj) = t.grid.coords(core);
        let (sr, nr) = cyclic_axis(m, alpha, mu, t.grid.rows as u64, r as u64);
        let (sc, nc) = cyclic_axis(n, alpha, mu, t.grid.cols as u64, cj as u64);
        let c_loads = if single { sr * sc } else { substeps * sr * sc };
        md_per_core.push(c_loads + z * (nr * sc + nc * sr));
    }
    Some(ExactCounts { ms, md_per_core })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{
        Algorithm, DistributedOpt, SharedOpt as SharedOptAlgo, Tradeoff as TradeoffAlgo,
    };
    use mmc_sim::{SimConfig, Simulator};

    fn simulate(
        algo: &dyn Algorithm,
        machine: &MachineConfig,
        problem: &ProblemSpec,
    ) -> (u64, Vec<u64>) {
        let mut sim = Simulator::new(SimConfig::ideal(machine), problem.m, problem.n, problem.z);
        algo.execute(machine, problem, &mut sim).unwrap();
        (sim.stats().ms(), sim.stats().dist_misses.clone())
    }

    const SHAPES: &[(u32, u32, u32)] = &[
        (1, 1, 1),
        (7, 13, 5),
        (30, 30, 30),
        (31, 29, 17),
        (61, 59, 11),
        (90, 45, 60),
        (8, 64, 3),
    ];

    #[test]
    fn shared_opt_exact_equals_simulation_on_ragged_sizes() {
        let machine = MachineConfig::quad_q32();
        for &(m, n, z) in SHAPES {
            let problem = ProblemSpec::new(m, n, z);
            let exact = shared_opt(&problem, &machine).unwrap();
            let (ms, md) = simulate(&SharedOptAlgo, &machine, &problem);
            assert_eq!(exact.ms, ms, "{m}x{n}x{z} M_S");
            assert_eq!(exact.md_per_core, md, "{m}x{n}x{z} per-core M_D");
        }
    }

    #[test]
    fn distributed_opt_exact_equals_simulation_on_ragged_sizes() {
        for machine in [MachineConfig::quad_q32(), MachineConfig::quad_q64()] {
            for &(m, n, z) in SHAPES {
                let problem = ProblemSpec::new(m, n, z);
                let exact = distributed_opt(&problem, &machine, None).unwrap();
                let (ms, md) = simulate(&DistributedOpt::default(), &machine, &problem);
                assert_eq!(exact.ms, ms, "{m}x{n}x{z} M_S");
                assert_eq!(exact.md_per_core, md, "{m}x{n}x{z} per-core M_D");
            }
        }
    }

    #[test]
    fn distributed_opt_exact_rectangular_grid() {
        let machine = MachineConfig::new(6, 977, 21, 32);
        let grid = CoreGrid::balanced(6);
        for &(m, n, z) in SHAPES {
            let problem = ProblemSpec::new(m, n, z);
            let exact = distributed_opt(&problem, &machine, Some(grid)).unwrap();
            let (ms, md) = simulate(&DistributedOpt::with_grid(grid), &machine, &problem);
            assert_eq!((exact.ms, exact.md_per_core), (ms, md), "{m}x{n}x{z}");
        }
    }

    #[test]
    fn tradeoff_exact_equals_simulation_general_and_single() {
        let machine = MachineConfig::quad_q32();
        let grid = CoreGrid { rows: 2, cols: 2 };
        for params in [
            TradeoffParams { alpha: 16, beta: 4, mu: 4, grid },
            TradeoffParams { alpha: 16, beta: 7, mu: 4, grid }, // β ∤ z cases
            TradeoffParams { alpha: 8, beta: 4, mu: 4, grid },  // single sub-block
            TradeoffParams { alpha: 24, beta: 1, mu: 4, grid },
        ] {
            for &(m, n, z) in SHAPES {
                let problem = ProblemSpec::new(m, n, z);
                let exact = tradeoff(&problem, &machine, &params).unwrap();
                let algo = TradeoffAlgo::with_params(params);
                let (ms, md) = simulate(&algo, &machine, &problem);
                assert_eq!(exact.ms, ms, "{params:?} {m}x{n}x{z} M_S");
                assert_eq!(exact.md_per_core, md, "{params:?} {m}x{n}x{z} M_D");
            }
        }
    }

    #[test]
    fn exact_matches_paper_formula_on_divisible_sizes() {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(120);
        let e = shared_opt(&problem, &machine).unwrap();
        let f = crate::formulas::shared_opt(&problem, &machine).unwrap();
        assert_eq!(e.ms as f64, f.ms);
        let e = distributed_opt(&problem, &machine, None).unwrap();
        let f = crate::formulas::distributed_opt(&problem, &machine).unwrap();
        assert_eq!(e.ms as f64, f.ms);
        assert_eq!(e.md() as f64, f.md);
    }

    #[test]
    fn exact_is_fast_at_enormous_orders() {
        // Orders far beyond simulability: the count is O(tiles).
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(1_000_000, 1_000_000, 1_000_000);
        let e = shared_opt(&problem, &machine).unwrap();
        assert!(e.ms > 0 && e.md() > 0);
        // Asymptotic CCR_S → 2/λ.
        let ccr = e.ms as f64 / problem.total_fmas() as f64;
        assert!((ccr - 2.0 / 30.0).abs() < 1e-3, "{ccr}");
    }
}
