//! Tile-parameter selection: `λ`, `µ`, the Equal blocking factor, core
//! grids, and the Tradeoff algorithm's `(α, β)` optimization (§3.3).

use mmc_sim::MachineConfig;
use serde::{Deserialize, Serialize};

/// Largest integer `λ ≥ 1` with `1 + λ + λ² ≤ capacity` — the Maximum
/// Reuse footprint of one `C` tile (`λ²`), one row of `B` (`λ`) and one
/// element of `A` (§3). Returns `None` when even `λ = 1` does not fit
/// (capacity < 3).
pub fn max_reuse_param(capacity: usize) -> Option<u32> {
    if capacity < 3 {
        return None;
    }
    // λ = floor((−1 + √(4·capacity − 3)) / 2), then fix up any floating
    // rounding by checking the defining inequality on the integers.
    let mut lambda = (((4.0 * capacity as f64 - 3.0).sqrt() - 1.0) / 2.0).floor() as u64;
    let fits = |l: u64| l >= 1 && 1 + l + l * l <= capacity as u64;
    while !fits(lambda) {
        lambda -= 1;
    }
    while fits(lambda + 1) {
        lambda += 1;
    }
    Some(lambda as u32)
}

/// The paper's `λ` (shared cache): largest `λ` with `1 + λ + λ² ≤ C_S`.
pub fn lambda(machine: &MachineConfig) -> Option<u32> {
    max_reuse_param(machine.shared_capacity)
}

/// The paper's `µ` (distributed cache): largest `µ` with `1 + µ + µ² ≤ C_D`.
pub fn mu(machine: &MachineConfig) -> Option<u32> {
    max_reuse_param(machine.dist_capacity)
}

/// Largest `t ≥ 1` with `3·t² ≤ capacity` — the equal-thirds blocking of
/// the Toledo-style *Equal* baseline (§4.1: "one third of distributed
/// caches is equally allocated to each loaded matrix sub-block").
pub fn equal_tile(capacity: usize) -> Option<u32> {
    if capacity < 3 {
        return None;
    }
    let mut t = ((capacity as f64 / 3.0).sqrt()).floor() as u64;
    let fits = |t: u64| t >= 1 && 3 * t * t <= capacity as u64;
    while !fits(t) {
        t -= 1;
    }
    while fits(t + 1) {
        t += 1;
    }
    Some(t as u32)
}

/// Largest panel depth `d ≥ 1` such that a resident `rows×cols` tile plus
/// one depth-`d` panel along each side fits in `capacity`:
/// `rows·cols + d·(rows + cols) ≤ capacity`.
///
/// This is the Tradeoff footprint constraint `α² + 2αβ ≤ C_S` (§3.3)
/// generalized to a non-square tile — with `rows = cols = α` it returns
/// exactly the paper's `β = ⌊(C_S − α²)/(2α)⌋`. The executor's analytic
/// 5-loop blocking applies it at every cache level: `KC` from L1 around
/// the `MR×NR` register tile, `MC` from L2 around the `KC×NR` B
/// micro-panel, `NC` from the shared cache around the `MC×KC` A panel.
///
/// Returns `None` when even `d = 1` does not fit.
pub fn max_panel_depth(capacity: usize, rows: usize, cols: usize) -> Option<usize> {
    if rows == 0 || cols == 0 {
        return None;
    }
    let tile = rows.checked_mul(cols)?;
    let edges = rows + cols;
    if capacity < tile + edges {
        return None;
    }
    Some((capacity - tile) / edges)
}

/// A 2-D arrangement of the `p` cores into `rows × cols == p`.
///
/// The paper assumes `√p` is an integer (§3.2); [`CoreGrid::square`]
/// returns that arrangement when it exists, and [`CoreGrid::balanced`] is
/// our extension to arbitrary `p` (most-square factorization).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreGrid {
    /// Grid rows (`√p` in the paper).
    pub rows: u32,
    /// Grid columns (`√p` in the paper).
    pub cols: u32,
}

impl CoreGrid {
    /// The `√p × √p` grid, if `p` is a perfect square.
    pub fn square(p: usize) -> Option<CoreGrid> {
        let r = (p as f64).sqrt().round() as usize;
        if r * r == p {
            Some(CoreGrid { rows: r as u32, cols: r as u32 })
        } else {
            None
        }
    }

    /// The most-square factorization `rows × cols == p` with
    /// `rows ≤ cols` (extension beyond the paper, for non-square `p`).
    pub fn balanced(p: usize) -> CoreGrid {
        assert!(p > 0, "need at least one core");
        let mut rows = (p as f64).sqrt().floor() as usize;
        while !p.is_multiple_of(rows) {
            rows -= 1;
        }
        CoreGrid { rows: rows as u32, cols: (p / rows) as u32 }
    }

    /// Total cores covered.
    pub fn cores(&self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Grid coordinates of linear core index `c` (column-major like the
    /// paper's `offset_i = (c−1) mod √p`, `offset_j = ⌊(c−1)/√p⌋`).
    pub fn coords(&self, core: usize) -> (u32, u32) {
        debug_assert!(core < self.cores());
        ((core as u32) % self.rows, (core as u32) / self.rows)
    }
}

/// The Tradeoff algorithm's tile parameters (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TradeoffParams {
    /// Side of the square `C` tile kept in the shared cache.
    pub alpha: u32,
    /// Depth of the `A`/`B` panels kept alongside it (`α² + 2αβ ≤ C_S`).
    pub beta: u32,
    /// Distributed-cache Maximum Reuse parameter `µ`.
    pub mu: u32,
    /// Core grid used for the 2-D cyclic distribution of `µ×µ` sub-blocks.
    pub grid: CoreGrid,
}

impl TradeoffParams {
    /// The shared-cache footprint `α² + 2αβ` (must be `≤ C_S`).
    pub fn shared_footprint(&self) -> u64 {
        let a = self.alpha as u64;
        let b = self.beta as u64;
        a * a + 2 * a * b
    }
}

/// The unconstrained optimum `α_num` of the data-access-time objective
/// `F(α) = 2/(σ_S·α) + 2α/(p·σ_D·(C_S − α²))` (§3.3).
///
/// Closed form:
/// `α_num = √( C_S · (1 + 2g − √(1 + 8g)) / (2(g − 1)) )` with
/// `g = p·σ_D/σ_S`; the removable singularity at `g = 1` has limit
/// `√(C_S/3)`.
pub fn alpha_num(machine: &MachineConfig) -> f64 {
    let g = machine.cores as f64 * machine.sigma_d / machine.sigma_s;
    alpha_num_for(machine.shared_capacity as f64, g)
}

/// [`alpha_num`]'s closed form for an arbitrary capacity and bandwidth
/// ratio `g` (= aggregate lower-level bandwidth over upper-level
/// bandwidth). Shared by the in-core Tradeoff sizing (`C_S`, `p·σ_D/σ_S`)
/// and the out-of-core staging ([`ooc_staging`]: RAM budget, `σ_S/σ_F`) —
/// the paper's two-level objective is the same at every pair of adjacent
/// hierarchy levels.
pub fn alpha_num_for(capacity: f64, g: f64) -> f64 {
    if (g - 1.0).abs() < 1e-9 {
        return (capacity / 3.0).sqrt();
    }
    let t = (1.0 + 2.0 * g - (1.0 + 8.0 * g).sqrt()) / (2.0 * (g - 1.0));
    // `t` is positive for all g > 0 (both numerator and denominator change
    // sign at g = 1); clamp defensively against rounding.
    (capacity * t.max(0.0)).sqrt()
}

/// Numerically minimize `F(α)` by golden-section search on
/// `[lo, hi] ⊂ (0, √C_S)`. Used as a cross-check of [`alpha_num`] and as
/// a fallback for configurations where the closed form degenerates.
pub fn alpha_numeric(machine: &MachineConfig, lo: f64, hi: f64) -> f64 {
    let cs = machine.shared_capacity as f64;
    let p = machine.cores as f64;
    let f = |a: f64| -> f64 {
        2.0 / (machine.sigma_s * a) + 2.0 * a / (p * machine.sigma_d * (cs - a * a))
    };
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (lo.max(1e-9), hi.min(cs.sqrt() - 1e-9));
    if lo >= hi {
        return lo;
    }
    let (mut x1, mut x2) = (hi - phi * (hi - lo), lo + phi * (hi - lo));
    let (mut f1, mut f2) = (f(x1), f(x2));
    for _ in 0..200 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = f(x2);
        }
        if hi - lo < 1e-9 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Pick the Tradeoff parameters for `machine` (§3.3):
///
/// * `α = min(α_max, max(√p·µ, α_num))`, rounded down to a multiple of
///   `√p·µ` so the `C` tile divides into whole `µ×µ` sub-blocks across the
///   core grid;
/// * `β = max(⌊(C_S − α²)/(2α)⌋, 1)`;
/// * `α_max` = the largest feasible multiple of `√p·µ` with
///   `α² + 2α ≤ C_S`.
///
/// Returns `None` when the machine cannot host the algorithm at all
/// (`µ` undefined, non-square core count, or no feasible `α`).
pub fn tradeoff_params(machine: &MachineConfig) -> Option<TradeoffParams> {
    tradeoff_params_with_mu(machine, mu(machine)?)
}

/// [`tradeoff_params`] with an explicit `µ` (used by LRU-mode runs where
/// the distributed-cache constraint is advisory and `µ` degrades to 1).
pub fn tradeoff_params_with_mu(machine: &MachineConfig, mu: u32) -> Option<TradeoffParams> {
    if mu == 0 {
        return None;
    }
    let grid = CoreGrid::square(machine.cores)?;
    let step = grid.rows as u64 * mu as u64;
    let cs = machine.shared_capacity as u64;
    // Largest multiple of `step` with α² + 2α·1 ≤ C_S (β ≥ 1 must fit).
    let mut alpha_max = ((cs as f64 + 1.0).sqrt() - 1.0).floor() as u64;
    alpha_max -= alpha_max % step;
    while alpha_max >= step && alpha_max * alpha_max + 2 * alpha_max > cs {
        alpha_max -= step;
    }
    if alpha_max < step {
        // Even one sub-block per core cannot fit in the shared cache.
        return None;
    }
    let target = alpha_num(machine);
    let mut alpha = (target / step as f64).floor() as u64 * step;
    alpha = alpha.clamp(step, alpha_max);
    let beta = (((cs - alpha * alpha) / (2 * alpha)).max(1)) as u32;
    Some(TradeoffParams { alpha: alpha as u32, beta, mu, grid })
}

/// Out-of-core staging parameters: the Tradeoff algorithm's `α`-staging
/// lifted one level up the hierarchy, where "cache" is the RAM budget and
/// "memory" is a disk/NVMe tier of tiled files.
///
/// The streaming GEMM keeps one `α×α` block tile of `C` resident plus
/// `slots` in-flight copies of an `α×β` `A` panel and a `β×α` `B` panel
/// (the prefetch ring), so its resident footprint is
/// `α² + 2·slots·α·β` blocks — the paper's `α² + 2αβ ≤ C_S` constraint
/// with the panel term scaled by the ring depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OocStaging {
    /// Side of the square `C` block tile kept resident in RAM.
    pub alpha: u32,
    /// Depth of each prefetched `A`/`B` panel, in blocks.
    pub beta: u32,
    /// Panel-ring depth the footprint was sized for (2 = double buffer).
    pub slots: u32,
}

impl OocStaging {
    /// Resident RAM footprint `α² + 2·slots·α·β`, in blocks.
    pub fn resident_blocks(&self) -> u64 {
        let a = self.alpha as u64;
        a * a + 2 * self.slots as u64 * a * self.beta as u64
    }

    /// Predicted disk traffic of the staged product of an `m×n×z` block
    /// problem, in blocks: every `C` tile streams full `A` row-panels and
    /// `B` column-panels (`2·m·n·z/α` for divisible shapes, exact tile
    /// clamping included here) and writes its `α²` tile once (`m·n`).
    pub fn disk_blocks(&self, m: u32, n: u32, z: u32) -> u64 {
        let (m, n, z) = (m as u64, n as u64, z as u64);
        let a = self.alpha as u64;
        let tiles_i = m.div_ceil(a);
        let tiles_j = n.div_ceil(a);
        // Per tile row: each of the `tiles_j` tiles reads its A row-panel
        // (th·z blocks) and B column-panel (z·tw blocks); summing over the
        // grid gives z·(tiles_j·m + tiles_i·n). C is written once: m·n.
        z * (tiles_j * m + tiles_i * n) + m * n
    }
}

/// Size the out-of-core staging from a RAM budget, exactly as §3.3 sizes
/// the Tradeoff tile from `C_S`:
///
/// * `α` targets [`alpha_num_for`]`(budget, g)` with `g = σ_RAM/σ_F`
///   (aggregate RAM bandwidth over disk bandwidth — the paper's
///   `p·σ_D/σ_S` with the disk tier playing the memory role), clamped to
///   `[1, α_max]` where `α_max` is the largest `α` with
///   `α² + 2·slots·α ≤ budget` (a `β ≥ 1` ring must fit);
/// * `β = max(⌊(budget − α²)/(2·slots·α)⌋, 1)`.
///
/// Returns `None` when the budget cannot hold even a `1×1` tile plus a
/// depth-1 ring (`budget < 1 + 2·slots`).
pub fn ooc_staging(
    budget_blocks: u64,
    slots: u32,
    sigma_f: f64,
    sigma_ram: f64,
) -> Option<OocStaging> {
    assert!(slots >= 1, "panel ring needs at least one slot");
    assert!(sigma_f > 0.0 && sigma_ram > 0.0, "bandwidths must be positive");
    let d = slots as u64;
    if budget_blocks < 1 + 2 * d {
        return None;
    }
    // Largest α with α² + 2·d·α ≤ budget.
    let mut alpha_max = ((budget_blocks as f64 + (d * d) as f64).sqrt() - d as f64).floor() as u64;
    while alpha_max >= 1 && alpha_max * alpha_max + 2 * d * alpha_max > budget_blocks {
        alpha_max -= 1;
    }
    while (alpha_max + 1).pow(2) + 2 * d * (alpha_max + 1) <= budget_blocks {
        alpha_max += 1;
    }
    if alpha_max == 0 {
        return None;
    }
    let target = alpha_num_for(budget_blocks as f64, sigma_ram / sigma_f);
    let alpha = (target.floor() as u64).clamp(1, alpha_max);
    let beta = ((budget_blocks - alpha * alpha) / (2 * d * alpha)).max(1);
    let staging = OocStaging { alpha: alpha as u32, beta: beta.min(u32::MAX as u64) as u32, slots };
    debug_assert!(staging.resident_blocks() <= budget_blocks);
    Some(staging)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lambda_values() {
        // §4.1 presets: C_S = 977 → λ = 30 (1+30+900 = 931 ≤ 977);
        // 245 → 15 (241 ≤ 245); 157 → 12 (1+12+144 = 157 exactly).
        assert_eq!(max_reuse_param(977), Some(30));
        assert_eq!(max_reuse_param(245), Some(15));
        assert_eq!(max_reuse_param(157), Some(12));
    }

    #[test]
    fn paper_mu_values() {
        // C_D = 21 → µ = 4 (1+4+16 = 21); 16 → 3; 6 → 1; 4 → 1; 3 → 1.
        assert_eq!(max_reuse_param(21), Some(4));
        assert_eq!(max_reuse_param(16), Some(3));
        assert_eq!(max_reuse_param(6), Some(1));
        assert_eq!(max_reuse_param(4), Some(1));
        assert_eq!(max_reuse_param(3), Some(1));
        assert_eq!(max_reuse_param(2), None);
    }

    #[test]
    fn max_reuse_is_maximal() {
        for c in 3..5000usize {
            let l = max_reuse_param(c).unwrap() as u64;
            assert!(1 + l + l * l <= c as u64, "capacity {c}");
            let l1 = l + 1;
            assert!(1 + l1 + l1 * l1 > c as u64, "capacity {c}: λ not maximal");
        }
    }

    #[test]
    fn max_panel_depth_generalizes_tradeoff_beta() {
        // With rows = cols = α it is exactly the paper's
        // β = ⌊(C_S − α²)/(2α)⌋ — cross-check against the Tradeoff
        // derivation over a range of capacities and tile sides.
        for cs in [157usize, 245, 977, 4096] {
            for alpha in [4usize, 8, 12, 30] {
                let beta = max_panel_depth(cs, alpha, alpha);
                let direct = if cs >= alpha * alpha + 2 * alpha {
                    Some((cs - alpha * alpha) / (2 * alpha))
                } else {
                    None
                };
                assert_eq!(beta, direct, "C_S={cs} α={alpha}");
                if let Some(d) = beta {
                    // Maximality: d fits, d+1 does not.
                    assert!(alpha * alpha + d * 2 * alpha <= cs);
                    assert!(alpha * alpha + (d + 1) * 2 * alpha > cs);
                }
            }
        }
        // Non-square tiles and degenerate inputs.
        assert_eq!(max_panel_depth(100, 6, 8), Some((100 - 48) / 14));
        assert_eq!(max_panel_depth(61, 6, 8), None); // 48 + 14 > 61
        assert_eq!(max_panel_depth(1000, 0, 8), None);
        assert_eq!(max_panel_depth(1000, 8, 0), None);
    }

    #[test]
    fn equal_tile_is_maximal() {
        assert_eq!(equal_tile(2), None);
        for c in 3..5000usize {
            let t = equal_tile(c).unwrap() as u64;
            assert!(3 * t * t <= c as u64);
            assert!(3 * (t + 1) * (t + 1) > c as u64);
        }
        // C_S = 977 → t = 18 (3·324 = 972 ≤ 977).
        assert_eq!(equal_tile(977), Some(18));
    }

    #[test]
    fn square_grid_detection() {
        assert_eq!(CoreGrid::square(4), Some(CoreGrid { rows: 2, cols: 2 }));
        assert_eq!(CoreGrid::square(9), Some(CoreGrid { rows: 3, cols: 3 }));
        assert_eq!(CoreGrid::square(6), None);
        assert_eq!(CoreGrid::square(1), Some(CoreGrid { rows: 1, cols: 1 }));
    }

    #[test]
    fn balanced_grid_covers_all_cores() {
        for p in 1..=64usize {
            let g = CoreGrid::balanced(p);
            assert_eq!(g.cores(), p);
            assert!(g.rows <= g.cols);
        }
        assert_eq!(CoreGrid::balanced(6), CoreGrid { rows: 2, cols: 3 });
        assert_eq!(CoreGrid::balanced(7), CoreGrid { rows: 1, cols: 7 });
    }

    #[test]
    fn coords_are_column_major() {
        let g = CoreGrid { rows: 2, cols: 2 };
        assert_eq!(g.coords(0), (0, 0));
        assert_eq!(g.coords(1), (1, 0));
        assert_eq!(g.coords(2), (0, 1));
        assert_eq!(g.coords(3), (1, 1));
    }

    #[test]
    fn alpha_num_matches_numeric_minimizer() {
        for (ss, sd) in [(1.0, 1.0), (1.0, 4.0), (4.0, 1.0), (0.3, 0.7), (1.0, 0.25001)] {
            let m = MachineConfig::quad_q32().with_bandwidths(ss, sd);
            let closed = alpha_num(&m);
            let numeric = alpha_numeric(&m, 1.0, (m.shared_capacity as f64).sqrt());
            assert!(
                (closed - numeric).abs() < 1e-3 * numeric.max(1.0),
                "σ_S={ss} σ_D={sd}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn alpha_num_limits() {
        // σ_D ≫ σ_S: the tradeoff degenerates to the shared-optimized
        // tiling, α_num → √C_S (paper §3.3).
        let m = MachineConfig::quad_q32().with_bandwidths(1.0, 1e9);
        assert!((alpha_num(&m) - (977f64).sqrt()).abs() < 0.5);
        // σ_S ≫ σ_D: α_num collapses toward 0 → clamped at √p·µ later.
        let m = MachineConfig::quad_q32().with_bandwidths(1e9, 1.0);
        assert!(alpha_num(&m) < 1.0);
    }

    #[test]
    fn tradeoff_params_respect_constraints() {
        for (_, machine) in MachineConfig::paper_presets() {
            let t = tradeoff_params(&machine).expect("paper presets feasible");
            let step = t.grid.rows * t.mu;
            assert_eq!(t.alpha % step, 0, "α multiple of √p·µ");
            assert!(t.shared_footprint() <= machine.shared_capacity as u64);
            assert!(t.beta >= 1);
        }
    }

    #[test]
    fn tradeoff_alpha_tracks_bandwidth_ratio() {
        // Fast distributed caches → shared-optimized tiling (large α, β=1).
        let m = MachineConfig::quad_q32().with_bandwidths(1.0, 1e6);
        let t = tradeoff_params(&m).unwrap();
        let step = (t.grid.rows * t.mu) as u64;
        let amax = {
            let mut a = ((977f64 + 1.0).sqrt() - 1.0).floor() as u64;
            a -= a % step;
            a
        };
        assert_eq!(t.alpha as u64, amax);
        // Fast shared cache → distributed-optimized tiling (α = √p·µ).
        let m = MachineConfig::quad_q32().with_bandwidths(1e6, 1.0);
        let t = tradeoff_params(&m).unwrap();
        assert_eq!(t.alpha, t.grid.rows * t.mu);
    }

    #[test]
    fn ooc_staging_respects_budget_and_is_maximal_in_alpha_max() {
        for budget in [8u64, 64, 977, 4096, 100_000] {
            for slots in [1u32, 2, 4] {
                for (sf, sr) in [(1.0, 1.0), (1.0, 50.0), (50.0, 1.0)] {
                    let Some(s) = ooc_staging(budget, slots, sf, sr) else {
                        assert!(budget < 1 + 2 * slots as u64, "budget {budget} slots {slots}");
                        continue;
                    };
                    assert!(s.alpha >= 1 && s.beta >= 1);
                    assert!(
                        s.resident_blocks() <= budget,
                        "budget {budget} slots {slots}: footprint {} > budget",
                        s.resident_blocks()
                    );
                }
            }
        }
        assert_eq!(ooc_staging(4, 2, 1.0, 1.0), None);
    }

    #[test]
    fn ooc_alpha_tracks_disk_ram_bandwidth_ratio() {
        // Slow disk, fast RAM → minimize disk traffic: α near α_max.
        let fast_ram = ooc_staging(10_000, 2, 1.0, 1e6).unwrap();
        // Fast disk, slow RAM → small α (traffic shifts to the RAM tier).
        let fast_disk = ooc_staging(10_000, 2, 1e6, 1.0).unwrap();
        assert!(fast_ram.alpha > fast_disk.alpha, "{fast_ram:?} vs {fast_disk:?}");
        assert_eq!(fast_disk.alpha, 1);
        // Balanced: matches the paper's g = 1 limit √(C/3), rounded down.
        let balanced = ooc_staging(10_000, 2, 1.0, 1.0).unwrap();
        assert_eq!(balanced.alpha, ((10_000f64 / 3.0).sqrt()).floor() as u32);
    }

    #[test]
    fn ooc_disk_traffic_counts_clamped_tiles() {
        let s = OocStaging { alpha: 4, beta: 2, slots: 2 };
        // 8×8×8 blocks, α = 4: 2×2 tiles, each reads 4·8 + 8·4 panels and
        // writes 16 C blocks → 4·(32+32) + 64 = 320.
        assert_eq!(s.disk_blocks(8, 8, 8), 320);
        // Ragged 9×5×7: tiles_i = 3, tiles_j = 2 → 7·(2·9 + 3·5) + 45.
        assert_eq!(s.disk_blocks(9, 5, 7), 7 * (2 * 9 + 3 * 5) + 45);
    }

    #[test]
    fn tradeoff_infeasible_cases() {
        // Non-square core count.
        let m = MachineConfig::new(6, 977, 21, 32);
        assert_eq!(tradeoff_params(&m), None);
        // Distributed cache below the 3-block minimum.
        let m = MachineConfig::new(4, 977, 2, 32);
        assert_eq!(tradeoff_params(&m), None);
    }
}
