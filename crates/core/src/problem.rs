//! Problem description: the dimensions of `C = A × B` in block units.

use mmc_sim::BlockSpace;
use serde::{Deserialize, Serialize};

/// Dimensions of a matrix product in `q×q` blocks: `A` is `m×z`, `B` is
/// `z×n`, `C` is `m×n` (paper §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Block rows of `A` and `C`.
    pub m: u32,
    /// Block columns of `B` and `C`.
    pub n: u32,
    /// Shared dimension (block columns of `A` / rows of `B`).
    pub z: u32,
}

impl ProblemSpec {
    /// A general rectangular problem.
    pub fn new(m: u32, n: u32, z: u32) -> ProblemSpec {
        assert!(m > 0 && n > 0 && z > 0, "problem dimensions must be positive");
        ProblemSpec { m, n, z }
    }

    /// The square problem of order `d` blocks (what the paper's figures
    /// sweep: "Matrix Order (In block units)").
    pub fn square(d: u32) -> ProblemSpec {
        ProblemSpec::new(d, d, d)
    }

    /// The dense block-id space for this problem.
    pub fn block_space(&self) -> BlockSpace {
        BlockSpace::new(self.m, self.n, self.z)
    }

    /// Total block multiply-accumulates of any conventional algorithm:
    /// `m·n·z`.
    pub fn total_fmas(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.z as u64
    }

    /// Number of blocks across the three matrices (`mz + zn + mn`).
    pub fn total_blocks(&self) -> u64 {
        let (m, n, z) = (self.m as u64, self.n as u64, self.z as u64);
        m * z + z * n + m * n
    }
}

impl std::fmt::Display for ProblemSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_sets_all_dims() {
        let p = ProblemSpec::square(5);
        assert_eq!((p.m, p.n, p.z), (5, 5, 5));
        assert_eq!(p.total_fmas(), 125);
        assert_eq!(p.total_blocks(), 75);
    }

    #[test]
    fn block_space_dims_match() {
        let p = ProblemSpec::new(2, 3, 4);
        let s = p.block_space();
        assert_eq!(s.m(), 2);
        assert_eq!(s.n(), 3);
        assert_eq!(s.z(), 4);
        assert_eq!(s.total() as u64, p.total_blocks());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = ProblemSpec::new(1, 0, 1);
    }
}
