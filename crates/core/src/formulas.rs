//! Closed-form miss predictions (paper §3.1–§3.3).
//!
//! For each Maximum-Reuse-style algorithm the paper derives exact counts
//! of shared misses `M_S` and per-core distributed misses `M_D` under the
//! IDEAL policy. These functions transcribe those formulas; the test-suite
//! checks that the *simulated* IDEAL counts equal them exactly on
//! divisible problem sizes, which validates both the schedules and the
//! transcription at once.
//!
//! The formulas assume the tile sizes divide the matrix dimensions (the
//! paper's standing assumption); on ragged sizes the implementations clamp
//! tiles and the formulas become close upper-ish approximations instead of
//! identities.

use crate::params::{self, TradeoffParams};
use crate::problem::ProblemSpec;
use mmc_sim::MachineConfig;

/// Predicted misses of one algorithm on one problem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted shared-cache misses `M_S`.
    pub ms: f64,
    /// Predicted per-core (maximum) distributed-cache misses `M_D`.
    pub md: f64,
}

impl Prediction {
    /// Predicted data access time `T_data = M_S/σ_S + M_D/σ_D`.
    pub fn t_data(&self, machine: &MachineConfig) -> f64 {
        self.ms / machine.sigma_s + self.md / machine.sigma_d
    }
}

/// Shared Opt (Algorithm 1): `M_S = mn + 2mnz/λ`,
/// `M_D = 2mnz/p + mnz/λ` (§3.1).
pub fn shared_opt(problem: &ProblemSpec, machine: &MachineConfig) -> Option<Prediction> {
    let lambda = params::lambda(machine)? as f64;
    let (mn, mnz) = volumes(problem);
    let p = machine.cores as f64;
    Some(Prediction { ms: mn + 2.0 * mnz / lambda, md: 2.0 * mnz / p + mnz / lambda })
}

/// Distributed Opt (Algorithm 2): `M_S = mn + 2mnz/(µ√p)`,
/// `M_D = mn/p + 2mnz/(pµ)` (§3.2).
pub fn distributed_opt(problem: &ProblemSpec, machine: &MachineConfig) -> Option<Prediction> {
    let mu = params::mu(machine)? as f64;
    let grid = params::CoreGrid::square(machine.cores)?;
    let sqrt_p = grid.rows as f64;
    let (mn, mnz) = volumes(problem);
    let p = machine.cores as f64;
    Some(Prediction { ms: mn + 2.0 * mnz / (mu * sqrt_p), md: mn / p + 2.0 * mnz / (p * mu) })
}

/// Tradeoff (Algorithm 3) with explicit parameters:
/// `M_S = mn + 2mnz/α`; `M_D = mnz/(pβ) + 2mnz/(pµ)` in the general case,
/// or `mn/p + 2mnz/(pµ)` in the special case `α = √p·µ` where each core
/// owns a single sub-block and loads it once (§3.3).
pub fn tradeoff_with(
    problem: &ProblemSpec,
    machine: &MachineConfig,
    t: &TradeoffParams,
) -> Prediction {
    let (mn, mnz) = volumes(problem);
    let p = machine.cores as f64;
    let ms = mn + 2.0 * mnz / t.alpha as f64;
    let md = if t.alpha == t.grid.rows * t.mu {
        mn / p + 2.0 * mnz / (p * t.mu as f64)
    } else {
        mnz / (p * t.beta as f64) + 2.0 * mnz / (p * t.mu as f64)
    };
    Prediction { ms, md }
}

/// Tradeoff with the parameters [`params::tradeoff_params`] would pick.
pub fn tradeoff(problem: &ProblemSpec, machine: &MachineConfig) -> Option<Prediction> {
    let t = params::tradeoff_params(machine)?;
    Some(tradeoff_with(problem, machine, &t))
}

/// Shared Equal (Toledo-style equal thirds at the shared level):
/// `M_S = mn + 2mnz/t` with `t = ⌊√(C_S/3)⌋`;
/// `M_D = 2mnz/p + mnz/(pt)·p = 2mnz/p + mnz/t·(1/p)`… the per-core count
/// is `(2mnz + mnz/t)/p`.
pub fn shared_equal(problem: &ProblemSpec, machine: &MachineConfig) -> Option<Prediction> {
    let t = params::equal_tile(machine.shared_capacity)? as f64;
    let (mn, mnz) = volumes(problem);
    let p = machine.cores as f64;
    Some(Prediction { ms: mn + 2.0 * mnz / t, md: (2.0 * mnz + mnz / t) / p })
}

/// Distributed Equal (equal thirds at the distributed level):
/// `M_D = mn/p + 2mnz/(p·t_D)` with `t_D = ⌊√(C_D/3)⌋`; every core streams
/// its own tiles through the shared cache, so `M_S = mn + 2mnz/t_D`.
pub fn distributed_equal(problem: &ProblemSpec, machine: &MachineConfig) -> Option<Prediction> {
    let td = params::equal_tile(machine.dist_capacity)? as f64;
    let (mn, mnz) = volumes(problem);
    let p = machine.cores as f64;
    Some(Prediction { ms: mn + 2.0 * mnz / td, md: mn / p + 2.0 * mnz / (p * td) })
}

fn volumes(problem: &ProblemSpec) -> (f64, f64) {
    let mn = problem.m as f64 * problem.n as f64;
    (mn, mn * problem.z as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_opt_formula_paper_example() {
        // C_S = 977 → λ = 30. For m = n = z = 600:
        // M_S = 600² + 2·600³/30 = 360000 + 14400000.
        let m = MachineConfig::quad_q32();
        let p = ProblemSpec::square(600);
        let pred = shared_opt(&p, &m).unwrap();
        assert!((pred.ms - 14_760_000.0).abs() < 1e-6);
        // M_D = 2·600³/4 + 600³/30.
        assert!((pred.md - (108_000_000.0 + 7_200_000.0)).abs() < 1e-6);
    }

    #[test]
    fn distributed_opt_formula_paper_example() {
        // C_D = 21 → µ = 4, √p = 2. m = 600:
        // M_S = 360000 + 2·600³/8 = 360000 + 54e6;
        // M_D = 90000 + 2·600³/16 = 90000 + 27e6.
        let m = MachineConfig::quad_q32();
        let p = ProblemSpec::square(600);
        let pred = distributed_opt(&p, &m).unwrap();
        assert!((pred.ms - 54_360_000.0).abs() < 1e-6);
        assert!((pred.md - 27_090_000.0).abs() < 1e-6);
    }

    #[test]
    fn tradeoff_special_case_reduces_to_distributed_opt_md() {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(240);
        let t = TradeoffParams {
            alpha: 8,
            beta: 1,
            mu: 4,
            grid: params::CoreGrid { rows: 2, cols: 2 },
        };
        let pred = tradeoff_with(&problem, &machine, &t);
        let dopt = distributed_opt(&problem, &machine).unwrap();
        assert!((pred.md - dopt.md).abs() < 1e-9);
    }

    #[test]
    fn tradeoff_md_improves_with_beta() {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(240);
        let mk = |beta| TradeoffParams {
            alpha: 16,
            beta,
            mu: 4,
            grid: params::CoreGrid { rows: 2, cols: 2 },
        };
        let md1 = tradeoff_with(&problem, &machine, &mk(1)).md;
        let md8 = tradeoff_with(&problem, &machine, &mk(8)).md;
        assert!(md8 < md1, "larger β amortizes C sub-block reloads");
    }

    #[test]
    fn equal_variants_are_sqrt3_worse_than_opt() {
        // Asymptotically M_S(SharedEqual)/M_S(SharedOpt) → λ/t ≈ √3.
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(3000);
        let opt = shared_opt(&problem, &machine).unwrap().ms - (3000.0f64 * 3000.0);
        let eq = shared_equal(&problem, &machine).unwrap().ms - (3000.0f64 * 3000.0);
        let ratio = eq / opt;
        assert!((ratio - (30.0 / 18.0)).abs() < 1e-9, "λ=30 vs t=18 → ratio {ratio}");
    }

    #[test]
    fn t_data_uses_machine_bandwidths() {
        let machine = MachineConfig::quad_q32().with_bandwidths(2.0, 0.5);
        let pred = Prediction { ms: 100.0, md: 10.0 };
        assert!((pred.t_data(&machine) - (50.0 + 20.0)).abs() < 1e-12);
    }

    #[test]
    fn infeasible_machines_predict_none() {
        let machine = MachineConfig::new(4, 2, 2, 32);
        let problem = ProblemSpec::square(10);
        assert!(shared_opt(&problem, &machine).is_none());
        assert!(distributed_opt(&problem, &machine).is_none());
        assert!(shared_equal(&problem, &machine).is_none());
        assert!(distributed_equal(&problem, &machine).is_none());
    }
}
