//! The single-level ancestors of the paper's algorithms (§1, §3).
//!
//! Before adapting anything to two cache levels, the paper recalls two
//! single-memory algorithms:
//!
//! * the **out-of-core / equal-thirds** algorithm of Toledo's survey
//!   (paper reference \[8\]): one third of the memory for each matrix,
//!   `CCR → 2√3/√M`;
//! * the **Maximum Reuse Algorithm** of Pineau et al. (reference \[7\]):
//!   memory split as `1 + µ + µ²` — a `µ²` block of `C`, a `µ`-row of `B`
//!   and one element of `A` — achieving `CCR → 2/√M`, against the
//!   Irony–Toledo–Tiskin lower bound `√(27/(8M)) ≈ 1.837/√M`.
//!
//! On our substrate these are exactly the `p = 1` specializations of
//! Shared Equal and Shared Opt: a machine with one core, a "shared cache"
//! of `M` blocks (the master's memory) and a minimal 3-block distributed
//! cache (the compute unit's registers). This module packages that
//! correspondence with its asymptotic constants, so the lineage claims
//! are runnable and tested rather than prose.

use crate::algorithms::{AlgoError, SharedEqual, SharedOpt};
use crate::problem::ProblemSpec;
use mmc_sim::{MachineConfig, SimConfig, SimStats, Simulator};

/// Which single-level algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SingleLevel {
    /// Maximum Reuse Algorithm (Pineau et al.): `1 + µ + µ²` split.
    MaximumReuse,
    /// Toledo-style equal thirds.
    EqualThirds,
}

impl SingleLevel {
    /// The asymptotic constant `c` in `CCR → c/√M` for large matrices.
    pub fn asymptotic_constant(&self) -> f64 {
        match self {
            // M_S → 2mnz/µ with µ → √M.
            SingleLevel::MaximumReuse => 2.0,
            // M_S → 2mnz/t with t → √(M/3).
            SingleLevel::EqualThirds => 2.0 * 3f64.sqrt(),
        }
    }
}

/// The machine encoding "one compute unit with a memory of `M` blocks".
pub fn single_level_machine(memory_blocks: usize) -> MachineConfig {
    MachineConfig::new(1, memory_blocks, 3, 32)
}

/// Simulate `algo` on a single-level memory of `memory_blocks` under the
/// IDEAL policy and return the statistics (`ms()` is the communication
/// volume from the master's memory).
pub fn simulate(
    algo: SingleLevel,
    memory_blocks: usize,
    problem: &ProblemSpec,
) -> Result<SimStats, AlgoError> {
    let machine = single_level_machine(memory_blocks);
    let mut sim = Simulator::new(SimConfig::ideal(&machine), problem.m, problem.n, problem.z);
    match algo {
        SingleLevel::MaximumReuse => SharedOpt::run(&machine, problem, &mut sim)?,
        SingleLevel::EqualThirds => SharedEqual::run(&machine, problem, &mut sim)?,
    }
    Ok(sim.into_stats())
}

/// Measured `CCR · √M` — converges to
/// [`SingleLevel::asymptotic_constant`] for large matrices, and is lower
/// bounded by `√(27/8) ≈ 1.837` (§2.3.1).
pub fn normalized_ccr(
    algo: SingleLevel,
    memory_blocks: usize,
    problem: &ProblemSpec,
) -> Result<f64, AlgoError> {
    let stats = simulate(algo, memory_blocks, problem)?;
    Ok(stats.ms() as f64 / problem.total_fmas() as f64 * (memory_blocks as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    /// Streaming (non-cold) normalized CCR: subtract the unavoidable `mn`
    /// cold misses of `C`, which vanish asymptotically but dominate small
    /// test problems.
    fn streaming_ccr(algo: SingleLevel, m_blocks: usize, problem: &ProblemSpec) -> f64 {
        let stats = simulate(algo, m_blocks, problem).unwrap();
        let mn = problem.m as u64 * problem.n as u64;
        (stats.ms() - mn) as f64 / problem.total_fmas() as f64 * (m_blocks as f64).sqrt()
    }

    #[test]
    fn maximum_reuse_approaches_two_over_sqrt_m() {
        // µ(1807) = 42; order 126 = 3 clean tiles per dimension.
        let m_blocks = 1807;
        let problem = ProblemSpec::square(126);
        let c = streaming_ccr(SingleLevel::MaximumReuse, m_blocks, &problem);
        assert!((c - 2.0).abs() < 0.05, "streaming CCR {c} should be near 2");
    }

    #[test]
    fn equal_thirds_pays_sqrt_three() {
        let m_blocks = 1200; // t = 20
        let problem = ProblemSpec::square(120);
        let c = streaming_ccr(SingleLevel::EqualThirds, m_blocks, &problem);
        let expect = SingleLevel::EqualThirds.asymptotic_constant();
        assert!((c - expect).abs() < 0.1, "streaming CCR {c} vs 2√3 ≈ {expect}");
    }

    #[test]
    fn ordering_matches_the_papers_narrative() {
        // bound < Maximum Reuse < Equal thirds, at identical M and problem.
        let m_blocks = 1807;
        let problem = ProblemSpec::square(126);
        let mra = normalized_ccr(SingleLevel::MaximumReuse, m_blocks, &problem).unwrap();
        let eq = normalized_ccr(SingleLevel::EqualThirds, m_blocks, &problem).unwrap();
        let bound = bounds::ccr_lower_bound(m_blocks) * (m_blocks as f64).sqrt();
        assert!(bound < mra, "bound {bound} < MRA {mra}");
        assert!(mra < eq, "MRA {mra} < equal thirds {eq}");
        assert!((bound - (27f64 / 8.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn constants() {
        assert_eq!(SingleLevel::MaximumReuse.asymptotic_constant(), 2.0);
        assert!((SingleLevel::EqualThirds.asymptotic_constant() - 3.4641).abs() < 1e-3);
    }
}
