//! Communication lower bounds (paper §2.3).
//!
//! The paper extends the Irony–Toledo–Tiskin analysis, built on the
//! Loomis–Whitney inequality, to the two-level hierarchy: a computing
//! system with a cache of `Z` blocks has a communication-to-computation
//! ratio of at least `√(27/(8Z))` block loads per block FMA. Applied with
//! `Z = C_S` (everything above the shared cache as one processor) and
//! `Z = C_D` (one core), and combined through the bandwidths, this yields
//! the lower bounds plotted in Figs. 7–12.

use crate::problem::ProblemSpec;
use mmc_sim::MachineConfig;

/// The Loomis–Whitney bound on elementary multiplications: a processor
/// accessing `n_a` elements of `A`, `n_b` of `B` and contributing to `n_c`
/// elements of `C` performs at most `√(n_a·n_b·n_c)` multiplications
/// (§2.3.1, after Ironya, Toledo & Tiskin).
pub fn loomis_whitney_max_muls(n_a: f64, n_b: f64, n_c: f64) -> f64 {
    (n_a * n_b * n_c).sqrt()
}

/// The optimal constant `k = √(8/27)` of the program
/// `maximize √(ηνξ) subject to η + ν + ξ ≤ 2` (§2.3.1); attained at
/// `η = ν = ξ = 2/3`.
pub fn kappa() -> f64 {
    (8.0f64 / 27.0).sqrt()
}

/// Lower bound on the communication-to-computation ratio of *any*
/// conventional matrix product run through a cache of `capacity` blocks:
/// `CCR ≥ √(27/(8·Z))` (§2.3.1).
pub fn ccr_lower_bound(capacity: usize) -> f64 {
    assert!(capacity > 0, "capacity must be positive");
    (27.0 / (8.0 * capacity as f64)).sqrt()
}

/// Lower bound on shared-cache misses:
/// `M_S ≥ m·n·z·√(27/(8·C_S))` (§2.3.2/§2.3.4).
pub fn ms_lower_bound(problem: &ProblemSpec, machine: &MachineConfig) -> f64 {
    problem.total_fmas() as f64 * ccr_lower_bound(machine.shared_capacity)
}

/// Lower bound on the per-core (maximum) distributed-cache misses for
/// algorithms with balanced work:
/// `M_D ≥ (m·n·z/p)·√(27/(8·C_D))` (§2.3.3/§2.3.4).
pub fn md_lower_bound(problem: &ProblemSpec, machine: &MachineConfig) -> f64 {
    problem.total_fmas() as f64 / machine.cores as f64 * ccr_lower_bound(machine.dist_capacity)
}

/// Lower bound on the overall data access time (§2.3.4):
///
/// `T_data ≥ m·n·z · ( √(27/(8C_S))/σ_S + √(27/(8C_D))/(p·σ_D) )`.
pub fn tdata_lower_bound(problem: &ProblemSpec, machine: &MachineConfig) -> f64 {
    ms_lower_bound(problem, machine) / machine.sigma_s
        + md_lower_bound(problem, machine) / machine.sigma_d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kappa_solves_the_constrained_program() {
        // Grid-search the feasible region η+ν+ξ ≤ 2 and confirm that
        // √(ηνξ) never exceeds √(8/27) and attains it at (2/3, 2/3, 2/3).
        let mut best = 0.0f64;
        let steps = 200;
        for i in 1..steps {
            for j in 1..(steps - i) {
                let eta = 2.0 * i as f64 / steps as f64;
                let nu = 2.0 * j as f64 / steps as f64;
                let xi = 2.0 - eta - nu;
                if xi <= 0.0 {
                    continue;
                }
                best = best.max((eta * nu * xi).sqrt());
            }
        }
        assert!(best <= kappa() + 1e-9);
        assert!(best > kappa() - 1e-2, "grid search should approach the optimum");
        let at_opt = (2.0f64 / 3.0 * 2.0 / 3.0 * 2.0 / 3.0).sqrt();
        assert!((at_opt - kappa()).abs() < 1e-12);
    }

    #[test]
    fn ccr_bound_decreases_with_capacity() {
        assert!(ccr_lower_bound(10) > ccr_lower_bound(100));
        // √(27/8Z) at Z = 27/8 → exactly 1.
        assert!((ccr_lower_bound(27) - (27.0f64 / 216.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bounds_scale_with_problem_volume() {
        let m = MachineConfig::quad_q32();
        let p1 = ProblemSpec::square(100);
        let p2 = ProblemSpec::square(200);
        assert!((ms_lower_bound(&p2, &m) / ms_lower_bound(&p1, &m) - 8.0).abs() < 1e-9);
        assert!((md_lower_bound(&p2, &m) / md_lower_bound(&p1, &m) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn tdata_bound_combines_levels() {
        let m = MachineConfig::quad_q32().with_bandwidths(2.0, 4.0);
        let p = ProblemSpec::square(64);
        let expect = ms_lower_bound(&p, &m) / 2.0 + md_lower_bound(&p, &m) / 4.0;
        assert!((tdata_lower_bound(&p, &m) - expect).abs() < 1e-9);
    }

    #[test]
    fn loomis_whitney_is_symmetric() {
        assert_eq!(loomis_whitney_max_muls(2.0, 3.0, 4.0), loomis_whitney_max_muls(4.0, 3.0, 2.0));
        assert!((loomis_whitney_max_muls(4.0, 4.0, 4.0) - 8.0).abs() < 1e-12);
    }
}
