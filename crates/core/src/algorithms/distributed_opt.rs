//! **Distributed Opt** — Algorithm 2 (§3.2): the Maximum Reuse Algorithm
//! adapted to minimize the number of distributed-cache misses `M_D`.
//!
//! Each core pins a `µ×µ` sub-block of `C` (with `1 + µ + µ² ≤ C_D`) in
//! its private cache and fully computes it before writing it back; the
//! `p` sub-blocks tile a `√p·µ × √p·µ` block of `C` held in the shared
//! cache, distributed 2-D cyclically on the `√p×√p` core grid so that
//! cores in the same grid row share the elements of `A` and cores in the
//! same grid column share the fractions of rows of `B`.
//!
//! Predicted counts (divisible sizes): `M_S = mn + 2mnz/(µ√p)`,
//! `M_D = mn/p + 2mnz/(pµ)`.

use super::{tiles, AlgoError, Algorithm};
use crate::formulas::{self, Prediction};
use crate::params::{self, CoreGrid};
use crate::problem::ProblemSpec;
use mmc_sim::{Block, MachineConfig, SimSink};

/// Algorithm 2 of the paper. See the module docs.
///
/// The paper assumes `√p` integral; [`DistributedOpt::with_grid`] extends
/// the schedule to any `rows × cols == p` arrangement (the tile becomes
/// `rows·µ × cols·µ`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistributedOpt {
    /// Explicit core grid; `None` means "require the paper's `√p×√p`".
    pub grid: Option<CoreGrid>,
}

impl DistributedOpt {
    /// Use an explicit core grid (extension for non-square `p`).
    pub fn with_grid(grid: CoreGrid) -> DistributedOpt {
        DistributedOpt { grid: Some(grid) }
    }

    fn resolve_grid(&self, machine: &MachineConfig) -> Result<CoreGrid, AlgoError> {
        if let Some(g) = self.grid {
            if g.cores() != machine.cores {
                return Err(AlgoError::Infeasible {
                    algorithm: "Distributed Opt",
                    reason: format!(
                        "grid {}x{} covers {} cores but the machine has {}",
                        g.rows,
                        g.cols,
                        g.cores(),
                        machine.cores
                    ),
                });
            }
            return Ok(g);
        }
        CoreGrid::square(machine.cores).ok_or_else(|| AlgoError::Infeasible {
            algorithm: "Distributed Opt",
            reason: format!("p = {} is not a perfect square (the paper assumes √p ∈ ℕ); use with_grid for a rectangular arrangement", machine.cores),
        })
    }

    /// Stream the schedule into `sink`.
    pub fn run<S: SimSink + ?Sized>(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut S,
    ) -> Result<(), AlgoError> {
        let manages = sink.manages_residency();
        // Under automatic (LRU) replacement the capacity constraints are
        // advisory; degrade to µ = 1 instead of failing (the paper's
        // LRU-50 setting declares capacities below the IDEAL minima).
        let mu = match params::mu(machine) {
            Some(mu) => mu,
            None if !manages => 1,
            None => {
                return Err(AlgoError::Infeasible {
                    algorithm: "Distributed Opt",
                    reason: format!(
                        "distributed cache of {} blocks cannot hold 1 + µ + µ² for any µ ≥ 1",
                        machine.dist_capacity
                    ),
                })
            }
        };
        let grid = self.resolve_grid(machine)?;
        let tr = grid.rows * mu; // tile rows
        let tc = grid.cols * mu; // tile cols
                                 // Shared cache must hold the C tile, one B row fraction, and the
                                 // A elements of the current k (one per tile row).
        let needed = tr as u64 * tc as u64 + tc as u64 + tr as u64;
        if manages && needed > machine.shared_capacity as u64 {
            return Err(AlgoError::Infeasible {
                algorithm: "Distributed Opt",
                reason: format!(
                    "shared cache needs {}·{} + {} + {} = {} blocks, has {}",
                    tr, tc, tc, tr, needed, machine.shared_capacity
                ),
            });
        }
        let (m, n, z) = (problem.m, problem.n, problem.z);

        // Per-core sub-block inside a tile of size th×tw: core (r, cj)
        // owns rows [r·µ, (r+1)·µ) ∩ [0, th) and cols [cj·µ, (cj+1)·µ) ∩ [0, tw).
        let sub = |off: u32, extent: u32| -> std::ops::Range<u32> {
            let lo = (off * mu).min(extent);
            let hi = ((off + 1) * mu).min(extent);
            lo..hi
        };

        for (i0, th) in tiles(m, tr) {
            for (j0, tw) in tiles(n, tc) {
                // Load a new block of C in the shared cache…
                if manages {
                    for i in i0..i0 + th {
                        for j in j0..j0 + tw {
                            sink.load_shared(Block::c(i, j))?;
                        }
                    }
                }
                // …and each core loads its µ×µ sub-block Cc in its cache.
                if manages {
                    for core in 0..machine.cores {
                        let (r, cj) = grid.coords(core);
                        for i in sub(r, th) {
                            for j in sub(cj, tw) {
                                sink.load_dist(core, Block::c(i0 + i, j0 + j))?;
                            }
                        }
                    }
                }
                for k in 0..z {
                    // Load a row B[k; j0..j0+tw] of B in the shared cache.
                    if manages {
                        for j in j0..j0 + tw {
                            sink.load_shared(Block::b(k, j))?;
                        }
                    }
                    for core in 0..machine.cores {
                        let (r, cj) = grid.coords(core);
                        let rows = sub(r, th);
                        let cols = sub(cj, tw);
                        if rows.is_empty() || cols.is_empty() {
                            continue;
                        }
                        // Load Bc in the distributed cache of core c.
                        if manages {
                            for j in cols.clone() {
                                sink.load_dist(core, Block::b(k, j0 + j))?;
                            }
                        }
                        for i in rows.clone() {
                            let a = Block::a(i0 + i, k);
                            if manages {
                                // Idempotent in the shared cache: cores of
                                // the same grid row share this element.
                                sink.load_shared(a)?;
                                sink.load_dist(core, a)?;
                            }
                            for j in cols.clone() {
                                let b = Block::b(k, j0 + j);
                                let cb = Block::c(i0 + i, j0 + j);
                                sink.read(core, a)?;
                                sink.read(core, b)?;
                                sink.read(core, cb)?;
                                sink.fma(core, a, b, cb)?;
                                sink.write(core, cb)?;
                            }
                            if manages {
                                sink.evict_dist(core, a)?;
                            }
                        }
                        if manages {
                            for j in cols {
                                sink.evict_dist(core, Block::b(k, j0 + j))?;
                            }
                        }
                    }
                    sink.barrier()?;
                    if manages {
                        // The A elements and B row of this k leave the
                        // shared cache together.
                        for i in i0..i0 + th {
                            sink.evict_shared(Block::a(i, k))?;
                        }
                        for j in j0..j0 + tw {
                            sink.evict_shared(Block::b(k, j))?;
                        }
                    }
                }
                // Each core updates its block Cc in the shared cache; the
                // tile is written back to main memory.
                if manages {
                    for core in 0..machine.cores {
                        let (r, cj) = grid.coords(core);
                        for i in sub(r, th) {
                            for j in sub(cj, tw) {
                                sink.evict_dist(core, Block::c(i0 + i, j0 + j))?;
                            }
                        }
                    }
                    for i in i0..i0 + th {
                        for j in j0..j0 + tw {
                            sink.evict_shared(Block::c(i, j))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Algorithm for DistributedOpt {
    fn name(&self) -> &'static str {
        "Distributed Opt."
    }

    fn id(&self) -> &'static str {
        "distributed_opt"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut dyn SimSink,
    ) -> Result<(), AlgoError> {
        self.run(machine, problem, sink)
    }

    fn predict(&self, machine: &MachineConfig, problem: &ProblemSpec) -> Option<Prediction> {
        match self.grid {
            None => formulas::distributed_opt(problem, machine),
            Some(_) => None, // rectangular extension: no paper formula
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_sim::{CountingSink, SimConfig, Simulator};

    #[test]
    fn ideal_counts_match_formula_exactly() {
        // q=32 preset: µ = 4, √p = 2, tile = 8. m = n = 64, z = 10.
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(64, 64, 10);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 64, 64, 10);
        DistributedOpt::default().run(&machine, &problem, &mut sim).unwrap();
        let stats = sim.stats();
        let (m, n, z) = (64u64, 64, 10);
        assert_eq!(stats.ms(), m * n + 2 * m * n * z / (4 * 2));
        assert_eq!(stats.md(), m * n / 4 + 2 * m * n * z / (4 * 4));
        assert_eq!(stats.total_fmas(), m * n * z);
        assert_eq!(stats.shared_writebacks, m * n);
        assert_eq!(stats.compute_imbalance(), 1.0);
    }

    #[test]
    fn non_square_core_count_requires_explicit_grid() {
        let machine = MachineConfig::new(6, 977, 21, 32);
        let problem = ProblemSpec::square(8);
        let mut sink = CountingSink::new();
        assert!(matches!(
            DistributedOpt::default().run(&machine, &problem, &mut sink),
            Err(AlgoError::Infeasible { .. })
        ));
        // 2×3 grid works.
        DistributedOpt::with_grid(CoreGrid { rows: 2, cols: 3 })
            .run(&machine, &problem, &mut sink)
            .unwrap();
        assert_eq!(sink.fmas, problem.total_fmas());
    }

    #[test]
    fn rectangular_grid_ideal_run_is_capacity_clean() {
        let machine = MachineConfig::new(6, 977, 21, 32);
        let problem = ProblemSpec::new(17, 9, 5);
        let mut sim =
            Simulator::new(SimConfig { cores: 6, ..SimConfig::ideal(&machine) }, 17, 9, 5);
        DistributedOpt::with_grid(CoreGrid { rows: 2, cols: 3 })
            .run(&machine, &problem, &mut sim)
            .unwrap();
        assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
    }

    #[test]
    fn ragged_sizes_run_clean_under_ideal_checking() {
        let machine = MachineConfig::quad_q32();
        for (m, n, z) in [(1, 1, 1), (7, 13, 5), (9, 23, 3)] {
            let problem = ProblemSpec::new(m, n, z);
            let mut sim = Simulator::new(SimConfig::ideal(&machine), m, n, z);
            DistributedOpt::default()
                .run(&machine, &problem, &mut sim)
                .unwrap_or_else(|e| panic!("{m}x{n}x{z}: {e}"));
            assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
        }
    }

    #[test]
    fn grid_covering_wrong_core_count_rejected() {
        let machine = MachineConfig::new(4, 977, 21, 32);
        let problem = ProblemSpec::square(8);
        let mut sink = CountingSink::new();
        assert!(matches!(
            DistributedOpt::with_grid(CoreGrid { rows: 2, cols: 3 })
                .run(&machine, &problem, &mut sink),
            Err(AlgoError::Infeasible { .. })
        ));
    }

    #[test]
    fn mu_one_still_works() {
        // q = 64 preset: C_D = 6 → µ = 1 (the degenerate case Fig. 8(c)
        // highlights).
        let machine = MachineConfig::quad_q64();
        let problem = ProblemSpec::new(8, 8, 4);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 8, 8, 4);
        DistributedOpt::default().run(&machine, &problem, &mut sim).unwrap();
        let stats = sim.stats();
        let (m, n, z) = (8u64, 8, 4);
        assert_eq!(stats.ms(), m * n + 2 * m * n * z / 2);
        assert_eq!(stats.md(), m * n / 4 + 2 * m * n * z / 4);
    }
}
