//! **Outer Product** — the ScaLAPACK-style reference algorithm (§4.1):
//! cores form a (virtual) processor torus; `C` is split into `p`
//! contiguous rectangular partitions, one per core; at each step `k` the
//! `k`-th block column of `A` and block row of `B` are "broadcast" and
//! every core performs the rank-1 block update of its partition.
//!
//! The algorithm does no cache management whatsoever — the paper notes it
//! "is insensitive to cache policies, since it is not focusing on cache
//! usage" — so it only runs against automatic-replacement (LRU) sinks.

use super::{chunk, AlgoError, Algorithm};
use crate::formulas::Prediction;
use crate::params::CoreGrid;
use crate::problem::ProblemSpec;
use mmc_sim::{Block, MachineConfig, SimSink};

/// The ScaLAPACK-style outer-product reference. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OuterProduct {
    /// Explicit core torus; `None` picks `√p×√p` when `p` is square and
    /// the most-square factorization otherwise.
    pub grid: Option<CoreGrid>,
}

impl OuterProduct {
    /// Use an explicit core torus.
    pub fn with_grid(grid: CoreGrid) -> OuterProduct {
        OuterProduct { grid: Some(grid) }
    }

    /// Stream the schedule into `sink` (must not manage residency).
    pub fn run<S: SimSink + ?Sized>(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut S,
    ) -> Result<(), AlgoError> {
        if sink.manages_residency() {
            return Err(AlgoError::RequiresAutomaticReplacement { algorithm: "Outer Product" });
        }
        let grid = match self.grid {
            Some(g) if g.cores() != machine.cores => {
                return Err(AlgoError::Infeasible {
                    algorithm: "Outer Product",
                    reason: format!(
                        "grid {}x{} covers {} cores but the machine has {}",
                        g.rows,
                        g.cols,
                        g.cores(),
                        machine.cores
                    ),
                })
            }
            Some(g) => g,
            None => {
                CoreGrid::square(machine.cores).unwrap_or_else(|| CoreGrid::balanced(machine.cores))
            }
        };
        let (m, n, z) = (problem.m, problem.n, problem.z);

        for k in 0..z {
            for core in 0..machine.cores {
                let (r, cj) = grid.coords(core);
                let rows = chunk(m, grid.rows, r);
                let cols = chunk(n, grid.cols, cj);
                for i in rows {
                    let a = Block::a(i, k);
                    for j in cols.clone() {
                        let b = Block::b(k, j);
                        let cb = Block::c(i, j);
                        sink.read(core, a)?;
                        sink.read(core, b)?;
                        sink.read(core, cb)?;
                        sink.fma(core, a, b, cb)?;
                        sink.write(core, cb)?;
                    }
                }
            }
            sink.barrier()?;
        }
        Ok(())
    }
}

impl Algorithm for OuterProduct {
    fn name(&self) -> &'static str {
        "Outer Product"
    }

    fn id(&self) -> &'static str {
        "outer_product"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut dyn SimSink,
    ) -> Result<(), AlgoError> {
        self.run(machine, problem, sink)
    }

    fn predict(&self, _machine: &MachineConfig, _problem: &ProblemSpec) -> Option<Prediction> {
        // The paper gives no closed form; its behaviour is purely LRU-driven.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_sim::{CountingSink, SimConfig, Simulator, TraceSink};

    #[test]
    fn covers_all_fmas_once() {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(10, 14, 6);
        let mut sink = CountingSink::new();
        OuterProduct::default().run(&machine, &problem, &mut sink).unwrap();
        assert_eq!(sink.fmas, problem.total_fmas());
        assert_eq!(sink.barriers, 6);
    }

    #[test]
    fn refuses_residency_managed_sinks() {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(4);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 4, 4, 4);
        assert!(matches!(
            OuterProduct::default().run(&machine, &problem, &mut sim),
            Err(AlgoError::RequiresAutomaticReplacement { .. })
        ));
        let mut trace = TraceSink::with_residency();
        assert!(OuterProduct::default().run(&machine, &problem, &mut trace).is_err());
    }

    #[test]
    fn streaming_working_set_defeats_small_caches() {
        // With a C partition far larger than the distributed cache, every
        // C access is a distributed miss: M_D^(c) ≥ (m/√p)(n/√p) per k.
        let machine = MachineConfig::new(4, 977, 21, 32);
        let d = 64u32;
        let problem = ProblemSpec::square(d);
        let mut sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
        OuterProduct::default().run(&machine, &problem, &mut sim).unwrap();
        let per_core_c_touches = (d as u64 / 2) * (d as u64 / 2) * d as u64;
        assert!(sim.stats().md() >= per_core_c_touches);
    }

    #[test]
    fn balanced_grid_fallback_for_non_square_p() {
        let machine = MachineConfig::new(6, 977, 21, 32);
        let problem = ProblemSpec::new(9, 8, 3);
        let mut sink = CountingSink::new();
        OuterProduct::default().run(&machine, &problem, &mut sink).unwrap();
        assert_eq!(sink.fmas, problem.total_fmas());
    }

    #[test]
    fn wrong_explicit_grid_rejected() {
        let machine = MachineConfig::new(4, 977, 21, 32);
        let problem = ProblemSpec::square(4);
        let mut sink = CountingSink::new();
        assert!(OuterProduct::with_grid(CoreGrid { rows: 3, cols: 3 })
            .run(&machine, &problem, &mut sink)
            .is_err());
    }
}
