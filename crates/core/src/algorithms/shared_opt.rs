//! **Shared Opt** — Algorithm 1 (§3.1): the Maximum Reuse Algorithm
//! adapted to minimize the number of shared-cache misses `M_S`.
//!
//! A `λ×λ` block of `C` (with `1 + λ + λ² ≤ C_S`) is pinned in the shared
//! cache; for each `k` a row of `λ` elements of `B` and, one by one, the
//! elements `a = A[i', k]` join it. Each row of the `C` tile is split in
//! `λ/p` column chunks processed element-wise by the `p` cores, whose
//! private caches only ever hold three blocks: `a`, one element of `B`
//! and one element of `C`.
//!
//! Predicted counts (divisible sizes): `M_S = mn + 2mnz/λ`,
//! `M_D = 2mnz/p + mnz/λ`.

use super::{chunk, tiles, AlgoError, Algorithm};
use crate::formulas::{self, Prediction};
use crate::params;
use crate::problem::ProblemSpec;
use mmc_sim::{Block, MachineConfig, SimSink};

/// Algorithm 1 of the paper. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedOpt;

impl SharedOpt {
    /// Stream the schedule into `sink` (monomorphized fast path; the
    /// [`Algorithm`] impl forwards here with a `dyn` sink).
    pub fn run<S: SimSink + ?Sized>(
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut S,
    ) -> Result<(), AlgoError> {
        let manages = sink.manages_residency();
        // Under automatic (LRU) replacement the capacity arithmetic is
        // advisory — the cache absorbs any overflow — so degrade the tile
        // to λ = 1 instead of failing; only the explicitly managed IDEAL
        // mode must respect the paper's feasibility constraints.
        let lambda = match params::lambda(machine) {
            Some(l) => l,
            None if !manages => 1,
            None => {
                return Err(AlgoError::Infeasible {
                    algorithm: "Shared Opt",
                    reason: format!(
                        "shared cache of {} blocks cannot hold 1 + λ + λ² for any λ ≥ 1",
                        machine.shared_capacity
                    ),
                })
            }
        };
        if manages && machine.dist_capacity < 3 {
            return Err(AlgoError::Infeasible {
                algorithm: "Shared Opt",
                reason: format!(
                    "distributed caches need ≥ 3 blocks (a, B element, C element), got {}",
                    machine.dist_capacity
                ),
            });
        }
        let p = machine.cores as u32;
        let (m, n, z) = (problem.m, problem.n, problem.z);

        for (i0, th) in tiles(m, lambda) {
            for (j0, tw) in tiles(n, lambda) {
                // Load a new λ×λ block of C in the shared cache.
                if manages {
                    for i in i0..i0 + th {
                        for j in j0..j0 + tw {
                            sink.load_shared(Block::c(i, j))?;
                        }
                    }
                }
                for k in 0..z {
                    // Load a row B[k; j0..j0+tw] of B in the shared cache.
                    if manages {
                        for j in j0..j0 + tw {
                            sink.load_shared(Block::b(k, j))?;
                        }
                    }
                    for i in i0..i0 + th {
                        let a = Block::a(i, k);
                        if manages {
                            sink.load_shared(a)?;
                        }
                        // foreach core in parallel: each core owns a chunk
                        // of the tile row and streams it element by element.
                        for core in 0..p {
                            let cols = chunk(tw, p, core);
                            if cols.is_empty() {
                                continue;
                            }
                            let core = core as usize;
                            if manages {
                                sink.load_dist(core, a)?;
                            }
                            for jj in cols {
                                let j = j0 + jj;
                                let b = Block::b(k, j);
                                let cb = Block::c(i, j);
                                if manages {
                                    sink.load_dist(core, b)?;
                                    sink.load_dist(core, cb)?;
                                }
                                // Touch `a` first so that, under LRU with the
                                // minimal 3-block private cache, it survives
                                // the insertion of the next B/C pair.
                                sink.read(core, a)?;
                                sink.read(core, b)?;
                                sink.read(core, cb)?;
                                sink.fma(core, a, b, cb)?;
                                sink.write(core, cb)?;
                                if manages {
                                    sink.evict_dist(core, b)?;
                                    // Dirty C element: its update lands in the
                                    // shared copy ("Update block Cc in the
                                    // shared cache").
                                    sink.evict_dist(core, cb)?;
                                }
                            }
                            if manages {
                                sink.evict_dist(core, a)?;
                            }
                        }
                        sink.barrier()?;
                        if manages {
                            sink.evict_shared(a)?;
                        }
                    }
                    if manages {
                        for j in j0..j0 + tw {
                            sink.evict_shared(Block::b(k, j))?;
                        }
                    }
                }
                // Write back the block of C to the main memory.
                if manages {
                    for i in i0..i0 + th {
                        for j in j0..j0 + tw {
                            sink.evict_shared(Block::c(i, j))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Algorithm for SharedOpt {
    fn name(&self) -> &'static str {
        "Shared Opt."
    }

    fn id(&self) -> &'static str {
        "shared_opt"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut dyn SimSink,
    ) -> Result<(), AlgoError> {
        SharedOpt::run(machine, problem, sink)
    }

    fn predict(&self, machine: &MachineConfig, problem: &ProblemSpec) -> Option<Prediction> {
        formulas::shared_opt(problem, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_sim::{CountingSink, SimConfig, Simulator};

    #[test]
    fn fma_count_is_mnz() {
        let machine = MachineConfig::new(4, 57, 3, 32); // λ = 7
        let problem = ProblemSpec::new(9, 5, 4);
        let mut sink = CountingSink::new();
        SharedOpt::run(&machine, &problem, &mut sink).unwrap();
        assert_eq!(sink.fmas, problem.total_fmas());
        assert_eq!(sink.reads, 3 * problem.total_fmas());
        assert_eq!(sink.writes, problem.total_fmas());
    }

    #[test]
    fn ideal_counts_match_formula_exactly_on_divisible_sizes() {
        // λ = 30 on the q=32 preset; m = n = 60 (divisible by λ),
        // p = 4 divides λ? 30/4 is ragged, so M_D splits 8,8,7,7 — use the
        // exact max-chunk count instead of the idealized λ/p.
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(60, 60, 13);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 60, 60, 13);
        SharedOpt::run(&machine, &problem, &mut sim).unwrap();
        let stats = sim.stats();
        let (m, n, z) = (60u64, 60, 13);
        assert_eq!(stats.ms(), m * n + 2 * m * n * z / 30);
        // Per-core: per (k, i): 1 a + 2·(chunk of 30 among 4 = 8 max).
        let tiles = (m / 30) * (n / 30);
        let md_max = tiles * z * 30 * (1 + 2 * 8);
        assert_eq!(stats.md(), md_max);
        assert_eq!(stats.total_fmas(), m * n * z);
        // All of C written back exactly once.
        assert_eq!(stats.shared_writebacks, m * n);
    }

    #[test]
    fn ideal_mode_stays_within_capacity_on_ragged_sizes() {
        let machine = MachineConfig::quad_q80_pessimistic(); // C_D = 3: tightest
        for (m, n, z) in [(1, 1, 1), (7, 13, 5), (23, 4, 9)] {
            let problem = ProblemSpec::new(m, n, z);
            let mut sim = Simulator::new(SimConfig::ideal(&machine), m, n, z);
            SharedOpt::run(&machine, &problem, &mut sim)
                .unwrap_or_else(|e| panic!("{m}x{n}x{z}: {e}"));
            assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
        }
    }

    #[test]
    fn too_small_caches_are_rejected_under_ideal() {
        // IDEAL mode enforces the capacity arithmetic strictly…
        let problem = ProblemSpec::square(4);
        let machine = MachineConfig::new(4, 2, 21, 32);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 4, 4, 4);
        assert!(matches!(
            SharedOpt::run(&machine, &problem, &mut sim),
            Err(AlgoError::Infeasible { .. })
        ));
        let machine = MachineConfig::new(4, 977, 2, 32);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 4, 4, 4);
        assert!(matches!(
            SharedOpt::run(&machine, &problem, &mut sim),
            Err(AlgoError::Infeasible { .. })
        ));
        // …but under automatic replacement the schedule degrades to λ = 1
        // and still computes everything (the paper's LRU-50 setting halves
        // declared capacities below the IDEAL minima).
        let mut sim = Simulator::new(SimConfig::lru(&machine), 4, 4, 4);
        SharedOpt::run(&machine, &problem, &mut sim).unwrap();
        assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
        let mut sink = CountingSink::new();
        SharedOpt::run(&MachineConfig::new(4, 2, 21, 32), &problem, &mut sink).unwrap();
        assert_eq!(sink.fmas, problem.total_fmas());
    }

    #[test]
    fn lru_at_double_capacity_stays_within_2x_formula() {
        // The Frigo et al. competitiveness result the paper validates in
        // Fig. 4: LRU(2C) ≤ 2 × IDEAL(C) misses.
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(90);
        let mut sim = Simulator::new(SimConfig::lru_scaled(&machine, 2), 90, 90, 90);
        SharedOpt::run(&machine, &problem, &mut sim).unwrap();
        let formula = formulas::shared_opt(&problem, &machine).unwrap();
        assert!(
            (sim.stats().ms() as f64) <= 2.0 * formula.ms,
            "LRU(2C_S) M_S = {} vs formula {}",
            sim.stats().ms(),
            formula.ms
        );
    }
}
