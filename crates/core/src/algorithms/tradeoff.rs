//! **Tradeoff** — Algorithm 3 (§3.3): minimize the overall data access
//! time `T_data = M_S/σ_S + M_D/σ_D`.
//!
//! An `α×α` block of `C` lives in the shared cache together with a
//! `β`-deep panel of `A` (`α×β`) and of `B` (`β×α`), under the constraint
//! `α² + 2αβ ≤ C_S`. The `C` tile is split into `µ×µ` sub-blocks
//! distributed 2-D cyclically over the `√p×√p` core grid; each core
//! accumulates the `β` contributions of the current panels into each of
//! its sub-blocks before moving on, so the per-`C`-element reload cost
//! drops from once per `k` (Shared Opt) to once per `β` steps.
//!
//! Predicted counts (divisible sizes): `M_S = mn + 2mnz/α`;
//! `M_D = mnz/(pβ) + 2mnz/(pµ)`, improving to `mn/p + 2mnz/(pµ)` in the
//! special case `α = √p·µ` where each core owns a single sub-block per
//! tile and loads it once.

use super::{tiles, AlgoError, Algorithm};
use crate::formulas::{self, Prediction};
use crate::params::{self, TradeoffParams};
use crate::problem::ProblemSpec;
use mmc_sim::{Block, MachineConfig, SimSink};

/// Algorithm 3 of the paper. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tradeoff {
    /// Explicit `(α, β, µ, grid)`; `None` derives them from the machine's
    /// capacities and bandwidths via [`params::tradeoff_params`].
    pub params: Option<TradeoffParams>,
}

impl Tradeoff {
    /// Run with explicit parameters (ablations, tests).
    pub fn with_params(params: TradeoffParams) -> Tradeoff {
        Tradeoff { params: Some(params) }
    }

    /// The parameters a strict (IDEAL-capacity) run on `machine` would use.
    pub fn resolve_params(&self, machine: &MachineConfig) -> Result<TradeoffParams, AlgoError> {
        self.resolve_params_mode(machine, false)
    }

    /// Parameter resolution; `lenient` relaxes the distributed-cache
    /// constraint (µ degrades to 1) for automatic-replacement runs, where
    /// the capacity arithmetic is advisory.
    fn resolve_params_mode(
        &self,
        machine: &MachineConfig,
        lenient: bool,
    ) -> Result<TradeoffParams, AlgoError> {
        let t = match self.params {
            Some(t) => t,
            None => {
                let derived = match params::tradeoff_params(machine) {
                    Some(t) => Some(t),
                    None if lenient => {
                        params::tradeoff_params_with_mu(machine, params::mu(machine).unwrap_or(1))
                    }
                    None => None,
                };
                derived.ok_or_else(|| AlgoError::Infeasible {
                    algorithm: "Tradeoff",
                    reason: format!(
                        "no feasible (α, β): C_S = {}, C_D = {}, p = {}",
                        machine.shared_capacity, machine.dist_capacity, machine.cores
                    ),
                })?
            }
        };
        if t.grid.cores() != machine.cores {
            return Err(AlgoError::Infeasible {
                algorithm: "Tradeoff",
                reason: format!(
                    "grid {}x{} does not cover p = {}",
                    t.grid.rows, t.grid.cols, machine.cores
                ),
            });
        }
        let step_r = t.grid.rows * t.mu;
        let step_c = t.grid.cols * t.mu;
        if t.alpha == 0 || t.alpha % step_r != 0 || t.alpha % step_c != 0 {
            return Err(AlgoError::Infeasible {
                algorithm: "Tradeoff",
                reason: format!(
                    "α = {} must be a positive multiple of grid·µ ({} and {})",
                    t.alpha, step_r, step_c
                ),
            });
        }
        if t.beta == 0 || t.shared_footprint() > machine.shared_capacity as u64 {
            return Err(AlgoError::Infeasible {
                algorithm: "Tradeoff",
                reason: format!(
                    "α² + 2αβ = {} exceeds C_S = {} (α = {}, β = {})",
                    t.shared_footprint(),
                    machine.shared_capacity,
                    t.alpha,
                    t.beta
                ),
            });
        }
        let mu = t.mu as u64;
        if !lenient && 1 + mu + mu * mu > machine.dist_capacity as u64 {
            return Err(AlgoError::Infeasible {
                algorithm: "Tradeoff",
                reason: format!(
                    "1 + µ + µ² = {} exceeds C_D = {}",
                    1 + mu + mu * mu,
                    machine.dist_capacity
                ),
            });
        }
        Ok(t)
    }

    /// Stream the schedule into `sink`.
    pub fn run<S: SimSink + ?Sized>(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut S,
    ) -> Result<(), AlgoError> {
        let manages = sink.manages_residency();
        let t = self.resolve_params_mode(machine, !manages)?;
        let (alpha, beta, mu, grid) = (t.alpha, t.beta, t.mu, t.grid);
        // Each core owns a single sub-block per tile exactly when the tile
        // holds one µ×µ sub-block per grid position.
        let single = alpha == grid.rows * mu && alpha == grid.cols * mu;
        let (m, n, z) = (problem.m, problem.n, problem.z);

        for (i0, th) in tiles(m, alpha) {
            for (j0, tw) in tiles(n, alpha) {
                // Step 1: the α×α block of C enters the shared cache.
                if manages {
                    for i in i0..i0 + th {
                        for j in j0..j0 + tw {
                            sink.load_shared(Block::c(i, j))?;
                        }
                    }
                    if single {
                        // Special case: every core pins its unique
                        // sub-block for the whole tile computation.
                        for core in 0..machine.cores {
                            let (r, cj) = grid.coords(core);
                            for i in cyclic(r, grid.rows, mu, th).flat_map(|s| s.clone()) {
                                for j in cyclic(cj, grid.cols, mu, tw).flat_map(|s| s.clone()) {
                                    sink.load_dist(core, Block::c(i0 + i, j0 + j))?;
                                }
                            }
                        }
                    }
                }
                // Step 2/5: β-deep panels of B and A stream through.
                for (k0, kb) in tiles(z, beta) {
                    if manages {
                        for k in k0..k0 + kb {
                            for j in j0..j0 + tw {
                                sink.load_shared(Block::b(k, j))?;
                            }
                        }
                        for i in i0..i0 + th {
                            for k in k0..k0 + kb {
                                sink.load_shared(Block::a(i, k))?;
                            }
                        }
                    }
                    // Steps 3/4: cores walk their cyclically-assigned µ×µ
                    // sub-blocks, accumulating the β contributions.
                    for core in 0..machine.cores {
                        let (r, cj) = grid.coords(core);
                        for rows in cyclic(r, grid.rows, mu, th) {
                            for cols in cyclic(cj, grid.cols, mu, tw) {
                                if manages && !single {
                                    for i in rows.clone() {
                                        for j in cols.clone() {
                                            sink.load_dist(core, Block::c(i0 + i, j0 + j))?;
                                        }
                                    }
                                }
                                for k in k0..k0 + kb {
                                    if manages {
                                        for j in cols.clone() {
                                            sink.load_dist(core, Block::b(k, j0 + j))?;
                                        }
                                    }
                                    for i in rows.clone() {
                                        let a = Block::a(i0 + i, k);
                                        if manages {
                                            sink.load_dist(core, a)?;
                                        }
                                        for j in cols.clone() {
                                            let b = Block::b(k, j0 + j);
                                            let cb = Block::c(i0 + i, j0 + j);
                                            sink.read(core, a)?;
                                            sink.read(core, b)?;
                                            sink.read(core, cb)?;
                                            sink.fma(core, a, b, cb)?;
                                            sink.write(core, cb)?;
                                        }
                                        if manages {
                                            sink.evict_dist(core, a)?;
                                        }
                                    }
                                    if manages {
                                        for j in cols.clone() {
                                            sink.evict_dist(core, Block::b(k, j0 + j))?;
                                        }
                                    }
                                }
                                if manages && !single {
                                    // The sub-block's updates land in the
                                    // shared copy until the next substep.
                                    for i in rows.clone() {
                                        for j in cols.clone() {
                                            sink.evict_dist(core, Block::c(i0 + i, j0 + j))?;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    sink.barrier()?;
                    if manages {
                        for k in k0..k0 + kb {
                            for j in j0..j0 + tw {
                                sink.evict_shared(Block::b(k, j))?;
                            }
                        }
                        for i in i0..i0 + th {
                            for k in k0..k0 + kb {
                                sink.evict_shared(Block::a(i, k))?;
                            }
                        }
                    }
                }
                // Step 6: the finished C tile returns to main memory.
                if manages {
                    if single {
                        for core in 0..machine.cores {
                            let (r, cj) = grid.coords(core);
                            for i in cyclic(r, grid.rows, mu, th).flat_map(|s| s.clone()) {
                                for j in cyclic(cj, grid.cols, mu, tw).flat_map(|s| s.clone()) {
                                    sink.evict_dist(core, Block::c(i0 + i, j0 + j))?;
                                }
                            }
                        }
                    }
                    for i in i0..i0 + th {
                        for j in j0..j0 + tw {
                            sink.evict_shared(Block::c(i, j))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// The µ-rows assigned cyclically to grid position `off` within a tile
/// extent: sub-block indices `off, off+period, off+2·period, …`, each
/// mapped to its (clamped) `µ`-wide range.
fn cyclic(
    off: u32,
    period: u32,
    mu: u32,
    extent: u32,
) -> impl Iterator<Item = std::ops::Range<u32>> + Clone {
    (off..)
        .step_by(period as usize)
        .map(move |s| ((s * mu).min(extent))..(((s + 1) * mu).min(extent)))
        .take_while(|r| !r.is_empty())
}

impl Algorithm for Tradeoff {
    fn name(&self) -> &'static str {
        "Tradeoff"
    }

    fn id(&self) -> &'static str {
        "tradeoff"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut dyn SimSink,
    ) -> Result<(), AlgoError> {
        self.run(machine, problem, sink)
    }

    fn predict(&self, machine: &MachineConfig, problem: &ProblemSpec) -> Option<Prediction> {
        let t = self.resolve_params(machine).ok()?;
        Some(formulas::tradeoff_with(problem, machine, &t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CoreGrid;
    use mmc_sim::{CountingSink, SimConfig, Simulator};

    fn explicit(alpha: u32, beta: u32) -> Tradeoff {
        Tradeoff::with_params(TradeoffParams {
            alpha,
            beta,
            mu: 4,
            grid: CoreGrid { rows: 2, cols: 2 },
        })
    }

    #[test]
    fn ideal_counts_match_formula_general_case() {
        // α = 16 (> √p·µ = 8), β = 8: α² + 2αβ = 256 + 256 = 512 ≤ 977.
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(32, 32, 16);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 32, 32, 16);
        explicit(16, 8).run(&machine, &problem, &mut sim).unwrap();
        let stats = sim.stats();
        let (m, n, z, p) = (32u64, 32, 16, 4u64);
        assert_eq!(stats.ms(), m * n + 2 * m * n * z / 16);
        assert_eq!(stats.md(), m * n * z / (p * 8) + 2 * m * n * z / (p * 4));
        assert_eq!(stats.total_fmas(), m * n * z);
        assert_eq!(stats.shared_writebacks, m * n);
    }

    #[test]
    fn ideal_counts_match_formula_single_subblock_case() {
        // α = √p·µ = 8: each core owns one sub-block per tile.
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(16, 16, 12);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 16, 16, 12);
        explicit(8, 4).run(&machine, &problem, &mut sim).unwrap();
        let stats = sim.stats();
        let (m, n, z, p) = (16u64, 16, 12, 4u64);
        assert_eq!(stats.ms(), m * n + 2 * m * n * z / 8);
        assert_eq!(stats.md(), m * n / p + 2 * m * n * z / (p * 4));
    }

    #[test]
    fn derived_params_run_clean_on_all_presets() {
        for (label, machine) in MachineConfig::paper_presets() {
            let problem = ProblemSpec::new(19, 7, 11); // ragged on purpose
            let mut sim = Simulator::new(SimConfig::ideal(&machine), 19, 7, 11);
            Tradeoff::default()
                .run(&machine, &problem, &mut sim)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
        }
    }

    #[test]
    fn infeasible_explicit_params_rejected() {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(8);
        let mut sink = CountingSink::new();
        // α not a multiple of √p·µ.
        let t = Tradeoff::with_params(TradeoffParams {
            alpha: 12,
            beta: 1,
            mu: 4,
            grid: CoreGrid { rows: 2, cols: 2 },
        });
        assert!(matches!(t.run(&machine, &problem, &mut sink), Err(AlgoError::Infeasible { .. })));
        // Footprint too big: α = 24, β = 100 → 576 + 4800 > 977.
        let t = explicit(24, 100);
        assert!(matches!(t.run(&machine, &problem, &mut sink), Err(AlgoError::Infeasible { .. })));
    }

    #[test]
    fn beta_trades_md_for_ms() {
        // Same α, growing β: M_S identical, M_D strictly better.
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(32, 32, 32);
        let run = |beta: u32| {
            let mut sim = Simulator::new(SimConfig::ideal(&machine), 32, 32, 32);
            explicit(16, beta).run(&machine, &problem, &mut sim).unwrap();
            (sim.stats().ms(), sim.stats().md())
        };
        let (ms1, md1) = run(1);
        let (ms8, md8) = run(8);
        assert_eq!(ms1, ms8);
        assert!(md8 < md1);
    }

    #[test]
    fn cyclic_assignment_covers_tile_exactly() {
        // Union over grid positions of cyclic sub-ranges == 0..extent.
        for extent in [1u32, 7, 8, 16, 23] {
            for period in [1u32, 2, 3] {
                for mu in [1u32, 2, 4] {
                    let mut seen = vec![0u32; extent as usize];
                    for off in 0..period {
                        for r in cyclic(off, period, mu, extent) {
                            for i in r {
                                seen[i as usize] += 1;
                            }
                        }
                    }
                    assert!(
                        seen.iter().all(|&c| c == 1),
                        "extent={extent} period={period} mu={mu}"
                    );
                }
            }
        }
    }
}
