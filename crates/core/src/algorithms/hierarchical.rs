//! **Hierarchical Maximum Reuse** — extension for arbitrary-depth cache
//! trees ("clusters of multicores", the paper's concluding future work).
//!
//! Algorithm 2 generalizes naturally: at *every* tree level, each cache
//! node pins its rectangular sub-tile of `C` for the entire `k` loop,
//! while per-`k` fractions of a `B` row and elements of `A` stream
//! through. The per-level tile sides compose bottom-up —
//! `side(l) = grid(l+1) × side(l+1)` with the innermost side `µ` from the
//! per-core capacity — so the paper's `√p·µ` tile is the two-level
//! special case, and each level `l` needs
//! `rows(l)·cols(l) + rows(l) + cols(l) ≤ C_l` (checked, like the
//! `1 + µ + µ²` constraint of §3.2).
//!
//! The schedule runs under automatic (LRU) replacement — it targets the
//! realistic [`TreeSimulator`](mmc_sim::TreeSimulator) — and, like every
//! other schedule here, streams plain `read`/`write`/`fma` events, so it
//! also executes on real data through `mmc-exec`'s `ExecSink`.

use super::{tiles, AlgoError};
use crate::params::{self, CoreGrid};
use crate::problem::ProblemSpec;
use mmc_sim::{Block, SimSink, TreeTopology};

/// Multi-level Maximum Reuse schedule over a cache tree. See module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchicalMaxReuse {
    /// The cache tree the tiling is sized for.
    pub topology: TreeTopology,
}

/// Per-level tiling derived from a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchicalTiling {
    /// Balanced grid of each level's nodes under one parent.
    pub grids: Vec<CoreGrid>,
    /// `(rows, cols)` of the `C` sub-tile owned by one node of each level.
    pub sides: Vec<(u32, u32)>,
    /// Full tile processed per outer step:
    /// `(grids[0].rows · sides[0].0, grids[0].cols · sides[0].1)`.
    pub super_tile: (u32, u32),
}

impl HierarchicalMaxReuse {
    /// Build for a topology.
    pub fn new(topology: TreeTopology) -> HierarchicalMaxReuse {
        HierarchicalMaxReuse { topology }
    }

    /// Derive (and validate) the per-level tiling.
    pub fn tiling(&self) -> Result<HierarchicalTiling, AlgoError> {
        let depth = self.topology.depth();
        let infeasible =
            |reason: String| AlgoError::Infeasible { algorithm: "Hierarchical Max Reuse", reason };
        let mu =
            params::max_reuse_param(self.topology.levels[depth - 1].capacity).ok_or_else(|| {
                infeasible(format!(
                    "innermost capacity {} cannot hold 1 + µ + µ²",
                    self.topology.levels[depth - 1].capacity
                ))
            })?;
        let grids: Vec<CoreGrid> =
            self.topology.levels.iter().map(|l| CoreGrid::balanced(l.arity)).collect();
        let mut sides = vec![(0u32, 0u32); depth];
        sides[depth - 1] = (mu, mu);
        for l in (0..depth - 1).rev() {
            let child = grids[l + 1];
            sides[l] = (child.rows * sides[l + 1].0, child.cols * sides[l + 1].1);
        }
        // Every level must hold its tile + a B-row fraction + A elements;
        // the innermost (per-core) level streams a single element of A at
        // a time, which is the 1 + µ + µ² constraint of §3.2.
        for (l, &(r, c)) in sides.iter().enumerate() {
            let a_elems = if l == depth - 1 { 1 } else { r as u64 };
            let need = r as u64 * c as u64 + c as u64 + a_elems;
            if need > self.topology.levels[l].capacity as u64 {
                return Err(infeasible(format!(
                    "level {l} needs {r}x{c} + {c} + {a_elems} = {need} blocks, capacity is {}",
                    self.topology.levels[l].capacity
                )));
            }
        }
        let super_tile = (grids[0].rows * sides[0].0, grids[0].cols * sides[0].1);
        Ok(HierarchicalTiling { grids, sides, super_tile })
    }

    /// Block-offset of `core`'s `µ×µ` region inside a super-tile.
    fn core_offset(&self, tiling: &HierarchicalTiling, core: usize) -> (u32, u32) {
        let depth = self.topology.depth();
        let cores = self.topology.cores();
        let (mut roff, mut coff) = (0u32, 0u32);
        for l in 0..depth {
            let digit =
                (core / (cores / self.topology.nodes_at(l))) % self.topology.levels[l].arity;
            let g = tiling.grids[l];
            let (r, c) = ((digit as u32) % g.rows, (digit as u32) / g.rows);
            roff += r * tiling.sides[l].0;
            coff += c * tiling.sides[l].1;
        }
        (roff, coff)
    }

    /// Stream the schedule into `sink` (LRU-style; no residency
    /// directives are emitted).
    pub fn run<S: SimSink + ?Sized>(
        &self,
        problem: &ProblemSpec,
        sink: &mut S,
    ) -> Result<(), AlgoError> {
        if sink.manages_residency() {
            return Err(AlgoError::RequiresAutomaticReplacement {
                algorithm: "Hierarchical Max Reuse",
            });
        }
        let tiling = self.tiling()?;
        let cores = self.topology.cores();
        let offsets: Vec<(u32, u32)> = (0..cores).map(|c| self.core_offset(&tiling, c)).collect();
        let mu_r = tiling.sides[self.topology.depth() - 1].0;
        let mu_c = tiling.sides[self.topology.depth() - 1].1;
        let (m, n, z) = (problem.m, problem.n, problem.z);

        for (i0, th) in tiles(m, tiling.super_tile.0) {
            for (j0, tw) in tiles(n, tiling.super_tile.1) {
                for k in 0..z {
                    for (core, &(roff, coff)) in offsets.iter().enumerate() {
                        if roff >= th || coff >= tw {
                            continue; // clamped edge tile: nothing assigned
                        }
                        let rows = i0 + roff..i0 + (roff + mu_r).min(th);
                        let cols = j0 + coff..j0 + (coff + mu_c).min(tw);
                        for i in rows {
                            let a = Block::a(i, k);
                            for j in cols.clone() {
                                let b = Block::b(k, j);
                                let cb = Block::c(i, j);
                                sink.read(core, a)?;
                                sink.read(core, b)?;
                                sink.read(core, cb)?;
                                sink.fma(core, a, b, cb)?;
                                sink.write(core, cb)?;
                            }
                        }
                    }
                    sink.barrier()?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_sim::{CountingSink, TreeSimulator, TreeTopology};

    fn cluster() -> TreeTopology {
        // 2 nodes × (1 shared × 4 cores): sides: µ(21)=4; shared 2×2 grid
        // → 8×8; node level grid 1x2... capacities sized generously.
        TreeTopology::cluster(2, 4096, 4, 977, 21)
    }

    #[test]
    fn tiling_composes_bottom_up() {
        let h = HierarchicalMaxReuse::new(cluster());
        let t = h.tiling().unwrap();
        assert_eq!(t.sides[2], (4, 4)); // µ = 4
        assert_eq!(t.sides[1], (8, 8)); // 2×2 core grid
        assert_eq!(t.sides[0], (8, 8)); // arity-1 shared level
                                        // Node level: balanced(2) = 1×2 grid → super-tile 8×16.
        assert_eq!(t.super_tile, (8, 16));
    }

    #[test]
    fn two_level_tiling_matches_distributed_opt() {
        let h = HierarchicalMaxReuse::new(TreeTopology::two_level(4, 977, 21));
        let t = h.tiling().unwrap();
        assert_eq!(t.super_tile, (8, 8)); // √p·µ = 2·4
    }

    #[test]
    fn covers_every_fma_once_and_balances() {
        let topo = cluster();
        let h = HierarchicalMaxReuse::new(topo.clone());
        // 16×16: exactly 2×1 super-tiles of 8×16.
        let problem = ProblemSpec::new(16, 16, 5);
        let mut sim = TreeSimulator::new(topo, 16, 16, 5);
        h.run(&problem, &mut sim).unwrap();
        assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
        let fmas = &sim.stats().fmas;
        assert!(fmas.iter().all(|&f| f == fmas[0]), "balanced: {fmas:?}");
    }

    #[test]
    fn ragged_problems_are_covered() {
        let topo = cluster();
        let h = HierarchicalMaxReuse::new(topo);
        for (m, n, z) in [(1u32, 1, 1), (7, 13, 3), (19, 5, 2)] {
            let problem = ProblemSpec::new(m, n, z);
            let mut sink = CountingSink::new();
            h.run(&problem, &mut sink).unwrap();
            assert_eq!(sink.fmas, problem.total_fmas(), "{m}x{n}x{z}");
        }
    }

    #[test]
    fn infeasible_levels_are_reported() {
        // Node-level cache too small for the composed tile (8×16 + …).
        let topo = TreeTopology::cluster(2, 32, 4, 977, 21);
        let h = HierarchicalMaxReuse::new(topo);
        assert!(matches!(h.tiling(), Err(AlgoError::Infeasible { .. })));
        // Innermost below the 3-block minimum.
        let topo = TreeTopology::cluster(2, 4096, 4, 977, 2);
        assert!(HierarchicalMaxReuse::new(topo).tiling().is_err());
    }

    #[test]
    fn refuses_residency_managed_sinks() {
        let h = HierarchicalMaxReuse::new(cluster());
        let mut sink = mmc_sim::TraceSink::with_residency();
        assert!(matches!(
            h.run(&ProblemSpec::square(4), &mut sink),
            Err(AlgoError::RequiresAutomaticReplacement { .. })
        ));
    }

    #[test]
    fn every_core_gets_a_distinct_region() {
        let h = HierarchicalMaxReuse::new(cluster());
        let t = h.tiling().unwrap();
        let cores = h.topology.cores();
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..cores {
            assert!(seen.insert(h.core_offset(&t, c)), "core {c} collides");
        }
        // Offsets tile the super-tile exactly.
        assert_eq!(seen.len() as u32 * 16, t.super_tile.0 * t.super_tile.1);
    }
}
