//! **Equal** — the Toledo-inspired equal-thirds baselines (§4.1): "one
//! third of [the cache] is equally allocated to each loaded matrix
//! sub-block". The out-of-core algorithm of Toledo's survey targets a
//! single cache level, so the paper declines it in two versions:
//!
//! * [`SharedEqual`] blocks for the *shared* cache with tiles of side
//!   `t = ⌊√(C_S/3)⌋` (compare with Shared Opt's `λ ≈ √C_S`: the equal
//!   split wastes a factor `√3` of shared-cache misses);
//! * [`DistributedEqual`] blocks for each *distributed* cache with tiles
//!   of side `t_D = ⌊√(C_D/3)⌋`, every core independently computing its
//!   contiguous partition of `C`.

use super::{chunk, tiles, AlgoError, Algorithm};
use crate::formulas::{self, Prediction};
use crate::params::{self, CoreGrid};
use crate::problem::ProblemSpec;
use mmc_sim::{Block, MachineConfig, SimSink};

/// Equal-thirds blocking at the shared-cache level. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedEqual;

impl SharedEqual {
    /// Stream the schedule into `sink`.
    pub fn run<S: SimSink + ?Sized>(
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut S,
    ) -> Result<(), AlgoError> {
        let manages = sink.manages_residency();
        // Capacity arithmetic is only binding under explicit (IDEAL)
        // management; under LRU degrade to unit tiles instead of failing.
        let t = match params::equal_tile(machine.shared_capacity) {
            Some(t) => t,
            None if !manages => 1,
            None => {
                return Err(AlgoError::Infeasible {
                    algorithm: "Shared Equal",
                    reason: format!(
                        "shared cache of {} blocks cannot hold three 1×1 tiles",
                        machine.shared_capacity
                    ),
                })
            }
        };
        if manages && machine.dist_capacity < 3 {
            return Err(AlgoError::Infeasible {
                algorithm: "Shared Equal",
                reason: format!(
                    "distributed caches need ≥ 3 blocks, got {}",
                    machine.dist_capacity
                ),
            });
        }
        let p = machine.cores as u32;
        let (m, n, z) = (problem.m, problem.n, problem.z);

        for (i0, th) in tiles(m, t) {
            for (j0, tw) in tiles(n, t) {
                if manages {
                    for i in i0..i0 + th {
                        for j in j0..j0 + tw {
                            sink.load_shared(Block::c(i, j))?;
                        }
                    }
                }
                for (k0, kb) in tiles(z, t) {
                    if manages {
                        for i in i0..i0 + th {
                            for k in k0..k0 + kb {
                                sink.load_shared(Block::a(i, k))?;
                            }
                        }
                        for k in k0..k0 + kb {
                            for j in j0..j0 + tw {
                                sink.load_shared(Block::b(k, j))?;
                            }
                        }
                    }
                    // Cores split the tile rows; privately they stream
                    // element triples exactly like Shared Opt's inner loop.
                    for core in 0..p {
                        let rows = chunk(th, p, core);
                        let core = core as usize;
                        for ii in rows {
                            let i = i0 + ii;
                            for k in k0..k0 + kb {
                                let a = Block::a(i, k);
                                if manages {
                                    sink.load_dist(core, a)?;
                                }
                                for j in j0..j0 + tw {
                                    let b = Block::b(k, j);
                                    let cb = Block::c(i, j);
                                    if manages {
                                        sink.load_dist(core, b)?;
                                        sink.load_dist(core, cb)?;
                                    }
                                    sink.read(core, a)?;
                                    sink.read(core, b)?;
                                    sink.read(core, cb)?;
                                    sink.fma(core, a, b, cb)?;
                                    sink.write(core, cb)?;
                                    if manages {
                                        sink.evict_dist(core, b)?;
                                        sink.evict_dist(core, cb)?;
                                    }
                                }
                                if manages {
                                    sink.evict_dist(core, a)?;
                                }
                            }
                        }
                    }
                    sink.barrier()?;
                    if manages {
                        for i in i0..i0 + th {
                            for k in k0..k0 + kb {
                                sink.evict_shared(Block::a(i, k))?;
                            }
                        }
                        for k in k0..k0 + kb {
                            for j in j0..j0 + tw {
                                sink.evict_shared(Block::b(k, j))?;
                            }
                        }
                    }
                }
                if manages {
                    for i in i0..i0 + th {
                        for j in j0..j0 + tw {
                            sink.evict_shared(Block::c(i, j))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl Algorithm for SharedEqual {
    fn name(&self) -> &'static str {
        "Shared Equal"
    }

    fn id(&self) -> &'static str {
        "shared_equal"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut dyn SimSink,
    ) -> Result<(), AlgoError> {
        SharedEqual::run(machine, problem, sink)
    }

    fn predict(&self, machine: &MachineConfig, problem: &ProblemSpec) -> Option<Prediction> {
        formulas::shared_equal(problem, machine)
    }
}

/// Equal-thirds blocking at the distributed-cache level. See the module docs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistributedEqual {
    /// Explicit core grid for the contiguous `C` partition; `None` picks
    /// `√p×√p` when `p` is square, else the most-square factorization.
    pub grid: Option<CoreGrid>,
}

impl DistributedEqual {
    /// Use an explicit core grid.
    pub fn with_grid(grid: CoreGrid) -> DistributedEqual {
        DistributedEqual { grid: Some(grid) }
    }

    /// Stream the schedule into `sink`.
    pub fn run<S: SimSink + ?Sized>(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut S,
    ) -> Result<(), AlgoError> {
        let manages = sink.manages_residency();
        let td = match params::equal_tile(machine.dist_capacity) {
            Some(t) => t,
            None if !manages => 1,
            None => {
                return Err(AlgoError::Infeasible {
                    algorithm: "Distributed Equal",
                    reason: format!(
                        "distributed cache of {} blocks cannot hold three 1×1 tiles",
                        machine.dist_capacity
                    ),
                })
            }
        };
        let grid = match self.grid {
            Some(g) if g.cores() != machine.cores => {
                return Err(AlgoError::Infeasible {
                    algorithm: "Distributed Equal",
                    reason: format!(
                        "grid {}x{} covers {} cores but the machine has {}",
                        g.rows,
                        g.cols,
                        g.cores(),
                        machine.cores
                    ),
                })
            }
            Some(g) => g,
            None => {
                CoreGrid::square(machine.cores).unwrap_or_else(|| CoreGrid::balanced(machine.cores))
            }
        };
        let (m, n, z) = (problem.m, problem.n, problem.z);

        for core in 0..machine.cores {
            let (r, cj) = grid.coords(core);
            let prows = chunk(m, grid.rows, r);
            let pcols = chunk(n, grid.cols, cj);
            for (ri, rth) in tiles(prows.len() as u32, td) {
                let i0 = prows.start + ri;
                for (rj, rtw) in tiles(pcols.len() as u32, td) {
                    let j0 = pcols.start + rj;
                    if manages {
                        for i in i0..i0 + rth {
                            for j in j0..j0 + rtw {
                                sink.load_shared(Block::c(i, j))?;
                                sink.load_dist(core, Block::c(i, j))?;
                            }
                        }
                    }
                    for (k0, kb) in tiles(z, td) {
                        if manages {
                            for i in i0..i0 + rth {
                                for k in k0..k0 + kb {
                                    sink.load_shared(Block::a(i, k))?;
                                    sink.load_dist(core, Block::a(i, k))?;
                                }
                            }
                            for k in k0..k0 + kb {
                                for j in j0..j0 + rtw {
                                    sink.load_shared(Block::b(k, j))?;
                                    sink.load_dist(core, Block::b(k, j))?;
                                }
                            }
                        }
                        for i in i0..i0 + rth {
                            for k in k0..k0 + kb {
                                let a = Block::a(i, k);
                                for j in j0..j0 + rtw {
                                    let b = Block::b(k, j);
                                    let cb = Block::c(i, j);
                                    sink.read(core, a)?;
                                    sink.read(core, b)?;
                                    sink.read(core, cb)?;
                                    sink.fma(core, a, b, cb)?;
                                    sink.write(core, cb)?;
                                }
                            }
                        }
                        if manages {
                            for i in i0..i0 + rth {
                                for k in k0..k0 + kb {
                                    sink.evict_dist(core, Block::a(i, k))?;
                                    sink.evict_shared(Block::a(i, k))?;
                                }
                            }
                            for k in k0..k0 + kb {
                                for j in j0..j0 + rtw {
                                    sink.evict_dist(core, Block::b(k, j))?;
                                    sink.evict_shared(Block::b(k, j))?;
                                }
                            }
                        }
                    }
                    if manages {
                        for i in i0..i0 + rth {
                            for j in j0..j0 + rtw {
                                sink.evict_dist(core, Block::c(i, j))?;
                                sink.evict_shared(Block::c(i, j))?;
                            }
                        }
                    }
                }
            }
        }
        // Cores factor their partitions fully independently; the only
        // synchronization is the final join.
        sink.barrier()?;
        Ok(())
    }
}

impl Algorithm for DistributedEqual {
    fn name(&self) -> &'static str {
        "Distributed Equal"
    }

    fn id(&self) -> &'static str {
        "distributed_equal"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut dyn SimSink,
    ) -> Result<(), AlgoError> {
        self.run(machine, problem, sink)
    }

    fn predict(&self, machine: &MachineConfig, problem: &ProblemSpec) -> Option<Prediction> {
        formulas::distributed_equal(problem, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_sim::{CountingSink, SimConfig, Simulator};

    #[test]
    fn shared_equal_ideal_ms_matches_formula() {
        // Custom machine with p | t for clean per-core counts:
        // C_S = 768 → t = 16; C_D = 3.
        let machine = MachineConfig::new(4, 768, 3, 32);
        let problem = ProblemSpec::new(32, 32, 16);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 32, 32, 16);
        SharedEqual::run(&machine, &problem, &mut sim).unwrap();
        let stats = sim.stats();
        let (m, n, z) = (32u64, 32, 16);
        assert_eq!(stats.ms(), m * n + 2 * m * n * z / 16);
        // Per core: rows 16/4 = 4 per tile; per (i,k): 1 + 2·16.
        assert_eq!(stats.md(), (m * n / (16 * 16)) * 4 * z * (1 + 2 * 16));
        assert_eq!(stats.total_fmas(), m * n * z);
    }

    #[test]
    fn distributed_equal_ideal_md_matches_formula() {
        // C_D = 21 → t_D = 2; p = 4 in a 2×2 grid; m = n = 8 → each core a
        // 4×4 partition = four 2×2 tiles; z = 6 (divisible by t_D).
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::new(8, 8, 6);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 8, 8, 6);
        DistributedEqual::default().run(&machine, &problem, &mut sim).unwrap();
        let stats = sim.stats();
        let (m, n, z, p) = (8u64, 8, 6, 4u64);
        assert_eq!(stats.md(), m * n / p + 2 * m * n * z / (p * 2));
        assert_eq!(stats.ms(), m * n + 2 * m * n * z / 2);
        assert_eq!(stats.total_fmas(), m * n * z);
    }

    #[test]
    fn shared_equal_tile_is_smaller_than_shared_opt_lambda() {
        // The point of Fig. 7: λ = 30 beats t = 18 on the q=32 preset.
        assert!(
            params::equal_tile(977).unwrap() < params::lambda(&MachineConfig::quad_q32()).unwrap()
        );
    }

    #[test]
    fn ragged_sizes_run_clean_under_ideal_checking() {
        let machine = MachineConfig::quad_q32();
        for (m, n, z) in [(1u32, 1, 1), (9, 5, 7), (19, 3, 11)] {
            let problem = ProblemSpec::new(m, n, z);
            let mut sim = Simulator::new(SimConfig::ideal(&machine), m, n, z);
            SharedEqual::run(&machine, &problem, &mut sim)
                .unwrap_or_else(|e| panic!("SharedEqual {m}x{n}x{z}: {e}"));
            assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
            let mut sim = Simulator::new(SimConfig::ideal(&machine), m, n, z);
            DistributedEqual::default()
                .run(&machine, &problem, &mut sim)
                .unwrap_or_else(|e| panic!("DistributedEqual {m}x{n}x{z}: {e}"));
            assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
        }
    }

    #[test]
    fn tiny_caches_rejected_under_ideal_but_degrade_under_lru() {
        let problem = ProblemSpec::square(4);
        let machine = MachineConfig::new(4, 2, 21, 32);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 4, 4, 4);
        assert!(SharedEqual::run(&machine, &problem, &mut sim).is_err());
        let machine = MachineConfig::new(4, 977, 2, 32);
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 4, 4, 4);
        assert!(DistributedEqual::default().run(&machine, &problem, &mut sim).is_err());
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 4, 4, 4);
        assert!(SharedEqual::run(&machine, &problem, &mut sim).is_err());
        // Automatic replacement: degrade to unit tiles and complete.
        let mut sink = CountingSink::new();
        SharedEqual::run(&machine, &problem, &mut sink).unwrap();
        assert_eq!(sink.fmas, problem.total_fmas());
        let mut sink = CountingSink::new();
        DistributedEqual::default().run(&machine, &problem, &mut sink).unwrap();
        assert_eq!(sink.fmas, problem.total_fmas());
    }
}
