//! The six matrix-product schedules of the paper's evaluation (§3–§4).
//!
//! * [`SharedOpt`] — Algorithm 1, minimizes shared-cache misses `M_S`;
//! * [`DistributedOpt`] — Algorithm 2, minimizes distributed misses `M_D`;
//! * [`Tradeoff`] — Algorithm 3, minimizes `T_data = M_S/σ_S + M_D/σ_D`;
//! * [`OuterProduct`] — the ScaLAPACK-style reference on a core torus;
//! * [`SharedEqual`] / [`DistributedEqual`] — the Toledo-inspired
//!   equal-thirds baselines at each cache level.
//!
//! Every schedule is a *streaming* generator: it emits `read`/`write`/
//! `fma` events (plus IDEAL residency directives when the sink manages
//! residency) into a [`SimSink`] and never materializes a trace. The same
//! schedule code therefore drives the cache simulator, the counting sink,
//! and the real executor in `mmc-exec`.
//!
//! The paper's lockstep `foreach core c = 1..p in parallel` regions are
//! serialized deterministically (core-major at the granularity of the
//! paper's parallel bodies); miss counts are order-independent at that
//! granularity because distinct cores touch distinct private caches and
//! their shared-cache footprints within a region are managed explicitly
//! (IDEAL) or disjoint up to the shared operand they are meant to share
//! (LRU).

mod distributed_opt;
mod equal;
mod hierarchical;
mod oblivious;
mod outer_product;
mod shared_opt;
mod tradeoff;

pub use distributed_opt::DistributedOpt;
pub use equal::{DistributedEqual, SharedEqual};
pub use hierarchical::{HierarchicalMaxReuse, HierarchicalTiling};
pub use oblivious::CacheOblivious;
pub use outer_product::OuterProduct;
pub use shared_opt::SharedOpt;
pub use tradeoff::Tradeoff;

use crate::formulas::Prediction;
use crate::problem::ProblemSpec;
use mmc_sim::{MachineConfig, SimError, SimSink};
use serde::{Deserialize, Serialize};

/// Why a schedule could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgoError {
    /// The simulator rejected an event (capacity/residency violation —
    /// a bug in the schedule, surfaced by IDEAL-mode checking).
    Sim(SimError),
    /// The machine cannot host this algorithm (cache too small, core count
    /// not a perfect square, …).
    Infeasible {
        /// Algorithm name.
        algorithm: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The algorithm has no explicit residency management and only runs
    /// under automatic (LRU) replacement; the paper notes Outer Product
    /// "is insensitive to cache policies".
    RequiresAutomaticReplacement {
        /// Algorithm name.
        algorithm: &'static str,
    },
}

impl From<SimError> for AlgoError {
    fn from(e: SimError) -> AlgoError {
        AlgoError::Sim(e)
    }
}

impl std::fmt::Display for AlgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoError::Sim(e) => write!(f, "simulation error: {e}"),
            AlgoError::Infeasible { algorithm, reason } => {
                write!(f, "{algorithm} is infeasible on this machine: {reason}")
            }
            AlgoError::RequiresAutomaticReplacement { algorithm } => {
                write!(f, "{algorithm} manages no residency and requires an LRU-mode sink")
            }
        }
    }
}

impl std::error::Error for AlgoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgoError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

/// A matrix-product schedule.
pub trait Algorithm: Sync + Send {
    /// Display name, matching the paper's figure legends.
    fn name(&self) -> &'static str;

    /// Stable machine-readable identifier (snake_case).
    fn id(&self) -> &'static str;

    /// Stream the schedule for `problem` on `machine` into `sink`.
    fn execute(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut dyn SimSink,
    ) -> Result<(), AlgoError>;

    /// The paper's closed-form miss prediction, if it gives one.
    fn predict(&self, machine: &MachineConfig, problem: &ProblemSpec) -> Option<Prediction>;
}

/// Identifier of one of the six algorithms (serde-friendly).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AlgorithmKind {
    /// Algorithm 1.
    SharedOpt,
    /// Algorithm 2.
    DistributedOpt,
    /// Algorithm 3.
    Tradeoff,
    /// ScaLAPACK-style outer product.
    OuterProduct,
    /// Equal thirds at the shared level.
    SharedEqual,
    /// Equal thirds at the distributed level.
    DistributedEqual,
}

impl AlgorithmKind {
    /// All six, in the paper's presentation order.
    pub const ALL: [AlgorithmKind; 6] = [
        AlgorithmKind::SharedOpt,
        AlgorithmKind::DistributedOpt,
        AlgorithmKind::Tradeoff,
        AlgorithmKind::OuterProduct,
        AlgorithmKind::SharedEqual,
        AlgorithmKind::DistributedEqual,
    ];

    /// Instantiate the algorithm.
    pub fn build(&self) -> Box<dyn Algorithm> {
        match self {
            AlgorithmKind::SharedOpt => Box::new(SharedOpt),
            AlgorithmKind::DistributedOpt => Box::new(DistributedOpt::default()),
            AlgorithmKind::Tradeoff => Box::new(Tradeoff::default()),
            AlgorithmKind::OuterProduct => Box::new(OuterProduct::default()),
            AlgorithmKind::SharedEqual => Box::new(SharedEqual),
            AlgorithmKind::DistributedEqual => Box::new(DistributedEqual::default()),
        }
    }
}

/// All six algorithms, boxed, in presentation order.
pub fn all_algorithms() -> Vec<Box<dyn Algorithm>> {
    AlgorithmKind::ALL.iter().map(|k| k.build()).collect()
}

/// Contiguous balanced partition of `0..total` into `parts` chunks:
/// chunk `idx` is `[idx·total/parts, (idx+1)·total/parts)`. Chunk sizes
/// differ by at most one and the chunks exactly cover the range.
pub(crate) fn chunk(total: u32, parts: u32, idx: u32) -> std::ops::Range<u32> {
    debug_assert!(idx < parts);
    let total = total as u64;
    let parts = parts as u64;
    let idx = idx as u64;
    let lo = (idx * total / parts) as u32;
    let hi = ((idx + 1) * total / parts) as u32;
    lo..hi
}

/// Iterate `(start, len)` tiles of width `tile` covering `0..dim`, the
/// last tile clamped.
pub(crate) fn tiles(dim: u32, tile: u32) -> impl Iterator<Item = (u32, u32)> {
    debug_assert!(tile > 0);
    (0..dim).step_by(tile as usize).map(move |start| (start, tile.min(dim - start)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_exactly() {
        for total in [0u32, 1, 7, 8, 100] {
            for parts in [1u32, 2, 3, 4, 7] {
                let mut covered = 0u32;
                let mut prev_end = 0u32;
                for idx in 0..parts {
                    let r = chunk(total, parts, idx);
                    assert_eq!(r.start, prev_end, "chunks must be contiguous");
                    prev_end = r.end;
                    covered += r.len() as u32;
                }
                assert_eq!(prev_end, total);
                assert_eq!(covered, total);
                // Balance: sizes differ by at most 1.
                let sizes: Vec<u32> =
                    (0..parts).map(|i| chunk(total, parts, i).len() as u32).collect();
                let max = *sizes.iter().max().unwrap();
                let min = *sizes.iter().min().unwrap();
                assert!(max - min <= 1, "total={total} parts={parts}: {sizes:?}");
            }
        }
    }

    #[test]
    fn tiles_cover_dim() {
        for dim in [1u32, 5, 8, 9, 30] {
            for tile in [1u32, 3, 8, 64] {
                let ts: Vec<(u32, u32)> = tiles(dim, tile).collect();
                let sum: u32 = ts.iter().map(|&(_, l)| l).sum();
                assert_eq!(sum, dim);
                assert!(ts.iter().all(|&(_, l)| l >= 1 && l <= tile));
                assert_eq!(ts[0].0, 0);
            }
        }
    }

    #[test]
    fn registry_has_six_distinct_algorithms() {
        let algos = all_algorithms();
        assert_eq!(algos.len(), 6);
        let mut names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
        let mut ids: Vec<&str> = algos.iter().map(|a| a.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn kind_round_trips_through_serde() {
        for k in AlgorithmKind::ALL {
            let s = serde_json::to_string(&k).unwrap();
            let back: AlgorithmKind = serde_json::from_str(&s).unwrap();
            assert_eq!(k, back);
        }
        assert_eq!(serde_json::to_string(&AlgorithmKind::SharedOpt).unwrap(), "\"shared_opt\"");
    }

    #[test]
    fn algo_error_display() {
        let e = AlgoError::Infeasible { algorithm: "Tradeoff", reason: "p not square".into() };
        assert!(e.to_string().contains("Tradeoff"));
        let e = AlgoError::RequiresAutomaticReplacement { algorithm: "Outer Product" };
        assert!(e.to_string().contains("LRU"));
    }
}
