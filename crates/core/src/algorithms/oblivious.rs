//! **Cache Oblivious** — an extension beyond the paper: the classical
//! recursive divide-and-conquer matrix product of Frigo et al. (the
//! paper's reference [5]), in the parallel flavor studied by Blelloch et
//! al. (reference [3]) for multicores.
//!
//! The schedule recursively halves the largest of the three dimensions
//! until a single block remains. It is *oblivious*: it never looks at
//! `C_S` or `C_D` and performs no residency management, so—like Outer
//! Product—it only runs against automatic-replacement (LRU) sinks. Its
//! interest is as an ablation: the recursion gives asymptotically optimal
//! `O(mnz/√Z)` misses at *every* level of the hierarchy simultaneously,
//! but with a worse constant than the paper's cache-aware tilings, which
//! is exactly the gap the harness's `ablation_oblivious` sweep measures.
//!
//! Parallelization follows the usual work-division scheme: the top
//! `⌈log₂ p⌉` `C`-splitting levels of the recursion are dealt out to the
//! cores (both halves of an `m`- or `n`-split are independent), after
//! which each core runs its sub-product sequentially. `z`-splits are
//! never parallelized (both halves update the same `C` blocks).

use super::{AlgoError, Algorithm};
use crate::formulas::Prediction;
use crate::problem::ProblemSpec;
use mmc_sim::{Block, MachineConfig, SimSink};

/// The recursive cache-oblivious product (extension; see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheOblivious {
    /// Stop recursing (and loop directly) once `max(m, n, z)` is at or
    /// below this many blocks. 1 reproduces the textbook algorithm;
    /// larger leaves trade recursion overhead for locality granularity.
    pub leaf: u32,
}

impl CacheOblivious {
    /// The textbook variant (recurse to single blocks).
    pub fn new() -> CacheOblivious {
        CacheOblivious { leaf: 1 }
    }

    /// Use a coarser recursion leaf.
    pub fn with_leaf(leaf: u32) -> CacheOblivious {
        assert!(leaf >= 1, "leaf size must be at least one block");
        CacheOblivious { leaf }
    }

    /// Stream the schedule into `sink` (must not manage residency).
    pub fn run<S: SimSink + ?Sized>(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut S,
    ) -> Result<(), AlgoError> {
        if sink.manages_residency() {
            return Err(AlgoError::RequiresAutomaticReplacement { algorithm: "Cache Oblivious" });
        }
        let leaf = self.leaf.max(1);
        // Deal the top C-splitting levels out to the cores: descend the
        // recursion, cloning the task list at every m/n split, until we
        // have at least p independent C regions (or can't split further).
        let mut tasks: Vec<Region> = vec![Region { i0: 0, m: problem.m, j0: 0, n: problem.n }];
        let p = machine.cores;
        while tasks.len() < p {
            // Split the region with the largest splittable extent.
            let Some((idx, split_m)) = tasks
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    let best = r.m.max(r.n);
                    (best > leaf).then_some((i, r.m >= r.n, best))
                })
                .max_by_key(|&(_, _, best)| best)
                .map(|(i, m_split, _)| (i, m_split))
            else {
                break; // nothing splittable left
            };
            let r = tasks.swap_remove(idx);
            let (a, b) = if split_m { r.split_m() } else { r.split_n() };
            tasks.push(a);
            tasks.push(b);
        }
        // Deterministic round-robin assignment of regions to cores.
        for (t, region) in tasks.iter().enumerate() {
            let core = t % p;
            recurse(sink, core, region.i0, region.m, region.j0, region.n, 0, problem.z, leaf)?;
        }
        sink.barrier()?;
        Ok(())
    }
}

#[derive(Clone, Copy, Debug)]
struct Region {
    i0: u32,
    m: u32,
    j0: u32,
    n: u32,
}

impl Region {
    fn split_m(self) -> (Region, Region) {
        let h = self.m / 2;
        (Region { m: h, ..self }, Region { i0: self.i0 + h, m: self.m - h, ..self })
    }
    fn split_n(self) -> (Region, Region) {
        let h = self.n / 2;
        (Region { n: h, ..self }, Region { j0: self.j0 + h, n: self.n - h, ..self })
    }
}

/// The sequential recursion: split the largest dimension in half; at the
/// leaf, stream the triple loop.
#[allow(clippy::too_many_arguments)]
fn recurse<S: SimSink + ?Sized>(
    sink: &mut S,
    core: usize,
    i0: u32,
    m: u32,
    j0: u32,
    n: u32,
    k0: u32,
    z: u32,
    leaf: u32,
) -> Result<(), mmc_sim::SimError> {
    let largest = m.max(n).max(z);
    if largest <= leaf {
        for i in i0..i0 + m {
            for k in k0..k0 + z {
                let a = Block::a(i, k);
                for j in j0..j0 + n {
                    let b = Block::b(k, j);
                    let c = Block::c(i, j);
                    sink.read(core, a)?;
                    sink.read(core, b)?;
                    sink.read(core, c)?;
                    sink.fma(core, a, b, c)?;
                    sink.write(core, c)?;
                }
            }
        }
        return Ok(());
    }
    if m == largest {
        let h = m / 2;
        recurse(sink, core, i0, h, j0, n, k0, z, leaf)?;
        recurse(sink, core, i0 + h, m - h, j0, n, k0, z, leaf)
    } else if n == largest {
        let h = n / 2;
        recurse(sink, core, i0, m, j0, h, k0, z, leaf)?;
        recurse(sink, core, i0, m, j0 + h, n - h, k0, z, leaf)
    } else {
        // z-split: the two halves touch the same C blocks and must stay
        // on the same core, in ascending-k order (determinism of the
        // executed accumulation).
        let h = z / 2;
        recurse(sink, core, i0, m, j0, n, k0, h, leaf)?;
        recurse(sink, core, i0, m, j0, n, k0 + h, z - h, leaf)
    }
}

impl Algorithm for CacheOblivious {
    fn name(&self) -> &'static str {
        "Cache Oblivious"
    }

    fn id(&self) -> &'static str {
        "cache_oblivious"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        problem: &ProblemSpec,
        sink: &mut dyn SimSink,
    ) -> Result<(), AlgoError> {
        self.run(machine, problem, sink)
    }

    fn predict(&self, _machine: &MachineConfig, _problem: &ProblemSpec) -> Option<Prediction> {
        None // asymptotic O(mnz/√Z) only; no closed form to pin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_sim::{CountingSink, SimConfig, Simulator};

    #[test]
    fn covers_every_fma_exactly_once() {
        let machine = MachineConfig::quad_q32();
        for (m, n, z) in [(1u32, 1, 1), (7, 5, 3), (16, 16, 16), (9, 2, 13)] {
            let problem = ProblemSpec::new(m, n, z);
            let mut sink = CountingSink::new();
            CacheOblivious::new().run(&machine, &problem, &mut sink).unwrap();
            assert_eq!(sink.fmas, problem.total_fmas(), "{m}x{n}x{z}");
        }
    }

    #[test]
    fn work_is_spread_across_cores() {
        let machine = MachineConfig::quad_q32();
        let problem = ProblemSpec::square(16);
        let mut sim = Simulator::new(SimConfig::lru(&machine), 16, 16, 16);
        CacheOblivious::new().run(&machine, &problem, &mut sim).unwrap();
        let fmas = &sim.stats().fmas;
        assert!(fmas.iter().all(|&f| f > 0), "all cores busy: {fmas:?}");
        assert_eq!(fmas.iter().sum::<u64>(), problem.total_fmas());
        // Power-of-two square: the split is perfectly balanced.
        assert_eq!(sim.stats().compute_imbalance(), 1.0);
    }

    #[test]
    fn refuses_ideal_sinks() {
        let machine = MachineConfig::quad_q32();
        let mut sim = Simulator::new(SimConfig::ideal(&machine), 4, 4, 4);
        assert!(matches!(
            CacheOblivious::new().run(&machine, &ProblemSpec::square(4), &mut sim),
            Err(AlgoError::RequiresAutomaticReplacement { .. })
        ));
    }

    #[test]
    fn oblivious_misses_scale_like_cache_aware_but_worse_constant() {
        // The whole point: within a constant of the aware algorithm, but
        // above it. Compare shared misses against Shared Opt under the
        // same LRU setting.
        let machine = MachineConfig::quad_q32();
        let d = 120u32;
        let problem = ProblemSpec::square(d);
        let run = |algo: &dyn Algorithm| -> u64 {
            let mut sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
            algo.execute(&machine, &problem, &mut sim).unwrap();
            sim.stats().ms()
        };
        let oblivious = run(&CacheOblivious::new());
        let aware = run(&crate::algorithms::SharedOpt);
        assert!(oblivious >= aware, "oblivious {oblivious} vs aware {aware}");
        assert!(
            oblivious <= 16 * aware,
            "oblivious should stay within a constant factor: {oblivious} vs {aware}"
        );
    }

    #[test]
    fn leaf_size_trades_miss_count() {
        let machine = MachineConfig::quad_q32();
        let d = 64u32;
        let problem = ProblemSpec::square(d);
        let run = |leaf: u32| -> u64 {
            let mut sim = Simulator::new(SimConfig::lru(&machine), d, d, d);
            CacheOblivious::with_leaf(leaf).run(&machine, &problem, &mut sim).unwrap();
            assert_eq!(sim.stats().total_fmas(), problem.total_fmas());
            sim.stats().ms()
        };
        // Any leaf computes the same product volume; misses vary modestly.
        let l1 = run(1);
        let l8 = run(8);
        assert!(l1 > 0 && l8 > 0);
    }
}
