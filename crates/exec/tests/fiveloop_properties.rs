//! Property tests for the 5-loop macro-kernel executor.
//!
//! The load-bearing invariant: the blocking plan is a *performance*
//! parameter, never a *semantics* parameter. For any shape (ragged
//! included), any kernel variant, and any pair of plans, the products
//! are bit-identical — the plan moves macro-loop (panel) boundaries,
//! while each `C` element's accumulation stays one multiply-accumulate
//! per ascending `k` step regardless of where the panels cut.

use mmc_exec::{
    gemm_naive, gemm_parallel_with_kernel, gemm_parallel_with_plan, kernel, BlockMatrix,
    BlockMatrixOf, BlockingPlan, Tiling,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// f64: every available variant, ragged shapes, random tilings and
    /// random plans — all plans produce the same bits as the degenerate
    /// one-block-per-step plan.
    #[test]
    fn plan_never_changes_f64_bits(
        m in 1u32..7,
        n in 1u32..7,
        z in 1u32..9,
        q in 1usize..14,
        tm in 1u32..5,
        tn in 1u32..5,
        tk in 1u32..5,
        mc in 1usize..40,
        kc in 1usize..40,
        nc in 1usize..40,
    ) {
        let a = BlockMatrix::pseudo_random(m, z, q, 71);
        let b = BlockMatrix::pseudo_random(z, n, q, 72);
        let tiling = Tiling { tile_m: tm, tile_n: tn, tile_k: tk };
        for v in kernel::variants_available() {
            let baseline =
                gemm_parallel_with_plan(&a, &b, tiling, v, BlockingPlan { mc: 1, kc: 1, nc: 1 });
            let c = gemm_parallel_with_plan(&a, &b, tiling, v, BlockingPlan { mc, kc, nc });
            prop_assert_eq!(&c, &baseline, "variant {} plan {}/{}/{}", v, mc, kc, nc);
        }
    }

    /// f32: the same plan invariance holds for the narrow element type.
    #[test]
    fn plan_never_changes_f32_bits(
        m in 1u32..6,
        n in 1u32..6,
        z in 1u32..8,
        q in 1usize..20,
        mc in 1usize..50,
        kc in 1usize..50,
        nc in 1usize..50,
    ) {
        let a = BlockMatrixOf::<f32>::pseudo_random(m, z, q, 81);
        let b = BlockMatrixOf::<f32>::pseudo_random(z, n, q, 82);
        let tiling = Tiling { tile_m: 3, tile_n: 2, tile_k: 2 };
        for v in kernel::variants_available() {
            let baseline =
                gemm_parallel_with_plan(&a, &b, tiling, v, BlockingPlan { mc: 1, kc: 1, nc: 1 });
            let c = gemm_parallel_with_plan(&a, &b, tiling, v, BlockingPlan { mc, kc, nc });
            prop_assert_eq!(&c, &baseline, "variant {} plan {}/{}/{}", v, mc, kc, nc);
        }
    }

    /// f32 executors track the f64 oracle of the same pseudo-random
    /// stream to single-precision accuracy: `pseudo_random::<f32>`
    /// narrows the exact f64 values, so the products differ only by f32
    /// rounding — bounded well under 1e-3 for these magnitudes (inputs
    /// in [0,1), dot products of length ≤ `z·q` ≤ 133).
    #[test]
    fn f32_product_stays_within_f32_rounding_of_f64(
        m in 1u32..5,
        n in 1u32..5,
        z in 1u32..7,
        q in 1usize..20,
    ) {
        let a64 = BlockMatrix::pseudo_random(m, z, q, 91);
        let b64 = BlockMatrix::pseudo_random(z, n, q, 92);
        let a32 = BlockMatrixOf::<f32>::pseudo_random(m, z, q, 91);
        let b32 = BlockMatrixOf::<f32>::pseudo_random(z, n, q, 92);
        let oracle = gemm_naive(&a64, &b64);
        let tiling = Tiling { tile_m: 2, tile_n: 3, tile_k: 3 };
        for v in kernel::variants_available() {
            let c = gemm_parallel_with_kernel(&a32, &b32, tiling, v);
            let mut worst = 0.0f64;
            for i in 0..m as usize * q {
                for j in 0..n as usize * q {
                    worst = worst.max((c.get(i, j) as f64 - oracle.get(i, j)).abs());
                }
            }
            prop_assert!(worst < 1e-3, "variant {} worst gap {}", v, worst);
        }
    }
}
