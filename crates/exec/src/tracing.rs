//! Job-scoped trace capture over the executors, plus the exec-side
//! drift model.
//!
//! [`run_traced`] wraps [`gemm_parallel_with_plan`]: it opens a fresh
//! trace job in [`mmc_obs::span`], runs the product (every 5-loop
//! macro-step and pack emits into its thread's lock-free ring), and
//! collects the job's spans back out. The result is a [`TracedRun`] —
//! the raw material for three consumers:
//!
//! * [`task_spans`] — the tile-level flight record (`TaskSpan`s), kept
//!   API-compatible with the pre-recorder tracer;
//! * [`spans_to_chrome`] — a Perfetto/Chrome trace with one lane per
//!   `(loop level, thread)` pair, using the **process-wide** trace
//!   epoch so exec and ooc traces merge coherently into one timeline;
//! * [`exec_drift`] — a [`DriftReport`] holding each loop level and
//!   pack phase against the paper's closed forms: FLOP phases against
//!   the kernel's roofline peak, pack phases against the five-loop
//!   traffic terms `m·z·⌈n/NC⌉` (A repacked per `jc` pass) and `z·n`
//!   (B packed once), priced at measured STREAM bandwidth.

use crate::blocking::BlockingPlan;
use crate::kernel::elem::Element;
use crate::kernel::KernelVariant;
use crate::matrix::BlockMatrixOf;
use crate::runner::{gemm_parallel_with_plan, TaskSpan, Tiling};
use mmc_obs::span::{self, SpanKind, SpanRecord};
use mmc_obs::{DriftReport, PhaseSample};
use mmc_sim::ChromeTraceBuilder;

/// One traced executor run: the job id it recorded under, the process
/// epoch offset when it started, and every span it left in the rings.
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// Trace job id (process-unique; see [`span::new_job`]).
    pub job: u64,
    /// [`span::now_ns`] immediately before the run — `TaskSpan` start
    /// times are relative to this.
    pub epoch_ns: u64,
    /// Kernel variant the run dispatched to.
    pub variant: KernelVariant,
    /// Blocking plan the macro-kernel ran under.
    pub plan: BlockingPlan,
    /// Every span the job recorded, sorted by start time. Empty when
    /// recording is disabled (`MMC_SPANS=off`).
    pub spans: Vec<SpanRecord>,
}

/// Run `C = A × B` under a fresh trace job and collect its spans.
///
/// Recording is *not* force-enabled: with `MMC_SPANS=off` the product
/// is still computed (and still correct) but `spans` comes back empty —
/// that is exactly the configuration the overhead A/B in `BENCH_exec`
/// measures.
pub fn run_traced<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
    variant: KernelVariant,
    plan: BlockingPlan,
) -> (BlockMatrixOf<T>, TracedRun) {
    let job = span::new_job();
    let epoch_ns = span::now_ns();
    let c = gemm_parallel_with_plan(a, b, tiling, variant, plan);
    let spans = span::collect_job(job);
    (c, TracedRun { job, epoch_ns, variant, plan, spans })
}

/// The tile-level flight record of a traced run: one [`TaskSpan`] per
/// `C` tile, start times relative to the run's epoch, sorted by start.
pub fn task_spans(run: &TracedRun) -> Vec<TaskSpan> {
    let mut out: Vec<TaskSpan> = run
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Tile)
        .map(|s| TaskSpan {
            thread: s.thread.map(|t| t as usize),
            row0: s.args[0],
            rows: s.args[1],
            col0: s.args[2],
            cols: s.args[3],
            start_us: s.start_ns.saturating_sub(run.epoch_ns) as f64 / 1e3,
            dur_us: s.dur_ns as f64 / 1e3,
        })
        .collect();
    out.sort_by(|x, y| x.start_us.total_cmp(&y.start_us));
    out
}

/// Lane label for a span: worker/io/caller prefix plus the loop level,
/// so Perfetto groups each loop level into its own track per thread.
fn lane_name(kind: SpanKind, thread: Option<u32>) -> String {
    let prefix = match (kind, thread) {
        (_, None) => "caller".to_string(),
        (SpanKind::Read | SpanKind::Stage, Some(t)) => format!("io{t}"),
        (_, Some(t)) => format!("w{t}"),
    };
    format!("{prefix} {}", kind.name())
}

/// Render spans (from one or several jobs — exec and ooc runs merge
/// cleanly because both stamp the process-wide epoch) as Chrome
/// trace-event JSON with one lane per `(loop level, thread)` pair.
/// `counters` adds Chrome counter events at the trace end (registry
/// totals, so the Perfetto view carries the FLOP/byte tallies too).
pub fn spans_to_chrome(title: &str, spans: &[SpanRecord], counters: &[(String, f64)]) -> String {
    let mut b = ChromeTraceBuilder::new(title);
    // Stable lane order: loop level first, then thread (caller last).
    let mut lanes: Vec<(u8, u64)> =
        spans.iter().map(|s| (s.kind as u8, s.thread.map_or(u64::MAX, u64::from))).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let tid_of = |kind: SpanKind, thread: Option<u32>| -> u64 {
        lanes
            .binary_search(&(kind as u8, thread.map_or(u64::MAX, u64::from)))
            .expect("lane registered") as u64
    };
    for &(kind, thread) in &lanes {
        let kind = SpanKind::from_u8(kind).expect("lane kind");
        let thread = if thread == u64::MAX { None } else { Some(thread as u32) };
        b.thread(tid_of(kind, thread), &lane_name(kind, thread));
    }
    let mut end_us = 0.0f64;
    for s in spans {
        let ts_us = s.start_ns as f64 / 1e3;
        let dur_us = s.dur_ns as f64 / 1e3;
        end_us = end_us.max(ts_us + dur_us);
        b.span(
            tid_of(s.kind, s.thread),
            s.kind.name(),
            ts_us,
            dur_us,
            &[("pred", s.pred as f64), ("val", s.val as f64), ("job", s.job as f64)],
        );
    }
    for (name, value) in counters {
        b.counter(name, end_us, *value);
    }
    b.finish()
}

/// The machine/problem context [`exec_drift`] prices predictions with.
#[derive(Clone, Debug)]
pub struct ExecModel {
    /// Block rows of `A` / `C`.
    pub m: u32,
    /// Block columns of `B` / `C`.
    pub n: u32,
    /// Inner block extent.
    pub z: u32,
    /// Block side in elements.
    pub q: usize,
    /// Bytes per element (8 for f64, 4 for f32).
    pub elem_bytes: usize,
    /// Tiling the run used (tiles bound the per-tile loop extents).
    pub tiling: Tiling,
    /// Single-thread peak for the dispatched kernel, GFLOP/s — measured
    /// span time is *summed across threads* (CPU-seconds), so the
    /// prediction must be priced at one thread's roof, not the chip's.
    pub peak_gflops: f64,
    /// Measured STREAM-triad bandwidth, GB/s, pricing pack traffic.
    pub stream_gbs: f64,
}

impl ExecModel {
    /// Build the model for a run: problem shape from the operand grid,
    /// roofs from the roofline module's estimates.
    pub fn for_run<T: Element>(
        a: &BlockMatrixOf<T>,
        b: &BlockMatrixOf<T>,
        tiling: Tiling,
        variant: KernelVariant,
    ) -> ExecModel {
        let kernel_name = if std::mem::size_of::<T>() == 4 {
            format!("{}_f32", variant.name())
        } else {
            variant.name().to_string()
        };
        ExecModel {
            m: a.rows(),
            n: b.cols(),
            z: a.cols(),
            q: a.q(),
            elem_bytes: std::mem::size_of::<T>(),
            tiling,
            peak_gflops: mmc_obs::peak_gflops_estimate(
                1,
                mmc_obs::cpu_ghz_estimate(),
                mmc_obs::flops_per_cycle_for_kernel(&kernel_name),
            ),
            stream_gbs: mmc_obs::stream_triad_bandwidth_gbs(),
        }
    }

    /// Total useful FLOPs of the product — the prediction every loop
    /// level is held to (each level covers the whole problem once).
    pub fn total_flops(&self) -> u64 {
        2 * (self.q as u64).pow(3) * self.m as u64 * self.n as u64 * self.z as u64
    }

    /// Predicted pack traffic in bytes, per side, from the five-loop
    /// model applied tile by tile: `A` is repacked once per `jc` pass
    /// (`th·z·⌈tw/NC_b⌉` blocks per tile — the `m·z·⌈n/NC⌉` term of
    /// `M_S`), `B` is packed once per `(jc, pc)` (`tw·z` blocks per
    /// tile — the `z·n` term).
    pub fn pack_bytes(&self, plan: BlockingPlan) -> (u64, u64) {
        let nc_b = ((plan.nc / self.q).max(1)) as u64;
        let block_bytes = (self.q * self.q * self.elem_bytes) as u64;
        let (mut a_blocks, mut b_blocks) = (0u64, 0u64);
        let mut i0 = 0;
        while i0 < self.m {
            let th = self.tiling.tile_m.min(self.m - i0) as u64;
            let mut j0 = 0;
            while j0 < self.n {
                let tw = self.tiling.tile_n.min(self.n - j0) as u64;
                let jc_passes = tw.div_ceil(nc_b.min(tw).max(1));
                a_blocks += th * self.z as u64 * jc_passes;
                b_blocks += tw * self.z as u64;
                j0 += tw as u32;
            }
            i0 += th as u32;
        }
        (a_blocks * block_bytes, b_blocks * block_bytes)
    }
}

/// Microseconds to retire `flops` at `gflops` GFLOP/s.
fn flop_us(flops: u64, gflops: f64) -> f64 {
    flops as f64 / (gflops.max(1e-9) * 1e3)
}

/// Microseconds to move `bytes` at `gbs` GB/s.
fn byte_us(bytes: u64, gbs: f64) -> f64 {
    bytes as f64 / (gbs.max(1e-9) * 1e3)
}

/// Build the drift report for one traced run: every loop level and pack
/// phase, measured (summed span time, CPU-µs) against predicted (closed
/// forms priced at the model's roofs). Phases the run never entered
/// (e.g. pack phases on the scalar path) are dropped, not flagged.
pub fn exec_drift(run: &TracedRun, model: &ExecModel, band: f64) -> DriftReport {
    let sum = |kind: SpanKind| -> (u64, f64, u64) {
        run.spans.iter().filter(|s| s.kind == kind).fold((0u64, 0.0f64, 0u64), |acc, s| {
            (acc.0 + 1, acc.1 + s.dur_ns as f64 / 1e3, acc.2 + s.val)
        })
    };
    let flop_sample = |kind: SpanKind| -> PhaseSample {
        let (spans, measured_us, measured) = sum(kind);
        let predicted = model.total_flops();
        PhaseSample {
            phase: kind.name().to_string(),
            spans,
            measured_us,
            predicted_us: flop_us(predicted, model.peak_gflops),
            unit: "flop".to_string(),
            measured_units: measured as f64,
            predicted_units: predicted as f64,
        }
    };
    let (pack_a_bytes, pack_b_bytes) = model.pack_bytes(run.plan);
    let byte_sample = |kind: SpanKind, predicted: u64| -> PhaseSample {
        let (spans, measured_us, measured) = sum(kind);
        PhaseSample {
            phase: kind.name().to_string(),
            spans,
            measured_us,
            predicted_us: byte_us(predicted, model.stream_gbs),
            unit: "byte".to_string(),
            measured_units: measured as f64,
            predicted_units: predicted as f64,
        }
    };
    DriftReport::from_samples(
        "exec",
        run.job,
        band,
        vec![
            flop_sample(SpanKind::Tile),
            flop_sample(SpanKind::LoopJc),
            flop_sample(SpanKind::LoopPc),
            flop_sample(SpanKind::LoopIc),
            byte_sample(SpanKind::PackA, pack_a_bytes),
            byte_sample(SpanKind::PackB, pack_b_bytes),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking;
    use crate::kernel;
    use crate::matrix::BlockMatrix;
    use crate::naive::gemm_naive;

    fn operands(m: u32, n: u32, z: u32, q: usize) -> (BlockMatrix, BlockMatrix) {
        (BlockMatrix::pseudo_random(m, z, q, 31), BlockMatrix::pseudo_random(z, n, q, 32))
    }

    fn traced(
        m: u32,
        n: u32,
        z: u32,
        q: usize,
        tiling: Tiling,
    ) -> (BlockMatrix, BlockMatrix, TracedRun) {
        let (a, b) = operands(m, n, z, q);
        let (c, run) =
            run_traced(&a, &b, tiling, kernel::variant(), blocking::active_plan::<f64>());
        assert_eq!(c, gemm_naive(&a, &b));
        (a, b, run)
    }

    #[test]
    fn traced_run_collects_every_loop_level() {
        let tiling = Tiling { tile_m: 3, tile_n: 3, tile_k: 2 };
        let (_, _, run) = traced(6, 6, 5, 4, tiling);
        if !span::enabled() {
            assert!(run.spans.is_empty());
            return;
        }
        // 4 tiles, each with at least one span per active loop level.
        let count = |k: SpanKind| run.spans.iter().filter(|s| s.kind == k).count();
        assert_eq!(count(SpanKind::Tile), 4);
        assert!(count(SpanKind::LoopPc) >= 4, "pc spans on every path");
        if kernel::variant().is_simd() {
            assert!(count(SpanKind::LoopJc) >= 4);
            assert!(count(SpanKind::LoopIc) >= 4);
            assert!(count(SpanKind::PackA) >= 4);
            assert!(count(SpanKind::PackB) >= 4);
        }
        // Every span belongs to this run's job.
        assert!(run.spans.iter().all(|s| s.job == run.job));
        // FLOP accounting closes: tile spans sum to the whole product.
        let tile_flops: u64 =
            run.spans.iter().filter(|s| s.kind == SpanKind::Tile).map(|s| s.val).sum();
        assert_eq!(tile_flops, 2 * 4u64.pow(3) * 6 * 6 * 5);
    }

    #[test]
    fn two_traced_runs_do_not_bleed_spans() {
        let tiling = Tiling { tile_m: 2, tile_n: 2, tile_k: 2 };
        let (_, _, first) = traced(4, 4, 3, 3, tiling);
        let (_, _, second) = traced(4, 4, 3, 3, tiling);
        assert_ne!(first.job, second.job);
        assert!(second.spans.iter().all(|s| s.job == second.job));
        if span::enabled() {
            assert_eq!(second.spans.iter().filter(|s| s.kind == SpanKind::Tile).count(), 4);
        }
    }

    #[test]
    fn exec_drift_reports_every_active_level_with_finite_ratios() {
        let tiling = Tiling { tile_m: 4, tile_n: 4, tile_k: 2 };
        let (a, b, run) = traced(8, 8, 6, 4, tiling);
        if !span::enabled() {
            return;
        }
        let model = ExecModel::for_run(&a, &b, tiling, run.variant);
        let report = exec_drift(&run, &model, 1e9);
        assert!(report.all_finite());
        let names: Vec<&str> = report.phases.iter().map(|p| p.phase.as_str()).collect();
        assert!(names.contains(&"tile"));
        assert!(names.contains(&"pc"));
        if run.variant.is_simd() {
            for n in ["jc", "ic", "pack_a", "pack_b"] {
                assert!(names.contains(&n), "missing {n} in {names:?}");
            }
        }
        // Work accounting: every FLOP level measured exactly the model's
        // total, so units_ratio is 1 (instrumentation covers the nest).
        for p in report.phases.iter().filter(|p| p.unit == "flop") {
            assert!(
                (p.units_ratio - 1.0).abs() < 1e-12,
                "{}: units_ratio {}",
                p.phase,
                p.units_ratio
            );
        }
        // Astronomical band: nothing flagged.
        assert!(report.flagged.is_empty(), "{:?}", report.flagged);
    }

    #[test]
    fn pack_byte_accounting_matches_the_five_loop_terms() {
        // Whole problem as one tile: the pack predictions reduce to the
        // exact M_S terms m·z·⌈n/NC⌉ and z·n, and the packed path's
        // measured `pred` bytes (logical panel bytes) must agree.
        let variant = kernel::variant();
        if !variant.is_simd() {
            return;
        }
        let (m, n, z, q) = (6u32, 8u32, 5u32, 4usize);
        let tiling = Tiling { tile_m: m, tile_n: n, tile_k: 1 };
        let (a, b, run) = traced(m, n, z, q, tiling);
        if !span::enabled() {
            return;
        }
        let model = ExecModel::for_run(&a, &b, tiling, variant);
        let (pack_a_bytes, pack_b_bytes) = model.pack_bytes(run.plan);
        let nc_b = ((run.plan.nc / q).max(1) as u64).min(n as u64);
        let block = (q * q * 8) as u64;
        assert_eq!(pack_a_bytes, m as u64 * z as u64 * (n as u64).div_ceil(nc_b) * block);
        assert_eq!(pack_b_bytes, z as u64 * n as u64 * block);
        let logical = |kind: SpanKind| -> u64 {
            run.spans.iter().filter(|s| s.kind == kind).map(|s| s.pred).sum()
        };
        assert_eq!(logical(SpanKind::PackA), pack_a_bytes);
        assert_eq!(logical(SpanKind::PackB), pack_b_bytes);
    }

    #[test]
    fn chrome_export_groups_lanes_by_loop_level() {
        let tiling = Tiling { tile_m: 2, tile_n: 2, tile_k: 1 };
        let (_, _, run) = traced(4, 4, 3, 3, tiling);
        let text = spans_to_chrome("merged", &run.spans, &[("exec.flops".to_string(), 1234.0)]);
        let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
        if span::enabled() {
            assert!(text.contains("\"tile\""), "{text}");
            assert!(text.contains(" pc\"") || text.contains(" tile\""), "lane names present");
            assert!(text.contains("\"pred\""));
            assert!(text.contains("exec.flops"));
        }
    }
}
