//! Block-major dense matrix storage.
//!
//! A [`BlockMatrixOf<T>`] stores an `R·q × C·q` matrix of elements as
//! `R × C` square `q×q` blocks, each block contiguous in memory
//! (row-major inside the block, blocks laid out row-major). This is the
//! storage layout the paper's algorithms assume — "the atomic elements
//! that we manipulate are not matrix coefficients but rather square
//! blocks of coefficients of size q × q" — and it makes every
//! block-level operation a dense cache-friendly kernel call.
//!
//! The element type defaults to `f64`; [`BlockMatrix`] is the `f64`
//! alias the rest of the workspace uses. `f32` matrices flow through the
//! same executors via the [`Element`] abstraction.

use crate::kernel::elem::Element;

/// A dense matrix stored as square `q×q` blocks of `T`.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockMatrixOf<T = f64> {
    rows: u32,
    cols: u32,
    q: usize,
    data: Vec<T>,
}

/// The default `f64` block matrix (the type every schedule executor and
/// downstream crate works with).
pub type BlockMatrix = BlockMatrixOf<f64>;

impl<T: Element> BlockMatrixOf<T> {
    /// An all-zero matrix of `rows × cols` blocks of side `q`.
    #[must_use]
    pub fn zeros(rows: u32, cols: u32, q: usize) -> BlockMatrixOf<T> {
        assert!(rows > 0 && cols > 0, "matrix must have at least one block");
        assert!(q > 0, "block side must be positive");
        let len = rows as usize * cols as usize * q * q;
        BlockMatrixOf { rows, cols, q, data: vec![T::ZERO; len] }
    }

    /// Build from a function of *global element* coordinates
    /// `(row, col) ∈ [0, rows·q) × [0, cols·q)`.
    #[must_use]
    pub fn from_fn(
        rows: u32,
        cols: u32,
        q: usize,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> BlockMatrixOf<T> {
        let mut m = BlockMatrixOf::zeros(rows, cols, q);
        for bi in 0..rows {
            for bj in 0..cols {
                let base_i = bi as usize * q;
                let base_j = bj as usize * q;
                let blk = m.block_mut(bi, bj);
                for i in 0..q {
                    for j in 0..q {
                        blk[i * q + j] = f(base_i + i, base_j + j);
                    }
                }
            }
        }
        m
    }

    /// Filled with a deterministic pseudo-random pattern seeded by `seed`
    /// (splitmix64 over the element index — reproducible without pulling a
    /// RNG into the library API). The stream is generated in `f64` and
    /// narrowed via [`Element::from_f64`], so every element type draws
    /// from the same underlying pattern (and `f64` matrices are
    /// bit-stable across releases).
    ///
    /// Values are identical to hashing `(i << 32 | j) · M` per element;
    /// the constant multiply is hoisted — `(i·2³² | j)·M = (i·2³²)·M +
    /// j·M (mod 2⁶⁴)` since `j < 2³²` — so each row pays one multiply
    /// and each element one add.
    #[must_use]
    pub fn pseudo_random(rows: u32, cols: u32, q: usize, seed: u64) -> BlockMatrixOf<T> {
        const M: u64 = 0x9E3779B97F4A7C15;
        let mut m = BlockMatrixOf::zeros(rows, cols, q);
        for bi in 0..rows {
            for bj in 0..cols {
                let base_i = bi as usize * q;
                let base_j = bj as usize * q;
                let blk = m.block_mut(bi, bj);
                for ii in 0..q {
                    let row_mul = (((base_i + ii) as u64) << 32).wrapping_mul(M);
                    let mut col_mul = (base_j as u64).wrapping_mul(M);
                    for jj in 0..q {
                        let mut x = seed ^ row_mul.wrapping_add(col_mul);
                        x ^= x >> 30;
                        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
                        x ^= x >> 27;
                        x = x.wrapping_mul(0x94D049BB133111EB);
                        x ^= x >> 31;
                        // Map to [-1, 1) to keep products well-conditioned.
                        blk[ii * q + jj] =
                            T::from_f64((x >> 11) as f64 / (1u64 << 52) as f64 - 1.0);
                        col_mul = col_mul.wrapping_add(M);
                    }
                }
            }
        }
        m
    }

    /// Wrap an existing block-major buffer (row-major `q×q` blocks, blocks
    /// laid out row-major) as a matrix of `rows × cols` blocks. The
    /// inverse of [`BlockMatrixOf::into_vec`]; together they let streaming
    /// executors recycle one allocation across many panel shapes.
    ///
    /// # Panics
    /// Panics if `data.len() != rows · cols · q²` or any dimension is 0.
    #[must_use]
    pub fn from_vec(rows: u32, cols: u32, q: usize, data: Vec<T>) -> BlockMatrixOf<T> {
        assert!(rows > 0 && cols > 0, "matrix must have at least one block");
        assert!(q > 0, "block side must be positive");
        assert_eq!(
            data.len(),
            rows as usize * cols as usize * q * q,
            "buffer length must match {rows}x{cols} blocks of side {q}"
        );
        BlockMatrixOf { rows, cols, q, data }
    }

    /// Consume the matrix, returning its block-major storage (so the
    /// allocation can be resized and re-wrapped with
    /// [`BlockMatrixOf::from_vec`]).
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Block rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Block columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Block side `q` (elements).
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Element rows (`rows · q`).
    pub fn elem_rows(&self) -> usize {
        self.rows as usize * self.q
    }

    /// Element columns (`cols · q`).
    pub fn elem_cols(&self) -> usize {
        self.cols as usize * self.q
    }

    #[inline]
    fn offset(&self, bi: u32, bj: u32) -> usize {
        debug_assert!(bi < self.rows && bj < self.cols, "block ({bi},{bj}) out of bounds");
        (bi as usize * self.cols as usize + bj as usize) * self.q * self.q
    }

    /// The `q²` elements of block `(bi, bj)`, row-major.
    #[inline]
    pub fn block(&self, bi: u32, bj: u32) -> &[T] {
        let o = self.offset(bi, bj);
        &self.data[o..o + self.q * self.q]
    }

    /// Mutable access to block `(bi, bj)`.
    #[inline]
    pub fn block_mut(&mut self, bi: u32, bj: u32) -> &mut [T] {
        let o = self.offset(bi, bj);
        let q2 = self.q * self.q;
        &mut self.data[o..o + q2]
    }

    /// Read one element by global coordinates.
    pub fn get(&self, i: usize, j: usize) -> T {
        let (bi, ii) = ((i / self.q) as u32, i % self.q);
        let (bj, jj) = ((j / self.q) as u32, j % self.q);
        self.block(bi, bj)[ii * self.q + jj]
    }

    /// Write one element by global coordinates.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        let q = self.q;
        let (bi, ii) = ((i / q) as u32, i % q);
        let (bj, jj) = ((j / q) as u32, j % q);
        self.block_mut(bi, bj)[ii * q + jj] = v;
    }

    /// Raw storage (block-major), for executors that partition it.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Raw mutable storage (block-major).
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Maximum absolute element-wise difference against `other`, in `f64`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &BlockMatrixOf<T>) -> f64 {
        assert_eq!((self.rows, self.cols, self.q), (other.rows, other.cols, other.q));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(x, y)| (x.to_f64() - y.to_f64()).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_is_contiguous_row_major() {
        let m = BlockMatrix::from_fn(2, 3, 2, |i, j| (i * 100 + j) as f64);
        // Block (1,2) covers elements rows 2..4, cols 4..6.
        let b = m.block(1, 2);
        assert_eq!(b, &[204.0, 205.0, 304.0, 305.0]);
        assert_eq!(m.get(3, 5), 305.0);
    }

    #[test]
    fn set_get_round_trip() {
        let mut m = BlockMatrix::zeros(3, 3, 4);
        m.set(7, 11, 42.5);
        assert_eq!(m.get(7, 11), 42.5);
        assert_eq!(m.block(1, 2)[3 * 4 + 3], 42.5);
    }

    /// The hoisted-multiply fill is bit-identical to the original
    /// per-element splitmix64 formula, so seeds keep producing the same
    /// matrices across releases.
    #[test]
    fn pseudo_random_matches_per_element_formula() {
        let m = BlockMatrix::pseudo_random(3, 2, 5, 0xDEADBEEF);
        let want = BlockMatrix::from_fn(3, 2, 5, |i, j| {
            let mut x =
                0xDEADBEEFu64 ^ ((i as u64) << 32 | j as u64).wrapping_mul(0x9E3779B97F4A7C15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58476D1CE4E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D049BB133111EB);
            x ^= x >> 31;
            (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        });
        assert_eq!(m, want);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_bounded() {
        let a = BlockMatrix::pseudo_random(2, 2, 8, 7);
        let b = BlockMatrix::pseudo_random(2, 2, 8, 7);
        assert_eq!(a, b);
        let c = BlockMatrix::pseudo_random(2, 2, 8, 8);
        assert!(a.max_abs_diff(&c) > 0.0, "different seeds differ");
        assert!(a.data().iter().all(|x| (-1.0..1.0).contains(x)));
    }

    /// The f32 fill narrows the f64 stream element-by-element, so both
    /// element types see the same underlying pattern.
    #[test]
    fn f32_pseudo_random_narrows_the_f64_stream() {
        let a64 = BlockMatrix::pseudo_random(2, 3, 5, 42);
        let a32 = BlockMatrixOf::<f32>::pseudo_random(2, 3, 5, 42);
        for (x64, x32) in a64.data().iter().zip(a32.data()) {
            assert_eq!(*x32, *x64 as f32);
        }
    }

    #[test]
    fn dims() {
        let m = BlockMatrix::zeros(3, 5, 16);
        assert_eq!(m.elem_rows(), 48);
        assert_eq!(m.elem_cols(), 80);
        assert_eq!(m.data().len(), 3 * 5 * 256);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = BlockMatrix::zeros(0, 1, 4);
    }

    #[test]
    fn from_vec_round_trips_without_reallocating() {
        let m = BlockMatrix::pseudo_random(3, 2, 4, 9);
        let copy = m.clone();
        let data = m.into_vec();
        let ptr = data.as_ptr();
        let back = BlockMatrix::from_vec(3, 2, 4, data);
        assert_eq!(back, copy);
        assert_eq!(back.data().as_ptr(), ptr, "round trip must reuse the allocation");
        // The same storage can be re-wrapped under a different shape.
        let mut data = back.into_vec();
        data.truncate(2 * 2 * 16);
        let reshaped = BlockMatrix::from_vec(2, 2, 4, data);
        assert_eq!(reshaped.block(0, 0), copy.block(0, 0));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_mismatched_length() {
        let _ = BlockMatrix::from_vec(2, 2, 4, vec![0.0; 63]);
    }
}
