//! Executors: run the paper's schedules on real data.
//!
//! Two complementary paths:
//!
//! * [`ExecSink`] replays *exactly* the schedule an algorithm streams —
//!   every `fma` event performs the `q×q` kernel — proving the schedules
//!   compute the right product (the simulator only proved they touch the
//!   right blocks);
//! * [`gemm_parallel`] runs the tilings the algorithms prescribe with a
//!   rayon thread pool, one task per `C` tile, which is how the schedules
//!   map onto a real shared-memory machine (the paper's "future work:
//!   implement all algorithms on state-of-the-art multicore machines").
//!
//! Inside each task, SIMD variants run a BLIS-style 5-loop macro-kernel:
//!
//! ```text
//! jc over NC columns of the tile          (B panel chosen)
//!   pc over KC of k                       (B panel packed once, L3/L2)
//!     ic over MC rows of the tile         (A block packed, L2)
//!       jr over NR columns                (B micro-panel, L1)
//!         ir over MR rows                 (register micro-kernel)
//! ```
//!
//! with `MC`/`KC`/`NC` supplied by [`crate::blocking`] — derived from the
//! paper's footprint constraint per cache level, or pinned via
//! `MMC_BLOCKING`. The packed `B` panel is built once per `(jc, pc)` and
//! reused across the entire `ic` loop; `A` micro-panels are repacked per
//! `MC` block, which is the macro-kernel's intended `⌈n/NC⌉`-fold `A`
//! traffic (see `mmc_sim`'s five-loop traffic model).
//!
//! All executors accumulate each `C` block's contributions in ascending
//! `k` order with one multiply-accumulate per step, so results are
//! bit-identical across every path *and every blocking plan* of a given
//! variant — tests compare with `==`.

use crate::blocking::{self, BlockingPlan};
use crate::job::CancelToken;
use crate::kernel::elem::Element;
use crate::kernel::{self, block_fma, KernelVariant};
use crate::matrix::{BlockMatrix, BlockMatrixOf};
use mmc_core::algorithms::{AlgoError, Algorithm};
use mmc_core::{params, ProblemSpec};
use mmc_obs::span::{self, SpanKind};
use mmc_sim::{Block, ChromeTraceBuilder, MachineConfig, MatrixId, SimError, SimSink};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A [`SimSink`] that *performs* the block arithmetic of a schedule.
///
/// Residency directives and reads are ignored (`manages_residency` is
/// `false`, so schedules take their streamlined LRU-style path); each
/// `fma(core, a, b, c)` event executes `C[c] += A[a] × B[b]`.
pub struct ExecSink<'m> {
    a: &'m BlockMatrix,
    b: &'m BlockMatrix,
    c: &'m mut BlockMatrix,
    fmas: u64,
}

impl<'m> ExecSink<'m> {
    /// Wrap the operands. `c` must be `a.rows × b.cols` blocks of the same
    /// block side.
    pub fn new(a: &'m BlockMatrix, b: &'m BlockMatrix, c: &'m mut BlockMatrix) -> ExecSink<'m> {
        assert_eq!(a.cols(), b.rows(), "inner block dimensions must agree");
        assert_eq!(a.q(), b.q(), "block sides must agree");
        assert_eq!((c.rows(), c.cols(), c.q()), (a.rows(), b.cols(), a.q()));
        ExecSink { a, b, c, fmas: 0 }
    }

    /// Number of block FMAs performed.
    pub fn fmas(&self) -> u64 {
        self.fmas
    }
}

impl SimSink for ExecSink<'_> {
    fn read(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn write(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn fma(&mut self, _core: usize, a: Block, b: Block, c: Block) -> Result<(), SimError> {
        debug_assert_eq!(a.matrix, MatrixId::A);
        debug_assert_eq!(b.matrix, MatrixId::B);
        debug_assert_eq!(c.matrix, MatrixId::C);
        debug_assert_eq!(a.col, b.row, "fma operands must share the k index");
        block_fma(
            self.c.block_mut(c.row, c.col),
            self.a.block(a.row, a.col),
            self.b.block(b.row, b.col),
            self.a.q(),
        );
        self.fmas += 1;
        let q = self.a.q() as u64;
        crate::metrics::schedule_flops().add(2 * q * q * q);
        Ok(())
    }
    fn load_shared(&mut self, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn evict_shared(&mut self, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn load_dist(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn evict_dist(&mut self, _core: usize, _block: Block) -> Result<(), SimError> {
        Ok(())
    }
    fn barrier(&mut self) -> Result<(), SimError> {
        Ok(())
    }
}

/// Run `algorithm`'s exact schedule on real data (sequential replay).
pub fn run_schedule(
    algorithm: &dyn Algorithm,
    machine: &MachineConfig,
    a: &BlockMatrix,
    b: &BlockMatrix,
) -> Result<BlockMatrix, AlgoError> {
    let problem = ProblemSpec::new(a.rows(), b.cols(), a.cols());
    let mut c = BlockMatrix::zeros(a.rows(), b.cols(), a.q());
    let mut sink = ExecSink::new(a, b, &mut c);
    algorithm.execute(machine, &problem, &mut sink)?;
    Ok(c)
}

/// A 3-D blocking of the product loop nest, in blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tiling {
    /// `C` tile rows.
    pub tile_m: u32,
    /// `C` tile columns.
    pub tile_n: u32,
    /// `k`-panel depth processed per tile pass (the blockwise scalar
    /// path's panel depth; the packed path's `KC` comes from the
    /// [`BlockingPlan`] instead).
    pub tile_k: u32,
}

impl Tiling {
    /// The tiling Shared Opt prescribes: `λ×λ` `C` tiles, rank-1 `k` panels.
    pub fn shared_opt(machine: &MachineConfig) -> Option<Tiling> {
        let l = params::lambda(machine)?;
        Some(Tiling { tile_m: l, tile_n: l, tile_k: 1 })
    }

    /// The tiling Distributed Opt prescribes: `√p·µ` tiles, rank-1 panels.
    pub fn distributed_opt(machine: &MachineConfig) -> Option<Tiling> {
        let mu = params::mu(machine)?;
        let grid = params::CoreGrid::square(machine.cores)?;
        Some(Tiling { tile_m: grid.rows * mu, tile_n: grid.cols * mu, tile_k: 1 })
    }

    /// The tiling Tradeoff prescribes: `α×α` tiles, `β`-deep panels.
    pub fn tradeoff(machine: &MachineConfig) -> Option<Tiling> {
        let t = params::tradeoff_params(machine)?;
        Some(Tiling { tile_m: t.alpha, tile_n: t.alpha, tile_k: t.beta })
    }

    /// Equal-thirds tiling for a cache of `capacity` blocks.
    pub fn equal(capacity: usize) -> Option<Tiling> {
        let t = params::equal_tile(capacity)?;
        Some(Tiling { tile_m: t, tile_n: t, tile_k: t })
    }
}

/// Raw pointer wrapper so disjoint `C` tiles can be filled from rayon
/// tasks. Soundness argument at the single unsafe use site below.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: the pointer is only dereferenced for block indices owned by the
// current task; tasks own disjoint index sets (see `gemm_parallel`).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Sync> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than a public field) so closures capture the
    /// `Sync` wrapper itself — Rust 2021's precise capture would otherwise
    /// grab the raw `*mut T` field, which is not `Sync`.
    #[inline]
    fn get(self) -> *mut T {
        self.0
    }
}

fn check_gemm_shapes<T: Element>(a: &BlockMatrixOf<T>, b: &BlockMatrixOf<T>, tiling: Tiling) {
    assert_eq!(a.cols(), b.rows(), "inner block dimensions must agree");
    assert_eq!(a.q(), b.q(), "block sides must agree");
    assert!(
        tiling.tile_m > 0 && tiling.tile_n > 0 && tiling.tile_k > 0,
        "tiling must be positive, got {tiling:?}"
    );
}

/// `C = A × B` with rayon tasks over `tiling`-sized `C` tiles.
///
/// Each task computes one `C` tile completely (all `k` panels in ascending
/// order), mirroring how the paper's algorithms hand whole `C` tiles /
/// sub-blocks to cores so that each output block is written by exactly one
/// core. Within a task, SIMD variants run the 5-loop macro-kernel under
/// [`blocking::active_plan`].
///
/// # Panics
/// Panics if the shapes or block sides are incompatible or the tiling has
/// a zero dimension.
pub fn gemm_parallel<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
) -> BlockMatrixOf<T> {
    gemm_parallel_with_kernel(a, b, tiling, kernel::variant())
}

/// [`gemm_parallel`] through an explicitly chosen kernel variant (for
/// benches and A/B perf records; normal callers use the dispatched
/// variant). SIMD variants drive the packed 5-loop path; the scalar
/// fallback streams unpacked blocks exactly like the original executor.
pub fn gemm_parallel_with_kernel<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
    variant: KernelVariant,
) -> BlockMatrixOf<T> {
    gemm_parallel_with_plan(a, b, tiling, variant, blocking::active_plan::<T>())
}

/// [`gemm_parallel_with_kernel`] under an explicit [`BlockingPlan`] —
/// the full-control entry point. Results are bit-identical across plans
/// for a given variant (the plan moves panel boundaries, never the
/// per-element accumulation order), which the plan-invariance tests pin
/// down with `==`.
pub fn gemm_parallel_with_plan<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
    variant: KernelVariant,
    plan: BlockingPlan,
) -> BlockMatrixOf<T> {
    gemm_parallel_inner(a, b, tiling, variant, plan, None)
        .expect("uncancellable run cannot be cancelled")
}

/// [`gemm_parallel_with_plan`] as a cancellable job unit: every worker
/// polls `cancel` at its macro-loop boundaries (the `jc` loop of the
/// packed path, the `k0` panel loop of the blockwise path) and bails
/// within one macro-panel of work. Returns `None` when the run was
/// cancelled — the partial product is discarded, never observed — and
/// leaves the rayon pool immediately reusable.
pub fn gemm_parallel_cancellable<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
    variant: KernelVariant,
    plan: BlockingPlan,
    cancel: &CancelToken,
) -> Option<BlockMatrixOf<T>> {
    gemm_parallel_inner(a, b, tiling, variant, plan, Some(cancel))
}

fn gemm_parallel_inner<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
    variant: KernelVariant,
    plan: BlockingPlan,
    cancel: Option<&CancelToken>,
) -> Option<BlockMatrixOf<T>> {
    check_gemm_shapes(a, b, tiling);
    let (m, n, z) = (a.rows(), b.cols(), a.cols());
    let q = a.q();
    let mut c = BlockMatrixOf::<T>::zeros(m, n, q);

    let tiles = enumerate_tiles(m, n, tiling);
    let cptr = SendPtr(c.data_mut().as_mut_ptr());
    // The caller's trace context, carried into the pool closures (worker
    // threads cannot see the caller's thread-local job).
    let job = span::current_job();
    tiles.par_iter().for_each(|&tile| {
        run_tile(variant, a, b, cptr, z, tiling, plan, tile, job, cancel);
    });
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return None;
    }
    Some(c)
}

/// `C += A × B` with rayon tasks over `tiling`-sized `C` tiles,
/// accumulating into the caller's `c` instead of zeroing it.
///
/// This is the panel-grained entry point the out-of-core executor
/// streams through: each prefetched `(A panel, B panel)` pair is one
/// call, with `c` the resident tile being built up across `k` panels.
/// Per `C` element the kernel sequence is identical to
/// [`gemm_parallel_with_kernel`]'s (ascending `k`, one multiply-accumulate
/// per step through the same packed or blockwise path), so accumulating a
/// product panel-by-panel is bit-identical to computing it in one call —
/// which the out-of-core tests pin down with `==`.
///
/// # Panics
/// Panics if shapes or block sides are incompatible (`c` must be
/// `a.rows × b.cols`) or the tiling has a zero dimension.
pub fn gemm_accumulate<T: Element>(
    c: &mut BlockMatrixOf<T>,
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
    variant: KernelVariant,
) {
    gemm_accumulate_cancellable(c, a, b, tiling, variant, None);
}

/// [`gemm_accumulate`] with an optional cancellation token (the
/// out-of-core job path). Returns `false` when the pass was cancelled —
/// `c` then holds an unspecified partial accumulation and must be
/// discarded by the caller.
pub fn gemm_accumulate_cancellable<T: Element>(
    c: &mut BlockMatrixOf<T>,
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
    variant: KernelVariant,
    cancel: Option<&CancelToken>,
) -> bool {
    check_gemm_shapes(a, b, tiling);
    assert_eq!((c.rows(), c.cols(), c.q()), (a.rows(), b.cols(), a.q()));
    let (m, n, z) = (a.rows(), b.cols(), a.cols());
    let plan = blocking::active_plan::<T>();
    let tiles = enumerate_tiles(m, n, tiling);
    let cptr = SendPtr(c.data_mut().as_mut_ptr());
    let job = span::current_job();
    tiles.par_iter().for_each(|&tile| {
        run_tile(variant, a, b, cptr, z, tiling, plan, tile, job, cancel);
    });
    !cancel.is_some_and(CancelToken::is_cancelled)
}

/// One wall-clock task record from [`gemm_parallel_traced`]: which worker
/// thread computed which `C` tile, and when.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Rayon worker-thread index that ran the task, or `None` when the
    /// task ran off a pool worker (on the calling thread). `None` spans
    /// get their own "caller" track in [`task_spans_to_chrome`] instead
    /// of being folded into worker 0's lane.
    pub thread: Option<usize>,
    /// First block row of the `C` tile.
    pub row0: u32,
    /// Block rows in the tile.
    pub rows: u32,
    /// First block column of the `C` tile.
    pub col0: u32,
    /// Block columns in the tile.
    pub cols: u32,
    /// Start, in microseconds since the call began.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// [`gemm_parallel`] plus a wall-clock flight record: returns the product
/// and one [`TaskSpan`] per `C` tile (thread id, tile coordinates,
/// start/duration). Spans are sorted by start time.
///
/// Built on the unified span recorder ([`mmc_obs::span`]): the run gets
/// a fresh trace job, every tile emits into its thread's lock-free ring,
/// and the tile-level spans are collected back out by job id — so
/// tracing adds no shared lock to the timed region and the same run also
/// leaves `jc`/`pc`/`ic`/pack spans behind for [`crate::tracing`]'s
/// merged export and drift reports. With `MMC_SPANS=off` the record
/// comes back empty.
pub fn gemm_parallel_traced<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
) -> (BlockMatrixOf<T>, Vec<TaskSpan>) {
    let variant = kernel::variant();
    let plan = blocking::active_plan::<T>();
    let (c, run) = crate::tracing::run_traced(a, b, tiling, variant, plan);
    let spans = crate::tracing::task_spans(&run);
    (c, spans)
}

/// Render executor [`TaskSpan`]s as Chrome trace-event JSON (one track
/// per worker thread), loadable in Perfetto alongside simulated traces.
/// Spans recorded off a pool worker (`thread: None`) land on a dedicated
/// "caller" track after the worker lanes, so they never overlap worker
/// 0's spans.
pub fn task_spans_to_chrome(spans: &[TaskSpan]) -> String {
    let mut b = ChromeTraceBuilder::new("mmc-exec gemm_parallel");
    let workers = spans.iter().filter_map(|s| s.thread).max().map_or(0, |t| t + 1);
    for t in 0..workers {
        b.thread(t as u64, &format!("worker {t}"));
    }
    let caller_tid = workers as u64;
    if spans.iter().any(|s| s.thread.is_none()) {
        b.thread(caller_tid, "caller");
    }
    for s in spans {
        b.span(
            s.thread.map_or(caller_tid, |t| t as u64),
            &format!("tile C[{}..{}, {}..{}]", s.row0, s.row0 + s.rows, s.col0, s.col0 + s.cols),
            s.start_us,
            s.dur_us,
            &[("blocks", (s.rows as f64) * (s.cols as f64))],
        );
    }
    b.finish()
}

/// Tile decomposition of an `m×n` block grid (clamped at the edges).
fn enumerate_tiles(m: u32, n: u32, tiling: Tiling) -> Vec<(u32, u32, u32, u32)> {
    let mut tiles = Vec::new();
    let mut i0 = 0;
    while i0 < m {
        let th = tiling.tile_m.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let tw = tiling.tile_n.min(n - j0);
            tiles.push((i0, th, j0, tw));
            j0 += tw;
        }
        i0 += th;
    }
    tiles
}

/// Compute one `C` tile completely (all `k` panels in ascending order).
///
/// SIMD kernel variants take the packed 5-loop path under `plan`; the
/// scalar fallback streams unpacked blocks through the original per-block
/// kernel at `tiling.tile_k` depth. Both orders accumulate each `C`
/// element ascending in `k`, so results are bit-identical between the two
/// paths of a given variant's rounding mode.
#[allow(clippy::too_many_arguments)]
fn run_tile<T: Element>(
    variant: KernelVariant,
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    cptr: SendPtr<T>,
    z: u32,
    tiling: Tiling,
    plan: BlockingPlan,
    tile: (u32, u32, u32, u32),
    job: u64,
    cancel: Option<&CancelToken>,
) {
    if cancel.is_some_and(CancelToken::is_cancelled) {
        return;
    }
    let start = if span::enabled() { span::now_ns() } else { 0 };
    if variant.is_simd() && variant.is_available() {
        run_tile_packed(variant, a, b, cptr, z, plan, tile, job, cancel);
    } else {
        run_tile_blockwise(variant, a, b, cptr, z, tiling, tile, job, cancel);
    }
    if cancel.is_some_and(CancelToken::is_cancelled) {
        // A cancelled tile did partial (discarded) work — keep the FLOP
        // counters honest by not charging the full tile.
        return;
    }
    // One relaxed add per *tile* (not per block): th·tw C blocks each
    // accumulate z block FMAs of 2q³ FLOPs.
    let (i0, th, j0, tw) = tile;
    let q = a.q() as u64;
    let flops = 2 * q * q * q * th as u64 * tw as u64 * z as u64;
    crate::metrics::flops(variant).add(flops);
    crate::metrics::tiles(variant).add(1);
    if span::enabled() {
        span::emit(
            job,
            SpanKind::Tile,
            worker_thread(),
            start,
            span::now_ns().saturating_sub(start),
            flops,
            flops,
            [i0, th, j0, tw],
        );
    }
}

/// The rayon worker index of the current thread, in span form.
#[inline]
fn worker_thread() -> Option<u32> {
    rayon::current_thread_index().map(|t| t as u32)
}

/// Mutable view of `C` block `(i, j)` through the shared tile pointer.
///
/// # Safety
/// Block `(i, j)` must belong to the caller's tile — tiles partition the
/// `(i, j)` index grid and each tile is processed by exactly one task, so
/// the slice is never aliased. The offset is in bounds for `i < m`,
/// `j < n`.
#[inline]
unsafe fn c_block_mut<'c, T>(
    cptr: SendPtr<T>,
    ncols: usize,
    q2: usize,
    i: u32,
    j: u32,
) -> &'c mut [T] {
    std::slice::from_raw_parts_mut(cptr.get().add((i as usize * ncols + j as usize) * q2), q2)
}

/// The original unpacked tile loop (scalar fallback path).
///
/// Emits one `pc` span per `k` panel — the scalar path has a single
/// macro-loop level, so the drift report still sees every FLOP under a
/// loop phase even without the packed nest.
#[allow(clippy::too_many_arguments)]
fn run_tile_blockwise<T: Element>(
    variant: KernelVariant,
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    cptr: SendPtr<T>,
    z: u32,
    tiling: Tiling,
    (i0, th, j0, tw): (u32, u32, u32, u32),
    job: u64,
    cancel: Option<&CancelToken>,
) {
    let q = a.q();
    let q2 = q * q;
    let ncols = b.cols() as usize;
    let tracing = span::enabled();
    let mut k0 = 0;
    while k0 < z {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return;
        }
        let kb = tiling.tile_k.min(z - k0);
        let pc_start = if tracing { span::now_ns() } else { 0 };
        for i in i0..i0 + th {
            for j in j0..j0 + tw {
                // SAFETY: see `c_block_mut` — (i, j) is owned by this tile.
                let cblk = unsafe { c_block_mut(cptr, ncols, q2, i, j) };
                for k in k0..k0 + kb {
                    kernel::block_fma_with(variant, cblk, a.block(i, k), b.block(k, j), q);
                }
            }
        }
        if tracing {
            let flops = 2 * (q as u64).pow(3) * th as u64 * tw as u64 * kb as u64;
            span::emit(
                job,
                SpanKind::LoopPc,
                worker_thread(),
                pc_start,
                span::now_ns().saturating_sub(pc_start),
                flops,
                flops,
                [i0, j0, k0, kb],
            );
        }
        k0 += kb;
    }
}

/// The 5-loop macro-kernel over one `C` tile.
///
/// Loop order is `jc` (NC) → `pc` (KC) → `ic` (MC) → register tiles:
/// `B[k panel, jc columns]` is packed **once** per `(jc, pc)` and reused
/// across the whole `ic` loop; `A[ic rows, k panel]` is packed per `MC`
/// block. The plan's element counts convert to whole-block loop steps
/// (at least one block each, clamped to the tile), so a plan finer than
/// one block degenerates to the block-at-a-time schedule.
///
/// For a fixed `C` block the `pc` loop is the only loop that revisits it,
/// in ascending `k` — panel boundaries never reorder or re-associate the
/// per-element accumulation, which keeps results bit-identical across
/// plans and to the blockwise path of the same variant.
#[allow(clippy::too_many_arguments)]
fn run_tile_packed<T: Element>(
    variant: KernelVariant,
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    cptr: SendPtr<T>,
    z: u32,
    plan: BlockingPlan,
    (i0, th, j0, tw): (u32, u32, u32, u32),
    job: u64,
    cancel: Option<&CancelToken>,
) {
    let q = a.q();
    let q2 = q * q;
    let ncols = b.cols() as usize;
    let nc_b = ((plan.nc / q).max(1) as u32).min(tw);
    let kc_b = ((plan.kc / q).max(1) as u32).min(z);
    let mc_b = ((plan.mc / q).max(1) as u32).min(th);
    let tracing = span::enabled();
    let es = std::mem::size_of::<T>() as u64;
    let q3_2 = 2 * (q as u64).pow(3);
    kernel::pack::with_arena::<T, _>(|arena| {
        let mut jc = 0;
        while jc < tw {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return;
            }
            let jw = nc_b.min(tw - jc);
            let jc_start = if tracing { span::now_ns() } else { 0 };
            let mut k0 = 0;
            while k0 < z {
                let kb = kc_b.min(z - k0);
                let kc = kb as usize * q;
                let pc_start = if tracing { span::now_ns() } else { 0 };
                kernel::pack::pack_b_panel(&mut arena.b, b, j0 + jc, jw, k0, kb);
                let a_stride = kernel::pack::a_panel_stride::<T>(q, kc);
                let b_stride = kernel::pack::b_panel_stride::<T>(q, kc);
                if tracing {
                    // pred = logical panel bytes, val = padded packed
                    // bytes actually written (stride includes edge pad).
                    span::emit(
                        job,
                        SpanKind::PackB,
                        worker_thread(),
                        pc_start,
                        span::now_ns().saturating_sub(pc_start),
                        jw as u64 * kb as u64 * q2 as u64 * es,
                        jw as u64 * b_stride as u64 * es,
                        [j0 + jc, jw, k0, kb],
                    );
                }
                let pc_body = if tracing { span::now_ns() } else { 0 };
                let mut ic = 0;
                while ic < th {
                    let ih = mc_b.min(th - ic);
                    let pack_a_start = if tracing { span::now_ns() } else { 0 };
                    kernel::pack::pack_a_panel(&mut arena.a, a, i0 + ic, ih, k0, kb);
                    if tracing {
                        span::emit(
                            job,
                            SpanKind::PackA,
                            worker_thread(),
                            pack_a_start,
                            span::now_ns().saturating_sub(pack_a_start),
                            ih as u64 * kb as u64 * q2 as u64 * es,
                            ih as u64 * a_stride as u64 * es,
                            [i0 + ic, ih, k0, kb],
                        );
                    }
                    let ic_start = if tracing { span::now_ns() } else { 0 };
                    for bj in 0..jw {
                        let bpack = &arena.b[bj as usize * b_stride..][..b_stride];
                        for bi in 0..ih {
                            let apack = &arena.a[bi as usize * a_stride..][..a_stride];
                            // SAFETY: see `c_block_mut` — (i0+ic+bi,
                            // j0+jc+bj) is owned by this tile.
                            let cblk =
                                unsafe { c_block_mut(cptr, ncols, q2, i0 + ic + bi, j0 + jc + bj) };
                            kernel::packed::block_mul_packed(variant, cblk, q, kc, apack, bpack);
                        }
                    }
                    if tracing {
                        let flops = q3_2 * ih as u64 * jw as u64 * kb as u64;
                        span::emit(
                            job,
                            SpanKind::LoopIc,
                            worker_thread(),
                            ic_start,
                            span::now_ns().saturating_sub(ic_start),
                            flops,
                            flops,
                            [i0 + ic, ih, j0 + jc, jw],
                        );
                    }
                    ic += ih;
                }
                if tracing {
                    let flops = q3_2 * th as u64 * jw as u64 * kb as u64;
                    span::emit(
                        job,
                        SpanKind::LoopPc,
                        worker_thread(),
                        pc_body,
                        span::now_ns().saturating_sub(pc_body),
                        flops,
                        flops,
                        [j0 + jc, jw, k0, kb],
                    );
                }
                k0 += kb;
            }
            if tracing {
                let flops = q3_2 * th as u64 * jw as u64 * z as u64;
                span::emit(
                    job,
                    SpanKind::LoopJc,
                    worker_thread(),
                    jc_start,
                    span::now_ns().saturating_sub(jc_start),
                    flops,
                    flops,
                    [i0, th, j0 + jc, jw],
                );
            }
            jc += jw;
        }
    });
}

/// The cached single-thread pool shared by the `gemm_blocked*` baselines —
/// building a fresh pool per call costs more than a small product itself
/// and skews baseline timings.
fn single_thread_pool() -> &'static rayon::ThreadPool {
    static SINGLE_THREAD_POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    SINGLE_THREAD_POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("single-thread pool")
    })
}

/// Sequential blocked product with the same traversal as
/// [`gemm_parallel`] (for single-thread baselines in benches).
pub fn gemm_blocked<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
) -> BlockMatrixOf<T> {
    single_thread_pool().install(|| gemm_parallel(a, b, tiling))
}

/// [`gemm_blocked`] with the flight record of [`gemm_parallel_traced`]:
/// the single-thread baseline, with every task span attributed to the
/// pool's one worker (or the caller lane if a span is ever recorded off
/// the pool).
pub fn gemm_blocked_traced<T: Element>(
    a: &BlockMatrixOf<T>,
    b: &BlockMatrixOf<T>,
    tiling: Tiling,
) -> (BlockMatrixOf<T>, Vec<TaskSpan>) {
    single_thread_pool().install(|| gemm_parallel_traced(a, b, tiling))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::gemm_naive;
    use mmc_core::algorithms::all_algorithms;

    fn operands(m: u32, n: u32, z: u32, q: usize) -> (BlockMatrix, BlockMatrix) {
        (BlockMatrix::pseudo_random(m, z, q, 11), BlockMatrix::pseudo_random(z, n, q, 22))
    }

    #[test]
    fn every_schedule_computes_the_product_bit_exactly() {
        let machine = MachineConfig::quad_q32();
        let (a, b) = operands(9, 17, 6, 4);
        let oracle = gemm_naive(&a, &b);
        for algo in all_algorithms() {
            let c = run_schedule(algo.as_ref(), &machine, &a, &b)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
            assert_eq!(c, oracle, "{} result differs from oracle", algo.name());
        }
    }

    #[test]
    fn exec_sink_counts_fmas() {
        let machine = MachineConfig::quad_q32();
        let (a, b) = operands(4, 4, 4, 2);
        let mut c = BlockMatrix::zeros(4, 4, 2);
        let mut sink = ExecSink::new(&a, &b, &mut c);
        mmc_core::algorithms::SharedOpt::run(&machine, &ProblemSpec::new(4, 4, 4), &mut sink)
            .unwrap();
        assert_eq!(sink.fmas(), 64);
    }

    #[test]
    fn parallel_tilings_match_oracle() {
        let machine = MachineConfig::quad_q32();
        let (a, b) = operands(13, 7, 9, 4);
        let oracle = gemm_naive(&a, &b);
        for tiling in [
            Tiling::shared_opt(&machine).unwrap(),
            Tiling::distributed_opt(&machine).unwrap(),
            Tiling::tradeoff(&machine).unwrap(),
            Tiling::equal(machine.shared_capacity).unwrap(),
            Tiling { tile_m: 1, tile_n: 1, tile_k: 1 },
            Tiling { tile_m: 64, tile_n: 64, tile_k: 64 },
        ] {
            let c = gemm_parallel(&a, &b, tiling);
            assert_eq!(c, oracle, "tiling {tiling:?}");
            let c = gemm_blocked(&a, &b, tiling);
            assert_eq!(c, oracle, "blocked tiling {tiling:?}");
        }
    }

    /// Every CPU-supported kernel variant, through both the packed
    /// parallel path and the blockwise naive oracle, computes the same
    /// product (tolerance across variants — fused vs unfused rounding —
    /// and bit-exact against the oracle for the dispatched variant,
    /// which `parallel_tilings_match_oracle` already pins down).
    #[test]
    fn kernel_variants_agree_across_paths() {
        let (a, b) = operands(7, 5, 6, 8);
        let oracle = gemm_naive(&a, &b);
        for v in kernel::variants_available() {
            for tiling in [
                Tiling { tile_m: 3, tile_n: 2, tile_k: 2 },
                Tiling { tile_m: 8, tile_n: 8, tile_k: 1 },
            ] {
                let c = gemm_parallel_with_kernel(&a, &b, tiling, v);
                assert!(
                    c.max_abs_diff(&oracle) < 1e-10,
                    "variant {v} tiling {tiling:?} diverges: {}",
                    c.max_abs_diff(&oracle)
                );
            }
        }
    }

    /// Ragged shapes for every variant: a `k` extent the tile depth does
    /// not divide (`tile_k = 4`, `z = 10`) and block sides that are not
    /// multiples of the register tile (`MR = 6`, `NR = 8` for f64), so
    /// every edge micro-kernel and the clipped final `k` panel are
    /// exercised. SIMD variants are fused end to end and must match the
    /// fused oracle bitwise; the scalar block kernel is unfused, so it
    /// gets a tolerance.
    #[test]
    fn ragged_shapes_match_oracle_for_every_variant() {
        for q in [5usize, 9, 13] {
            let (a, b) = operands(6, 7, 10, q);
            let oracle = gemm_naive(&a, &b);
            for v in kernel::variants_available() {
                let tiling = Tiling { tile_m: 4, tile_n: 5, tile_k: 4 };
                let c = gemm_parallel_with_kernel(&a, &b, tiling, v);
                if v.is_simd() {
                    assert_eq!(c, oracle, "variant {v} q={q}");
                } else {
                    assert!(
                        c.max_abs_diff(&oracle) < 1e-10,
                        "variant {v} q={q} diverges: {}",
                        c.max_abs_diff(&oracle)
                    );
                }
            }
        }
    }

    /// The blocking plan moves macro-loop boundaries, never the
    /// per-element accumulation order: any two plans — including
    /// degenerate one-block steps and steps larger than the whole tile —
    /// produce bit-identical products for every variant.
    #[test]
    fn five_loop_results_are_invariant_across_blocking_plans() {
        for q in [4usize, 7] {
            let (a, b) = operands(9, 8, 11, q);
            let tiling = Tiling { tile_m: 5, tile_n: 6, tile_k: 3 };
            for v in kernel::variants_available() {
                let baseline = gemm_parallel_with_plan(
                    &a,
                    &b,
                    tiling,
                    v,
                    BlockingPlan { mc: 1, kc: 1, nc: 1 },
                );
                for plan in [
                    BlockingPlan { mc: 2 * q, kc: 3 * q, nc: 2 * q },
                    BlockingPlan { mc: q, kc: 5 * q, nc: 1000 * q },
                    BlockingPlan { mc: 1000, kc: 1000, nc: 1000 },
                    blocking::active_plan::<f64>(),
                ] {
                    let c = gemm_parallel_with_plan(&a, &b, tiling, v, plan);
                    assert_eq!(c, baseline, "variant {v} q={q} plan {plan:?}");
                }
            }
        }
    }

    /// Two products with *different* block sides on the same worker
    /// thread: the thread-local [`kernel::pack::PackArena`] keeps its
    /// buffers between calls, so the second product packs into vectors
    /// still holding the first product's (larger or smaller) panels. A
    /// stale-length bug would feed leftover elements of the old `q` into
    /// the micro-kernels; both orders (shrinking and growing `q`) must
    /// still match the oracle.
    #[test]
    fn arena_reuse_across_block_sides_stays_correct() {
        for v in kernel::variants_available() {
            let check = |q: usize| {
                let (a, b) = operands(5, 4, 7, q);
                let oracle = gemm_naive(&a, &b);
                let tiling = Tiling { tile_m: 3, tile_n: 2, tile_k: 3 };
                let c = gemm_parallel_with_kernel(&a, &b, tiling, v);
                if v.is_simd() {
                    assert_eq!(c, oracle, "variant {v} q={q}");
                } else {
                    assert!(c.max_abs_diff(&oracle) < 1e-10, "variant {v} q={q}");
                }
            };
            // One worker thread → one arena reused by every product.
            single_thread_pool().install(|| {
                check(13); // large, ragged q seeds the arena
                check(5); // shrink: stale tail beyond the new panels
                check(16); // grow back past the original length
            });
        }
    }

    /// Accumulating a product one `k` panel at a time is bit-identical to
    /// the one-shot parallel product for every variant — the invariant the
    /// out-of-core executor's streaming loop relies on.
    #[test]
    fn panelwise_accumulation_is_bit_identical_to_one_shot() {
        for q in [4usize, 5] {
            let (a, b) = operands(6, 5, 9, q);
            for v in kernel::variants_available() {
                let tiling = Tiling { tile_m: 3, tile_n: 4, tile_k: 2 };
                let oracle = gemm_parallel_with_kernel(&a, &b, tiling, v);
                let mut c = BlockMatrix::zeros(6, 5, q);
                let mut k0 = 0;
                while k0 < 9 {
                    let kb = tiling.tile_k.min(9 - k0);
                    // Copy the k panel out, as the streaming path does.
                    let ap = BlockMatrix::from_fn(6, kb, q, |i, j| a.get(i, k0 as usize * q + j));
                    let bp = BlockMatrix::from_fn(kb, 5, q, |i, j| b.get(k0 as usize * q + i, j));
                    gemm_accumulate(
                        &mut c,
                        &ap,
                        &bp,
                        Tiling { tile_m: 3, tile_n: 4, tile_k: kb },
                        v,
                    );
                    k0 += kb;
                }
                assert_eq!(c, oracle, "variant {v} q={q}");
            }
        }
    }

    /// The generic executors compute correct f32 products against an f64
    /// oracle of the same inputs, within single-precision tolerance.
    #[test]
    fn f32_parallel_product_tracks_the_f64_oracle() {
        let (a64, b64) = operands(6, 5, 7, 9);
        let oracle = gemm_naive(&a64, &b64);
        let a32 = BlockMatrixOf::<f32>::pseudo_random(6, 7, 9, 11);
        let b32 = BlockMatrixOf::<f32>::pseudo_random(7, 5, 9, 22);
        for v in kernel::variants_available() {
            let c = gemm_parallel_with_kernel(
                &a32,
                &b32,
                Tiling { tile_m: 3, tile_n: 2, tile_k: 2 },
                v,
            );
            // pseudo_random narrows the same f64 stream, so the f32
            // product approximates the f64 oracle to f32 accuracy. The
            // stream is in [0,1): accumulated dot products of length 63
            // stay O(16), so 1e-3 absolute is comfortably loose.
            let mut worst = 0.0f64;
            for i in 0..c.rows() as usize * c.q() {
                for j in 0..c.cols() as usize * c.q() {
                    worst = worst.max((c.get(i, j) as f64 - oracle.get(i, j)).abs());
                }
            }
            assert!(worst < 1e-3, "variant {v} worst f32-vs-f64 gap {worst}");
        }
    }

    #[test]
    fn tilings_derive_from_machine_params() {
        let machine = MachineConfig::quad_q32();
        assert_eq!(
            Tiling::shared_opt(&machine).unwrap(),
            Tiling { tile_m: 30, tile_n: 30, tile_k: 1 }
        );
        assert_eq!(
            Tiling::distributed_opt(&machine).unwrap(),
            Tiling { tile_m: 8, tile_n: 8, tile_k: 1 }
        );
        let t = Tiling::tradeoff(&machine).unwrap();
        assert_eq!(t.tile_m % 8, 0);
        assert!(t.tile_k >= 1);
    }

    #[test]
    fn traced_gemm_matches_and_covers_every_tile() {
        let machine = MachineConfig::quad_q32();
        let (a, b) = operands(9, 7, 5, 4);
        let oracle = gemm_naive(&a, &b);
        let tiling = Tiling { tile_m: 4, tile_n: 3, tile_k: 2 };
        let (c, spans) = gemm_parallel_traced(&a, &b, tiling);
        assert_eq!(c, oracle);
        // One span per tile, tiles partition the 9×7 grid.
        assert_eq!(spans.len(), 3 * 3);
        let covered: u64 = spans.iter().map(|s| s.rows as u64 * s.cols as u64).sum();
        assert_eq!(covered, 9 * 7);
        assert!(spans.iter().all(|s| s.dur_us >= 0.0 && s.start_us >= 0.0));
        // Sorted by start time.
        assert!(spans.windows(2).all(|w| w[0].start_us <= w[1].start_us));
        let _ = machine;
    }

    #[test]
    fn task_spans_export_to_chrome_json() {
        let (a, b) = operands(4, 4, 4, 2);
        let (_, spans) = gemm_parallel_traced(&a, &b, Tiling { tile_m: 2, tile_n: 2, tile_k: 4 });
        let text = task_spans_to_chrome(&spans);
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("tile C[0..2, 0..2]"));
    }

    #[test]
    fn blocked_traced_attributes_every_span_to_the_pool_worker() {
        let (a, b) = operands(6, 6, 4, 3);
        let oracle = gemm_naive(&a, &b);
        let (c, spans) = gemm_blocked_traced(&a, &b, Tiling { tile_m: 2, tile_n: 3, tile_k: 2 });
        assert_eq!(c, oracle);
        assert_eq!(spans.len(), 3 * 2);
        // The cached single-thread pool runs every task on worker 0 —
        // spans keep the Some, they are not defaulted.
        assert!(spans.iter().all(|s| s.thread == Some(0)), "spans: {spans:?}");
        let text = task_spans_to_chrome(&spans);
        assert!(text.contains("worker 0"));
        assert!(!text.contains("\"caller\""));
    }

    #[test]
    fn off_pool_spans_get_a_dedicated_caller_lane() {
        // A span recorded off any pool thread must land on its own
        // "caller" track after the worker lanes, never on worker 0's.
        assert_eq!(rayon::current_thread_index(), None);
        let worker = TaskSpan {
            thread: Some(0),
            row0: 0,
            rows: 1,
            col0: 0,
            cols: 1,
            start_us: 0.0,
            dur_us: 1.0,
        };
        let caller = TaskSpan {
            thread: rayon::current_thread_index(),
            row0: 1,
            rows: 1,
            col0: 1,
            cols: 1,
            start_us: 0.5,
            dur_us: 1.0,
        };
        assert_eq!(caller.thread, None);
        let text = task_spans_to_chrome(&[worker, caller]);
        // Track 0 is "worker 0"; the caller lane is the next tid (1).
        assert!(text.contains("\"name\":\"worker 0\""));
        assert!(text.contains("\"name\":\"caller\""));
        assert!(text.contains("\"tid\":1,\"args\":{\"name\":\"caller\"}"));
        assert!(text.contains("\"name\":\"tile C[1..2, 1..2]\",\"ph\":\"X\",\"pid\":1,\"tid\":1"));
    }

    #[test]
    fn mismatched_operands_rejected() {
        let a = BlockMatrix::zeros(2, 3, 4);
        let b = BlockMatrix::zeros(2, 2, 4);
        let r = std::panic::catch_unwind(|| {
            gemm_parallel(&a, &b, Tiling { tile_m: 1, tile_n: 1, tile_k: 1 })
        });
        assert!(r.is_err());
    }

    #[test]
    fn pre_cancelled_run_returns_none_and_pool_keeps_serving() {
        let (a, b) = operands(6, 6, 5, 4);
        let tiling = Tiling { tile_m: 2, tile_n: 2, tile_k: 2 };
        let plan = blocking::active_plan::<f64>();
        let v = kernel::variant();
        let token = CancelToken::new();
        token.cancel();
        assert!(gemm_parallel_cancellable(&a, &b, tiling, v, plan, &token).is_none());
        // The same rayon pool immediately serves the next (live) job.
        let live = CancelToken::new();
        let c = gemm_parallel_cancellable(&a, &b, tiling, v, plan, &live)
            .expect("uncancelled job completes");
        assert_eq!(c, gemm_naive(&a, &b));
    }

    #[test]
    fn uncancelled_cancellable_run_is_bit_identical_to_plain_run() {
        let (a, b) = operands(7, 5, 6, 4);
        let tiling = Tiling { tile_m: 3, tile_n: 2, tile_k: 2 };
        let plan = blocking::active_plan::<f64>();
        for v in kernel::variants_available() {
            let token = CancelToken::new();
            let c = gemm_parallel_cancellable(&a, &b, tiling, v, plan, &token).unwrap();
            assert_eq!(c, gemm_parallel_with_plan(&a, &b, tiling, v, plan), "variant {v}");
        }
    }

    #[test]
    fn cancelled_accumulate_reports_false() {
        let (a, b) = operands(3, 3, 3, 4);
        let mut c = BlockMatrix::zeros(3, 3, 4);
        let tiling = Tiling { tile_m: 1, tile_n: 1, tile_k: 1 };
        let token = CancelToken::new();
        token.cancel();
        assert!(!gemm_accumulate_cancellable(
            &mut c,
            &a,
            &b,
            tiling,
            kernel::variant(),
            Some(&token)
        ));
        let mut c2 = BlockMatrix::zeros(3, 3, 4);
        assert!(gemm_accumulate_cancellable(&mut c2, &a, &b, tiling, kernel::variant(), None));
        assert_eq!(c2, gemm_naive(&a, &b));
    }
}
