//! Element-type abstraction for the kernel stack.
//!
//! Everything below [`super::block_fma_with`] — packing layouts, the
//! packed-panel driver, the register micro-kernels — is generic over an
//! [`Element`]: the scalar type flowing through the product. Two
//! implementations exist, `f64` (the default everywhere) and `f32`,
//! whose register tile is twice as wide for the same vector registers.
//!
//! The trait pins the pieces that differ per type:
//!
//! * the register-tile shape [`Element::MR`]`×`[`Element::NR`] the
//!   packed layouts and micro-kernels agree on;
//! * the arch micro-kernel dispatch ([`Element::micro_full`]) and the
//!   unpacked block kernel ([`Element::block_fma`]);
//! * the per-type thread-local packing arena ([`Element::with_arena`] —
//!   `thread_local!` statics cannot be generic, so each impl owns its
//!   slot).
//!
//! The determinism contract of [`super`] holds per element type: for a
//! fixed variant, every path accumulates each `C` element in ascending
//! `k`, fused for SIMD variants and unfused for the scalar one, so
//! executors of the same type and variant stay bit-identical.

use super::pack::PackArena;
use super::{scalar, KernelVariant};
use std::cell::RefCell;

/// A scalar type the kernel stack can multiply: `f64` or `f32`.
pub trait Element:
    Copy
    + Send
    + Sync
    + PartialEq
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Mul<Output = Self>
    + 'static
{
    /// Rows of `C` held in registers by this type's SIMD micro-kernels.
    const MR: usize;
    /// Columns of `C` held in registers by this type's SIMD micro-kernels.
    const NR: usize;
    /// Stable lowercase name (`"f64"` / `"f32"`), used in bench records.
    const NAME: &'static str;
    /// Additive identity (packing pads ragged edges with it).
    const ZERO: Self;

    /// Lossy conversion from `f64` (exact for `f64` itself).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (for diffs and diagnostics).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self × mul + add` (one rounding).
    fn mul_add(self, mul: Self, add: Self) -> Self;

    /// Run the variant's full `MR×NR` vector kernel on one register tile
    /// of packed panels, returning `false` when this type has no vector
    /// kernel for `v` on this arch (the caller then takes the fused
    /// scalar tile path, which rounds identically).
    fn micro_full(
        v: KernelVariant,
        kc: usize,
        ap: &[Self],
        bp: &[Self],
        c: &mut [Self],
        ldc: usize,
    ) -> bool;

    /// `c += a × b` on unpacked row-major `q×q` blocks through variant
    /// `v` — the entry the blockwise executors and the naive oracle use.
    fn block_fma(v: KernelVariant, c: &mut [Self], a: &[Self], b: &[Self], q: usize);

    /// Run `f` with this thread's packing arena for this element type.
    fn with_arena<R>(f: impl FnOnce(&mut PackArena<Self>) -> R) -> R;
}

impl Element for f64 {
    // 6×8: twelve 4-wide YMM accumulators on AVX2, twenty-four 2-wide
    // NEON accumulators — deep enough to hide FMA latency while leaving
    // the load ports under the FMA throughput (see `super::x86`).
    const MR: usize = 6;
    const NR: usize = 8;
    const NAME: &'static str = "f64";
    const ZERO: f64 = 0.0;

    #[inline(always)]
    fn from_f64(x: f64) -> f64 {
        x
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn mul_add(self, mul: f64, add: f64) -> f64 {
        f64::mul_add(self, mul, add)
    }

    #[inline]
    fn micro_full(
        v: KernelVariant,
        kc: usize,
        ap: &[f64],
        bp: &[f64],
        c: &mut [f64],
        ldc: usize,
    ) -> bool {
        debug_assert!(ap.len() >= kc * Self::MR && bp.len() >= kc * Self::NR);
        debug_assert!(c.len() >= (Self::MR - 1) * ldc + Self::NR);
        match v {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked; panel/tile sizes checked by
            // the debug_asserts above and the packed driver.
            KernelVariant::Avx2Fma if v.is_available() => {
                unsafe {
                    super::x86::micro_6x8_f64(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc)
                };
                true
            }
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64; sizes checked as above.
            KernelVariant::Neon => {
                unsafe {
                    super::neon::micro_6x8_f64(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc)
                };
                true
            }
            _ => false,
        }
    }

    #[inline]
    fn block_fma(v: KernelVariant, c: &mut [f64], a: &[f64], b: &[f64], q: usize) {
        match v {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `is_available` verified AVX2+FMA; slice lengths
            // checked by the caller's debug_assert and kernel indexing.
            KernelVariant::Avx2Fma if v.is_available() => unsafe {
                super::x86::block_fma_avx2(c, a, b, q)
            },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64.
            KernelVariant::Neon if v.is_available() => unsafe {
                super::neon::block_fma_neon(c, a, b, q)
            },
            _ => scalar::block_fma_scalar(c, a, b, q),
        }
    }

    fn with_arena<R>(f: impl FnOnce(&mut PackArena<f64>) -> R) -> R {
        thread_local! {
            static ARENA_F64: RefCell<PackArena<f64>> = const { RefCell::new(PackArena::new()) };
        }
        ARENA_F64.with(|cell| f(&mut cell.borrow_mut()))
    }
}

impl Element for f32 {
    // Same six rows as f64, twice the columns: the vector registers are
    // the same width, each lane holds twice as many f32s.
    const MR: usize = 6;
    const NR: usize = 16;
    const NAME: &'static str = "f32";
    const ZERO: f32 = 0.0;

    #[inline(always)]
    fn from_f64(x: f64) -> f32 {
        x as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline(always)]
    fn mul_add(self, mul: f32, add: f32) -> f32 {
        f32::mul_add(self, mul, add)
    }

    #[inline]
    fn micro_full(
        v: KernelVariant,
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: &mut [f32],
        ldc: usize,
    ) -> bool {
        debug_assert!(ap.len() >= kc * Self::MR && bp.len() >= kc * Self::NR);
        debug_assert!(c.len() >= (Self::MR - 1) * ldc + Self::NR);
        match v {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked; sizes checked as for f64.
            KernelVariant::Avx2Fma if v.is_available() => {
                unsafe {
                    super::x86::micro_6x16_f32(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc)
                };
                true
            }
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is baseline on aarch64; sizes checked as above.
            KernelVariant::Neon => {
                unsafe {
                    super::neon::micro_6x16_f32(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc)
                };
                true
            }
            _ => false,
        }
    }

    #[inline]
    fn block_fma(v: KernelVariant, c: &mut [f32], a: &[f32], b: &[f32], q: usize) {
        if v.is_simd() && v.is_available() {
            // Fused whole-block scalar loop: the same rounding contract
            // (one fused multiply-add per element per ascending `k`) as
            // the f32 vector kernels, so blockwise and packed paths of a
            // SIMD variant stay bit-identical without a dedicated
            // unpacked f32 vector kernel.
            super::edge_fused(c, a, b, q, (0, q, 0, q));
        } else {
            scalar::block_fma_scalar(c, a, b, q);
        }
    }

    fn with_arena<R>(f: impl FnOnce(&mut PackArena<f32>) -> R) -> R {
        thread_local! {
            static ARENA_F32: RefCell<PackArena<f32>> = const { RefCell::new(PackArena::new()) };
        }
        ARENA_F32.with(|cell| f(&mut cell.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_shapes_share_rows_and_double_width() {
        assert_eq!(<f64 as Element>::MR, <f32 as Element>::MR);
        assert_eq!(<f32 as Element>::NR, 2 * <f64 as Element>::NR);
        assert_eq!(<f64 as Element>::NAME, "f64");
        assert_eq!(<f32 as Element>::NAME, "f32");
    }

    #[test]
    fn conversions_round_trip_exactly_for_f64() {
        let x = 0.123456789f64;
        assert_eq!(f64::from_f64(x), x);
        assert_eq!(x.to_f64(), x);
        assert_eq!(f32::from_f64(0.5).to_f64(), 0.5);
    }

    #[test]
    fn arenas_are_per_type_and_per_thread() {
        let cap = f64::with_arena(|ar| {
            ar.a.resize(777, 0.0);
            ar.a.capacity()
        });
        assert_eq!(f64::with_arena(|ar| ar.a.capacity()), cap);
        // The f32 arena is a distinct slot.
        assert_eq!(f32::with_arena(|ar| ar.a.len()), 0);
    }
}
