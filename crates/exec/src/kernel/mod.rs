//! The `q×q` block micro-kernel subsystem.
//!
//! Every algorithm in the paper bottoms out in "BLAS routines" on `q×q`
//! blocks (§2.1). This module tree is that routine, grown from a single
//! auto-vectorized scalar loop into a small BLIS-style stack:
//!
//! * [`elem`] — the [`Element`](elem::Element) abstraction (`f64` /
//!   `f32`) fixing each type's register-tile shape and kernel dispatch;
//! * [`scalar`] — the portable fallback: the original `i/k/j` triple loop
//!   whose inner loop the compiler auto-vectorizes;
//! * [`x86`] (x86_64 only) — register-blocked AVX2+FMA kernels holding a
//!   6×8 (`f64`) or 6×16 (`f32`) tile of `C` in twelve YMM accumulators;
//! * [`neon`] (aarch64 only) — the same tile shapes on 128-bit NEON;
//! * [`pack`] — thread-local scratch arenas that copy `A` row-panels and
//!   `B` column-panels into contiguous micro-panel layout (the Maximum
//!   Reuse residency pattern — a `µ×µ` tile of `C`, a row of `A`, a
//!   column of `B` — materialized in memory order);
//! * [`packed`] — the driver that runs the register kernels over packed
//!   micro-panels for the parallel executor's tiles.
//!
//! # Dispatch
//!
//! The active [`KernelVariant`] is selected once per process (cached in a
//! `OnceLock`): AVX2+FMA when `is_x86_feature_detected!` says so, NEON on
//! aarch64, otherwise the scalar loop. Set `MMC_KERNEL=scalar` (or
//! `avx2` / `neon` / `auto`) before the first kernel call to override; an
//! unknown name is a hard error listing the valid variants.
//!
//! # Determinism
//!
//! Within one variant and element type, every executor path performs, for
//! each `C` element, one multiply-accumulate per `k` step in ascending
//! `k` order — the SIMD variants use fused multiply-add everywhere
//! (vector lanes and scalar edges alike), the scalar variant uses an
//! unfused multiply+add everywhere. Results are therefore
//! **bit-identical across executors** (`gemm_naive`, `run_schedule`,
//! `gemm_parallel` packed or not, any `MC/KC/NC` blocking) for any fixed
//! variant, which the test suite checks with `==`. Switching variants
//! changes rounding (fused vs unfused), so cross-variant comparisons use
//! a tolerance.

use std::sync::OnceLock;

pub mod elem;
pub mod pack;
pub mod packed;
pub mod scalar;

#[cfg(target_arch = "aarch64")]
pub mod neon;
#[cfg(target_arch = "x86_64")]
pub mod x86;

use elem::Element;

/// One implementation of the `q×q` block kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Portable scalar triple loop (auto-vectorized by the compiler).
    Scalar,
    /// Register-tiled AVX2 kernel using fused multiply-add (x86_64).
    Avx2Fma,
    /// Register-tiled NEON kernel using fused multiply-add (aarch64).
    Neon,
}

impl KernelVariant {
    /// Stable lowercase name, as reported by `mmc exec --json` and the
    /// `BENCH_exec.json` records.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Avx2Fma => "avx2_fma",
            KernelVariant::Neon => "neon",
        }
    }

    /// Whether this variant drives the packed-panel path (everything but
    /// the scalar fallback does).
    pub fn is_simd(self) -> bool {
        !matches!(self, KernelVariant::Scalar)
    }

    /// Whether the current CPU can actually run this variant.
    pub fn is_available(self) -> bool {
        match self {
            KernelVariant::Scalar => true,
            KernelVariant::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                false
            }
            KernelVariant::Neon => cfg!(target_arch = "aarch64"),
        }
    }
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every variant the current CPU supports (the scalar fallback first).
pub fn variants_available() -> Vec<KernelVariant> {
    [KernelVariant::Scalar, KernelVariant::Avx2Fma, KernelVariant::Neon]
        .into_iter()
        .filter(|v| v.is_available())
        .collect()
}

/// The dispatched kernel variant, selected once per process and cached.
///
/// Honors `MMC_KERNEL` (`scalar`, `avx2`, `neon`, `auto`) if it is set
/// before the first kernel call; a requested variant the CPU lacks falls
/// back to auto-detection. An *unknown* name is a usage error: the
/// process exits with a message listing the valid variants rather than
/// silently benchmarking the wrong kernel.
pub fn variant() -> KernelVariant {
    static VARIANT: OnceLock<KernelVariant> = OnceLock::new();
    *VARIANT.get_or_init(|| match select(std::env::var("MMC_KERNEL").ok().as_deref()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("mmc-exec: {e}");
            std::process::exit(2);
        }
    })
}

/// Resolve an `MMC_KERNEL`-style request against the CPU's abilities.
///
/// `Ok`: the variant to run (a known-but-unavailable request falls back
/// to the best available variant, with a note on stderr). `Err`: the
/// name is not a kernel variant at all; the message lists the valid
/// spellings so callers can fail cleanly.
pub fn select(request: Option<&str>) -> Result<KernelVariant, String> {
    let requested = match request {
        Some("scalar") => Some(KernelVariant::Scalar),
        Some("avx2") | Some("avx2_fma") => Some(KernelVariant::Avx2Fma),
        Some("neon") => Some(KernelVariant::Neon),
        Some("auto") | None => None,
        Some(other) => {
            return Err(format!(
                "unknown kernel {other:?}; valid variants: scalar, avx2_fma (alias: avx2), neon, auto"
            ));
        }
    };
    Ok(match requested {
        Some(v) if v.is_available() => v,
        Some(v) => {
            eprintln!("mmc-exec: MMC_KERNEL={} unavailable on this CPU; auto-detecting", v.name());
            best_available()
        }
        None => best_available(),
    })
}

/// The fastest variant the CPU supports.
fn best_available() -> KernelVariant {
    if KernelVariant::Avx2Fma.is_available() {
        KernelVariant::Avx2Fma
    } else if KernelVariant::Neon.is_available() {
        KernelVariant::Neon
    } else {
        KernelVariant::Scalar
    }
}

/// Hint the cache to pull the line at `p` toward L1.
///
/// Prefetch instructions never fault, even on addresses past the end of
/// an allocation, so callers may aim a fixed distance ahead of a stream
/// without clamping (use `wrapping_add` to form such pointers). No-op on
/// architectures without a stable prefetch primitive.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault or write.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: prfm is a hint; it cannot fault or write.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// `c += a × b` for row-major `q×q` blocks, via the dispatched kernel.
///
/// Deterministic: for a fixed [`variant`], the accumulation order per `C`
/// element is ascending `k` with one multiply-accumulate per step, so
/// every executor that calls this kernel with the same operand order
/// produces bit-identical results — which the test-suite exploits to
/// compare schedules exactly.
///
/// # Panics
/// Panics (via `debug_assert!` in debug builds and slice indexing
/// otherwise) if any slice is shorter than `q²`.
#[inline]
pub fn block_fma<T: Element>(c: &mut [T], a: &[T], b: &[T], q: usize) {
    block_fma_with(variant(), c, a, b, q)
}

/// [`block_fma`] through an explicitly chosen variant (for tests and
/// benches). A variant the CPU lacks falls back to the scalar loop.
#[inline]
pub fn block_fma_with<T: Element>(v: KernelVariant, c: &mut [T], a: &[T], b: &[T], q: usize) {
    debug_assert!(c.len() >= q * q && a.len() >= q * q && b.len() >= q * q);
    T::block_fma(v, c, a, b, q)
}

/// Reference scalar implementation (j-inner with explicit indexing), used
/// to validate every dispatched variant.
pub fn block_fma_reference<T: Element>(c: &mut [T], a: &[T], b: &[T], q: usize) {
    for i in 0..q {
        for j in 0..q {
            let mut acc = T::ZERO;
            for k in 0..q {
                acc = acc + a[i * q + k] * b[k * q + j];
            }
            c[i * q + j] = c[i * q + j] + acc;
        }
    }
}

/// Fused-FMA remainder kernel on unpacked row-major `q×q` operands:
/// updates the `mi×nj` sub-tile of `C` at `(i0, j0)`, ascending `k` per
/// element, one fused `mul_add` per step — bit-identical to the SIMD
/// lanes, so partial register tiles round exactly like full ones.
pub(crate) fn edge_fused<T: Element>(
    c: &mut [T],
    a: &[T],
    b: &[T],
    q: usize,
    (i0, mi, j0, nj): (usize, usize, usize, usize),
) {
    for i in i0..i0 + mi {
        for j in j0..j0 + nj {
            let mut acc = c[i * q + j];
            for k in 0..q {
                acc = a[i * q + k].mul_add(b[k * q + j], acc);
            }
            c[i * q + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(q: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut v = vec![0.0; q * q];
        for i in 0..q {
            for j in 0..q {
                v[i * q + j] = f(i, j);
            }
        }
        v
    }

    #[test]
    fn identity_times_anything() {
        let q = 8;
        let id = pattern(q, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = pattern(q, |i, j| (i * q + j) as f64);
        let mut c = vec![0.0; q * q];
        block_fma(&mut c, &id, &b, q);
        assert_eq!(c, b);
    }

    #[test]
    fn accumulates_into_c() {
        let q = 4;
        let a = pattern(q, |_, _| 1.0);
        let b = pattern(q, |_, _| 2.0);
        let mut c = pattern(q, |_, _| 5.0);
        block_fma(&mut c, &a, &b, q);
        // Each element gains sum_k 1·2 = 2q.
        assert!(c.iter().all(|&x| (x - (5.0 + 2.0 * q as f64)).abs() < 1e-12));
    }

    #[test]
    fn every_variant_matches_reference_on_irregular_data() {
        for v in variants_available() {
            for q in [1usize, 2, 3, 5, 8, 16, 32] {
                let a = pattern(q, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
                let b = pattern(q, |i, j| ((i * 3 + j * 5) % 7) as f64 * 0.25);
                let mut c1 = pattern(q, |i, j| (i + j) as f64);
                let mut c2 = c1.clone();
                block_fma_with(v, &mut c1, &a, &b, q);
                block_fma_reference(&mut c2, &a, &b, q);
                for (x, y) in c1.iter().zip(&c2) {
                    assert!((x - y).abs() < 1e-9, "{v} q={q}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn f32_variants_match_f32_reference() {
        for v in variants_available() {
            for q in [1usize, 3, 7, 16, 17] {
                let a: Vec<f32> = (0..q * q).map(|x| ((x * 7) % 11) as f32 - 5.0).collect();
                let b: Vec<f32> = (0..q * q).map(|x| ((x * 3) % 7) as f32 * 0.25).collect();
                let mut c1 = vec![1.0f32; q * q];
                let mut c2 = c1.clone();
                block_fma_with(v, &mut c1, &a, &b, q);
                block_fma_reference(&mut c2, &a, &b, q);
                for (x, y) in c1.iter().zip(&c2) {
                    assert!((x - y).abs() < 1e-3, "{v} q={q}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn q1_is_scalar_fma() {
        let mut c = [10.0];
        block_fma(&mut c, &[3.0], &[4.0], 1);
        assert_eq!(c[0], 22.0);
    }

    /// CI smoke: the dispatched kernel agrees with the scalar fallback on
    /// a `q=64` block (tolerance — fused vs unfused rounding differs).
    #[test]
    fn dispatched_matches_scalar_fallback() {
        let q = 64;
        let a = crate::BlockMatrix::pseudo_random(1, 1, q, 101);
        let b = crate::BlockMatrix::pseudo_random(1, 1, q, 202);
        let mut cd = vec![0.5; q * q];
        let mut cs = cd.clone();
        block_fma_with(variant(), &mut cd, a.block(0, 0), b.block(0, 0), q);
        block_fma_with(KernelVariant::Scalar, &mut cs, a.block(0, 0), b.block(0, 0), q);
        for (x, y) in cd.iter().zip(&cs) {
            assert!((x - y).abs() < 1e-10, "dispatched {} vs scalar: {x} vs {y}", variant());
        }
    }

    #[test]
    fn selection_honors_requests_and_rejects_unknown_names() {
        assert_eq!(select(Some("scalar")).unwrap(), KernelVariant::Scalar);
        let auto = select(None).unwrap();
        assert!(auto.is_available());
        // Bogus names are a hard error whose message lists every valid
        // spelling — no silent fallback to auto-detection.
        let err = select(Some("definitely-not-a-kernel")).unwrap_err();
        for valid in ["scalar", "avx2_fma", "neon", "auto"] {
            assert!(err.contains(valid), "error must list {valid:?}: {err}");
        }
        // A known SIMD request resolves to something the CPU can run.
        assert!(select(Some("avx2")).unwrap().is_available());
        assert!(select(Some("neon")).unwrap().is_available());
        // The cached dispatch returns an available variant and is stable.
        assert_eq!(variant(), variant());
        assert!(variant().is_available());
    }

    #[test]
    fn variant_names_are_stable() {
        assert_eq!(KernelVariant::Scalar.name(), "scalar");
        assert_eq!(KernelVariant::Avx2Fma.name(), "avx2_fma");
        assert_eq!(KernelVariant::Neon.name(), "neon");
        assert!(!KernelVariant::Scalar.is_simd());
        assert!(KernelVariant::Avx2Fma.is_simd() && KernelVariant::Neon.is_simd());
        assert_eq!(variants_available().first(), Some(&KernelVariant::Scalar));
    }
}
