//! AVX2+FMA register-blocked micro-kernels (x86_64).
//!
//! Tile shapes are chosen against Haswell-class port budgets, where two
//! FMA ports compete with two load ports:
//!
//! * `f64` 6×8 — twelve YMM accumulators (two 4-wide registers per `C`
//!   row). Per `k` step: two `B` loads + six `A` broadcasts = 8 load-port
//!   µops against 12 FMAs, so the kernel runs at the FMA limit
//!   (16 FLOP/cycle) instead of the load-port limit the old 8×4 shape hit
//!   (one `B` load + eight broadcasts = 9 load µops per 8 FMAs).
//! * `f32` 6×16 — the same twelve accumulators at twice the lane width.
//!
//! Twelve accumulators also cover the FMA latency×throughput product
//! (4–5 cycles × 2 ports), so the dependency chains never stall. Software
//! prefetch pulls the packed streams a few steps ahead; the two extra
//! load-port µops still fit under the FMA-bound cycle count.
//!
//! Rounding contract: every element update is one *fused* multiply-add
//! per `k` step, ascending `k` — identical to the scalar `mul_add` edge
//! paths, so full and partial register tiles agree bitwise and every
//! executor path through the AVX2 variant is bit-identical.

use super::{edge_fused, prefetch_read};
use core::arch::x86_64::*;

/// Rows of `C` per register tile (both element types).
const MR: usize = 6;
/// `f64` columns per register tile (two 4-wide YMM registers).
const NR_F64: usize = 8;
/// `f32` columns per register tile (two 8-wide YMM registers).
const NR_F32: usize = 16;
/// How many `k` steps ahead the packed streams are prefetched.
const PF_AHEAD: usize = 8;

/// `C(6×8) += Apanel × Bpanel` on packed `f64` micro-panels.
///
/// `ap` holds `kc` groups of 6 `A` values (one per `C` row), `bp` holds
/// `kc` groups of 8 `B` values (one per `C` column), `c` points at a
/// 6×8 tile stored with row stride `ldc`.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available, `ap` has at least
/// `kc·6` elements, `bp` at least `kc·8`, and the 6 rows of 8 elements
/// at `c` (stride `ldc`) are in bounds and unaliased.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn micro_6x8_f64(kc: usize, ap: *const f64, bp: *const f64, c: *mut f64, ldc: usize) {
    let mut acc = [[_mm256_setzero_pd(); 2]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row[0] = _mm256_loadu_pd(c.add(r * ldc));
        row[1] = _mm256_loadu_pd(c.add(r * ldc + 4));
    }
    for k in 0..kc {
        prefetch_read(bp.wrapping_add((k + PF_AHEAD) * NR_F64));
        prefetch_read(ap.wrapping_add((k + PF_AHEAD) * MR));
        let b0 = _mm256_loadu_pd(bp.add(k * NR_F64));
        let b1 = _mm256_loadu_pd(bp.add(k * NR_F64 + 4));
        let ak = ap.add(k * MR);
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_pd(*ak.add(r));
            row[0] = _mm256_fmadd_pd(av, b0, row[0]);
            row[1] = _mm256_fmadd_pd(av, b1, row[1]);
        }
    }
    for (r, row) in acc.iter().enumerate() {
        _mm256_storeu_pd(c.add(r * ldc), row[0]);
        _mm256_storeu_pd(c.add(r * ldc + 4), row[1]);
    }
}

/// `C(6×16) += Apanel × Bpanel` on packed `f32` micro-panels.
///
/// Same layout contract as [`micro_6x8_f64`] with `NR = 16`: `ap` holds
/// `kc` groups of 6 `A` values, `bp` holds `kc` groups of 16 `B` values.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available, `ap` has at least
/// `kc·6` elements, `bp` at least `kc·16`, and the 6 rows of 16 elements
/// at `c` (stride `ldc`) are in bounds and unaliased.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn micro_6x16_f32(kc: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize) {
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row[0] = _mm256_loadu_ps(c.add(r * ldc));
        row[1] = _mm256_loadu_ps(c.add(r * ldc + 8));
    }
    for k in 0..kc {
        prefetch_read(bp.wrapping_add((k + PF_AHEAD) * NR_F32));
        prefetch_read(ap.wrapping_add((k + PF_AHEAD) * MR));
        let b0 = _mm256_loadu_ps(bp.add(k * NR_F32));
        let b1 = _mm256_loadu_ps(bp.add(k * NR_F32 + 8));
        let ak = ap.add(k * MR);
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ak.add(r));
            row[0] = _mm256_fmadd_ps(av, b0, row[0]);
            row[1] = _mm256_fmadd_ps(av, b1, row[1]);
        }
    }
    for (r, row) in acc.iter().enumerate() {
        _mm256_storeu_ps(c.add(r * ldc), row[0]);
        _mm256_storeu_ps(c.add(r * ldc + 8), row[1]);
    }
}

/// `c += a × b` on unpacked row-major `q×q` `f64` blocks, register-blocked.
///
/// Full 6×8 tiles run the vector kernel straight off the block storage
/// (broadcasting `A` with stride `q`, loading `B` rows contiguously);
/// the `q % 6` row strip runs the same vector loop with a runtime row
/// count, and only the `q % 8` column sliver uses the fused scalar
/// remainder — all paths round identically (fused, ascending `k`).
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available and each slice holds at
/// least `q²` elements.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn block_fma_avx2(c: &mut [f64], a: &[f64], b: &[f64], q: usize) {
    debug_assert!(c.len() >= q * q && a.len() >= q * q && b.len() >= q * q);
    let cp = c.as_mut_ptr();
    let apn = a.as_ptr();
    let bpn = b.as_ptr();
    let mut ir = 0;
    while ir + MR <= q {
        let mut jr = 0;
        while jr + NR_F64 <= q {
            let ctile = cp.add(ir * q + jr);
            let mut acc = [[_mm256_setzero_pd(); 2]; MR];
            for (r, row) in acc.iter_mut().enumerate() {
                row[0] = _mm256_loadu_pd(ctile.add(r * q));
                row[1] = _mm256_loadu_pd(ctile.add(r * q + 4));
            }
            for k in 0..q {
                let b0 = _mm256_loadu_pd(bpn.add(k * q + jr));
                let b1 = _mm256_loadu_pd(bpn.add(k * q + jr + 4));
                for (r, row) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_pd(*apn.add((ir + r) * q + k));
                    row[0] = _mm256_fmadd_pd(av, b0, row[0]);
                    row[1] = _mm256_fmadd_pd(av, b1, row[1]);
                }
            }
            for (r, row) in acc.iter().enumerate() {
                _mm256_storeu_pd(ctile.add(r * q), row[0]);
                _mm256_storeu_pd(ctile.add(r * q + 4), row[1]);
            }
            jr += NR_F64;
        }
        if jr < q {
            edge_fused(c, a, b, q, (ir, MR, jr, q - jr));
        }
        ir += MR;
    }
    // Row-remainder strip (`q % 6` rows): the same vector loop with a
    // runtime row count, so the strip stays FMA-bound instead of falling
    // into the latency-bound scalar chain. Fused ascending-`k` like the
    // full tiles, so the rounding is unchanged.
    if ir < q {
        let mi = q - ir;
        let mut jr = 0;
        while jr + NR_F64 <= q {
            let ctile = cp.add(ir * q + jr);
            let mut acc = [[_mm256_setzero_pd(); 2]; MR];
            for (r, row) in acc.iter_mut().take(mi).enumerate() {
                row[0] = _mm256_loadu_pd(ctile.add(r * q));
                row[1] = _mm256_loadu_pd(ctile.add(r * q + 4));
            }
            for k in 0..q {
                let b0 = _mm256_loadu_pd(bpn.add(k * q + jr));
                let b1 = _mm256_loadu_pd(bpn.add(k * q + jr + 4));
                for (r, row) in acc.iter_mut().take(mi).enumerate() {
                    let av = _mm256_set1_pd(*apn.add((ir + r) * q + k));
                    row[0] = _mm256_fmadd_pd(av, b0, row[0]);
                    row[1] = _mm256_fmadd_pd(av, b1, row[1]);
                }
            }
            for (r, row) in acc.iter().take(mi).enumerate() {
                _mm256_storeu_pd(ctile.add(r * q), row[0]);
                _mm256_storeu_pd(ctile.add(r * q + 4), row[1]);
            }
            jr += NR_F64;
        }
        if jr < q {
            edge_fused(c, a, b, q, (ir, mi, jr, q - jr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{block_fma_reference, KernelVariant};

    #[test]
    fn avx2_block_kernel_matches_reference() {
        if !KernelVariant::Avx2Fma.is_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        // Multiples of the register tile and ragged edges alike.
        for q in [1usize, 4, 6, 7, 8, 9, 12, 14, 31, 32, 64] {
            let a: Vec<f64> = (0..q * q).map(|x| ((x * 37) % 23) as f64 - 11.0).collect();
            let b: Vec<f64> = (0..q * q).map(|x| ((x * 5) % 17) as f64 * 0.125).collect();
            let mut c1: Vec<f64> = (0..q * q).map(|x| x as f64 * 0.01).collect();
            let mut c2 = c1.clone();
            // SAFETY: availability checked above; slices are q².
            unsafe { block_fma_avx2(&mut c1, &a, &b, q) };
            block_fma_reference(&mut c2, &a, &b, q);
            for (i, (x, y)) in c1.iter().zip(&c2).enumerate() {
                assert!((x - y).abs() < 1e-9, "q={q} elem {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn packed_micro_kernel_matches_unpacked_tile() {
        if !KernelVariant::Avx2Fma.is_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        // One full 6×8 tile with kc = 16: pack operands by hand.
        let kc = 16usize;
        let a: Vec<f64> = (0..MR * kc).map(|x| ((x * 11) % 19) as f64 - 9.0).collect(); // row-major MR×kc
        let b: Vec<f64> = (0..kc * NR_F64).map(|x| ((x * 7) % 13) as f64 * 0.25).collect(); // row-major kc×NR
        let mut ap = vec![0.0; kc * MR];
        for k in 0..kc {
            for r in 0..MR {
                ap[k * MR + r] = a[r * kc + k];
            }
        }
        let mut c = vec![1.0; MR * NR_F64];
        let mut oracle = c.clone();
        // SAFETY: availability checked; buffers sized exactly.
        unsafe { micro_6x8_f64(kc, ap.as_ptr(), b.as_ptr(), c.as_mut_ptr(), NR_F64) };
        for r in 0..MR {
            for j in 0..NR_F64 {
                let mut acc = oracle[r * NR_F64 + j];
                for k in 0..kc {
                    acc = a[r * kc + k].mul_add(b[k * NR_F64 + j], acc);
                }
                oracle[r * NR_F64 + j] = acc;
            }
        }
        assert_eq!(c, oracle, "fused vector lanes must equal fused scalar exactly");
    }

    #[test]
    fn packed_f32_micro_kernel_matches_fused_scalar() {
        if !KernelVariant::Avx2Fma.is_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        let kc = 11usize;
        let a: Vec<f32> = (0..MR * kc).map(|x| ((x * 11) % 19) as f32 - 9.0).collect();
        let b: Vec<f32> = (0..kc * NR_F32).map(|x| ((x * 7) % 13) as f32 * 0.25).collect();
        let mut ap = vec![0.0f32; kc * MR];
        for k in 0..kc {
            for r in 0..MR {
                ap[k * MR + r] = a[r * kc + k];
            }
        }
        let mut c = vec![1.0f32; MR * NR_F32];
        let mut oracle = c.clone();
        // SAFETY: availability checked; buffers sized exactly.
        unsafe { micro_6x16_f32(kc, ap.as_ptr(), b.as_ptr(), c.as_mut_ptr(), NR_F32) };
        for r in 0..MR {
            for j in 0..NR_F32 {
                let mut acc = oracle[r * NR_F32 + j];
                for k in 0..kc {
                    acc = a[r * kc + k].mul_add(b[k * NR_F32 + j], acc);
                }
                oracle[r * NR_F32 + j] = acc;
            }
        }
        assert_eq!(c, oracle, "fused f32 vector lanes must equal fused scalar exactly");
    }
}
