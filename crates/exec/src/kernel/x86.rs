//! AVX2+FMA register-blocked micro-kernels (x86_64).
//!
//! Both kernels hold an [`MR`]`×`[`NR`] tile of `C` in eight YMM
//! accumulators (one 4-wide register per `C` row) and, per `k` step,
//! issue one 4-wide `B` load, eight `A` broadcasts, and eight fused
//! multiply-adds — the operand-reuse pattern of the Maximum Reuse
//! analysis (a register tile of `C`, a column sliver of `A`, a row
//! sliver of `B`) expressed in registers.
//!
//! Rounding contract: every element update is one *fused* multiply-add
//! per `k` step, ascending `k` — identical to the scalar
//! `f64::mul_add` edge paths, so full and partial register tiles agree
//! bitwise and every executor path through the AVX2 variant is
//! bit-identical.

use super::{edge_fused, MR, NR};
use core::arch::x86_64::*;

/// `C(MR×NR) += Apanel × Bpanel` on packed micro-panels.
///
/// `ap` holds `kc` groups of [`MR`] `A` values (one per `C` row), `bp`
/// holds `kc` groups of [`NR`] `B` values (one per `C` column), `c`
/// points at an `MR×NR` tile stored with row stride `ldc`.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available, `ap` has at least
/// `kc·MR` elements, `bp` at least `kc·NR`, and the `MR` rows of `NR`
/// elements at `c` (stride `ldc`) are in bounds and unaliased.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn micro_8x4_packed(kc: usize, ap: *const f64, bp: *const f64, c: *mut f64, ldc: usize) {
    let mut acc = [_mm256_setzero_pd(); MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        *accr = _mm256_loadu_pd(c.add(r * ldc));
    }
    for k in 0..kc {
        let bv = _mm256_loadu_pd(bp.add(k * NR));
        let ak = ap.add(k * MR);
        for (r, accr) in acc.iter_mut().enumerate() {
            *accr = _mm256_fmadd_pd(_mm256_set1_pd(*ak.add(r)), bv, *accr);
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        _mm256_storeu_pd(c.add(r * ldc), *accr);
    }
}

/// `c += a × b` on unpacked row-major `q×q` blocks, register-blocked.
///
/// Full `MR×NR` tiles run the vector kernel straight off the block
/// storage (broadcasting `A` with stride `q`, loading `B` rows
/// contiguously); partial tiles at the `q % MR` / `q % NR` edges use the
/// fused scalar remainder, which rounds identically.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are available and each slice holds at
/// least `q²` elements.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn block_fma_avx2(c: &mut [f64], a: &[f64], b: &[f64], q: usize) {
    debug_assert!(c.len() >= q * q && a.len() >= q * q && b.len() >= q * q);
    let cp = c.as_mut_ptr();
    let apn = a.as_ptr();
    let bpn = b.as_ptr();
    let mut ir = 0;
    while ir + MR <= q {
        let mut jr = 0;
        while jr + NR <= q {
            let ctile = cp.add(ir * q + jr);
            let mut acc = [_mm256_setzero_pd(); MR];
            for (r, accr) in acc.iter_mut().enumerate() {
                *accr = _mm256_loadu_pd(ctile.add(r * q));
            }
            for k in 0..q {
                let bv = _mm256_loadu_pd(bpn.add(k * q + jr));
                for (r, accr) in acc.iter_mut().enumerate() {
                    *accr = _mm256_fmadd_pd(_mm256_set1_pd(*apn.add((ir + r) * q + k)), bv, *accr);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_pd(ctile.add(r * q), *accr);
            }
            jr += NR;
        }
        if jr < q {
            edge_fused(c, a, b, q, (ir, MR, jr, q - jr));
        }
        ir += MR;
    }
    if ir < q {
        edge_fused(c, a, b, q, (ir, q - ir, 0, q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{block_fma_reference, KernelVariant};

    #[test]
    fn avx2_block_kernel_matches_reference() {
        if !KernelVariant::Avx2Fma.is_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        // Multiples of the register tile and ragged edges alike.
        for q in [1usize, 4, 7, 8, 9, 12, 31, 32, 64] {
            let a: Vec<f64> = (0..q * q).map(|x| ((x * 37) % 23) as f64 - 11.0).collect();
            let b: Vec<f64> = (0..q * q).map(|x| ((x * 5) % 17) as f64 * 0.125).collect();
            let mut c1: Vec<f64> = (0..q * q).map(|x| x as f64 * 0.01).collect();
            let mut c2 = c1.clone();
            // SAFETY: availability checked above; slices are q².
            unsafe { block_fma_avx2(&mut c1, &a, &b, q) };
            block_fma_reference(&mut c2, &a, &b, q);
            for (i, (x, y)) in c1.iter().zip(&c2).enumerate() {
                assert!((x - y).abs() < 1e-9, "q={q} elem {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn packed_micro_kernel_matches_unpacked_tile() {
        if !KernelVariant::Avx2Fma.is_available() {
            eprintln!("skipping: no AVX2+FMA on this host");
            return;
        }
        // One full MR×NR tile with kc = 16: pack operands by hand.
        let kc = 16usize;
        let a: Vec<f64> = (0..MR * kc).map(|x| ((x * 11) % 19) as f64 - 9.0).collect(); // row-major MR×kc
        let b: Vec<f64> = (0..kc * NR).map(|x| ((x * 7) % 13) as f64 * 0.25).collect(); // row-major kc×NR
        let mut ap = vec![0.0; kc * MR];
        for k in 0..kc {
            for r in 0..MR {
                ap[k * MR + r] = a[r * kc + k];
            }
        }
        let mut c = vec![1.0; MR * NR];
        let mut oracle = c.clone();
        // SAFETY: availability checked; buffers sized exactly.
        unsafe { micro_8x4_packed(kc, ap.as_ptr(), b.as_ptr(), c.as_mut_ptr(), NR) };
        for r in 0..MR {
            for j in 0..NR {
                let mut acc = oracle[r * NR + j];
                for k in 0..kc {
                    acc = a[r * kc + k].mul_add(b[k * NR + j], acc);
                }
                oracle[r * NR + j] = acc;
            }
        }
        assert_eq!(c, oracle, "fused vector lanes must equal fused scalar exactly");
    }
}
