//! Packed-panel driver: register kernels over one `C` block.
//!
//! [`block_mul_packed`] updates a single row-major `q×q` `C` block from
//! packed `A` and `B` micro-panels (see [`super::pack`] for the layout),
//! walking the block's `MR×NR` register-tile grid for the element type.
//! Full tiles run the variant's vector kernel straight on `C`; tiles
//! clipped by the `q % MR` / `q % NR` edges run the *same* vector kernel
//! into a scratch `MR×NR` tile (the panels are zero-padded to full
//! register width, so the pad lanes accumulate exact zeros) and copy the
//! live corner back. Every element therefore takes one fused
//! multiply-add per ascending `k` step regardless of which path ran — a
//! packed update is bit-identical to the same variant's unpacked
//! [`super::block_fma_with`] applied `k`-block by `k`-block, and edge
//! tiles run at vector speed instead of a latency-bound scalar chain.

use super::elem::Element;
use super::KernelVariant;

/// `C += Apanel × Bpanel` for one row-major `q×q` block of `C`.
///
/// `apack` is this block row's packed micro-panels (`⌈q/MR⌉·kc·MR`
/// elements), `bpack` this block column's (`⌈q/NR⌉·kc·NR` elements), with
/// `kc` the element depth of the current `k` panel. Accumulation per `C`
/// element is ascending `k` with one fused multiply-add per step.
///
/// A variant the CPU cannot run falls back to the fused scalar remainder
/// for every tile (callers dispatch the scalar kernel before packing, so
/// this is a safety net, not a fast path).
///
/// # Panics
/// Panics (in debug builds) if the slice sizes disagree with `q`/`kc`.
pub fn block_mul_packed<T: Element>(
    v: KernelVariant,
    cblk: &mut [T],
    q: usize,
    kc: usize,
    apack: &[T],
    bpack: &[T],
) {
    let (mr, nr) = (T::MR, T::NR);
    let n_ip = q.div_ceil(mr);
    let n_jp = q.div_ceil(nr);
    debug_assert!(cblk.len() >= q * q);
    debug_assert!(apack.len() >= n_ip * kc * mr && bpack.len() >= n_jp * kc * nr);
    let vector = v.is_simd() && v.is_available();
    // Scratch C tile for edge tiles on the vector path. The packed
    // panels are zero-padded to full `MR`/`NR`, so the full vector
    // kernel can run against this tile: pad lanes accumulate exact
    // zeros onto scratch values that are never copied back, while the
    // live `mrc×nrc` corner sees the identical fused ascending-`k`
    // chain it would get from the scalar remainder. 96 elements is the
    // largest tile of any element type (f32's 6×16).
    let mut scratch = [T::ZERO; 96];
    debug_assert!(mr * nr <= scratch.len());
    for jp in 0..n_jp {
        let nrc = nr.min(q - jp * nr);
        let bp = &bpack[jp * kc * nr..][..kc * nr];
        for ip in 0..n_ip {
            let mrc = mr.min(q - ip * mr);
            let ap = &apack[ip * kc * mr..][..kc * mr];
            let coff = ip * mr * q + jp * nr;
            if vector && mrc == mr && nrc == nr {
                if T::micro_full(v, kc, ap, bp, &mut cblk[coff..], q) {
                    continue;
                }
            } else if vector {
                for r in 0..mrc {
                    scratch[r * nr..r * nr + nrc].copy_from_slice(&cblk[coff + r * q..][..nrc]);
                }
                if T::micro_full(v, kc, ap, bp, &mut scratch, nr) {
                    for r in 0..mrc {
                        cblk[coff + r * q..][..nrc].copy_from_slice(&scratch[r * nr..r * nr + nrc]);
                    }
                    continue;
                }
            }
            micro_edge_packed(kc, ap, bp, &mut cblk[coff..], q, mrc, nrc);
        }
    }
}

/// Fused scalar micro-kernel over packed panels for partial register
/// tiles: updates the `mr×nr` corner of the tile at `c` (row stride
/// `ldc`), one fused `mul_add` per `k` step, ascending `k` —
/// bit-identical to the vector lanes.
fn micro_edge_packed<T: Element>(
    kc: usize,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    for r in 0..mr {
        for j in 0..nr {
            let idx = r * ldc + j;
            let mut acc = c[idx];
            for k in 0..kc {
                acc = ap[k * T::MR + r].mul_add(bp[k * T::NR + j], acc);
            }
            c[idx] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{block_fma_with, pack, variants_available};
    use crate::matrix::{BlockMatrix, BlockMatrixOf};

    /// Packed and unpacked paths of the same variant are bit-identical,
    /// including ragged q and multi-block k panels.
    #[test]
    fn packed_update_is_bit_identical_to_blockwise_kernel() {
        for v in variants_available() {
            for q in [1usize, 3, 5, 8, 12, 16, 31, 32] {
                let kb = 3u32;
                let a = BlockMatrix::pseudo_random(1, kb, q, 7);
                let b = BlockMatrix::pseudo_random(kb, 1, q, 8);
                let mut c_packed = BlockMatrix::pseudo_random(1, 1, q, 9);
                let mut c_block = c_packed.clone();

                let kc = kb as usize * q;
                let (mut ap, mut bp) = (Vec::new(), Vec::new());
                pack::pack_a_panel(&mut ap, &a, 0, 1, 0, kb);
                pack::pack_b_panel(&mut bp, &b, 0, 1, 0, kb);
                block_mul_packed(v, c_packed.block_mut(0, 0), q, kc, &ap, &bp);

                for k in 0..kb {
                    block_fma_with(v, c_block.block_mut(0, 0), a.block(0, k), b.block(k, 0), q);
                }
                // Scalar variant never drives the packed path in the
                // executor; its packed fallback is fused while its block
                // kernel is unfused, so compare with a tolerance there
                // and exactly for the SIMD variants.
                if v.is_simd() {
                    assert_eq!(c_packed, c_block, "{v} q={q}");
                } else {
                    assert!(c_packed.max_abs_diff(&c_block) < 1e-10, "{v} q={q}");
                }
            }
        }
    }

    /// Same bit-identity for f32: the packed vector kernels and the fused
    /// whole-block fallback share one rounding contract.
    #[test]
    fn packed_f32_update_is_bit_identical_to_blockwise_kernel() {
        for v in variants_available() {
            for q in [1usize, 5, 16, 19, 32] {
                let kb = 2u32;
                let a = BlockMatrixOf::<f32>::pseudo_random(1, kb, q, 7);
                let b = BlockMatrixOf::<f32>::pseudo_random(kb, 1, q, 8);
                let mut c_packed = BlockMatrixOf::<f32>::pseudo_random(1, 1, q, 9);
                let mut c_block = c_packed.clone();

                let kc = kb as usize * q;
                let (mut ap, mut bp) = (Vec::new(), Vec::new());
                pack::pack_a_panel(&mut ap, &a, 0, 1, 0, kb);
                pack::pack_b_panel(&mut bp, &b, 0, 1, 0, kb);
                block_mul_packed(v, c_packed.block_mut(0, 0), q, kc, &ap, &bp);

                for k in 0..kb {
                    block_fma_with(v, c_block.block_mut(0, 0), a.block(0, k), b.block(k, 0), q);
                }
                if v.is_simd() {
                    assert_eq!(c_packed, c_block, "{v} q={q}");
                } else {
                    assert!(c_packed.max_abs_diff(&c_block) < 1e-4, "{v} q={q}");
                }
            }
        }
    }
}
