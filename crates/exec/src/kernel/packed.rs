//! Packed-panel driver: register kernels over one `C` block.
//!
//! [`block_mul_packed`] updates a single row-major `q×q` `C` block from
//! packed `A` and `B` micro-panels (see [`super::pack`] for the layout),
//! walking the block's [`MR`]`×`[`NR`] register-tile grid. Full tiles run
//! the variant's vector kernel; tiles clipped by the `q % MR` / `q % NR`
//! edges run a fused scalar remainder over the zero-padded panels, which
//! rounds identically to the vector lanes — so a packed update is
//! bit-identical to the same variant's unpacked [`super::block_fma_with`]
//! applied `k`-block by `k`-block.

use super::{KernelVariant, MR, NR};

/// `C += Apanel × Bpanel` for one row-major `q×q` block of `C`.
///
/// `apack` is this block row's packed micro-panels (`⌈q/MR⌉·kc·MR`
/// elements), `bpack` this block column's (`⌈q/NR⌉·kc·NR` elements), with
/// `kc` the element depth of the current `k` panel. Accumulation per `C`
/// element is ascending `k` with one fused multiply-add per step.
///
/// A variant the CPU cannot run falls back to the fused scalar remainder
/// for every tile (callers dispatch the scalar kernel before packing, so
/// this is a safety net, not a fast path).
///
/// # Panics
/// Panics (in debug builds) if the slice sizes disagree with `q`/`kc`.
pub fn block_mul_packed(
    v: KernelVariant,
    cblk: &mut [f64],
    q: usize,
    kc: usize,
    apack: &[f64],
    bpack: &[f64],
) {
    let n_ip = q.div_ceil(MR);
    let n_jp = q.div_ceil(NR);
    debug_assert!(cblk.len() >= q * q);
    debug_assert!(apack.len() >= n_ip * kc * MR && bpack.len() >= n_jp * kc * NR);
    let vector = v.is_simd() && v.is_available();
    for jp in 0..n_jp {
        let nr = NR.min(q - jp * NR);
        let bp = &bpack[jp * kc * NR..][..kc * NR];
        for ip in 0..n_ip {
            let mr = MR.min(q - ip * MR);
            let ap = &apack[ip * kc * MR..][..kc * MR];
            let coff = ip * MR * q + jp * NR;
            if vector && mr == MR && nr == NR {
                micro_full(v, kc, ap, bp, &mut cblk[coff..], q);
            } else {
                micro_edge_packed(kc, ap, bp, &mut cblk[coff..], q, mr, nr);
            }
        }
    }
}

/// Run the variant's full `MR×NR` vector kernel on one register tile.
#[inline]
fn micro_full(v: KernelVariant, kc: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize) {
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    match v {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: caller checked `v.is_available()`; panel sizes are
        // checked by the debug_asserts here and in `block_mul_packed`.
        KernelVariant::Avx2Fma => unsafe {
            super::x86::micro_8x4_packed(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; sizes checked as above.
        KernelVariant::Neon => unsafe {
            super::neon::micro_8x4_packed(kc, ap.as_ptr(), bp.as_ptr(), c.as_mut_ptr(), ldc)
        },
        _ => micro_edge_packed(kc, ap, bp, c, ldc, MR, NR),
    }
}

/// Fused scalar micro-kernel over packed panels for partial register
/// tiles: updates the `mr×nr` corner of the tile at `c` (row stride
/// `ldc`), one `f64::mul_add` per `k` step, ascending `k` — bit-identical
/// to the vector lanes.
fn micro_edge_packed(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    c: &mut [f64],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    for r in 0..mr {
        for j in 0..nr {
            let idx = r * ldc + j;
            let mut acc = c[idx];
            for k in 0..kc {
                acc = ap[k * MR + r].mul_add(bp[k * NR + j], acc);
            }
            c[idx] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{block_fma_with, pack, variants_available};
    use crate::matrix::BlockMatrix;

    /// Packed and unpacked paths of the same variant are bit-identical,
    /// including ragged q and multi-block k panels.
    #[test]
    fn packed_update_is_bit_identical_to_blockwise_kernel() {
        for v in variants_available() {
            for q in [1usize, 3, 5, 8, 12, 16, 31, 32] {
                let kb = 3u32;
                let a = BlockMatrix::pseudo_random(1, kb, q, 7);
                let b = BlockMatrix::pseudo_random(kb, 1, q, 8);
                let mut c_packed = BlockMatrix::pseudo_random(1, 1, q, 9);
                let mut c_block = c_packed.clone();

                let kc = kb as usize * q;
                let (mut ap, mut bp) = (Vec::new(), Vec::new());
                pack::pack_a_panel(&mut ap, &a, 0, 1, 0, kb);
                pack::pack_b_panel(&mut bp, &b, 0, 1, 0, kb);
                block_mul_packed(v, c_packed.block_mut(0, 0), q, kc, &ap, &bp);

                for k in 0..kb {
                    block_fma_with(v, c_block.block_mut(0, 0), a.block(0, k), b.block(k, 0), q);
                }
                // Scalar variant never drives the packed path in the
                // executor; its packed fallback is fused while its block
                // kernel is unfused, so compare with a tolerance there
                // and exactly for the SIMD variants.
                if v.is_simd() {
                    assert_eq!(c_packed, c_block, "{v} q={q}");
                } else {
                    assert!(c_packed.max_abs_diff(&c_block) < 1e-10, "{v} q={q}");
                }
            }
        }
    }
}
